"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``        — tiny coherent CPU/accelerator exchange through XG;
* ``stress``      — Section 4.1 random stress over the 12 configurations;
* ``fuzz``        — byzantine-accelerator safety campaign;
* ``chaos``       — fault-injected interconnect campaign (drop/dup/delay/corrupt);
* ``rogue``       — Byzantine-accelerator containment sweep (plans x hosts x
  variants) with the online invariant watchdog armed;
* ``trace``       — traced chaos run exported as Chrome/Perfetto JSON;
* ``report``      — telemetry-on stress: coverage heatmap + span percentiles;
* ``blame``       — lineage-on stress: per-(config x span-kind) blame
  breakdown plus the slowest transactions with their critical paths;
* ``top``         — live campaign view: stress sweep under the telemetry
  fabric with per-worker throughput/heartbeats, then the fabric summary;
* ``bench``       — engine events/sec microbenchmark + campaign wall-clock;
* ``golden``      — golden-run digests: verify against the committed file,
  prove compiled/legacy dispatch equivalence, or refresh with ``--update``;
* ``verify``      — exhaustive single-address interface verification;
* ``explore``     — concrete-state reachability exploration: enumerate all
  interleavings of small (host x XG-variant) cells on the real simulator,
  prove G0-G2 exhaustively, cross-check stress coverage vs reachability;
* ``perf``        — runtime comparison of the cache organizations;
* ``experiment``  — run one of the table/figure experiments (e1..e12).
"""

import argparse
import sys
from contextlib import ExitStack

from repro.eval.report import format_error_log, format_table


def _add_live_args(cmd):
    """``--live``/``--live-interval`` knobs shared by campaign commands."""
    cmd.add_argument("--live", action="store_true",
                     help="stream live campaign progress (per-worker "
                          "throughput, heartbeats, coverage growth); "
                          "degrades to periodic plain lines off a TTY")
    cmd.add_argument("--live-interval", dest="live_interval", type=float,
                     default=1.0, metavar="SECONDS",
                     help="seconds between live progress updates")
    cmd.add_argument("--forensics-all", dest="forensics_all",
                     action="store_true",
                     help="keep the bounded FlightRecorder black box for "
                          "successful jobs too (default: failures only)")


def _campaign_fabric(stack, args):
    """Fabric for a campaign command: live renderer and/or forensics-all.

    ``--live`` brings up the rendering fabric as before; ``--forensics-all``
    without ``--live`` still needs a (renderer-less) fabric so workers
    carry their flight recorders. Returns the collector or None.
    """
    from repro.obs.fabric import FabricCollector, live_fabric, use_fabric

    config = {"forensics_all": True} if getattr(args, "forensics_all", False) \
        else None
    fabric = stack.enter_context(
        live_fabric(live=getattr(args, "live", False),
                    interval=args.live_interval, config=config)
    )
    if fabric is None and config is not None:
        fabric = stack.enter_context(
            use_fabric(FabricCollector(renderer=None, config=config))
        )
    return fabric


def _single_run_fabric(stack, args, label):
    """Bring up the fabric for a single-run command when ``--live`` is set.

    fuzz/chaos run one simulation in-process rather than a campaign, so
    the fabric is framed as a one-job session: collector + in-process
    emitter + progress hook, torn down when ``stack`` unwinds. Returns
    the in-process emitter (whose flight recorder ``--forensics-all``
    snapshots), or None when neither flag asked for a fabric.
    """
    if not (getattr(args, "live", False)
            or getattr(args, "forensics_all", False)):
        return None
    from repro.obs.fabric import inproc_session

    fabric = _campaign_fabric(stack, args)
    return stack.enter_context(inproc_session(fabric, label=label))


def _grab_single_run_forensics(emitter, args):
    """Snapshot the in-process black box before the fabric tears down."""
    if emitter is None or not getattr(args, "forensics_all", False):
        return None
    return emitter.failure_forensics()["flight_recorder"]


def _print_single_run_forensics(snap):
    """``--forensics-all`` tail for fuzz/chaos: summarize the black box."""
    if snap is None:
        return
    print(f"\nforensics (kept for successful run): "
          f"{snap['frames_seen']} frames recorded, "
          f"final tick {snap.get('tick', '-')}")
    path = (snap.get("critical_path") or {}).get("path")
    if path:
        rendered = " -> ".join(f"{bucket}:{ticks}" for bucket, ticks in path)
        print(f"  oldest open span critical path: {rendered}")


def _cmd_demo(args):
    from repro.host.config import AccelOrg, HostProtocol, SystemConfig
    from repro.host.system import build_system
    from repro.xg.interface import XGVariant

    config = SystemConfig(
        host=HostProtocol[args.host.upper()],
        org=AccelOrg.XG,
        xg_variant=XGVariant[args.variant.upper()],
    )
    system = build_system(config)
    results = []
    system.cpu_seqs[0].store(0x1000, 21)
    system.sim.run()
    system.accel_seqs[0].load(
        0x1000, lambda m, d: results.append(("accel read", d.read_byte(0)))
    )
    system.sim.run()
    system.accel_seqs[0].store(0x1000, 42)
    system.sim.run()
    system.cpu_seqs[0].load(
        0x1000, lambda m, d: results.append(("cpu read", d.read_byte(0)))
    )
    system.sim.run()
    for label, value in results:
        print(f"{label}: {value}")
    print(f"config: {config.label}; ticks: {system.sim.tick}; "
          f"guarantee violations: {len(system.error_log)}")
    return 0


def _cmd_stress(args):
    import time

    from repro.eval.campaign import resolve_workers
    from repro.eval.experiments import run_stress_coverage

    workers = resolve_workers(args.workers)
    start = time.perf_counter()
    with ExitStack() as stack:
        fabric = _campaign_fabric(stack, args)
        result = run_stress_coverage(
            seeds=range(args.seeds), ops_per_run=args.ops, workers=workers
        )
    elapsed = time.perf_counter() - start
    if fabric is not None and args.live and args.dash_out:
        from repro.eval.report import write_campaign_dashboard

        write_campaign_dashboard(args.dash_out, fabric.summary())
        print(f"wrote {args.dash_out}")
    kept = result.get("forensics", [])
    if kept:
        print(f"forensics: kept {len(kept)} successful-job black box(es)")
    failures = [r for r in result["runs"] if not r["passed"]]
    print(
        format_table(
            ["controller", "visited", "possible", "coverage"],
            [
                (c["controller"], c["visited"], c["possible"], f"{c['fraction']:.1%}")
                for c in result["coverage"]
            ],
            title=(
                f"{len(result['runs'])} stress runs, {len(failures)} failures "
                f"({workers} worker{'s' if workers != 1 else ''}, {elapsed:.1f}s)"
            ),
        )
    )
    for failure in failures:
        print("FAIL:", failure["config"], "seed", failure["seed"], failure["detail"])
        if failure.get("diagnosis"):
            print(failure["diagnosis"])
    return 1 if failures else 0


def _cmd_bench(args):
    import json

    from repro.eval.profiling import engine_benchmark_report

    report = engine_benchmark_report(
        scale=args.scale,
        seed=args.seed,
        include_campaign=not args.no_campaign,
        workers=args.workers,
        repeats=args.repeats,
    )
    rows = [
        (name, w["events"], w["final_tick"], f"{w['seconds']:.3f}",
         f"{w['events_per_sec']:,.0f}")
        for name, w in report["workloads"].items()
    ]
    rows.append(
        ("TOTAL", report["events"], "-", f"{report['seconds']:.3f}",
         f"{report['events_per_sec']:,.0f}")
    )
    print(
        format_table(
            ["workload", "events", "final tick", "seconds", "events/sec"],
            rows,
            title="engine throughput (synthetic mix)",
        )
    )
    if "campaign" in report:
        print()
        print(
            format_table(
                ["workers", "seconds", "runs", "speedup"],
                [
                    (r["workers"], f"{r['seconds']:.2f}", r["runs"],
                     f"{r['speedup_vs_serial']:.2f}x" if r["speedup_vs_serial"] else "-")
                    for r in report["campaign"]["rows"]
                ],
                title="campaign wall-clock",
            )
        )
    if "dispatch" in report:
        dispatch = report["dispatch"]
        print()
        print(
            format_table(
                ["controller", "count", "entries", "fires", "fires %", "stalls"],
                [
                    (ctype, row["controllers"], row["table_entries"],
                     row["fires"], f"{row['fires_pct']:.1f}%", row["stalls"])
                    for ctype, row in dispatch["controllers"].items()
                ],
                title=(f"dispatch breakdown ({dispatch['host']} stress, "
                       f"{dispatch['dispatch_mode']} mode, "
                       f"{dispatch['events_per_sec']:,.0f} events/sec)"),
            )
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"\nwrote {args.out}")
    if args.baseline:
        from repro.eval.perf_gate import (
            compare_reports,
            format_comparison,
            load_report,
            write_comparison,
        )

        comparison = compare_reports(
            report, load_report(args.baseline), tolerance=args.tolerance
        )
        print()
        print(format_comparison(comparison))
        if args.gate_out:
            write_comparison(comparison, args.gate_out)
            print(f"wrote {args.gate_out}")
        if not comparison["passed"]:
            return 1
    if args.obs_out:
        from repro.eval.profiling import obs_overhead_report

        obs_report = obs_overhead_report(
            scale=args.scale, seed=args.seed, repeats=args.repeats
        )
        print()
        print(
            format_table(
                ["mode", "events", "seconds", "events/sec"],
                [
                    (mode, r["events"], f"{r['seconds']:.3f}",
                     f"{r['events_per_sec']:,.0f}")
                    for mode, r in obs_report["xg_stress"].items()
                ],
                title="telemetry overhead (XG stress workload)",
            )
        )
        for name, pct in obs_report["overhead_pct"].items():
            print(f"  {name}: {pct:+.2f}%")
        with open(args.obs_out, "w") as fh:
            json.dump(obs_report, fh, indent=2, sort_keys=True)
        print(f"\nwrote {args.obs_out}")
    return 0


def _cmd_golden(args):
    from repro.testing.golden import (
        equivalence_matrix,
        load_pinned,
        pinned_digests,
        write_pinned,
    )

    if args.update:
        payload = write_pinned(args.path, seed=args.seed, ops=args.ops)
        print(f"wrote {len(payload['digests'])} golden digests to {args.path}")
        for label, digest in sorted(payload["digests"].items()):
            print(f"  {label}: {digest['transitions_count']} transitions, "
                  f"{digest['transitions'][:16]}…")
        return 0
    if args.matrix:
        rows = equivalence_matrix(args.scenario, seed=args.seed, ops=args.ops)
        bad = [label for label, row in rows.items() if not row["identical"]]
        print(
            format_table(
                ["config", "transitions", "compiled == legacy"],
                [
                    (label, row["compiled"]["transitions_count"],
                     "OK" if row["identical"] else "MISMATCH")
                    for label, row in sorted(rows.items())
                ],
                title=f"dispatch equivalence matrix ({args.scenario})",
            )
        )
        if bad:
            print(f"\nMISMATCH in: {', '.join(bad)}", file=sys.stderr)
        return 1 if bad else 0
    pinned = load_pinned(args.path)
    fresh = pinned_digests(seed=pinned["seed"], ops=pinned["ops"])
    bad = []
    for label, digest in sorted(pinned["digests"].items()):
        ok = fresh["digests"].get(label) == digest
        print(f"  {label}: {'OK' if ok else 'CHANGED'}")
        if not ok:
            bad.append(label)
    if bad:
        print(f"\ngolden digests changed: {', '.join(bad)}\n"
              f"If deliberate, refresh with `python -m repro golden --update` "
              f"and explain the behavior change in the PR.", file=sys.stderr)
        return 1
    print("all golden digests match")
    return 0


def _cmd_fuzz(args):
    from repro.host.config import HostProtocol
    from repro.testing.fuzzer import run_fuzz_campaign
    from repro.xg.interface import XGVariant

    with ExitStack() as stack:
        emitter = _single_run_fabric(
            stack, args,
            label=f"fuzz/{args.host}/{args.variant}/{args.adversary}",
        )
        result, _system = run_fuzz_campaign(
            HostProtocol[args.host.upper()],
            XGVariant[args.variant.upper()],
            adversary=args.adversary,
            seed=args.seed,
            duration=args.duration,
            cpu_ops=args.cpu_ops,
        )
        forensic_snap = _grab_single_run_forensics(emitter, args)
    report = result.as_dict()
    for key in (
        "host_safe", "adversary_messages", "violations_total",
        "cpu_loads_checked", "final_tick",
    ):
        print(f"{key}: {report[key]}")
    for guarantee, count in sorted(report["violations"].items()):
        print(f"  {guarantee}: {count}")
    if len(_system.error_log):
        print()
        print(format_error_log(_system.error_log, limit=args.show_errors))
    _print_single_run_forensics(forensic_snap)
    return 0 if report["host_safe"] else 1


def _cmd_chaos(args):
    from repro.host.config import HostProtocol
    from repro.sim.faults import FaultWindow, single_link_plan
    from repro.testing.chaos import run_chaos_campaign
    from repro.xg.interface import XGVariant

    rates = {kind: args.rate for kind in args.faults.split(",") if kind}
    windows = []
    try:
        if args.blackhole:
            start, _, end = args.blackhole.partition(":")
            windows.append(FaultWindow(int(start), int(end), "drop", 1.0))
        single_link_plan(rates, windows=windows)  # validate kinds/rates early
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with ExitStack() as stack:
        emitter = _single_run_fabric(
            stack, args,
            label=f"chaos/{args.host}/{args.variant}/{args.adversary}",
        )
        result, system = run_chaos_campaign(
            HostProtocol[args.host.upper()],
            XGVariant[args.variant.upper()],
            faults=rates,
            windows=windows,
            adversary=args.adversary,
            seed=args.seed,
            fault_seed=args.fault_seed,
            duration=args.duration,
            cpu_ops=args.cpu_ops,
            accel_timeout=args.accel_timeout,
            probe_retries=args.probe_retries,
            disable_after=args.disable_after,
        )
        forensic_snap = _grab_single_run_forensics(emitter, args)
    report = result.as_dict()
    for key in (
        "host_safe", "final_tick", "cpu_loads_checked", "adversary_messages",
        "faults_total", "probe_retries", "duplicates_sunk",
        "retry_echoes_absorbed", "quarantine_surrogates", "accel_disabled",
        "violations_total",
    ):
        print(f"{key}: {report[key]}")
    for kind, count in sorted(report["faults_injected"].items()):
        print(f"  injected {kind}: {count}")
    for guarantee, count in sorted(report["violations"].items()):
        print(f"  {guarantee}: {count}")
    if len(system.error_log):
        print()
        print(format_error_log(system.error_log, limit=args.show_errors))
    if not report["host_safe"] and report["diagnosis"]:
        print()
        print(report["diagnosis"])
    _print_single_run_forensics(forensic_snap)
    return 0 if report["host_safe"] else 1


def _cmd_rogue(args):
    import json
    import time

    from repro.eval.campaign import resolve_workers
    from repro.eval.report import format_rogue_matrix
    from repro.host.config import HostProtocol
    from repro.testing.rogue import run_rogue_matrix
    from repro.xg.interface import XGVariant

    plans = [p.strip() for p in args.plans.split(",") if p.strip()] or None
    try:
        hosts = tuple(
            HostProtocol[h.strip().upper()]
            for h in args.hosts.split(",") if h.strip()
        )
        variants = tuple(
            XGVariant[v.strip().upper()]
            for v in args.variants.split(",") if v.strip()
        )
    except KeyError as exc:
        print(f"error: unknown host or variant {exc.args[0]!r}", file=sys.stderr)
        return 2
    workers = resolve_workers(args.workers)
    start = time.perf_counter()
    try:
        with ExitStack() as stack:
            _campaign_fabric(stack, args)
            rows = run_rogue_matrix(
                plans=plans,
                hosts=hosts,
                variants=variants,
                seeds=range(args.seeds),
                duration=args.duration,
                cpu_ops=args.cpu_ops,
                invariant_interval=args.invariant_interval,
                workers=workers,
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    print(format_rogue_matrix(rows))
    print(f"({workers} worker{'s' if workers != 1 else ''}, {elapsed:.1f}s)")
    escaped = [r for r in rows if not r.get("contained")]
    invariant = [r for r in rows if r.get("invariant_violated")]
    starved = [
        r for r in rows if r.get("contained") and not r.get("cpu_loads_checked")
    ]
    contained = len(rows) - len(escaped)
    checks = sum(r.get("watchdog_checks", 0) for r in rows)
    print(f"contained: {contained}/{len(rows)}; invariant violations: "
          f"{len(invariant)}; watchdog checks: {checks}")
    if args.forensics_all:
        kept = sum(1 for r in rows if r.get("forensics"))
        print(f"forensics: {kept}/{len(rows)} rows carry a black box "
              f"(--out writes them as JSON)")
    for row in escaped:
        print(f"\nESCAPED: {row['plan']} on {row['host']}/{row['variant']} "
              f"seed {row['seed']}: {row.get('crash_detail') or row.get('detail')}",
              file=sys.stderr)
        if row.get("diagnosis"):
            print(row["diagnosis"], file=sys.stderr)
        if row.get("invariant_detail"):
            print(f"invariant: {row['invariant_detail']}", file=sys.stderr)
    for row in starved:
        print(f"\nSTARVED: {row['plan']} on {row['host']}/{row['variant']} "
              f"seed {row['seed']}: no CPU load ever completed", file=sys.stderr)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump({"rows": rows}, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 1 if escaped or starved else 0


def _cmd_trace(args):
    from repro.host.config import HostProtocol
    from repro.obs import build_trace, write_trace
    from repro.sim.faults import FaultWindow, single_link_plan
    from repro.testing.chaos import run_chaos_campaign
    from repro.xg.interface import XGVariant

    rates = {kind: args.rate for kind in args.faults.split(",") if kind}
    windows = []
    try:
        if args.blackhole:
            start, _, end = args.blackhole.partition(":")
            windows.append(FaultWindow(int(start), int(end), "drop", 1.0))
        single_link_plan(rates, windows=windows)  # validate kinds/rates early
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result, system = run_chaos_campaign(
        HostProtocol[args.host.upper()],
        XGVariant[args.variant.upper()],
        faults=rates,
        windows=windows,
        adversary=args.adversary,
        seed=args.seed,
        duration=args.duration,
        cpu_ops=args.cpu_ops,
        telemetry=True,
        series_interval=args.series_interval,
    )
    obs = system.sim.obs
    payload = build_trace(
        obs, fault_plan=system.config.fault_plan, label=system.config.label
    )
    count = write_trace(payload, args.out)
    print(f"config: {system.config.label}; ticks: {system.sim.tick}; "
          f"host_safe: {result.host_safe}")
    print(f"spans: {result.spans_closed} closed, {result.spans_orphaned} orphaned; "
          f"transitions: {len(obs.transitions)}; faults: {len(obs.faults)}; "
          f"marks: {len(obs.marks)}")
    print(f"wrote {count} trace events to {args.out} "
          f"(load in https://ui.perfetto.dev or chrome://tracing)")
    if result.spans_orphaned:
        print(f"warning: {result.spans_orphaned} spans never closed", file=sys.stderr)
    return 0 if result.host_safe else 1


def _cmd_report(args):
    import time

    from repro.eval.campaign import resolve_workers
    from repro.eval.experiments import run_stress_coverage
    from repro.obs import render_matrix

    workers = resolve_workers(args.workers)
    reachable = None
    if args.explore_report:
        from repro.verify.explorer import load_reachable_report

        reachable = load_reachable_report(args.explore_report)
    start = time.perf_counter()
    result = run_stress_coverage(
        seeds=range(args.seeds), ops_per_run=args.ops, workers=workers,
        telemetry=True, lineage=args.lineage,
    )
    elapsed = time.perf_counter() - start
    failures = [r for r in result["runs"] if not r["passed"]]
    print(f"{len(result['runs'])} stress runs, {len(failures)} failures "
          f"({workers} worker{'s' if workers != 1 else ''}, {elapsed:.1f}s)\n")
    print(render_matrix(result["matrix"], reachable=reachable))
    if args.lineage:
        from repro.obs import render_blame

        print()
        print(render_blame(result["blame"]))
    for failure in failures:
        print("FAIL:", failure["config"], "seed", failure["seed"], failure["detail"])
    return 1 if failures else 0


def _cmd_blame(args):
    import json
    import time

    from repro.eval.campaign import resolve_workers
    from repro.eval.experiments import run_stress_coverage
    from repro.obs import render_blame

    workers = resolve_workers(args.workers)
    start = time.perf_counter()
    result = run_stress_coverage(
        seeds=range(args.seeds), ops_per_run=args.ops, workers=workers,
        telemetry=True, lineage=True,
    )
    elapsed = time.perf_counter() - start
    failures = [r for r in result["runs"] if not r["passed"]]
    print(f"{len(result['runs'])} stress runs, {len(failures)} failures "
          f"({workers} worker{'s' if workers != 1 else ''}, {elapsed:.1f}s)\n")
    print(render_blame(result["blame"], top=args.top))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result["blame"].as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.out}")
    for failure in failures:
        print("FAIL:", failure["config"], "seed", failure["seed"], failure["detail"])
    return 1 if failures else 0


def _cmd_top(args):
    from repro.eval.campaign import resolve_workers
    from repro.eval.experiments import run_stress_coverage
    from repro.eval.report import format_fabric_summary, write_campaign_dashboard
    from repro.obs.fabric import live_fabric

    workers = resolve_workers(args.workers)
    with live_fabric(live=True, interval=args.live_interval) as fabric:
        result = run_stress_coverage(
            seeds=range(args.seeds), ops_per_run=args.ops, workers=workers
        )
    summary = fabric.summary()
    print()
    print(format_fabric_summary(summary))
    if args.dash_out:
        write_campaign_dashboard(args.dash_out, summary)
        print(f"\nwrote {args.dash_out}")
    failures = [r for r in result["runs"] if not r["passed"]]
    for failure in failures:
        print("FAIL:", failure["config"], "seed", failure["seed"],
              failure["detail"])
    return 1 if failures or summary["jobs_lost"] else 0


def _cmd_verify(args):
    from repro.verify import VerificationError, explore

    failures = 0
    for name, allow in (("transactional-style", True), ("full-state-style", False)):
        try:
            stats = explore(allow_probe_when_absent=allow)
        except VerificationError as exc:
            failures += 1
            print(f"{name}: FAIL — {exc}", file=sys.stderr)
            continue
        print(f"{name}: {stats['states']} states, "
              f"{stats['transitions']} transitions, "
              f"{stats['quiescent_states']} quiescent — OK")
    return 1 if failures else 0


def _cmd_explore(args):
    import json
    import time

    from repro.eval.campaign import resolve_workers
    from repro.verify.explorer import (
        cross_check_coverage, explore_cell, run_cell_stress)

    hosts = ["mesi", "hammer", "mesif"] if args.host == "all" else [args.host]
    variants = (["full_state", "transactional"] if args.variant == "all"
                else [args.variant])
    workers = resolve_workers(args.workers) if args.workers else 1
    cells = []
    rows = []
    exit_code = 0
    for host in hosts:
        for variant in variants:
            start = time.perf_counter()
            progress = None
            if args.progress:
                progress = lambda depth, states, frontier, _h=host, _v=variant: print(
                    f"  {_h}/{_v}: depth {depth}, {states} states, "
                    f"frontier {frontier}", file=sys.stderr, flush=True)
            result = explore_cell(
                host=host, variant=variant, addresses=args.addresses,
                workers=workers, max_states=args.max_states,
                check=args.check, progress=progress,
            )
            elapsed = time.perf_counter() - start
            result["elapsed_sec"] = round(elapsed, 2)
            counterexample = result["counterexample"]
            if counterexample is not None:
                status = "FAIL"
                exit_code = 1
            elif result["truncated"]:
                status = "partial"
            else:
                status = "proved"
            crosscheck = "-"
            if args.cross_check and counterexample is None and not result["truncated"]:
                problems = []
                for seed in range(args.cross_check):
                    covered = run_cell_stress(result["cell"], seed=seed,
                                              ops=args.stress_ops)
                    problems.extend(cross_check_coverage(result, covered))
                if problems:
                    crosscheck = "FAIL"
                    exit_code = 1
                    result["cross_check_failures"] = [
                        {"ctype": ctype, "transitions": pairs}
                        for ctype, pairs in problems
                    ]
                else:
                    crosscheck = f"ok ({args.cross_check} seeds)"
            rows.append([
                f"{host}/{variant}", result["states"], result["transitions"],
                result["quiescent_states"], result["depth"], status,
                crosscheck, f"{elapsed:.1f}s",
            ])
            cells.append(result)
            if counterexample is not None:
                print(f"counterexample in {host}/{variant}: "
                      f"{counterexample['reason']}", file=sys.stderr)
                for step in counterexample["path"]:
                    print(f"    {step}", file=sys.stderr)
    print(format_table(
        ["cell", "states", "transitions", "quiescent", "depth", "G0-G2",
         "cross-check", "time"],
        rows,
        title=f"reachability exploration ({args.addresses} address(es), "
              f"{workers} worker(s))",
    ))
    if args.out:
        payload = {"addresses": args.addresses, "workers": workers,
                   "max_states": args.max_states, "cells": cells}
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.out}")
    return exit_code


def _cmd_perf(args):
    from repro.eval.perf import run_perf_sweep

    results = run_perf_sweep(
        workloads=args.workloads or None, scale=args.scale, seed=args.seed
    )
    for workload, rows in results.items():
        print(
            format_table(
                ["config", "ticks", "normalized"],
                [(r["config"], r["ticks"], f"{r['ticks_norm']:.2f}x") for r in rows],
                title=f"runtime: {workload}",
            )
        )
        print()
    return 0


_EXPERIMENTS = {}


def _experiment(name):
    def register(fn):
        _EXPERIMENTS[name] = fn
        return fn

    return register


@_experiment("e1")
def _e1():
    from repro.eval.experiments import run_table1_accel_l1

    result = run_table1_accel_l1()
    return format_table(
        ["state", "event", "paper", "implemented"],
        [(r["state"], r["event"], r["paper"], r["implemented"]) for r in result["rows"]],
        title="Table 1",
    )


@_experiment("e2")
def _e2():
    from repro.eval.experiments import run_complexity_comparison

    rows = run_complexity_comparison()
    return format_table(
        ["controller", "stable", "transient", "transitions"],
        [
            (r["controller"], r["stable_states"], r["transient_states"], r["transitions"])
            for r in rows
        ],
        title="protocol complexity",
    )


@_experiment("e7")
def _e7():
    from repro.eval.overheads import run_storage_comparison

    result = run_storage_comparison()
    return format_table(
        ["accel KiB", "full-state KiB", "transactional KiB"],
        [
            (r["accel_cache_kib"], f"{r['full_state_kib']:.1f}", f"{r['transactional_kib']:.2f}")
            for r in result["analytic"]
        ],
        title="XG storage",
    )


@_experiment("e8")
def _e8():
    from repro.eval.overheads import run_puts_overhead

    rows = run_puts_overhead()
    return format_table(
        ["workload", "suppress", "PutS %"],
        [
            (r["workload"], r["suppress_puts"], f"{100 * r['puts_fraction']:.1f}%")
            for r in rows
        ],
        title="PutS overhead (Hammer host)",
    )


@_experiment("e9")
def _e9():
    from repro.eval.overheads import run_rate_limit_sweep

    rows = run_rate_limit_sweep()
    return format_table(
        ["limit", "cpu latency", "throttled"],
        [
            (r["rate_limit"], f"{r['cpu_mean_latency']:.1f}", r["adversary_requests_throttled"])
            for r in rows
        ],
        title="rate limiting",
    )


@_experiment("e10")
def _e10():
    from repro.eval.overheads import run_block_translation

    rows = run_block_translation()
    return format_table(
        ["accel block", "loads checked", "XG->host msgs"],
        [(r["accel_block"], r["loads_checked"], r["xg_to_host_msgs"]) for r in rows],
        title="block translation",
    )


@_experiment("e11")
def _e11():
    from repro.eval.overheads import run_timeout_recovery

    rows = run_timeout_recovery()
    return format_table(
        ["timeout", "G2c errors", "cpu max latency"],
        [(r["timeout"], r["g2c_errors"], r["cpu_max_latency"]) for r in rows],
        title="timeout recovery",
    )


def _cmd_experiment(args):
    runner = _EXPERIMENTS.get(args.name.lower())
    if runner is None:
        known = ", ".join(sorted(_EXPERIMENTS))
        print(f"unknown experiment {args.name!r}; choose from: {known} "
              f"(e3/e4/e5/e6/e12 run via pytest benchmarks/)", file=sys.stderr)
        return 2
    print(runner())
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="Crossing Guard reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="coherent CPU/accelerator exchange")
    demo.add_argument("--host", default="mesi", choices=["mesi", "hammer", "mesif"])
    demo.add_argument("--variant", default="full_state",
                      choices=["full_state", "transactional"])
    demo.set_defaults(fn=_cmd_demo)

    stress = sub.add_parser("stress", help="random protocol stress (Section 4.1)")
    stress.add_argument("--seeds", type=int, default=2)
    stress.add_argument("--ops", type=int, default=1500)
    stress.add_argument("--workers", type=int, default=None,
                        help="parallel campaign processes (default: cpu count; "
                             "1 = in-process, best for debugging)")
    _add_live_args(stress)
    stress.add_argument("--dash-out", dest="dash_out", default=None,
                        metavar="PATH",
                        help="with --live, write the campaign_dash.json "
                             "fabric summary + BENCH_*.json history here")
    stress.set_defaults(fn=_cmd_stress)

    bench = sub.add_parser("bench", help="engine events/sec + campaign wall-clock")
    bench.add_argument("--scale", type=int, default=1)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing repeats per workload (best is kept)")
    bench.add_argument("--workers", type=int, default=None,
                       help="parallel worker count for the campaign half "
                            "(default: cpu count)")
    bench.add_argument("--no-campaign", action="store_true",
                       help="skip the campaign wall-clock comparison")
    bench.add_argument("--obs-out", dest="obs_out", default=None, metavar="PATH",
                       help="also measure telemetry overhead (metrics_off / "
                            "default / traced) and write BENCH_obs.json there")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="write the BENCH_engine.json payload here")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="gate events/sec against this committed baseline "
                            "report; exit 1 on regression")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="fractional events/sec slowdown the gate "
                            "tolerates (deterministic counts are exact)")
    bench.add_argument("--gate-out", dest="gate_out", default=None,
                       metavar="PATH", help="write the gate comparison JSON "
                       "here (CI archives it)")
    bench.set_defaults(fn=_cmd_bench)

    golden = sub.add_parser(
        "golden", help="golden-run digests: verify, prove equivalence, or refresh"
    )
    golden.add_argument("--update", action="store_true",
                        help="regenerate the committed digest file from seed runs")
    golden.add_argument("--matrix", action="store_true",
                        help="run the compiled-vs-legacy equivalence matrix "
                             "instead of checking the committed digests")
    golden.add_argument("--scenario", default="stress",
                        choices=["stress", "fuzz", "chaos"],
                        help="scenario for --matrix runs")
    golden.add_argument("--seed", type=int, default=0)
    golden.add_argument("--ops", type=int, default=400,
                        help="CPU ops per run (matrix/update)")
    golden.add_argument("--path", default="tests/golden/digests.json",
                        metavar="PATH", help="committed digest file")
    golden.set_defaults(fn=_cmd_golden)

    fuzz = sub.add_parser("fuzz", help="byzantine accelerator safety campaign")
    fuzz.add_argument("--host", default="mesi", choices=["mesi", "hammer", "mesif"])
    fuzz.add_argument("--variant", default="full_state",
                      choices=["full_state", "transactional"])
    fuzz.add_argument("--adversary", default="fuzz",
                      choices=["fuzz", "deaf", "wrong", "flood"])
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--duration", type=int, default=40_000)
    fuzz.add_argument("--cpu-ops", dest="cpu_ops", type=int, default=1000)
    fuzz.add_argument("--show-errors", dest="show_errors", type=int, default=10,
                      help="OS error-log records to print")
    _add_live_args(fuzz)
    fuzz.set_defaults(fn=_cmd_fuzz)

    chaos = sub.add_parser(
        "chaos", help="fault-injected interconnect safety campaign"
    )
    chaos.add_argument("--host", default="mesi", choices=["mesi", "hammer", "mesif"])
    chaos.add_argument("--variant", default="full_state",
                       choices=["full_state", "transactional"])
    chaos.add_argument("--faults", default="drop,duplicate,delay,corrupt",
                       help="comma list of fault kinds on the accel link")
    chaos.add_argument("--rate", type=float, default=0.15,
                       help="per-message injection rate per fault kind")
    chaos.add_argument("--blackhole", default=None, metavar="START:END",
                       help="drop everything on the accel link during [START, END)")
    chaos.add_argument("--adversary", default="flood",
                       choices=["fuzz", "deaf", "wrong", "flood"])
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--fault-seed", dest="fault_seed", type=int, default=None,
                       help="fault plan RNG seed (defaults to --seed)")
    chaos.add_argument("--duration", type=int, default=60_000)
    chaos.add_argument("--cpu-ops", dest="cpu_ops", type=int, default=1200)
    chaos.add_argument("--accel-timeout", dest="accel_timeout", type=int, default=2500)
    chaos.add_argument("--probe-retries", dest="probe_retries", type=int, default=2)
    chaos.add_argument("--disable-after", dest="disable_after", type=int, default=None,
                       help="quarantine the accelerator after N violations")
    chaos.add_argument("--show-errors", dest="show_errors", type=int, default=10,
                       help="OS error-log records to print")
    _add_live_args(chaos)
    chaos.set_defaults(fn=_cmd_chaos)

    rogue = sub.add_parser(
        "rogue", help="Byzantine-accelerator containment sweep"
    )
    rogue.add_argument("--plans", default="",
                       help="comma list of rogue plan names (default: all)")
    rogue.add_argument("--hosts", default="mesi,hammer,mesif",
                       help="comma list of host protocols")
    rogue.add_argument("--variants", default="full_state,transactional",
                       help="comma list of XG variants")
    rogue.add_argument("--seeds", type=int, default=1)
    rogue.add_argument("--duration", type=int, default=40_000)
    rogue.add_argument("--cpu-ops", dest="cpu_ops", type=int, default=600)
    rogue.add_argument("--invariant-interval", dest="invariant_interval",
                       type=int, default=2000,
                       help="watchdog sampling period in ticks (0 disables)")
    rogue.add_argument("--workers", type=int, default=None,
                       help="parallel campaign processes (default: cpu count)")
    rogue.add_argument("-o", "--out", default=None, metavar="PATH",
                       help="write the full result rows as JSON")
    _add_live_args(rogue)
    rogue.set_defaults(fn=_cmd_rogue)

    trace = sub.add_parser(
        "trace", help="traced chaos run exported as Chrome/Perfetto JSON"
    )
    trace.add_argument("--host", default="mesi", choices=["mesi", "hammer", "mesif"])
    trace.add_argument("--variant", default="full_state",
                       choices=["full_state", "transactional"])
    trace.add_argument("--faults", default="drop,duplicate",
                       help="comma-separated fault kinds (empty for a clean run)")
    trace.add_argument("--rate", type=float, default=0.1,
                       help="per-message probability for each fault kind")
    trace.add_argument("--blackhole", default=None, metavar="START:END",
                       help="drop everything on the accel link in [START, END)")
    trace.add_argument("--adversary", default="flood",
                       choices=["flood", "fuzz", "protocol", "replay"])
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--duration", type=int, default=30_000)
    trace.add_argument("--cpu-ops", dest="cpu_ops", type=int, default=600)
    trace.add_argument("--series-interval", dest="series_interval", type=int,
                       default=1000, help="counter sampling period in ticks "
                       "(0 disables the time series)")
    trace.add_argument("-o", "--out", default="trace.json", metavar="PATH")
    trace.set_defaults(fn=_cmd_trace)

    report = sub.add_parser(
        "report", help="telemetry-on stress: coverage heatmap + span percentiles"
    )
    report.add_argument("--seeds", type=int, default=2)
    report.add_argument("--ops", type=int, default=1500)
    report.add_argument("--workers", type=int, default=None,
                        help="campaign processes (default: all cores, capped)")
    report.add_argument("--lineage", action="store_true",
                        help="also record causal lineage and append the "
                             "blame breakdown (see `repro blame`)")
    report.add_argument("--explore-report", dest="explore_report", default=None,
                        metavar="PATH",
                        help="explore_report.json from `repro explore -o`: "
                             "filters the uncovered-transition lists down to "
                             "transitions proven reachable (the authoritative "
                             "coverage holes)")
    report.set_defaults(fn=_cmd_report)

    blame = sub.add_parser(
        "blame",
        help="lineage-on stress: critical-path blame for every transaction",
    )
    blame.add_argument("--seeds", type=int, default=1)
    blame.add_argument("--ops", type=int, default=800)
    blame.add_argument("--workers", type=int, default=None,
                       help="campaign processes (default: all cores, capped)")
    blame.add_argument("--top", type=int, default=5,
                       help="slowest transactions to show with critical paths")
    blame.add_argument("-o", "--out", default=None, metavar="PATH",
                       help="write the mergeable blame-matrix JSON here "
                            "(blame_report.json; CI archives it)")
    blame.set_defaults(fn=_cmd_blame)

    top = sub.add_parser(
        "top", help="live campaign view: stress sweep under the telemetry fabric"
    )
    top.add_argument("--seeds", type=int, default=2)
    top.add_argument("--ops", type=int, default=1500)
    top.add_argument("--workers", type=int, default=None,
                     help="parallel campaign processes (default: cpu count)")
    top.add_argument("--live-interval", dest="live_interval", type=float,
                     default=1.0, metavar="SECONDS",
                     help="seconds between live progress updates")
    top.add_argument("--dash-out", dest="dash_out", default=None, metavar="PATH",
                     help="write the campaign_dash.json fabric summary + "
                          "BENCH_*.json history here")
    top.set_defaults(fn=_cmd_top)

    verify = sub.add_parser("verify", help="exhaustive interface verification")
    verify.set_defaults(fn=_cmd_verify)

    explore = sub.add_parser(
        "explore",
        help="concrete-state reachability exploration of the real simulator",
    )
    explore.add_argument("--host", default="mesi",
                         choices=["mesi", "hammer", "mesif", "all"])
    explore.add_argument("--variant", default="full_state",
                         choices=["full_state", "transactional", "all"])
    explore.add_argument("--addresses", type=int, default=1, choices=[1, 2],
                         help="explored block addresses (2 adds replacement "
                              "interleavings; much larger space)")
    explore.add_argument("--workers", type=int, default=None,
                         help="shard each BFS level over N campaign "
                              "processes (default: serial; digests are "
                              "byte-identical either way)")
    explore.add_argument("--max-states", dest="max_states", type=int,
                         default=100_000,
                         help="truncate the search after N canonical states "
                              "(result marked partial, never wrong)")
    explore.add_argument("--check", default=None,
                         help="extra named per-state check from the "
                              "explorer registry (used to demo "
                              "counterexample traces)")
    explore.add_argument("--cross-check", dest="cross_check", type=int,
                         default=0, metavar="SEEDS",
                         help="after a complete proof, run N seeded stress "
                              "runs on the same cell and verify every "
                              "covered transition is reachable")
    explore.add_argument("--stress-ops", dest="stress_ops", type=int,
                         default=200,
                         help="ops per cross-check stress run")
    explore.add_argument("--progress", action="store_true",
                         help="per-level progress on stderr")
    explore.add_argument("-o", "--out", default=None, metavar="PATH",
                         help="write explore_report.json (feed to "
                              "`repro report --explore-report`)")
    explore.set_defaults(fn=_cmd_explore)

    perf = sub.add_parser("perf", help="runtime by cache organization")
    perf.add_argument("--workloads", nargs="*", default=None)
    perf.add_argument("--scale", type=int, default=1)
    perf.add_argument("--seed", type=int, default=7)
    perf.set_defaults(fn=_cmd_perf)

    experiment = sub.add_parser("experiment", help="run one table/figure experiment")
    experiment.add_argument("name", help="e1, e2, e7, e8, e9, e10, e11")
    experiment.set_defaults(fn=_cmd_experiment)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
