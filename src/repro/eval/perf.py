"""Experiments E5/E6: performance of the 12 cache organizations.

Runs each synthetic workload on every configuration and reports total
runtime (ticks to drain) plus accelerator-side op latency — normalized to
the unsafe accelerator-side cache, the paper's baseline.
"""

from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.workloads.synthetic import PERF_WORKLOADS, run_drivers
from repro.xg.interface import XGVariant


def perf_configs(host, seed=7, **overrides):
    """The 6 organizations evaluated per host protocol."""
    shared = dict(host=host, n_cpus=2, n_accel_cores=2, seed=seed)
    shared.update(overrides)
    return [
        SystemConfig(org=AccelOrg.ACCEL_SIDE, **shared),
        SystemConfig(org=AccelOrg.HOST_SIDE, **shared),
        SystemConfig(org=AccelOrg.XG, xg_variant=XGVariant.FULL_STATE, **shared),
        SystemConfig(org=AccelOrg.XG, xg_variant=XGVariant.TRANSACTIONAL, **shared),
        SystemConfig(
            org=AccelOrg.XG, xg_variant=XGVariant.FULL_STATE, accel_levels=2, **shared
        ),
        SystemConfig(
            org=AccelOrg.XG, xg_variant=XGVariant.TRANSACTIONAL, accel_levels=2, **shared
        ),
    ]


def run_one(config, workload_builder):
    """Build, run one workload, and collect the metrics for one row."""
    system = build_system(config)
    drivers = workload_builder(system)
    ticks = run_drivers(system.sim, drivers)
    accel_lat = 0.0
    accel_ops = 0
    for seq in system.accel_seqs:
        hist = seq.stats.histogram("op_latency")
        accel_lat += hist.total
        accel_ops += hist.count
    cpu_lat = 0.0
    cpu_ops = 0
    for seq in system.cpu_seqs:
        hist = seq.stats.histogram("op_latency")
        cpu_lat += hist.total
        cpu_ops += hist.count
    host_msgs = system.sim.stats_for("network.host").get("messages")
    row = {
        "config": config.label,
        "ticks": ticks,
        "accel_mean_latency": accel_lat / accel_ops if accel_ops else 0.0,
        "cpu_mean_latency": cpu_lat / cpu_ops if cpu_ops else 0.0,
        "host_net_messages": host_msgs,
    }
    if system.error_log is not None:
        row["xg_errors"] = len(system.error_log)
    return row, system


def run_perf_sweep(workloads=None, hosts=(HostProtocol.MESI, HostProtocol.HAMMER), scale=1, seed=7):
    """E5/E6: the full runtime/latency sweep.

    Returns {workload: [row per config]} with ``ticks_norm`` relative to
    the accel-side baseline of the same host.
    """
    selected = PERF_WORKLOADS(scale=scale)
    if workloads is not None:
        selected = {name: selected[name] for name in workloads}
    results = {}
    for name, builder in selected.items():
        rows = []
        for host in hosts:
            baseline = None
            for config in perf_configs(host, seed=seed):
                row, _system = run_one(config, builder)
                if baseline is None:
                    baseline = row["ticks"]
                row["ticks_norm"] = row["ticks"] / baseline
                rows.append(row)
        results[name] = rows
    return results
