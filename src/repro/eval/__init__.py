"""Experiment runners regenerating every table and figure (see DESIGN.md).

Each ``run_*`` function returns plain dict/list structures; the
``benchmarks/`` scripts print them with :mod:`repro.eval.report` in the
shape the paper reports.
"""

from repro.eval.report import format_table, normalize_rows
from repro.eval.experiments import (
    run_table1_accel_l1,
    run_complexity_comparison,
    run_stress_coverage,
    run_fuzz_matrix,
)
from repro.eval.perf import run_perf_sweep
from repro.eval.overheads import (
    run_storage_comparison,
    run_puts_overhead,
    run_rate_limit_sweep,
    run_timeout_recovery,
    run_block_translation,
)

__all__ = [
    "format_table",
    "normalize_rows",
    "run_block_translation",
    "run_complexity_comparison",
    "run_fuzz_matrix",
    "run_perf_sweep",
    "run_puts_overhead",
    "run_rate_limit_sweep",
    "run_storage_comparison",
    "run_stress_coverage",
    "run_table1_accel_l1",
    "run_timeout_recovery",
]
