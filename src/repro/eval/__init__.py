"""Experiment runners regenerating every table and figure (see DESIGN.md).

Each ``run_*`` function returns plain dict/list structures; the
``benchmarks/`` scripts print them with :mod:`repro.eval.report` in the
shape the paper reports.
"""

from repro.eval.report import format_table, normalize_rows
from repro.eval.campaign import (
    CampaignJob,
    CampaignOutcome,
    resolve_workers,
    run_campaign,
)
from repro.eval.experiments import (
    run_table1_accel_l1,
    run_complexity_comparison,
    run_stress_coverage,
    run_fuzz_matrix,
)
from repro.eval.perf import run_perf_sweep
from repro.eval.profiling import (
    engine_benchmark_report,
    run_engine_microbench,
)
from repro.eval.overheads import (
    run_storage_comparison,
    run_puts_overhead,
    run_rate_limit_sweep,
    run_timeout_recovery,
    run_block_translation,
)

__all__ = [
    "CampaignJob",
    "CampaignOutcome",
    "engine_benchmark_report",
    "format_table",
    "normalize_rows",
    "resolve_workers",
    "run_block_translation",
    "run_campaign",
    "run_engine_microbench",
    "run_complexity_comparison",
    "run_fuzz_matrix",
    "run_perf_sweep",
    "run_puts_overhead",
    "run_rate_limit_sweep",
    "run_storage_comparison",
    "run_stress_coverage",
    "run_table1_accel_l1",
    "run_timeout_recovery",
]
