"""Process-pool campaign executor: independent simulations across cores.

Every campaign in this repo — stress coverage (E3), fuzz safety (E4),
chaos sweeps, perf sweeps — is a loop over fully independent
``(config, seed)`` simulations. This module is the one place that loop
learns to fan out:

* jobs are picklable ``(runner, args, kwargs, label)`` specs executed by
  a :class:`concurrent.futures.ProcessPoolExecutor` worker;
* every worker runs with **full error capture**: a
  :class:`~repro.sim.simulator.DeadlockError` is converted worker-side
  into its :meth:`~repro.sim.simulator.DeadlockError.diagnose` forensic
  text (the exception object itself drags the whole simulator along and
  cannot cross a pipe), any other exception into type + message +
  traceback — a worker never hangs or poisons the pool;
* results come back **in submission order**, so a parallel campaign's
  merged output is byte-identical to the serial one — the determinism
  property tests rest on that;
* ``workers=1`` (the default everywhere) runs jobs in-process with the
  exact same code path, preserving today's debuggable serial behavior;
* an optional **telemetry fabric** (:mod:`repro.obs.fabric`) makes the
  campaign observable while it runs: workers stream progress frames to a
  parent-side collector, and failed jobs ship a flight-recorder black box
  in ``CampaignOutcome.forensics``. The fabric rides outside the result
  path — fabric-on and fabric-off campaigns produce byte-identical
  merged results, and a worker that dies mid-job (SIGKILL, OOM) comes
  back as a synthesized ``WorkerLost`` outcome instead of a hung pool.

Pass ``workers=None`` for ``os.cpu_count()``.
"""

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.sim.simulator import DeadlockError


@dataclass(frozen=True)
class CampaignJob:
    """One unit of campaign work: ``runner(*args, **kwargs)``.

    ``runner`` must be a module-level callable and ``args``/``kwargs``
    picklable — the spec crosses a process boundary when ``workers > 1``.
    """

    runner: object
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    label: str = ""


@dataclass
class CampaignOutcome:
    """What came back for one job, success or not.

    ``value`` is the runner's return value when ``ok``; otherwise
    ``error_type``/``error``/``traceback`` describe the escape, and
    ``diagnosis`` carries :meth:`DeadlockError.diagnose` forensics when
    the escape was a deadlock.
    """

    label: str
    index: int
    ok: bool
    value: object = None
    error_type: str = ""
    error: str = ""
    traceback: str = ""
    diagnosis: str = ""
    #: plain-data forensic record carried by the exception (an
    #: InvariantError annotated by the watchdog), if any
    forensics: object = None

    @property
    def deadlocked(self):
        return self.error_type == "DeadlockError"


def resolve_workers(workers):
    """Normalize a ``workers`` knob: None -> cpu_count, floor at 1."""
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


def shard_evenly(items, shards):
    """Split ``items`` into at most ``shards`` contiguous near-equal slices.

    Order is preserved across the concatenation of the returned slices,
    so a sharded consumer that merges results in submission order sees
    exactly the serial sequence — the property the explorer's
    byte-identical visited-set digests rest on. Empty slices are never
    returned.
    """
    items = list(items)
    if not items:
        return []
    shards = max(1, min(int(shards), len(items)))
    base, extra = divmod(len(items), shards)
    out = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(items[start:start + size])
        start += size
    return out


def _execute(indexed_job):
    """Run one job with full error capture. Must never raise."""
    index, job = indexed_job
    # The fabric emitter is ambient worker state (installed by the pool
    # initializer or the in-process session); None means fabric off and
    # the job runs exactly the pre-fabric path. Frames and forensics are
    # pure telemetry — the returned outcome's result fields are identical
    # either way, which the fabric equivalence tests assert byte-for-byte.
    from repro.obs.fabric import worker_emitter

    emitter = worker_emitter()
    if emitter is not None:
        emitter.job_started(index, job.label)
    try:
        value = job.runner(*job.args, **job.kwargs)
        forensics = None
        if emitter is not None:
            if emitter.config.get("forensics_all"):
                # --forensics-all: keep the bounded black box even for
                # successful jobs (baseline comparisons, overhead triage)
                forensics = emitter.failure_forensics()
            emitter.job_finished(index, job.label, ok=True)
        return CampaignOutcome(label=job.label, index=index, ok=True,
                               value=value, forensics=forensics)
    except DeadlockError as exc:
        forensics = None
        if emitter is not None:
            forensics = emitter.failure_forensics(exc=exc)
            emitter.job_finished(index, job.label, ok=False,
                                 error_type="DeadlockError")
        return CampaignOutcome(
            label=job.label,
            index=index,
            ok=False,
            error_type="DeadlockError",
            error=str(exc),
            traceback=traceback.format_exc(),
            diagnosis=exc.diagnose(),
            forensics=forensics,
        )
    except BaseException as exc:  # noqa: BLE001 - the pool must survive anything
        # the watchdog annotates InvariantError with a plain-data
        # forensic record; it pickles, the simulator does not
        forensics = getattr(exc, "forensics", None)
        if emitter is not None:
            forensics = emitter.failure_forensics(invariant=forensics, exc=exc)
            emitter.job_finished(index, job.label, ok=False,
                                 error_type=type(exc).__name__)
        return CampaignOutcome(
            label=job.label,
            index=index,
            ok=False,
            error_type=type(exc).__name__,
            error=str(exc),
            traceback=traceback.format_exc(),
            forensics=forensics,
        )


def run_campaign(jobs, workers=1, max_tasks_per_child=None, fabric=None):
    """Execute ``jobs`` and return their outcomes in submission order.

    ``workers <= 1`` runs in-process (same code path, trivially
    debuggable); otherwise a process pool executes jobs concurrently and
    futures are resolved in submission order, so downstream merging is
    deterministic regardless of completion order. Worker-side failures —
    including deadlocks, whose forensics are serialized as text — come
    back as failed :class:`CampaignOutcome` rows, never as a hung or
    broken pool.

    ``fabric`` is an optional :class:`~repro.obs.fabric.FabricCollector`
    (defaults to the ambient one installed by
    :func:`~repro.obs.fabric.use_fabric`, if any). With a fabric attached
    the campaign becomes observable — live worker progress, mergeable
    sketches, flight-recorder forensics on failure — and a worker process
    that dies mid-job is synthesized into a ``WorkerLost`` outcome for
    its shard instead of hanging or aborting the whole campaign.
    """
    jobs = list(jobs)
    workers = resolve_workers(workers)
    indexed = list(enumerate(jobs))
    if fabric is None:
        from repro.obs.fabric import current_fabric

        fabric = current_fabric()
    if fabric is None:
        # pre-fabric path, kept byte-for-byte: the equivalence tests pin
        # fabric-off campaigns to this exact behavior
        if workers == 1 or len(jobs) <= 1:
            return [_execute(pair) for pair in indexed]
        pool_kwargs = {}
        if max_tasks_per_child is not None:
            # py3.11+; bounded-memory knob for very long campaigns
            pool_kwargs["max_tasks_per_child"] = max_tasks_per_child
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs)),
                                 **pool_kwargs) as pool:
            return list(pool.map(_execute, indexed))
    return _run_campaign_fabric(indexed, jobs, workers, max_tasks_per_child,
                                fabric)


def _run_campaign_fabric(indexed, jobs, workers, max_tasks_per_child, fabric):
    """Fabric-attached execution: same outcomes, plus live telemetry."""
    from repro.obs.fabric import init_fabric_worker, inproc_worker

    multiprocess = workers > 1 and len(jobs) > 1
    fabric.begin(len(jobs), multiprocess=multiprocess)
    try:
        if not multiprocess:
            with inproc_worker(fabric):
                return [_execute(pair) for pair in indexed]
        pool_kwargs = {}
        if max_tasks_per_child is not None:
            pool_kwargs["max_tasks_per_child"] = max_tasks_per_child
        with ProcessPoolExecutor(
                max_workers=min(workers, len(jobs)),
                initializer=init_fabric_worker,
                initargs=(fabric.queue, fabric.config),
                **pool_kwargs) as pool:
            futures = [(index, job, pool.submit(_execute, (index, job)))
                       for index, job in indexed]
            outcomes = []
            for index, job, future in futures:
                try:
                    outcomes.append(future.result())
                except BrokenProcessPool as exc:
                    # the worker died without returning (SIGKILL, OOM,
                    # segfault): synthesize a lost-shard outcome so the
                    # campaign completes instead of hanging or raising
                    fabric.job_lost(index, job.label, error=str(exc))
                    outcomes.append(CampaignOutcome(
                        label=job.label,
                        index=index,
                        ok=False,
                        error_type="WorkerLost",
                        error=str(exc),
                        forensics=fabric.lost_forensics(index),
                    ))
            return outcomes
    finally:
        fabric.finish()


def merge_failure_into(template, outcome):
    """Fold a failed outcome into a result-row ``template`` dict.

    Keeps campaign tables rectangular when a worker escapes outside the
    job's own error handling: the row reports the crash with the same
    keys a successful row would carry.
    """
    row = dict(template)
    row["passed"] = False
    row["host_safe"] = False
    row["host_crashed"] = not outcome.deadlocked
    row["host_deadlocked"] = outcome.deadlocked
    row["crash_detail"] = f"{outcome.error_type}: {outcome.error}"
    row["detail"] = row["crash_detail"]
    row["diagnosis"] = outcome.diagnosis
    return row
