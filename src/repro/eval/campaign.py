"""Process-pool campaign executor: independent simulations across cores.

Every campaign in this repo — stress coverage (E3), fuzz safety (E4),
chaos sweeps, perf sweeps — is a loop over fully independent
``(config, seed)`` simulations. This module is the one place that loop
learns to fan out:

* jobs are picklable ``(runner, args, kwargs, label)`` specs executed by
  a :class:`concurrent.futures.ProcessPoolExecutor` worker;
* every worker runs with **full error capture**: a
  :class:`~repro.sim.simulator.DeadlockError` is converted worker-side
  into its :meth:`~repro.sim.simulator.DeadlockError.diagnose` forensic
  text (the exception object itself drags the whole simulator along and
  cannot cross a pipe), any other exception into type + message +
  traceback — a worker never hangs or poisons the pool;
* results come back **in submission order** (``Executor.map``), so a
  parallel campaign's merged output is byte-identical to the serial one —
  the determinism property tests rest on that;
* ``workers=1`` (the default everywhere) runs jobs in-process with the
  exact same code path, preserving today's debuggable serial behavior.

Pass ``workers=None`` for ``os.cpu_count()``.
"""

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.sim.simulator import DeadlockError


@dataclass(frozen=True)
class CampaignJob:
    """One unit of campaign work: ``runner(*args, **kwargs)``.

    ``runner`` must be a module-level callable and ``args``/``kwargs``
    picklable — the spec crosses a process boundary when ``workers > 1``.
    """

    runner: object
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    label: str = ""


@dataclass
class CampaignOutcome:
    """What came back for one job, success or not.

    ``value`` is the runner's return value when ``ok``; otherwise
    ``error_type``/``error``/``traceback`` describe the escape, and
    ``diagnosis`` carries :meth:`DeadlockError.diagnose` forensics when
    the escape was a deadlock.
    """

    label: str
    index: int
    ok: bool
    value: object = None
    error_type: str = ""
    error: str = ""
    traceback: str = ""
    diagnosis: str = ""
    #: plain-data forensic record carried by the exception (an
    #: InvariantError annotated by the watchdog), if any
    forensics: object = None

    @property
    def deadlocked(self):
        return self.error_type == "DeadlockError"


def resolve_workers(workers):
    """Normalize a ``workers`` knob: None -> cpu_count, floor at 1."""
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


def _execute(indexed_job):
    """Run one job with full error capture. Must never raise."""
    index, job = indexed_job
    try:
        value = job.runner(*job.args, **job.kwargs)
        return CampaignOutcome(label=job.label, index=index, ok=True, value=value)
    except DeadlockError as exc:
        return CampaignOutcome(
            label=job.label,
            index=index,
            ok=False,
            error_type="DeadlockError",
            error=str(exc),
            traceback=traceback.format_exc(),
            diagnosis=exc.diagnose(),
        )
    except BaseException as exc:  # noqa: BLE001 - the pool must survive anything
        return CampaignOutcome(
            label=job.label,
            index=index,
            ok=False,
            error_type=type(exc).__name__,
            error=str(exc),
            traceback=traceback.format_exc(),
            # the watchdog annotates InvariantError with a plain-data
            # forensic record; it pickles, the simulator does not
            forensics=getattr(exc, "forensics", None),
        )


def run_campaign(jobs, workers=1, max_tasks_per_child=None):
    """Execute ``jobs`` and return their outcomes in submission order.

    ``workers <= 1`` runs in-process (same code path, trivially
    debuggable); otherwise a process pool executes jobs concurrently and
    ``Executor.map`` restores submission order, so downstream merging is
    deterministic regardless of completion order. Worker-side failures —
    including deadlocks, whose forensics are serialized as text — come
    back as failed :class:`CampaignOutcome` rows, never as a hung or
    broken pool.
    """
    jobs = list(jobs)
    workers = resolve_workers(workers)
    indexed = list(enumerate(jobs))
    if workers == 1 or len(jobs) <= 1:
        return [_execute(pair) for pair in indexed]
    pool_kwargs = {}
    if max_tasks_per_child is not None:
        # py3.11+; bounded-memory knob for very long campaigns
        pool_kwargs["max_tasks_per_child"] = max_tasks_per_child
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs)), **pool_kwargs) as pool:
        return list(pool.map(_execute, indexed))


def merge_failure_into(template, outcome):
    """Fold a failed outcome into a result-row ``template`` dict.

    Keeps campaign tables rectangular when a worker escapes outside the
    job's own error handling: the row reports the crash with the same
    keys a successful row would carry.
    """
    row = dict(template)
    row["passed"] = False
    row["host_safe"] = False
    row["host_crashed"] = not outcome.deadlocked
    row["host_deadlocked"] = outcome.deadlocked
    row["crash_detail"] = f"{outcome.error_type}: {outcome.error}"
    row["detail"] = row["crash_detail"]
    row["diagnosis"] = outcome.diagnosis
    return row
