"""Experiments E7-E11: storage, PutS bandwidth, DoS throttling, timeout
recovery, and block-size translation."""

from repro.accel.block_shim import BlockShim
from repro.accel.l1_single import AccelL1
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.cpu import Sequencer
from repro.host.system import build_system
from repro.eval.perf import run_one
from repro.testing.fuzzer import run_fuzz_campaign
from repro.testing.random_tester import RandomTester
from repro.workloads.synthetic import PERF_WORKLOADS
from repro.xg.interface import XGVariant


# -- E7: XG storage --------------------------------------------------------------

def analytic_storage_bits(accel_cache_kib, block_size=64, tag_bits=26, open_txns=32):
    """Analytic storage model (Section 2.3.1's ~16kB-tags-for-256kB example)."""
    blocks = accel_cache_kib * 1024 // block_size
    full_state = blocks * (tag_bits + 4)  # tag + state/permission bits
    transactional = open_txns * (tag_bits + 32)
    return {"full_state_bits": full_state, "transactional_bits": transactional}


def run_storage_comparison(cache_sizes_kib=(16, 64, 256, 1024), workload="blocked_decode", scale=1):
    """E7: Full State vs Transactional XG storage.

    Analytic model across accelerator cache sizes plus live high-water
    measurements from a workload run (both variants, MESI host).
    """
    analytic = []
    for size in cache_sizes_kib:
        row = analytic_storage_bits(size)
        row["accel_cache_kib"] = size
        row["full_state_kib"] = row["full_state_bits"] / 8 / 1024
        row["transactional_kib"] = row["transactional_bits"] / 8 / 1024
        analytic.append(row)
    measured = []
    builder = PERF_WORKLOADS(scale=scale)[workload]
    for variant in (XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL):
        config = SystemConfig(
            host=HostProtocol.MESI, org=AccelOrg.XG, xg_variant=variant,
            n_cpus=2, n_accel_cores=2, seed=11,
        )
        _row, system = run_one(config, builder)
        report = system.xg.storage_report()
        report["config"] = config.label
        measured.append(report)
    return {"analytic": analytic, "measured": measured}


# -- E8: PutS bandwidth overhead -----------------------------------------------------

def _shared_read_builder(scale):
    """Workload that actually produces PutS traffic: CPUs and accelerator
    read-share a footprint larger than the (small) accelerator cache, so
    the accelerator holds S copies and constantly replaces them."""
    from repro.workloads.synthetic import WorkloadDriver, graph_walk

    def build(system):
        drivers = []
        for index, seq in enumerate(system.cpu_seqs):
            drivers.append(
                WorkloadDriver(
                    system.sim, seq,
                    graph_walk(0x400000, 48, 200 * scale, seed=100 + index),
                    max_outstanding=2,
                )
            )
        for index, seq in enumerate(system.accel_seqs):
            drivers.append(
                WorkloadDriver(
                    system.sim, seq,
                    graph_walk(0x400000, 48, 300 * scale, seed=index),
                    max_outstanding=4,
                )
            )
        return drivers

    build.__name__ = "shared_read"
    return build


def run_puts_overhead(scale=1, seed=7):
    """E8: unnecessary PutS traffic on the Hammer host (paper: 1-4% of
    XG-to-host bandwidth) and its suppression-register optimization."""
    rows = []
    workloads = dict(PERF_WORKLOADS(scale=scale))
    workloads["shared_read"] = _shared_read_builder(scale)
    for workload_name, builder in workloads.items():
        for suppress in (False, True):
            config = SystemConfig(
                host=HostProtocol.HAMMER, org=AccelOrg.XG,
                xg_variant=XGVariant.FULL_STATE, suppress_puts=suppress,
                n_cpus=2, n_accel_cores=2, seed=seed,
                accel_l1_sets=4, accel_l1_assoc=2,  # pressure -> replacements
            )
            _row, system = run_one(config, builder)
            xg = system.xg
            total = xg.stats.get("xg_to_host_msgs")
            puts = xg.stats.get("xg_to_host.PutS")
            rows.append(
                {
                    "workload": workload_name,
                    "suppress_puts": suppress,
                    "xg_to_host_msgs": total,
                    "puts_msgs": puts,
                    "puts_fraction": puts / total if total else 0.0,
                    "puts_suppressed": xg.stats.get("puts_suppressed"),
                }
            )
    return rows


# -- E9: DoS rate limiting ----------------------------------------------------------------

def run_rate_limit_sweep(
    rates=(None, 64, 16, 4), host=HostProtocol.MESI, seed=5, duration=40_000, period=100
):
    """E9: a flooding accelerator vs CPU progress, across OS rate limits.

    Reports CPU ops completed in a fixed window — the rate limiter should
    restore CPU throughput as the limit tightens (Section 2.5).
    """
    rows = []
    for rate in rates:
        result, system = run_fuzz_campaign(
            host,
            XGVariant.FULL_STATE,
            adversary="flood",
            seed=seed,
            duration=duration,
            cpu_ops=100_000,  # effectively unbounded; the window limits it
            adversary_kwargs={"gap": 2},
            protect_cpu_pages=False,
            rate_limit=None if rate is None else (rate, period),
            host_bandwidth=0.5,  # shared fabric: where the DoS bites
        )
        cpu_latency = 0.0
        cpu_count = 0
        for seq in system.cpu_seqs:
            hist = seq.stats.histogram("op_latency")
            cpu_latency += hist.total
            cpu_count += hist.count
        rows.append(
            {
                "rate_limit": "unlimited" if rate is None else f"{rate}/{period}",
                "cpu_ops_completed": result.cpu_loads_checked + result.cpu_stores_committed,
                "cpu_mean_latency": cpu_latency / cpu_count if cpu_count else 0.0,
                "adversary_requests_admitted": system.xg.rate_limiter.admitted,
                "adversary_requests_throttled": system.xg.rate_limiter.throttled,
                "host_safe": result.host_safe,
            }
        )
    return rows


# -- E11: timeout recovery ------------------------------------------------------------------------

def run_timeout_recovery(timeouts=(1000, 4000, 16000), host=HostProtocol.MESI, seed=3):
    """E11: a deaf accelerator; host requests complete via XG surrogates.

    Reports CPU progress and G2c error counts per timeout setting — CPU
    op latency should track the timeout (hostage time before XG answers
    on the accelerator's behalf).
    """
    rows = []
    for timeout in timeouts:
        result, system = run_fuzz_campaign(
            host,
            XGVariant.FULL_STATE,
            adversary="deaf",
            seed=seed,
            duration=60_000,
            cpu_ops=600,
            accel_timeout=timeout,
            share_pool=True,  # CPUs contend for the deaf accel's blocks
        )
        cpu_latency = 0.0
        cpu_ops = 0
        for seq in system.cpu_seqs:
            hist = seq.stats.histogram("op_latency")
            cpu_latency += hist.total
            cpu_ops += hist.count
        rows.append(
            {
                "timeout": timeout,
                "host_safe": result.host_safe,
                "g2c_errors": result.violations.get("G2C_TIMEOUT", 0),
                "cpu_ops_completed": cpu_ops,
                "cpu_mean_latency": cpu_latency / cpu_ops if cpu_ops else 0.0,
                "cpu_max_latency": max(
                    (seq.stats.histogram("op_latency").max or 0) for seq in system.cpu_seqs
                ),
            }
        )
    return rows


# -- E10: block-size translation ---------------------------------------------------------------------

def build_translation_system(accel_block=256, seed=0, host=HostProtocol.MESI, stress=False):
    """A Crossing Guard system with a wide-block accelerator via BlockShim."""
    config = SystemConfig(
        host=host, org=AccelOrg.XG, xg_variant=XGVariant.FULL_STATE,
        n_cpus=2, n_accel_cores=1, seed=seed,
        randomize_latencies=stress,
        cpu_l1_sets=4 if stress else 64,
        cpu_l1_assoc=2 if stress else 4,
        shared_l2_sets=8 if stress else 256,
        shared_l2_assoc=4 if stress else 8,
        deadlock_threshold=400_000,
        accel_timeout=150_000,
        mem_latency=30 if stress else 100,
    )
    system = build_system(config)
    sim = system.sim
    # Replace the 64B accel L1 with a wide-block L1 behind the shim.
    stock_l1 = system.accel_caches[0]
    stock_l1.sequencers.clear()
    shim = BlockShim(
        sim, "shim", system.accel_net, "xg",
        accel_block_size=accel_block, host_block_size=config.block_size,
    )
    system.accel_net.attach(shim)
    system.xg.attach_accelerator("shim")
    wide_l1 = AccelL1(
        sim, "wide_l1", system.accel_net, "shim",
        num_sets=4 if stress else 32, assoc=2, block_size=accel_block,
    )
    system.accel_net.attach(wide_l1)
    shim.attach_accelerator("wide_l1")
    system.accel_caches = [wide_l1]
    new_seqs = []
    for index, old in enumerate(system.accel_seqs):
        seq = Sequencer(sim, f"wide_accel.{index}")
        seq.attach(wide_l1)
        new_seqs.append(seq)
    system.accel_seqs = new_seqs
    return system, shim


def run_block_translation(accel_blocks=(128, 256), seed=1, ops=2000):
    """E10: correctness + traffic cost of wide accelerator blocks.

    Random checked traffic from CPUs (64B world) and the wide-block
    accelerator over an overlapping address pool; reports the host-side
    message amplification per accelerator op.
    """
    rows = []
    for accel_block in accel_blocks:
        system, shim = build_translation_system(
            accel_block=accel_block, seed=seed, stress=True
        )
        # Enough host blocks to overflow the wide L1 so wide writebacks,
        # probe races, and sibling flushes all occur.
        pool = [0x10000 + 64 * i for i in range(48)]
        tester = RandomTester(
            system.sim, system.sequencers, pool, ops_target=ops, store_fraction=0.4
        )
        tester.run()
        xg = system.xg
        rows.append(
            {
                "accel_block": accel_block,
                "ratio": accel_block // 64,
                "loads_checked": tester.loads_checked,
                "data_errors": 0,
                "wide_fetches": shim.stats.get("wide_fetches"),
                "wide_writebacks": shim.stats.get("wide_writebacks"),
                "xg_to_host_msgs": xg.stats.get("xg_to_host_msgs"),
                "xg_errors": len(system.error_log),
            }
        )
    return rows
