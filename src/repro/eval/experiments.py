"""Experiments E1-E4: Table 1, complexity, stress coverage, fuzz safety."""

import dataclasses

from repro.accel.l1_single import AL1Event, AL1State, AccelL1
from repro.coherence.coverage import collect_coverage
from repro.eval.campaign import CampaignJob, merge_failure_into, run_campaign
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.protocols.hammer.cache import HammerCache
from repro.protocols.hammer.messages import HammerMsg
from repro.protocols.mesi.l1 import MesiL1
from repro.protocols.mesi.messages import MesiMsg
from repro.sim.network import Network, RandomLatency
from repro.sim.simulator import DeadlockError, Simulator
from repro.testing.fuzzer import FuzzResult, run_fuzz_campaign
from repro.testing.random_tester import RandomTester
from repro.xg.interface import AccelMsg, XGVariant


# -- E1: Table 1 -----------------------------------------------------------------

#: The published Table 1 cells: (state, event) -> "action / next state".
PAPER_TABLE1 = {
    ("M", "Load"): "hit",
    ("M", "Store"): "hit",
    ("M", "Replacement"): "issue PutM / B",
    ("M", "Invalidate"): "send Dirty WB / I",
    ("E", "Load"): "hit",
    ("E", "Store"): "hit / M",
    ("E", "Replacement"): "issue PutE / B",
    ("E", "Invalidate"): "send Clean WB / I",
    ("S", "Load"): "hit",
    ("S", "Store"): "issue GetM / B",
    ("S", "Replacement"): "issue PutS / B",
    ("S", "Invalidate"): "send InvAck / I",
    ("I", "Load"): "issue GetS / B",
    ("I", "Store"): "issue GetM / B",
    ("I", "Replacement"): "-",
    ("I", "Invalidate"): "send InvAck",
    ("B", "Load"): "stall",
    ("B", "Store"): "stall",
    ("B", "Replacement"): "stall",
    ("B", "Invalidate"): "send InvAck / B",
    ("B", "DataM"): "/ M",
    ("B", "DataE"): "/ E",
    ("B", "DataS"): "/ S",
    ("B", "WBAck"): "/ I",
}


def run_table1_accel_l1():
    """Reproduce Table 1: the accelerator L1 transition matrix.

    Returns rows of (state, event, paper_cell, implemented) where
    ``implemented`` reflects the actual transition table of
    :class:`~repro.accel.l1_single.AccelL1`.
    """
    sim = Simulator()
    net = Network(sim, RandomLatency(1, 2), ordered=True, name="probe")
    l1 = AccelL1(sim, "probe_l1", net, "xg")
    declared = {
        (state.name, event.name) for (state, event) in l1.possible_transitions()
    }
    stall_states = {"B"}
    rows = []
    for (state, event), paper_cell in sorted(PAPER_TABLE1.items()):
        if paper_cell == "-":
            implemented = "-" if (state, event) not in declared else "UNEXPECTED"
        elif paper_cell == "stall":
            # Stalls are dispatch behavior, not table entries.
            implemented = "stall" if state in stall_states else "MISSING"
        else:
            implemented = "yes" if (state, event) in declared else "MISSING"
        rows.append(
            {"state": state, "event": event, "paper": paper_cell, "implemented": implemented}
        )
    extras = declared - {(s, e) for (s, e) in PAPER_TABLE1 if PAPER_TABLE1[(s, e)] not in ("-",)}
    return {"rows": rows, "extra_transitions": sorted(extras)}


# -- E2: protocol complexity -----------------------------------------------------------

def run_complexity_comparison():
    """Compare accelerator-interface complexity against host protocols.

    Mirrors the paper's Section 2.1/2.4 claim: the accelerator L1 needs
    4 stable states + 1 transient and sees 1 host request / 4 responses,
    versus the host MESI L1's 6 transient states and 4 requests /
    7 responses.
    """
    sim = Simulator()
    net = Network(sim, RandomLatency(1, 2), name="probe")
    accel = AccelL1(sim, "c_accel", net, "xg")
    mesi = MesiL1(sim, "c_mesi", net, "l2")
    hammer = HammerCache(sim, "c_hammer", net, "dir", n_peers=1)

    def states_of(controller):
        return {state for (state, _event) in controller.transitions}

    def summarize(controller, stable_names):
        states = states_of(controller)
        stable = {s for s in states if s.name in stable_names}
        transient = states - stable
        return {
            "stable_states": len(stable),
            "transient_states": len(transient),
            "transitions": len(controller.transitions),
        }

    rows = []
    accel_row = summarize(accel, {"M", "E", "S", "I"})
    accel_row.update(
        controller="accel L1 (XG interface)",
        incoming_requests=1,  # Invalidate
        incoming_responses=4,  # DataS/DataE/DataM/WBAck
        outgoing_requests=5,  # GetS/GetM/PutS/PutE/PutM
    )
    rows.append(accel_row)
    mesi_row = summarize(mesi, {"M", "E", "S", "I"})
    mesi_row.update(
        controller="host MESI L1",
        incoming_requests=4,  # Inv/Fwd_GetS/Fwd_GetM/Recall
        incoming_responses=7,  # DataS/DataE/DataM/InvAck/WBAck/WBNack + acks
        outgoing_requests=6,
    )
    rows.append(mesi_row)
    hammer_row = summarize(hammer, {"M", "O", "E", "S", "I"})
    hammer_row.update(
        controller="host Hammer cache",
        incoming_requests=3,  # Fwd_GetS/Fwd_GetM/Fwd_GetS_Only
        incoming_responses=6,  # PeerAck/PeerData/PeerDataExcl/MemData/WBAck/WBNack
        outgoing_requests=5,
    )
    rows.append(hammer_row)
    rows.append(
        {
            "controller": "interface message kinds",
            "stable_states": "-",
            "transient_states": "-",
            "transitions": "-",
            "incoming_requests": len(AccelMsg),
            "incoming_responses": len(MesiMsg),
            "outgoing_requests": len(HammerMsg),
        }
    )
    return rows


# -- E3: random stress + coverage --------------------------------------------------------------

def stress_configs(seed, small=True, hosts=(HostProtocol.MESI, HostProtocol.HAMMER)):
    """The 12-configuration matrix with tiny caches and random latencies.

    ``hosts`` may include ``HostProtocol.MESIF`` (the Intel-like host this
    reproduction adds) for an 18-configuration sweep.
    """
    shared = dict(
        n_cpus=2,
        n_accel_cores=2,
        cpu_l1_sets=2,
        cpu_l1_assoc=1,
        shared_l2_sets=4,
        shared_l2_assoc=2,
        accel_l1_sets=2,
        accel_l1_assoc=1,
        accel_l2_sets=2,
        accel_l2_assoc=2,
        randomize_latencies=True,
        seed=seed,
        deadlock_threshold=400_000,
        accel_timeout=150_000,
        mem_latency=30,
    )
    configs = []
    for host in hosts:
        configs.append(SystemConfig(host=host, org=AccelOrg.ACCEL_SIDE, **shared))
        configs.append(SystemConfig(host=host, org=AccelOrg.HOST_SIDE, **shared))
        for variant in (XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL):
            for levels in (1, 2):
                configs.append(
                    SystemConfig(
                        host=host, org=AccelOrg.XG, xg_variant=variant,
                        accel_levels=levels, **shared,
                    )
                )
    return configs


def _stress_jobs(seed, num_blocks):
    """(config, tester_kwargs, label_suffix) for one seed's campaigns.

    Beyond the 12-configuration matrix, two special campaigns close
    structural coverage gaps: read-only accelerator pages (GetS_Only /
    Full State retention paths) and heavy L2 pressure (inclusive Recall
    paths).
    """
    blocks = [0x1000 + 64 * i for i in range(num_blocks)]
    all_hosts = (HostProtocol.MESI, HostProtocol.HAMMER, HostProtocol.MESIF)
    jobs = [
        (config, {"block_addrs": blocks}, "")
        for config in stress_configs(seed, hosts=all_hosts)
    ]

    # read-only pages: two extra blocks on their own (read-only) pages
    ro_blocks = [0x20000, 0x21000]
    base = stress_configs(seed, hosts=all_hosts)
    for config in base:
        if config.org is not AccelOrg.XG or config.accel_levels != 1:
            continue
        jobs.append(
            (
                config,
                {
                    "block_addrs": blocks[:3] + ro_blocks,
                    "accel_read_only": set(ro_blocks),
                },
                "+ro",
            )
        )
    # L2 pressure: single-way shared L2 so inclusive Recalls are constant
    for host in (HostProtocol.MESI, HostProtocol.MESIF):
        for config in base:
            if config.host is host and config.org is AccelOrg.XG and config.accel_levels == 1:
                squeezed = dataclasses.replace(
                    config, shared_l2_sets=2, shared_l2_assoc=1
                )
                jobs.append((squeezed, {"block_addrs": blocks}, "+l2press"))
    return jobs


def _build_stress_tester(config, tester_kwargs, ops_per_run):
    """Build one stress system + tester (shared by run and failure replay)."""
    system = build_system(config)
    kwargs = dict(tester_kwargs)
    blocks = kwargs.pop("block_addrs")
    ro_blocks = kwargs.pop("accel_read_only", None)
    if ro_blocks:
        from repro.xg.permissions import PagePermission

        for permissions in system.permissions_list:
            for addr in ro_blocks:
                permissions.grant(addr, PagePermission.READ)
        kwargs["accel_read_only"] = ro_blocks
        kwargs["accel_seq_names"] = {s.name for s in system.accel_seqs}
    tester = RandomTester(
        system.sim, system.sequencers, blocks,
        ops_target=ops_per_run, store_fraction=0.45, **kwargs,
    )
    return system, tester


def _replay_for_diagnosis(config, tester_kwargs, ops_per_run):
    """Re-run a deadlocked job with the trace ring enabled for forensics.

    Campaign jobs run with ``trace_depth=0`` (recording disabled on the
    hot path); determinism means the same seed reproduces the same wedge,
    this time with the last-N message trace attached.
    """
    traced = dataclasses.replace(config, trace_depth=64)
    _system, tester = _build_stress_tester(traced, tester_kwargs, ops_per_run)
    try:
        tester.run()
    except DeadlockError as exc:
        return exc.diagnose()
    except Exception as exc:  # noqa: BLE001 - replay diverging is itself news
        return f"replay raised {type(exc).__name__}: {exc} (expected DeadlockError)"
    return "replay with tracing enabled did not reproduce the deadlock"


def _run_stress_job(config, tester_kwargs, label, seed, ops_per_run,
                    telemetry=False, lineage=False):
    """One (config, seed) stress simulation.

    Returns (result row, coverage, telemetry summary or None). Runs
    worker-side under the campaign executor; everything returned is plain
    picklable data. Failures never escape — a deadlock row carries the
    forensic diagnosis from a traced deterministic replay.

    ``lineage=True`` (with a config built ``lineage=True``) additionally
    ships this run's blame aggregate under ``summary["blame"]`` as a
    plain :meth:`~repro.obs.lineage.BlameMatrix.as_dict` payload.
    """
    system, tester = _build_stress_tester(config, tester_kwargs, ops_per_run)
    obs = None
    if telemetry or lineage:
        from repro.obs import Telemetry

        obs = Telemetry(system.sim, transitions=False)
    outcome = {"config": label, "seed": seed, "passed": True, "detail": ""}
    try:
        tester.run()
        outcome["loads_checked"] = tester.loads_checked
        if system.error_log is not None and len(system.error_log):
            outcome["passed"] = False
            outcome["detail"] = f"{len(system.error_log)} spurious XG errors"
    except DeadlockError as exc:
        outcome["passed"] = False
        outcome["detail"] = f"DeadlockError: {exc}"
        outcome["loads_checked"] = tester.loads_checked
        outcome["diagnosis"] = (
            _replay_for_diagnosis(config, tester_kwargs, ops_per_run)
            if system.sim.trace is None
            else exc.diagnose()
        )
    except Exception as exc:  # noqa: BLE001 - report, don't hide
        outcome["passed"] = False
        outcome["detail"] = f"{type(exc).__name__}: {exc}"
        outcome["loads_checked"] = tester.loads_checked
    coverage = collect_coverage(
        [c for c in system.sim.components if hasattr(c, "coverage")]
    )
    summary = None
    if obs is not None:
        obs.finalize()
        summary = obs.summary()
        if obs.lineage is not None:
            summary["blame"] = obs.blame_matrix(label, seed=seed).as_dict()
    return outcome, coverage, summary


def run_stress_coverage(seeds=range(4), ops_per_run=2000, num_blocks=5, workers=1,
                        telemetry=False, lineage=False):
    """E3: random load/store/check over all 12 configs; coverage report.

    Returns per-config pass counts and per-controller-type coverage
    aggregated across all runs, as the paper's Section 4.1 reports.
    ``workers`` fans the independent (config, seed) simulations out over
    a process pool; results and coverage merge in submission order, so
    any worker count produces byte-identical output.

    ``telemetry=True`` additionally records transaction spans in every
    run and returns a per-configuration :class:`~repro.obs.CoverageMatrix`
    under ``"matrix"`` (coverage heatmap cells + span-latency histograms,
    merged in submission order like everything else). The default result
    stays JSON-serializable.

    ``lineage=True`` enables causal lineage in every run (implies span
    recording) and folds the per-job blame aggregates into one
    :class:`~repro.obs.lineage.BlameMatrix` under ``"blame"`` — an
    order-free integer merge, so any worker count produces byte-identical
    blame output.
    """
    campaign_jobs = []
    for seed in seeds:
        for config, tester_kwargs, suffix in _stress_jobs(seed, num_blocks):
            label = config.label + suffix
            fast = dataclasses.replace(config, trace_depth=0, lineage=lineage)
            campaign_jobs.append(
                CampaignJob(
                    runner=_run_stress_job,
                    args=(fast, tester_kwargs, label, seed, ops_per_run),
                    kwargs={"telemetry": telemetry, "lineage": lineage},
                    label=f"{label}/seed{seed}",
                )
            )
    matrix = None
    if telemetry:
        from repro.obs import CoverageMatrix

        matrix = CoverageMatrix()
    blame = None
    if lineage:
        from repro.obs.lineage import BlameMatrix

        blame = BlameMatrix()
    coverage = {}
    results = []
    forensics = []
    for outcome in run_campaign(campaign_jobs, workers=workers):
        if outcome.ok and outcome.forensics is not None:
            # fabric forensics_all: black boxes kept for successful jobs
            forensics.append({"label": outcome.label,
                              "forensics": outcome.forensics})
        if not outcome.ok:
            # the job's own error capture failed (worker died mid-build):
            # surface it as a failed row rather than losing the run
            results.append(
                merge_failure_into({"config": outcome.label, "seed": None}, outcome)
            )
            continue
        row, job_coverage, telemetry_summary = outcome.value
        if blame is not None and telemetry_summary:
            from repro.obs.lineage import BlameMatrix

            job_blame = telemetry_summary.pop("blame", None)
            if job_blame:
                blame.merge(BlameMatrix.from_dict(job_blame))
        results.append(row)
        for ctype, report in job_coverage.items():
            if ctype in coverage:
                coverage[ctype].merge(report)
            else:
                coverage[ctype] = report
        if matrix is not None:
            matrix.add_run(row["config"], coverage=job_coverage,
                           telemetry_summary=telemetry_summary)
    coverage_rows = [
        {
            "controller": ctype,
            "visited": len(rep.visited_pairs & rep.possible),
            "possible": len(rep.possible),
            "fraction": rep.fraction,
            "missing": sorted(
                f"{getattr(s, 'name', s)}+{getattr(e, 'name', e)}" for (s, e) in rep.missing
            ),
        }
        for ctype, rep in sorted(coverage.items())
    ]
    result = {"runs": results, "coverage": coverage_rows}
    if matrix is not None:
        result["matrix"] = matrix
    if blame is not None:
        result["blame"] = blame
    if forensics:
        result["forensics"] = forensics
    return result


# -- E4: fuzz safety matrix ---------------------------------------------------------------------------

def _run_fuzz_job(host, variant, adversary, seed, duration, cpu_ops, protect):
    """One fuzz campaign, worker-side; returns its (picklable) result row."""
    result, _system = run_fuzz_campaign(
        host,
        variant,
        adversary=adversary,
        seed=seed,
        duration=duration,
        cpu_ops=cpu_ops,
        protect_cpu_pages=protect,
    )
    data = result.as_dict()
    data.update(host=host.name, variant=variant.name, adversary=adversary, seed=seed)
    return data


def run_fuzz_matrix(seeds=range(3), duration=50_000, cpu_ops=1000, workers=1):
    """E4: byzantine accelerators against every host x XG variant.

    The paper's claim: "this fuzz testing never leads to a crash or
    deadlock" — every row must have host_safe=True, and campaigns that
    inject violations must show them reported to the OS. ``workers``
    fans the campaigns out over a process pool (submission-order merge:
    output is identical for any worker count).
    """
    campaign_jobs = []
    for host in (HostProtocol.MESI, HostProtocol.HAMMER, HostProtocol.MESIF):
        for variant in (XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL):
            for adversary in ("fuzz", "deaf", "wrong", "flood"):
                for seed in seeds:
                    protect = adversary in ("fuzz",)
                    campaign_jobs.append(
                        CampaignJob(
                            runner=_run_fuzz_job,
                            args=(host, variant, adversary, seed, duration,
                                  cpu_ops, protect),
                            kwargs={},
                            label=f"{host.name}/{variant.name}/{adversary}/seed{seed}",
                        )
                    )
    rows = []
    for outcome in run_campaign(campaign_jobs, workers=workers):
        if outcome.ok:
            rows.append(outcome.value)
            continue
        host_name, variant_name, adversary, seed_label = outcome.label.split("/")
        template = FuzzResult().as_dict()
        template.update(
            host=host_name,
            variant=variant_name,
            adversary=adversary,
            seed=int(seed_label[4:]) if seed_label[4:].isdigit() else None,
        )
        rows.append(merge_failure_into(template, outcome))
    return rows
