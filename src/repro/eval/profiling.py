"""Engine throughput profiling: events/sec microbenchmarks + campaign timing.

The simulator kernel (event queue, component wakeups, network delivery)
is the inner loop every experiment pays for; a campaign that runs 2x as
many simulations per hour doubles the value of every harness in the
repo. This module measures that kernel directly:

* :func:`run_engine_microbench` — a synthetic workload mix exercising the
  three hot paths (ordered ping-pong delivery, unordered out-of-order
  arrival, wakeup cancel/reschedule churn) with *no* coherence protocol
  on top, reporting raw events/sec;
* :func:`campaign_wallclock` — end-to-end wall-clock of a small stress
  campaign at different ``workers`` settings (the scaling figure);
* :func:`profile_engine` — cProfile attribution for one workload, for
  finding the next hot spot;
* :func:`dispatch_breakdown` — per-controller-type fires/stalls/table
  sizes for a protocol stress run, so dispatch-path wins are attributable;
* :func:`engine_benchmark_report` — the ``BENCH_engine.json``-compatible
  dict the CI perf-smoke job archives.

Events/sec depends on the machine, so reports carry the raw event and
message counts too — those are deterministic for a given seed and can be
compared exactly across engine versions.
"""

import cProfile
import io
import os
import pstats
import time

from repro.sim.component import Component
from repro.sim.message import Message
from repro.sim.network import FixedLatency, Network, RandomLatency
from repro.sim.simulator import Simulator


class _Ponger(Component):
    """One half of an ordered-link ping-pong pair."""

    PORTS = ("inbox",)

    def __init__(self, sim, name, net):
        super().__init__(sim, name)
        self.net = net
        self.peer = None
        self.budget = 0

    def wakeup(self):
        inbox = self.in_ports["inbox"]
        while True:
            msg = inbox.pop(self.sim.tick)
            if msg is None:
                return
            if self.budget > 0:
                self.budget -= 1
                self.net.send(
                    Message(msg.mtype, msg.addr, sender=self.name, dest=self.peer),
                    "inbox",
                )
            msg.release()


class _Sink(Component):
    """Counts arrivals; used by the unordered storm."""

    PORTS = ("inbox",)

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = 0

    def wakeup(self):
        inbox = self.in_ports["inbox"]
        while True:
            msg = inbox.pop(self.sim.tick)
            if msg is None:
                return
            self.received += 1
            msg.release()


def _timed(sim, **run_kwargs):
    start = time.perf_counter()
    sim.run(**run_kwargs)
    elapsed = time.perf_counter() - start
    return elapsed


def bench_ping_pong(pairs=24, rounds=300, seed=0, trace_depth=0):
    """Ordered-network ping-pong: the common deliver/wakeup/reply path."""
    sim = Simulator(seed=seed, trace_depth=trace_depth)
    net = Network(sim, FixedLatency(2), ordered=True, name="pp")
    pongers = []
    for i in range(pairs):
        a = _Ponger(sim, f"a{i}", net)
        b = _Ponger(sim, f"b{i}", net)
        a.peer, b.peer = b.name, a.name
        net.attach(a)
        net.attach(b)
        pongers.append((a, b))
    for i, (a, b) in enumerate(pongers):
        a.budget = rounds
        b.budget = rounds
        net.send(Message("ping", 0x40 * i, sender=a.name, dest=b.name), "inbox")
    elapsed = _timed(sim)
    return {
        "workload": "ping_pong",
        "events": sim._events_fired,
        "messages": sim.stats_for("network.pp").get("messages"),
        "final_tick": sim.tick,
        "seconds": elapsed,
        "events_per_sec": sim._events_fired / elapsed if elapsed else 0.0,
    }


def bench_unordered_storm(sources=16, burst=4, rounds=150, seed=0, trace_depth=0):
    """Random-latency fan-in: exercises out-of-order MessageBuffer inserts."""
    sim = Simulator(seed=seed, trace_depth=trace_depth)
    net = Network(sim, RandomLatency(1, 24), ordered=False, name="storm")
    sink = _Sink(sim, "sink")
    net.attach(sink)

    def emit(idx, remaining):
        for j in range(burst):
            net.send(
                Message("blast", 0x40 * j, sender=f"src{idx}", dest="sink"), "inbox"
            )
        if remaining > 1:
            sim.schedule(3, emit, idx, remaining - 1)

    for idx in range(sources):
        sim.schedule(1 + idx % 3, emit, idx, rounds)
    elapsed = _timed(sim)
    return {
        "workload": "unordered_storm",
        "events": sim._events_fired,
        "messages": sink.received,
        "final_tick": sim.tick,
        "seconds": elapsed,
        "events_per_sec": sim._events_fired / elapsed if elapsed else 0.0,
    }


def bench_timer_churn(timers=64, waves=400, seed=0, trace_depth=0):
    """Cancel/reschedule storms: the EventQueue garbage-collection path.

    Every wave delivers one message per timer component and then re-arms
    each component's wakeup three times with successively earlier ticks —
    the ``request_wakeup`` cancel-and-reschedule pattern rate limiters
    and retry timers hit constantly.
    """
    sim = Simulator(seed=seed, trace_depth=trace_depth)
    net = Network(sim, FixedLatency(1), name="churn")
    sinks = [_Sink(sim, f"timer{i}") for i in range(timers)]
    for sink in sinks:
        net.attach(sink)

    def wave(remaining):
        now = sim.tick
        for i, sink in enumerate(sinks):
            net.send(Message("tick", 0x40 * i, sender="drv", dest=sink.name), "inbox")
            # re-arm three times, each earlier: two cancels per component
            sink.request_wakeup(now + 9)
            sink.request_wakeup(now + 6)
            sink.request_wakeup(now + 3)
        if remaining > 1:
            sim.schedule(4, wave, remaining - 1)

    sim.schedule(1, wave, waves)
    elapsed = _timed(sim)
    return {
        "workload": "timer_churn",
        "events": sim._events_fired,
        "messages": sum(s.received for s in sinks),
        "final_tick": sim.tick,
        "seconds": elapsed,
        "events_per_sec": sim._events_fired / elapsed if elapsed else 0.0,
    }


#: The synthetic mix: every row regenerated by ``run_engine_microbench``.
ENGINE_WORKLOADS = {
    "ping_pong": bench_ping_pong,
    "unordered_storm": bench_unordered_storm,
    "timer_churn": bench_timer_churn,
}


def run_engine_microbench(scale=1, seed=0, trace_depth=0, repeats=3):
    """Run the full mix; keep each workload's best-of-``repeats`` timing.

    ``scale`` multiplies per-workload work (rounds/waves); events/sec is
    total events over total (best-run) seconds, so the aggregate is
    dominated by the workloads that dominate real campaigns.
    """
    scale_kwargs = {
        "ping_pong": {"rounds": 300 * scale},
        "unordered_storm": {"rounds": 150 * scale},
        "timer_churn": {"waves": 400 * scale},
    }
    rows = []
    for name, fn in ENGINE_WORKLOADS.items():
        best = None
        for _ in range(max(1, repeats)):
            row = fn(seed=seed, trace_depth=trace_depth, **scale_kwargs[name])
            if best is None or row["seconds"] < best["seconds"]:
                best = row
        rows.append(best)
    total_events = sum(r["events"] for r in rows)
    total_seconds = sum(r["seconds"] for r in rows)
    return {
        "workloads": rows,
        "events": total_events,
        "seconds": total_seconds,
        "events_per_sec": total_events / total_seconds if total_seconds else 0.0,
    }


def alloc_benchmark_report(seed=0, warmup_runs=1):
    """Steady-state allocation profile of the engine mix (``BENCH_alloc.json``).

    For each synthetic workload this runs ``warmup_runs`` throwaway
    iterations first — priming the message pool, route caches, counter
    keys, and string interning — then measures one steady-state run two
    ways:

    * **net allocated blocks** (``sys.getallocatedblocks`` delta across
      the run, garbage-collected on both sides): what the run *retained*.
      With the pooled message/event kernel this is ~0 per event — the
      headline number the perf gate story rests on;
    * **tracemalloc** net/peak bytes in a second pass (tracemalloc skews
      block counts, so it never overlaps the block measurement);
    * **gen-0 GC collections** during the run: transient container churn
      (tuples, argument frames) that never survives a collection.
    """
    import gc
    import sys
    import tracemalloc

    from repro.sim.message import pool_stats

    workloads = {}
    for name, fn in ENGINE_WORKLOADS.items():
        for _ in range(max(1, warmup_runs)):
            fn(seed=seed)
        gc.collect()
        gen0_before = gc.get_stats()[0]["collections"]
        blocks_before = sys.getallocatedblocks()
        row = fn(seed=seed)
        gen0_during = gc.get_stats()[0]["collections"] - gen0_before
        events = row["events"]
        messages = row["messages"]
        del row  # drop the report dict before the closing measurement
        gc.collect()
        net_blocks = sys.getallocatedblocks() - blocks_before

        tracemalloc.start()
        traced_before, _ = tracemalloc.get_traced_memory()
        if hasattr(tracemalloc, "reset_peak"):
            tracemalloc.reset_peak()
        fn(seed=seed)
        traced_after, traced_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        workloads[name] = {
            "events": events,
            "messages": messages,
            "net_blocks": net_blocks,
            "net_blocks_per_event": net_blocks / events if events else 0.0,
            "gc_gen0_collections": gen0_during,
            "traced_net_bytes": traced_after - traced_before,
            "traced_peak_bytes": traced_peak,
        }
    worst = max(
        abs(w["net_blocks_per_event"]) for w in workloads.values()
    )
    return {
        "bench": "alloc_steady_state",
        "unit": "net_blocks_per_event",
        "seed": seed,
        "warmup_runs": warmup_runs,
        "workloads": workloads,
        "worst_net_blocks_per_event": worst,
        "pool": pool_stats(),
    }


def campaign_wallclock(workers_list=(1, None), seeds=range(1), ops_per_run=400,
                       num_blocks=3):
    """Wall-clock one small stress campaign per ``workers`` setting.

    ``None`` in ``workers_list`` means ``os.cpu_count()``. Returns rows of
    {workers, seconds, runs, failures, speedup_vs_serial}; also asserts
    nothing about correctness — the equivalence tests own that.
    """
    from repro.eval.experiments import run_stress_coverage

    rows = []
    serial_seconds = None
    for workers in workers_list:
        resolved = workers if workers is not None else (os.cpu_count() or 1)
        start = time.perf_counter()
        result = run_stress_coverage(
            seeds=seeds, ops_per_run=ops_per_run, num_blocks=num_blocks,
            workers=resolved,
        )
        elapsed = time.perf_counter() - start
        if resolved == 1 and serial_seconds is None:
            serial_seconds = elapsed
        rows.append(
            {
                "workers": resolved,
                "seconds": elapsed,
                "runs": len(result["runs"]),
                "failures": sum(1 for r in result["runs"] if not r["passed"]),
            }
        )
    for row in rows:
        row["speedup_vs_serial"] = (
            serial_seconds / row["seconds"] if serial_seconds and row["seconds"] else None
        )
    return rows


def bench_xg_stress(mode="default", seed=0, ops=1200, repeats=3):
    """Protocol-path throughput: one small stress run through XG, timed.

    Unlike the synthetic engine mix, this pays the full coherence stack —
    MESI L1/L2, Crossing Guard, accelerator caches — so it is where
    telemetry hook overhead would actually show. ``mode``:

    * ``"default"``     — metrics on, no telemetry hub (how tests run);
    * ``"metrics_off"`` — :class:`NullStats` everywhere (campaign mode);
    * ``"traced"``      — a :class:`~repro.obs.Telemetry` hub attached,
      spans + transitions recorded (the `repro trace` path);
    * ``"fabric"``      — campaign telemetry fabric attached in-process
      (emitter + progress monitor + collector, the ``--live`` path);
    * ``"lineage"``     — causal lineage + span recording on (the
      ``repro blame`` path: every send/fire/stall books a cause record).
    """
    from contextlib import ExitStack

    from repro.host.config import AccelOrg, HostProtocol, SystemConfig
    from repro.host.system import build_system
    from repro.testing.random_tester import RandomTester

    best = None
    for _ in range(max(1, repeats)):
        config = SystemConfig(
            host=HostProtocol.MESI,
            org=AccelOrg.XG,
            n_cpus=2,
            n_accel_cores=2,
            cpu_l1_sets=2,
            cpu_l1_assoc=1,
            shared_l2_sets=4,
            shared_l2_assoc=2,
            accel_l1_sets=2,
            accel_l1_assoc=1,
            randomize_latencies=True,
            seed=seed,
            deadlock_threshold=400_000,
            accel_timeout=150_000,
            mem_latency=30,
            trace_depth=0,
            metrics=mode != "metrics_off",
            lineage=mode == "lineage",
        )
        with ExitStack() as stack:
            if mode == "fabric":
                # the progress hook must be live before build_system — the
                # Simulator picks it up at construction
                from repro.obs.fabric import FabricCollector, inproc_session

                collector = FabricCollector(renderer=None)
                stack.enter_context(inproc_session(collector, label="bench"))
            system = build_system(config)
            if mode == "traced":
                from repro.obs import Telemetry

                Telemetry(system.sim)
            elif mode == "lineage":
                # spans only — transition recording would drown the
                # lineage cost being measured
                from repro.obs import Telemetry

                Telemetry(system.sim, transitions=False)
            blocks = [0x1000 + 64 * i for i in range(6)]
            tester = RandomTester(
                system.sim, system.sequencers, blocks,
                ops_target=ops, store_fraction=0.45,
            )
            start = time.perf_counter()
            tester.run()
            elapsed = time.perf_counter() - start
        row = {
            "workload": "xg_stress",
            "mode": mode,
            "events": system.sim._events_fired,
            "final_tick": system.sim.tick,
            "seconds": elapsed,
            "events_per_sec": system.sim._events_fired / elapsed if elapsed else 0.0,
        }
        if best is None or row["seconds"] < best["seconds"]:
            best = row
    return best


def dispatch_breakdown(host=None, seed=0, ops=1200):
    """Per-controller dispatch accounting for one XG stress run.

    Attributes the protocol-path work to controller types: how many
    compiled table entries each type carries, how many transitions fired
    through the dispatch table, and how often messages stalled (the
    indexed stall-queue path). Run under both dispatch modes (see
    :func:`repro.coherence.controller.dispatch_mode`) the ``fires`` and
    ``stalls`` columns are identical — only ``seconds`` moves, which is
    what makes the events/sec win attributable to dispatch itself.
    """
    from repro.host.config import AccelOrg, HostProtocol, SystemConfig
    from repro.host.system import build_system
    from repro.coherence.controller import CoherenceController
    from repro.testing.random_tester import RandomTester

    config = SystemConfig(
        host=host or HostProtocol.MESI,
        org=AccelOrg.XG,
        n_cpus=2,
        n_accel_cores=2,
        cpu_l1_sets=2,
        cpu_l1_assoc=1,
        shared_l2_sets=4,
        shared_l2_assoc=2,
        accel_l1_sets=2,
        accel_l1_assoc=1,
        randomize_latencies=True,
        seed=seed,
        deadlock_threshold=400_000,
        accel_timeout=150_000,
        mem_latency=30,
        trace_depth=0,
    )
    system = build_system(config)
    blocks = [0x1000 + 64 * i for i in range(6)]
    tester = RandomTester(
        system.sim, system.sequencers, blocks,
        ops_target=ops, store_fraction=0.45,
    )
    start = time.perf_counter()
    tester.run()
    elapsed = time.perf_counter() - start

    by_type = {}
    for ctrl in system.controllers():
        row = by_type.setdefault(
            ctrl.CONTROLLER_TYPE,
            {"controllers": 0, "table_entries": 0, "fires": 0, "stalls": 0},
        )
        row["controllers"] += 1
        row["table_entries"] += len(ctrl.transitions)
        row["fires"] += sum(ctrl.coverage.values())
        row["stalls"] += ctrl.stats.get("stalls")
    total_fires = sum(r["fires"] for r in by_type.values())
    return {
        "host": config.host.name.lower(),
        "dispatch_mode": CoherenceController.DISPATCH_MODE,
        "seed": seed,
        "ops": ops,
        "events": system.sim._events_fired,
        "final_tick": system.sim.tick,
        "seconds": elapsed,
        "events_per_sec": system.sim._events_fired / elapsed if elapsed else 0.0,
        "fires_total": total_fires,
        "controllers": {
            ctype: dict(
                row,
                fires_pct=(100.0 * row["fires"] / total_fires
                           if total_fires else 0.0),
            )
            for ctype, row in sorted(by_type.items())
        },
    }


def obs_overhead_report(scale=1, seed=0, repeats=3, stress_ops=1200):
    """The ``BENCH_obs.json`` payload: telemetry cost accounting.

    ``engine`` is the synthetic mix with telemetry off — directly
    comparable to ``BENCH_engine.json`` across versions (the "telemetry
    must cost nothing when off" acceptance number). ``xg_stress`` runs
    the full protocol stack in all three modes and reports the relative
    overheads; event counts are deterministic per seed, so mode rows are
    comparable exactly.
    """
    engine = run_engine_microbench(scale=scale, seed=seed, repeats=repeats)
    modes = {}
    for mode in ("metrics_off", "default", "traced", "fabric", "lineage"):
        modes[mode] = bench_xg_stress(mode=mode, seed=seed, ops=stress_ops,
                                      repeats=repeats)
    default_eps = modes["default"]["events_per_sec"]
    off_eps = modes["metrics_off"]["events_per_sec"]
    traced_eps = modes["traced"]["events_per_sec"]
    fabric_eps = modes["fabric"]["events_per_sec"]
    lineage_eps = modes["lineage"]["events_per_sec"]
    return {
        "bench": "obs_overhead",
        "unit": "events_per_sec",
        "scale": scale,
        "seed": seed,
        "engine_events_per_sec": engine["events_per_sec"],
        "engine": {
            r["workload"]: {
                "events": r["events"],
                "seconds": r["seconds"],
                "events_per_sec": r["events_per_sec"],
            }
            for r in engine["workloads"]
        },
        "xg_stress": modes,
        "overhead_pct": {
            # metrics accounting cost relative to the all-no-op mode
            "metrics_vs_off": (
                100.0 * (off_eps - default_eps) / off_eps if off_eps else 0.0
            ),
            # full span/transition recording relative to metrics-on
            "traced_vs_default": (
                100.0 * (default_eps - traced_eps) / default_eps
                if default_eps else 0.0
            ),
            # campaign fabric (emitter + progress monitor) relative to
            # metrics-on — the ≤2% budget bench_obs_overhead.py gates
            "fabric_vs_default": (
                100.0 * (default_eps - fabric_eps) / default_eps
                if default_eps else 0.0
            ),
            # causal lineage + span recording relative to metrics-on —
            # the ≤3% budget bench_obs_overhead.py gates
            "lineage_vs_default": (
                100.0 * (default_eps - lineage_eps) / default_eps
                if default_eps else 0.0
            ),
        },
    }


def profile_engine(workload="ping_pong", scale=1, seed=0, top=15):
    """cProfile one workload; returns (text report, total events)."""
    fn = ENGINE_WORKLOADS[workload]
    profiler = cProfile.Profile()
    profiler.enable()
    row = fn(seed=seed)
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    return buf.getvalue(), row["events"]


def engine_benchmark_report(scale=1, seed=0, include_campaign=True,
                            workers=None, repeats=3, include_dispatch=True):
    """The ``BENCH_engine.json`` payload: microbench mix + campaign scaling
    + (by default) the per-controller dispatch breakdown."""
    micro = run_engine_microbench(scale=scale, seed=seed, repeats=repeats)
    report = {
        "bench": "engine_throughput",
        "unit": "events_per_sec",
        "scale": scale,
        "seed": seed,
        "events_per_sec": micro["events_per_sec"],
        "events": micro["events"],
        "seconds": micro["seconds"],
        "workloads": {
            r["workload"]: {
                "events": r["events"],
                "messages": r["messages"],
                "final_tick": r["final_tick"],
                "seconds": r["seconds"],
                "events_per_sec": r["events_per_sec"],
            }
            for r in micro["workloads"]
        },
    }
    if include_campaign:
        resolved = workers if workers is not None else min(4, os.cpu_count() or 1)
        # on a single-core host the parallel leg would just repeat serial
        workers_list = (1, resolved) if resolved > 1 else (1,)
        rows = campaign_wallclock(workers_list=workers_list)
        report["campaign"] = {
            "rows": rows,
            "parallel_workers": resolved,
            "speedup": rows[-1]["speedup_vs_serial"],
        }
    if include_dispatch:
        report["dispatch"] = dispatch_breakdown(seed=seed)
    return report
