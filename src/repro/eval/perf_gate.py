"""Bench regression gate: compare a BENCH_engine.json against a baseline.

Wall-clock events/sec on shared CI runners is noisy, so the gate has two
kinds of teeth, tuned differently:

* **events/sec** — compared with a *tolerance band* (default 30% — wide
  enough that host frequency scaling does not flap the gate, narrow
  enough that a real engine regression, which historically shows up as
  2x+, cannot hide);
* **event counts** — compared *exactly*. The synthetic mix is seeded and
  deterministic: a drift in ``events`` or ``final_tick`` means the
  engine's behavior changed, not just its speed, and no band excuses it.

``python -m repro bench --baseline benchmarks/baseline_engine.json``
runs the gate after the measurement; CI archives the comparison JSON.
Refresh the committed baseline deliberately (same flag plus ``--out``)
when an intentional engine change moves the numbers.
"""

import json


#: Default fractional slowdown tolerated on events/sec metrics.
DEFAULT_TOLERANCE = 0.30

#: Deterministic per-workload fields that must match the baseline exactly.
EXACT_FIELDS = ("events", "final_tick")


def load_report(path):
    with open(path) as fh:
        return json.load(fh)


def compare_reports(current, baseline, tolerance=DEFAULT_TOLERANCE):
    """Gate ``current`` against ``baseline``; returns the comparison dict.

    ``passed`` is False when any events/sec metric falls below
    ``(1 - tolerance) * baseline`` or any deterministic count drifts.
    Speedups never fail the gate (they update the story, not break it).
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    rows = []
    failures = []

    def check_rate(metric, cur, base):
        ratio = (cur / base) if base else None
        ok = ratio is None or ratio >= 1.0 - tolerance
        rows.append({
            "metric": metric,
            "current": cur,
            "baseline": base,
            "ratio": ratio,
            "ok": ok,
        })
        if not ok:
            failures.append(metric)

    check_rate("events_per_sec", current["events_per_sec"],
               baseline["events_per_sec"])
    base_workloads = baseline.get("workloads", {})
    cur_workloads = current.get("workloads", {})
    for name in sorted(base_workloads):
        if name not in cur_workloads:
            rows.append({"metric": f"{name}.events_per_sec", "current": None,
                         "baseline": base_workloads[name]["events_per_sec"],
                         "ratio": None, "ok": False})
            failures.append(f"{name}: workload missing from current report")
            continue
        check_rate(
            f"{name}.events_per_sec",
            cur_workloads[name]["events_per_sec"],
            base_workloads[name]["events_per_sec"],
        )

    exact_mismatches = []
    for name in sorted(base_workloads):
        cur = cur_workloads.get(name)
        if cur is None:
            continue
        for field in EXACT_FIELDS:
            if field in base_workloads[name] and field in cur \
                    and cur[field] != base_workloads[name][field]:
                detail = {
                    "workload": name,
                    "field": field,
                    "current": cur[field],
                    "baseline": base_workloads[name][field],
                }
                exact_mismatches.append(detail)
                failures.append(
                    f"{name}.{field}: {cur[field]} != baseline "
                    f"{base_workloads[name][field]} (deterministic drift)"
                )

    return {
        "gate": "engine_bench",
        "tolerance": tolerance,
        "rows": rows,
        "exact_mismatches": exact_mismatches,
        "failures": failures,
        "passed": not failures,
    }


def write_comparison(comparison, path):
    with open(path, "w") as fh:
        json.dump(comparison, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_comparison(comparison):
    """Human-readable gate summary (one line per metric)."""
    lines = [
        f"perf gate (tolerance {comparison['tolerance']:.0%} on events/sec, "
        f"exact on deterministic counts):"
    ]
    for row in comparison["rows"]:
        if row["ratio"] is None:
            lines.append(f"  {row['metric']}: MISSING")
            continue
        verdict = "ok" if row["ok"] else "REGRESSION"
        lines.append(
            f"  {row['metric']}: {row['current']:,.0f} vs baseline "
            f"{row['baseline']:,.0f} ({row['ratio']:.2f}x) {verdict}"
        )
    for miss in comparison["exact_mismatches"]:
        lines.append(
            f"  {miss['workload']}.{miss['field']}: {miss['current']} != "
            f"{miss['baseline']} DETERMINISTIC DRIFT"
        )
    lines.append("PASSED" if comparison["passed"] else "FAILED")
    return "\n".join(lines)
