"""Plain-text table formatting for experiment output."""


def format_table(headers, rows, title=None):
    """Render an aligned text table."""
    columns = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in columns) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(columns[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in columns[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_error_log(log, limit=15):
    """Render an :class:`~repro.xg.errors.XGErrorLog` as an aligned table.

    Built on the log's machine-readable ``as_dict()`` records — the same
    payload an OS driver would consume — showing the newest ``limit``.
    """
    report = log.as_dict()
    records = report["errors"][-limit:]
    skipped = report["count"] - len(records)
    title = (
        f"OS error log: {report['count']} records, "
        f"accel_disabled={report['accel_disabled']}"
        + (f" (showing last {len(records)})" if skipped > 0 else "")
    )
    rows = [
        (
            r["tick"],
            r["guarantee"],
            f"{r['addr']:#x}" if isinstance(r["addr"], int) else r["addr"],
            r["accel"] or "-",
            r["description"],
        )
        for r in records
    ]
    return format_table(["tick", "guarantee", "addr", "accel", "description"], rows,
                        title=title)


#: Containment outcomes worst-first; a matrix cell shows the worst
#: outcome across its seeds. Mirrors repro.testing.rogue (kept literal
#: here so the formatter stays import-free).
_CONTAINMENT_ORDER = ("escaped", "quarantined", "throttled", "timed_out", "absorbed")


def format_rogue_matrix(rows):
    """Pivot rogue campaign rows into a plan x host/variant containment matrix.

    Each cell is the *worst* containment outcome any seed of that
    (plan, host, variant) cell reached, ``escaped`` being worst — the
    outcome a sweep must never show.
    """

    def severity(outcome):
        try:
            return _CONTAINMENT_ORDER.index(outcome)
        except ValueError:
            return 0  # unknown reads as worst

    columns = []
    plans = []
    cells = {}
    for row in rows:
        column = f"{row['host'].lower()}/{row['variant'].lower()}"
        if column not in columns:
            columns.append(column)
        plan = row["plan"]
        if plan not in plans:
            plans.append(plan)
        outcome = row.get("containment") or "escaped"
        key = (plan, column)
        if key not in cells or severity(outcome) < severity(cells[key]):
            cells[key] = outcome
    table_rows = [
        [plan] + [cells.get((plan, column), "-") for column in columns]
        for plan in plans
    ]
    escaped = sum(1 for row in rows if (row.get("containment") or "escaped") == "escaped")
    title = f"rogue containment matrix ({len(rows)} campaigns, {escaped} escaped)"
    return format_table(["plan"] + columns, table_rows, title=title)


def normalize_rows(rows, key, baseline_label, label_key="config"):
    """Add ``<key>_norm`` = value / baseline's value to each row dict."""
    baseline = None
    for row in rows:
        if row[label_key] == baseline_label:
            baseline = row[key]
            break
    if not baseline:
        raise ValueError(f"no baseline row {baseline_label!r}")
    for row in rows:
        row[f"{key}_norm"] = row[key] / baseline
    return rows
