"""Plain-text table formatting and campaign dashboard output."""

import glob
import json
import os


def format_table(headers, rows, title=None):
    """Render an aligned text table."""
    columns = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in columns) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(columns[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in columns[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_error_log(log, limit=15):
    """Render an :class:`~repro.xg.errors.XGErrorLog` as an aligned table.

    Built on the log's machine-readable ``as_dict()`` records — the same
    payload an OS driver would consume — showing the newest ``limit``.
    """
    report = log.as_dict()
    records = report["errors"][-limit:]
    skipped = report["count"] - len(records)
    title = (
        f"OS error log: {report['count']} records, "
        f"accel_disabled={report['accel_disabled']}"
        + (f" (showing last {len(records)})" if skipped > 0 else "")
    )
    rows = [
        (
            r["tick"],
            r["guarantee"],
            f"{r['addr']:#x}" if isinstance(r["addr"], int) else r["addr"],
            r["accel"] or "-",
            r["description"],
        )
        for r in records
    ]
    return format_table(["tick", "guarantee", "addr", "accel", "description"], rows,
                        title=title)


#: Containment outcomes worst-first; a matrix cell shows the worst
#: outcome across its seeds. Mirrors repro.testing.rogue (kept literal
#: here so the formatter stays import-free).
_CONTAINMENT_ORDER = ("escaped", "quarantined", "throttled", "timed_out", "absorbed")


def format_rogue_matrix(rows):
    """Pivot rogue campaign rows into a plan x host/variant containment matrix.

    Each cell is the *worst* containment outcome any seed of that
    (plan, host, variant) cell reached, ``escaped`` being worst — the
    outcome a sweep must never show.
    """

    def severity(outcome):
        try:
            return _CONTAINMENT_ORDER.index(outcome)
        except ValueError:
            return 0  # unknown reads as worst

    columns = []
    plans = []
    cells = {}
    for row in rows:
        column = f"{row['host'].lower()}/{row['variant'].lower()}"
        if column not in columns:
            columns.append(column)
        plan = row["plan"]
        if plan not in plans:
            plans.append(plan)
        outcome = row.get("containment") or "escaped"
        key = (plan, column)
        if key not in cells or severity(outcome) < severity(cells[key]):
            cells[key] = outcome
    table_rows = [
        [plan] + [cells.get((plan, column), "-") for column in columns]
        for plan in plans
    ]
    escaped = sum(1 for row in rows if (row.get("containment") or "escaped") == "escaped")
    title = f"rogue containment matrix ({len(rows)} campaigns, {escaped} escaped)"
    return format_table(["plan"] + columns, table_rows, title=title)


def format_fabric_summary(summary):
    """Render a :meth:`~repro.obs.fabric.FabricCollector.summary` as text.

    Shows campaign totals, per-worker throughput/liveness, and latency
    percentiles from the merged sketches — the after-the-fact view of
    what ``--live`` showed while the campaign ran.
    """
    from repro.obs.sketch import LatencySketch

    lines = [
        "campaign fabric summary",
        f"  jobs: {summary['jobs_done']}/{summary['jobs_total']} done, "
        f"{summary['jobs_failed']} failed, {summary['jobs_lost']} lost",
        f"  frames: {summary['frames_seen']} collected, "
        f"{summary['frames_dropped']} dropped worker-side",
        f"  coverage visited: {summary['coverage_visited']}",
        f"  elapsed: {summary['elapsed']:.1f}s",
    ]
    workers = summary.get("workers", [])
    if workers:
        rows = [
            [
                f"w{w['id']}",
                "STALLED" if w["stalled"] else "live",
                w["jobs_done"],
                f"{w['events_per_sec']:.0f}",
                f"{w['heartbeat_age']:.1f}s",
                w["dropped"],
            ]
            for w in workers
        ]
        lines.append("")
        lines.append(format_table(
            ["worker", "state", "jobs", "ev/s", "hb age", "dropped"], rows,
            title="workers"))
    sketches = summary.get("sketches", {})
    if sketches:
        rows = []
        for name in sorted(sketches):
            sketch = LatencySketch.from_dict(sketches[name])
            if not sketch.count:
                continue
            rows.append([
                name, sketch.count, f"{sketch.mean:.1f}",
                f"{sketch.percentile(0.5):.1f}",
                f"{sketch.percentile(0.9):.1f}",
                f"{sketch.percentile(0.99):.1f}",
                f"{sketch.max:.1f}" if sketch.max is not None else "-",
            ])
        if rows:
            lines.append("")
            lines.append(format_table(
                ["sketch", "count", "mean", "p50", "p90", "p99", "max"], rows,
                title="latency sketches (job_ms in milliseconds, "
                      "span.* in ticks)"))
    return "\n".join(lines)


def build_campaign_dashboard(summary, bench_dir="."):
    """The ``campaign_dash.json`` payload: fabric summary + bench history.

    Folds any ``BENCH_*.json`` files in ``bench_dir`` in alongside the
    fabric summary, so one artifact answers both "what did the campaign
    do" and "what did this version's benchmarks say" — the CI perf-smoke
    job archives it next to the BENCH files it summarizes.
    """
    bench = {}
    for path in sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json"))):
        name = os.path.splitext(os.path.basename(path))[0]
        try:
            with open(path) as fh:
                bench[name] = json.load(fh)
        except (OSError, ValueError) as exc:
            bench[name] = {"error": f"unreadable: {exc}"}
    return {
        "schema": "repro.campaign_dash/1",
        "fabric": summary,
        "bench": bench,
    }


def write_campaign_dashboard(path, summary, bench_dir="."):
    """Write the dashboard JSON; returns the payload."""
    payload = build_campaign_dashboard(summary, bench_dir=bench_dir)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def normalize_rows(rows, key, baseline_label, label_key="config"):
    """Add ``<key>_norm`` = value / baseline's value to each row dict."""
    baseline = None
    for row in rows:
        if row[label_key] == baseline_label:
            baseline = row[key]
            break
    if not baseline:
        raise ValueError(f"no baseline row {baseline_label!r}")
    for row in rows:
        row[f"{key}_norm"] = row[key] / baseline
    return rows
