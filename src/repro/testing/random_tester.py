"""Random load/store/check stress tester.

Reimplements the structure of the gem5 Ruby random tester the paper cites
[33]: every sequencer issues a rapid stream of loads and stores to a small
pool of addresses (so caches thrash and transactions race), and every load
is checked against the set of values it could legally observe.

Legality tracking: per (block, offset) we keep the last *committed* value
plus the value of the single in-flight store, if any. A load snapshots the
acceptable set when issued; any store that commits while the load is in
flight adds its value to the snapshot. On completion the observed byte
must be in the set — otherwise the protocol broke the data-value
invariant and :class:`DataCheckError` is raised.

Stores to one location are serialized (one in flight globally per
location), which keeps the acceptable sets exact while still racing
stores against loads, invalidations, writebacks, and replacements.
"""


class DataCheckError(AssertionError):
    """A load observed a value no interleaving could legally produce."""


class _Location:
    """Per-(block, offset) expected-value state."""

    __slots__ = ("committed", "pending_value", "open_loads")

    def __init__(self):
        self.committed = 0  # memory starts zeroed
        self.pending_value = None
        self.open_loads = []

    @property
    def store_in_flight(self):
        return self.pending_value is not None


class _OpenLoad:
    __slots__ = ("acceptable",)

    def __init__(self, acceptable):
        self.acceptable = acceptable


class RandomTester:
    """Drives a set of sequencers with checked random traffic.

    Args:
        sim: the simulator.
        sequencers: sequencers to drive (one per core / accel core).
        block_addrs: pool of block base addresses to hammer.
        num_offsets: distinct byte offsets per block to use.
        store_fraction: probability an op is a store.
        max_think: max random delay between an op completing and the
            next being issued by that sequencer.
        ops_target: total ops to issue across all sequencers.
    """

    def __init__(
        self,
        sim,
        sequencers,
        block_addrs,
        num_offsets=2,
        store_fraction=0.4,
        max_think=20,
        ops_target=1000,
        check_data=True,
        accel_read_only=(),
        accel_seq_names=(),
        unchecked_blocks=(),
    ):
        # check_data=False turns off value checking for pools a misbehaving
        # accelerator may legally corrupt (paper Section 2.2.1): only
        # liveness/latency are measured there.
        self.check_data = check_data
        # Blocks the accelerator writes with values the tester cannot
        # model (e.g. contested blocks under payload-corrupting link
        # faults): loads there still count toward liveness but skip the
        # value assertion.
        self.unchecked_blocks = set(unchecked_blocks)
        # Blocks the accelerator may only read (its pages are read-only):
        # accel sequencers issue loads there; CPUs still store, which
        # exercises XG's GetS_Only / retained-grant machinery under stress.
        self.accel_read_only = set(accel_read_only)
        self.accel_seq_names = set(accel_seq_names)
        self.sim = sim
        self.sequencers = list(sequencers)
        self.block_addrs = list(block_addrs)
        self.num_offsets = num_offsets
        self.store_fraction = store_fraction
        self.max_think = max_think
        self.ops_target = ops_target
        self.ops_issued = 0
        self.loads_checked = 0
        self.loads_value_checked = 0
        self.stores_committed = 0
        self._locations = {}
        self._next_value = 1

    # -- lifecycle ------------------------------------------------------------

    def start(self):
        """Prime every sequencer with its first op."""
        for sequencer in self.sequencers:
            self.sim.schedule(self.sim.rng.randint(0, self.max_think), self._issue, sequencer)

    def stop(self):
        """Stop issuing new ops (outstanding ones still complete)."""
        self.ops_target = self.ops_issued

    def run(self, max_ticks=50_000_000):
        """Start, then run the simulator until traffic drains."""
        self.start()
        reason = self.sim.run(max_ticks=max_ticks)
        if reason != "idle":
            raise RuntimeError(f"stress test did not drain: {reason}")
        for sequencer in self.sequencers:
            if not sequencer.drained():
                raise RuntimeError(f"{sequencer.name} still has outstanding ops")
        return self

    # -- op generation -----------------------------------------------------------

    def _location(self, block, offset):
        key = (block, offset)
        loc = self._locations.get(key)
        if loc is None:
            loc = _Location()
            self._locations[key] = loc
        return loc

    def _issue(self, sequencer):
        if self.ops_issued >= self.ops_target:
            return
        if not sequencer.can_issue():
            # Sequencer saturated; try again shortly.
            self.sim.schedule(self.max_think + 1, self._issue, sequencer)
            return
        rng = self.sim.rng
        block = rng.choice(self.block_addrs)
        offset = rng.randrange(self.num_offsets)
        addr = block + offset
        loc = self._location(block, offset)
        want_store = rng.random() < self.store_fraction
        if (
            want_store
            and block in self.accel_read_only
            and sequencer.name in self.accel_seq_names
        ):
            want_store = False  # the accelerator may not write this page
        if want_store and not loc.store_in_flight:
            value = self._next_value
            self._next_value = (self._next_value % 0xFF) + 1
            loc.pending_value = value
            # Any load currently in flight overlaps this store in time and
            # may legally observe it once it is applied at the coherence
            # point (even before the store's own completion fires).
            for open_load in loc.open_loads:
                open_load.acceptable.add(value)
            sequencer.store(addr, value, self._make_store_done(loc))
        else:
            open_load = _OpenLoad(acceptable={loc.committed})
            if loc.store_in_flight:
                open_load.acceptable.add(loc.pending_value)
            loc.open_loads.append(open_load)
            sequencer.load(addr, self._make_load_done(loc, open_load, offset))
        self.ops_issued += 1
        # Keep the pipe full: schedule the next op after a random think time.
        self.sim.schedule(rng.randint(0, self.max_think), self._issue, sequencer)

    # -- completion checking --------------------------------------------------------

    def _make_store_done(self, loc):
        def on_done(msg, data):
            loc.committed = loc.pending_value
            loc.pending_value = None
            self.stores_committed += 1
            for open_load in loc.open_loads:
                open_load.acceptable.add(loc.committed)

        return on_done

    def _make_load_done(self, loc, open_load, offset):
        def on_done(msg, data):
            loc.open_loads.remove(open_load)
            # The completing cache returns its own block (which may be
            # wider than the tester's 64B view); index by full address.
            observed = data.read_byte(msg.addr % data.size)
            if self.check_data and (msg.addr - offset) not in self.unchecked_blocks:
                if observed not in open_load.acceptable:
                    raise DataCheckError(
                        f"addr {msg.addr:#x}: loaded {observed}, acceptable "
                        f"{sorted(open_load.acceptable)} (tick {self.sim.tick})"
                    )
                self.loads_value_checked += 1
            self.loads_checked += 1

        return on_done

    # -- reporting -------------------------------------------------------------------

    def summary(self):
        return {
            "ops_issued": self.ops_issued,
            "loads_checked": self.loads_checked,
            "loads_value_checked": self.loads_value_checked,
            "stores_committed": self.stores_committed,
            "final_tick": self.sim.tick,
        }
