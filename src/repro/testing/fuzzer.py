"""Fuzz / safety campaign harness (paper Section 4 safety evaluation).

Builds a Crossing Guard system whose accelerator has been replaced by an
adversary (see :mod:`repro.accel.buggy`), runs live CPU traffic beside it,
and checks the paper's safety claims:

* the host never crashes (a ``ProtocolError`` escaping a host controller
  would be the crash) and never deadlocks (watchdog);
* CPU data integrity holds for pages the accelerator has no permissions
  on (Guarantee 0);
* every injected violation is visible to the OS in the error log.

The adversary's own pages are READ_WRITE — the paper is explicit that XG
cannot protect the *contents* of pages the accelerator may write, only
the host's stability.
"""

from repro.host.config import AccelOrg, SystemConfig
from repro.host.system import build_system
from repro.obs import Telemetry
from repro.sim.simulator import DeadlockError
from repro.testing.random_tester import RandomTester
from repro.xg.permissions import PagePermission


class FuzzResult:
    """Outcome of one fuzz campaign."""

    def __init__(self):
        self.host_crashed = False
        self.host_deadlocked = False
        self.crash_detail = ""
        self.diagnosis = ""
        self.cpu_loads_checked = 0
        self.cpu_stores_committed = 0
        self.adversary_messages = 0
        self.violations = {}
        self.violations_total = 0
        self.final_tick = 0

    @property
    def host_safe(self):
        return not self.host_crashed and not self.host_deadlocked

    def as_dict(self):
        return {
            "host_safe": self.host_safe,
            "host_crashed": self.host_crashed,
            "host_deadlocked": self.host_deadlocked,
            "cpu_loads_checked": self.cpu_loads_checked,
            "cpu_stores_committed": self.cpu_stores_committed,
            "adversary_messages": self.adversary_messages,
            "violations_total": self.violations_total,
            "violations": dict(self.violations),
            "final_tick": self.final_tick,
            "diagnosis": self.diagnosis,
        }


def run_fuzz_campaign(
    host,
    xg_variant,
    adversary="fuzz",
    seed=0,
    duration=60_000,
    cpu_ops=1500,
    adversary_kwargs=None,
    accel_timeout=4000,
    n_cpus=2,
    protect_cpu_pages=True,
    rate_limit=None,
    share_pool=False,
    host_bandwidth=None,
    telemetry=False,
):
    """Run one campaign; returns (:class:`FuzzResult`, built system).

    ``adversary`` is one of ``fuzz``, ``deaf``, ``wrong``, ``flood``.
    CPU traffic uses its own address pool; with ``protect_cpu_pages`` the
    adversary pool overlaps it but the overlapping pages carry no
    permissions, so CPU data-value checking remains sound (G0).

    ``telemetry=True`` attaches a :class:`~repro.obs.Telemetry` hub to the
    simulator (finalized, left on ``system.sim.obs``) — the golden-run
    equivalence suite uses it to digest transition sequences.
    """
    cpu_pool = [0x100000 + 64 * i for i in range(8)]
    adversary_pool = [0x200000 + 64 * i for i in range(8)]
    if share_pool:
        # CPUs and adversary fight over the same writable pages; data on
        # those pages is legitimately corruptible (Section 2.2.1), so the
        # tester only checks liveness/latency.
        adversary_pool = cpu_pool
        protect_cpu_pages = False
    elif protect_cpu_pages:
        adversary_pool = adversary_pool + cpu_pool

    kwargs = dict(adversary_kwargs or {})
    kwargs.setdefault("addr_pool", adversary_pool)
    config = SystemConfig(
        host=host,
        org=AccelOrg.XG,
        xg_variant=xg_variant,
        n_cpus=n_cpus,
        cpu_l1_sets=4,
        cpu_l1_assoc=2,
        shared_l2_sets=8,
        shared_l2_assoc=4,
        randomize_latencies=True,
        seed=seed,
        deadlock_threshold=200_000,
        accel_timeout=accel_timeout,
        mem_latency=30,
        rate_limit=rate_limit,
        host_net_bandwidth=host_bandwidth,
        tags={"adversary": (adversary, kwargs)},
    )
    system = build_system(config)
    obs = Telemetry(system.sim) if telemetry else None
    # The adversary may do anything on its own pages, nothing elsewhere.
    system.permissions.default = PagePermission.NONE
    for addr in adversary_pool:
        if share_pool or addr not in cpu_pool:
            system.permissions.grant(addr, PagePermission.READ_WRITE)

    result = FuzzResult()
    tester = RandomTester(
        system.sim,
        system.cpu_seqs,
        cpu_pool,
        ops_target=cpu_ops,
        store_fraction=0.45,
        check_data=not share_pool,
    )
    adversary_component = system.accel_caches[0]
    adversary_component.start()
    tester.start()
    try:
        # Phase 1: CPUs and adversary run together.
        system.sim.run(max_ticks=duration)
        # Phase 2: silence the adversary and drain remaining CPU traffic
        # (pending XG timeouts keep the event queue alive until resolved).
        adversary_component.stop()
        tester.stop()
        system.sim.run()
    except DeadlockError as exc:
        result.host_deadlocked = True
        result.crash_detail = f"{type(exc).__name__}: {exc}"
        result.diagnosis = exc.diagnose()
    except Exception as exc:  # noqa: BLE001 - any other escape is a host crash
        result.host_crashed = True
        result.crash_detail = f"{type(exc).__name__}: {exc}"
    if obs is not None:
        obs.finalize()
    result.cpu_loads_checked = tester.loads_checked
    result.cpu_stores_committed = tester.stores_committed
    result.adversary_messages = adversary_component.stats.get("adversary_msgs")
    result.final_tick = system.sim.tick
    log = system.error_log
    result.violations_total = len(log)
    result.violations = {g.name: n for g, n in log.by_guarantee().items()}
    return result, system
