"""Whole-system coherence invariant checks.

Called on a *quiescent* system (no messages in flight, no open TBEs):

* single-writer/multiple-readers: at most one cache holds a block in an
  owned state, and no sharers coexist with an owner;
* value consistency: every resident copy of a block agrees with the
  owner's (or memory's) value;
* XG mirror consistency (Full State): the mirror matches what the
  accelerator caches actually hold.
"""

from repro.accel.l1_single import AL1State
from repro.accel.two_level import AL2State
from repro.protocols.hammer.cache import HCState
from repro.protocols.mesi.l1 import L1State
from repro.protocols.mesif.l1 import FL1State


class InvariantError(AssertionError):
    """A coherence invariant failed on a quiescent system."""


_OWNED_STATES = {
    L1State.E,
    L1State.M,
    FL1State.E,
    FL1State.M,
    HCState.E,
    HCState.M,
    HCState.O,
    AL1State.E,
    AL1State.M,
    AL2State.O,
}
_SHARED_STATES = {L1State.S, FL1State.S, FL1State.F, HCState.S, AL1State.S, AL2State.S}


def _resident_entries(system):
    """Yield (cache_name, entry) for all data-holding controllers."""
    for controller in system.controllers():
        cache = getattr(controller, "cache", None)
        if cache is None:
            continue
        for entry in cache.entries():
            yield controller.name, entry


def check_quiescent(system):
    """Every TBE table empty and every stall buffer drained."""
    for controller in system.controllers():
        tbes = getattr(controller, "tbes", None)
        if tbes is not None and len(tbes):
            raise InvariantError(f"{controller.name} has open TBEs: {list(tbes)}")
        stalled = getattr(controller, "stalled_count", None)
        if stalled is not None and controller.stalled_count():
            raise InvariantError(f"{controller.name} has stalled messages")


def check_single_writer(system):
    """At most one owner per block; owners exclude sharers.

    Hierarchical exception: an accelerator-side owner is *nested inside*
    the Crossing Guard's ownership of the same block, so accel-side copies
    only conflict with other accel-side copies, and host-side copies with
    host-side ones. XG's mirror ties the two levels together.
    """
    per_block = {}
    for name, entry in _resident_entries(system):
        domain = _domain_of(system, name)
        per_block.setdefault((domain, entry.addr), []).append((name, entry))
    for (domain, addr), holders in per_block.items():
        owners = [(n, e) for n, e in holders if e.state in _OWNED_STATES]
        sharers = [(n, e) for n, e in holders if e.state in _SHARED_STATES]
        if len(owners) > 1:
            raise InvariantError(
                f"{domain} block {addr:#x} has multiple owners: "
                f"{[(n, e.state.name) for n, e in owners]}"
            )
        # An inclusive parent (MESI L2 / accel L2) legitimately holds an
        # entry while a child owns the block, so only flag sibling-level
        # conflicts: two same-level owners (caught above).
    return True


def _domain_of(system, name):
    """Coherence level a cache belongs to (SWMR holds per level).

    Each inclusive accelerator L2 is its own level (it legitimately holds
    a block in O while an L1 child owns it), and each accelerator's L1s
    form their own level — distinct accelerators only interact through
    the host protocol via their Crossing Guards.
    """
    for index, l2 in enumerate(system.accel_l2s):
        if name == l2.name:
            return f"accel_parent.{index}"
    for index, (_xg, caches, _l2) in enumerate(system.xg_groups):
        if name in {c.name for c in caches}:
            return f"accel.{index}"
    if name in {c.name for c in system.accel_caches}:
        return "accel"
    return "host"


def check_value_consistency(system):
    """All same-level shared copies of a block hold identical data."""
    per_block = {}
    for name, entry in _resident_entries(system):
        domain = _domain_of(system, name)
        per_block.setdefault((domain, entry.addr), []).append((name, entry))
    for (domain, addr), holders in per_block.items():
        owners = [e for _n, e in holders if e.state in _OWNED_STATES]
        sharers = [e for _n, e in holders if e.state in _SHARED_STATES]
        if owners:
            continue  # owner's value is authoritative; parents may be stale
        values = {bytes(e.data.to_bytes()) for e in sharers}
        if len(values) > 1:
            raise InvariantError(f"{domain} block {addr:#x}: divergent shared copies")
    return True


def check_xg_mirror(system):
    """Each Full State XG's mirror matches its accelerator's contents."""
    groups = system.xg_groups or (
        [(system.xg, system.accel_caches, system.accel_l2)] if system.xg else []
    )
    for xg, caches, accel_l2 in groups:
        if xg is None or xg.mirror is None:
            continue
        held = {}
        visible = [accel_l2] if accel_l2 is not None else list(caches)
        arrays = [
            array
            for array in (getattr(cache, "cache", None) for cache in visible)
            if array is not None
        ]
        if not arrays:
            # Adversary/rogue components have no cache array: the
            # accelerator side of this group is unobservable, so the
            # mirror cannot be cross-checked (and a Byzantine endpoint's
            # "state" is meaningless anyway — the mirror is XG's defensive
            # model of it, not a contract).
            continue
        for array in arrays:
            for entry in array.entries():
                held[entry.addr] = entry.state
        for addr, mirror in xg.mirror.items():
            if mirror.accel_state == "I":
                continue  # XG-retained only
            if addr not in held:
                raise InvariantError(
                    f"{xg.name} mirror says accel holds {addr:#x} "
                    f"({mirror.accel_state}); it doesn't"
                )
        for addr, state in held.items():
            if state in _OWNED_STATES or state in _SHARED_STATES:
                mirror = xg.mirror.get(addr)
                if mirror is None or mirror.accel_state == "I":
                    raise InvariantError(
                        f"accel holds {addr:#x} ({state.name}) but "
                        f"{xg.name} mirror does not know"
                    )
                if state in _OWNED_STATES and mirror.accel_state != "O":
                    raise InvariantError(
                        f"accel owns {addr:#x} but {xg.name} mirror says "
                        f"{mirror.accel_state}"
                    )
    return True


def check_all(system):
    """Run every invariant; the system must be quiescent."""
    check_quiescent(system)
    check_single_writer(system)
    check_value_consistency(system)
    check_xg_mirror(system)
    return True


# -- online sampling ----------------------------------------------------------

#: Default watchdog sampling period in ticks. Chosen well below the
#: campaign deadlock thresholds so a corruption is caught within one
#: "round" of traffic, while staying cheap (a sample is a handful of
#: attribute loads unless the system happens to be quiescent).
DEFAULT_WATCHDOG_INTERVAL = 2000


class InvariantWatchdog:
    """Periodic online :func:`check_all` sampling inside the run loop.

    Attach via :meth:`Simulator.attach_monitor`. The global invariants
    only hold on a *quiescent* system — mid-transaction, two stable
    owners can legitimately coexist for an instant — so each due sample
    first checks a quiescence proxy (no pending port work, no open TBEs,
    no stalled messages, watchdog-exempt adversaries excluded) and counts
    a skip when traffic is in flight. The final drain is always sampled,
    so every run gets at least one full check.

    The watchdog deliberately keeps its own plain counters: it must not
    touch component :class:`~repro.sim.stats.Stats`, schedule simulator
    events, or consume ``sim.rng``, so golden digests stay byte-identical
    with it enabled.

    On a violation it records span/trace forensics, annotates the
    :class:`InvariantError` with them (``exc.forensics``), and re-raises
    (``raise_on_violation=False`` collects instead, for post-run triage).
    """

    def __init__(self, system, interval=DEFAULT_WATCHDOG_INTERVAL,
                 raise_on_violation=True):
        self.system = system
        self.interval = max(1, int(interval))
        self.raise_on_violation = raise_on_violation
        self.samples = 0   # times the loop handed us control
        self.checks = 0    # samples that found quiescence and ran check_all
        self.skipped = 0   # samples skipped because traffic was in flight
        self.violations = []
        self._next = None

    def next_due(self, tick):
        if self._next is None:
            self._next = tick + self.interval
        return self._next

    def _quiescent(self):
        for comp in self.system.sim.components:
            if comp.watchdog_exempt:
                # A dead rogue's unread mail must not mask host checking.
                continue
            if comp.next_pending_tick() is not None:
                return False
            tbes = getattr(comp, "tbes", None)
            if tbes is not None and len(tbes):
                return False
            stalled = getattr(comp, "stalled_count", None)
            if stalled is not None and comp.stalled_count():
                return False
        return True

    def sample(self, sim, final=False):
        self.samples += 1
        self._next = sim.tick + self.interval
        if not self._quiescent():
            self.skipped += 1
            return self._next
        self.checks += 1
        try:
            check_all(self.system)
        except InvariantError as exc:
            record = self._forensics(sim, exc, final)
            self.violations.append(record)
            obs = sim.obs
            if obs is not None:
                obs.record_mark(
                    sim.tick, "invariant_violation", component="watchdog",
                    name=type(exc).__name__,
                )
            if self.raise_on_violation:
                exc.forensics = record
                raise
        return self._next

    def _forensics(self, sim, exc, final):
        """Span/trace snapshot taken at the violating sample."""
        trace = []
        if sim.trace is not None:
            for tick, net, mtype, addr, sender, dest, note in sim.trace:
                mname = getattr(mtype, "name", mtype)
                addr_s = f"{addr:#x}" if isinstance(addr, int) else str(addr)
                suffix = f" [{note}]" if note else ""
                trace.append(f"t={tick} {net}: {mname} {addr_s} {sender}->{dest}{suffix}")
        open_spans = 0
        obs = sim.obs
        if obs is not None:
            open_spans = obs.spans.open_count
        quarantine = [
            {"xg": xg.name, "state": xg.error_log.quarantine_state,
             "violations": len(xg.error_log)}
            for xg in self.system.xgs
        ]
        component_lines = []
        for comp in sim.components:
            hook = getattr(comp, "diagnose_extra", None)
            if hook is not None:
                component_lines.extend(f"{comp.name}: {line}" for line in hook())
        return {
            "tick": sim.tick,
            "final": final,
            "error": str(exc),
            "trace": trace,
            "open_spans": open_spans,
            "quarantine": quarantine,
            "components": component_lines,
        }

    def as_dict(self):
        return {
            "interval": self.interval,
            "samples": self.samples,
            "checks": self.checks,
            "skipped": self.skipped,
            "violations": list(self.violations),
        }
