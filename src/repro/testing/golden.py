"""Golden-run equivalence harness for the compiled dispatch fast path.

The compiled transition dispatch (:mod:`repro.coherence.controller`)
rewrites the semantics-critical inner loop of every protocol controller,
so its proof obligation is behavioral *identity*, not plausibility. This
module digests seeded runs into three sha256 fingerprints:

* **transitions** — the full per-controller (tick, component, type,
  state, event) sequence recorded by :class:`~repro.obs.Telemetry`,
  i.e. every step every state machine took, in order;
* **memory** — the final main-memory image (sorted address → block
  bytes);
* **stats** — the canonical-JSON per-component stats report.

Two runs with equal digest dicts took the same steps, landed the same
bytes, and counted the same events. :func:`compare_modes` runs one
scenario twice — once under ``DISPATCH_MODE="compiled"``, once under
``"legacy"`` (the pre-refactor reference path, kept verbatim) — and the
equivalence suite asserts the digests match across all hosts ×
accelerator organizations. Committed digests in ``tests/golden/``
additionally pin the sequences against *future* perturbation; refresh
them deliberately with ``python -m repro golden --update``.
"""

import hashlib
import json

from repro.accel.rogue import RogueAccel
from repro.coherence.controller import dispatch_mode
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.obs import Telemetry
from repro.testing.invariants import DEFAULT_WATCHDOG_INTERVAL
from repro.testing.random_tester import RandomTester
from repro.xg.interface import XGVariant

#: Scenario names accepted by :func:`golden_run`.
SCENARIOS = ("stress", "fuzz", "chaos")

#: The representative (host, org) configs whose digests are committed in
#: ``tests/golden/digests.json`` (one per host protocol, two orgs).
PINNED_CONFIGS = (
    ("stress", HostProtocol.MESI, AccelOrg.XG),
    ("stress", HostProtocol.HAMMER, AccelOrg.XG),
    ("stress", HostProtocol.MESIF, AccelOrg.HOST_SIDE),
)


def _digest_lines(lines):
    sha = hashlib.sha256()
    for line in lines:
        sha.update(line.encode())
        sha.update(b"\n")
    return sha.hexdigest()


def _token(value):
    """Version-proof rendering: enum members digest by name, not str()."""
    return getattr(value, "name", None) or str(value)


def transition_digest(obs):
    """sha256 over the ordered transition sequence of a recording."""
    transitions = obs.transitions or ()
    return _digest_lines(
        f"{tick}|{component}|{ctype}|{_token(state)}|{_token(event)}"
        for tick, component, ctype, state, event in transitions
    )


def memory_digest(memory):
    """sha256 over the final memory image (sorted address -> bytes)."""
    blocks = memory._blocks
    return _digest_lines(
        f"{addr:#x}|{blocks[addr].to_bytes().hex()}" for addr in sorted(blocks)
    )


def stats_digest(sim):
    """sha256 of the canonical-JSON per-component stats report."""
    report = json.dumps(sim.stats_report(), sort_keys=True)
    return hashlib.sha256(report.encode()).hexdigest()


def digest_system(system, obs):
    """The full digest dict for one finished run."""
    return {
        "transitions": transition_digest(obs),
        "transitions_count": len(obs.transitions or ()),
        "memory": memory_digest(system.memory),
        "stats": stats_digest(system.sim),
        "final_tick": system.sim.tick,
        "events_fired": system.sim._events_fired,
    }


# -- scenarios ---------------------------------------------------------------


def _run_stress(host, org, xg_variant, seed, ops):
    """Seeded random CPU+accelerator traffic over the full protocol stack.

    Works for every (host, org) pair — the same small geometry the
    ``xg_stress`` benchmark uses, with telemetry recording on.
    """
    config = SystemConfig(
        host=host,
        org=org,
        xg_variant=xg_variant,
        n_cpus=2,
        n_accel_cores=2,
        cpu_l1_sets=2,
        cpu_l1_assoc=1,
        shared_l2_sets=4,
        shared_l2_assoc=2,
        accel_l1_sets=2,
        accel_l1_assoc=1,
        randomize_latencies=True,
        seed=seed,
        deadlock_threshold=400_000,
        accel_timeout=150_000,
        mem_latency=30,
        trace_depth=0,
        # Deliberately on: golden digests double as the proof that the
        # online invariant watchdog is digest-neutral (it samples between
        # events and never schedules, counts, or draws randomness).
        invariant_interval=DEFAULT_WATCHDOG_INTERVAL,
    )
    system = build_system(config)
    obs = Telemetry(system.sim)
    blocks = [0x1000 + 64 * i for i in range(6)]
    tester = RandomTester(
        system.sim, system.sequencers, blocks,
        ops_target=ops, store_fraction=0.45,
    )
    tester.run()
    obs.finalize()
    return system, obs


def _run_fuzz(host, xg_variant, seed, ops):
    """An adversarial accelerator behind XG (org is implicitly XG)."""
    from repro.testing.fuzzer import run_fuzz_campaign

    result, system = run_fuzz_campaign(
        host, xg_variant, adversary="fuzz", seed=seed,
        duration=30_000, cpu_ops=ops, telemetry=True,
    )
    if not result.host_safe:
        raise AssertionError(f"fuzz golden run lost host safety: {result.crash_detail}")
    return system, system.sim.obs


def _run_chaos(host, xg_variant, seed, ops):
    """Link faults on the crossing plus a flooding accelerator."""
    from repro.testing.chaos import run_chaos_campaign

    result, system = run_chaos_campaign(
        host, xg_variant,
        faults={"drop": 0.1, "duplicate": 0.1},
        seed=seed, duration=20_000, cpu_ops=ops, telemetry=True,
    )
    if not result.host_safe:
        raise AssertionError(f"chaos golden run lost host safety: {result.crash_detail}")
    return system, system.sim.obs


def golden_run(scenario, host, org=AccelOrg.XG,
               xg_variant=XGVariant.FULL_STATE, seed=0, ops=400):
    """One seeded scenario run under the *current* dispatch mode.

    Returns the digest dict (see :func:`digest_system`). ``fuzz`` and
    ``chaos`` scenarios imply ``org=XG`` — they replace the accelerator
    with an adversary behind Crossing Guard.
    """
    if scenario == "stress":
        system, obs = _run_stress(host, org, xg_variant, seed, ops)
    elif scenario == "fuzz":
        system, obs = _run_fuzz(host, xg_variant, seed, ops)
    elif scenario == "chaos":
        system, obs = _run_chaos(host, xg_variant, seed, ops)
    else:
        raise ValueError(f"unknown golden scenario {scenario!r} (try {SCENARIOS})")
    _assert_no_rogue(system)
    return digest_system(system, obs)


def _assert_no_rogue(system):
    """Golden runs pin *reference* behavior; a Byzantine component inside
    one would silently turn the pinned digests adversarial. The fuzz and
    chaos scenarios use the fixed-behavior adversaries deliberately —
    only plan-driven rogues are banned."""
    rogues = [
        comp.name for comp in system.sim.components if isinstance(comp, RogueAccel)
    ]
    if rogues:
        raise AssertionError(
            f"golden run instantiated rogue component(s) {rogues}; "
            "rogue plans must never reach a golden configuration"
        )


# -- compiled-vs-legacy equivalence -------------------------------------------


def compare_modes(scenario, host, org=AccelOrg.XG,
                  xg_variant=XGVariant.FULL_STATE, seed=0, ops=400):
    """Run one scenario under both dispatch modes; return their digests.

    The pair being equal is the refactor's headline claim: the compiled
    fast path is step-for-step identical to the legacy reference path.
    """
    with dispatch_mode("compiled"):
        compiled = golden_run(scenario, host, org, xg_variant, seed, ops)
    with dispatch_mode("legacy"):
        legacy = golden_run(scenario, host, org, xg_variant, seed, ops)
    return compiled, legacy


def equivalence_matrix(scenario="stress", seed=0, ops=400):
    """Compiled-vs-legacy comparison across all hosts x accelerator orgs.

    Returns ``{label: {"compiled": .., "legacy": .., "identical": bool}}``.
    For fuzz/chaos scenarios the org axis collapses to XG (both variants
    instead).
    """
    rows = {}
    if scenario == "stress":
        cases = [
            (host, org, XGVariant.FULL_STATE)
            for host in HostProtocol
            for org in AccelOrg
        ]
    else:
        cases = [
            (host, AccelOrg.XG, variant)
            for host in HostProtocol
            for variant in XGVariant
        ]
    for host, org, variant in cases:
        label = f"{host.name.lower()}/{org.name.lower()}/{variant.name.lower()}"
        compiled, legacy = compare_modes(
            scenario, host, org, xg_variant=variant, seed=seed, ops=ops
        )
        rows[label] = {
            "compiled": compiled,
            "legacy": legacy,
            "identical": compiled == legacy,
        }
    return rows


# -- committed pinned digests -------------------------------------------------


def pinned_digests(seed=0, ops=400):
    """Digest dict for the representative configs committed in CI."""
    pinned = {}
    for scenario, host, org in PINNED_CONFIGS:
        label = f"{scenario}/{host.name.lower()}/{org.name.lower()}"
        pinned[label] = golden_run(scenario, host, org, seed=seed, ops=ops)
    return {
        "note": (
            "Seed-run golden digests. A mismatch means a change perturbed "
            "controller transition sequences, the final memory image, or "
            "stats; refresh deliberately with `python -m repro golden "
            "--update` and explain the behavior change in the PR."
        ),
        "seed": seed,
        "ops": ops,
        "digests": pinned,
    }


def write_pinned(path, seed=0, ops=400):
    payload = pinned_digests(seed=seed, ops=ops)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def load_pinned(path):
    with open(path) as fh:
        return json.load(fh)
