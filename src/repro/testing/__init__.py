"""Protocol validation harnesses.

* :mod:`repro.testing.random_tester` — the Ruby-random-tester analogue
  used by the paper's Section 4.1 stress test: rapid loads/stores to a
  small address pool with data-value checking, random message latencies,
  and tiny caches so replacements and races are frequent.
* :mod:`repro.testing.fuzzer` — a byzantine message source aimed at the
  Crossing Guard accelerator interface for the safety evaluation.
* :mod:`repro.testing.chaos` — fault-injected interconnect campaigns:
  drops, duplicates, delay spikes, and payload corruption on the
  XG<->accelerator link, with host safety and CPU progress asserted.
* :mod:`repro.testing.rogue` — programmable Byzantine accelerators
  (:class:`~repro.accel.rogue.RoguePlan` driven) with per-cell
  containment classification and the online invariant watchdog.
"""

from repro.testing.chaos import ChaosResult, run_chaos_campaign, run_chaos_matrix
from repro.testing.invariants import (
    DEFAULT_WATCHDOG_INTERVAL,
    InvariantError,
    InvariantWatchdog,
    check_all,
)
from repro.testing.random_tester import DataCheckError, RandomTester
from repro.testing.rogue import (
    ROGUE_PLANS,
    RogueResult,
    run_rogue_campaign,
    run_rogue_matrix,
)

__all__ = [
    "ChaosResult",
    "DataCheckError",
    "DEFAULT_WATCHDOG_INTERVAL",
    "InvariantError",
    "InvariantWatchdog",
    "ROGUE_PLANS",
    "RandomTester",
    "RogueResult",
    "check_all",
    "run_chaos_campaign",
    "run_chaos_matrix",
    "run_rogue_campaign",
    "run_rogue_matrix",
]
