"""Byzantine-accelerator campaigns: rogue plans against a hardened XG.

The fuzz adversaries each hard-code one misbehavior; a
:class:`~repro.accel.rogue.RogueAccel` runs a serializable
:class:`~repro.accel.rogue.RoguePlan` mixing protocol-legal-but-hostile
and outright-illegal traffic. A rogue campaign asserts the containment
story end to end:

* the host never crashes, never deadlocks, and keeps completing CPU work
  while the rogue misbehaves;
* the online invariant watchdog — sampling :func:`check_all
  <repro.testing.invariants.check_all>` *during* the run — never fires;
* the rogue itself is *contained*: every campaign classifies how XG dealt
  with it (``quarantined`` / ``throttled`` / ``timed_out`` / ``absorbed``)
  and anything less than containment (``escaped``) fails the sweep.

``run_rogue_matrix`` fans plans x hosts x XG variants x seeds over the
shared campaign executor; ``python -m repro rogue`` drives it.
"""

from repro.accel.rogue import RogueAccel, RoguePlan
from repro.eval.campaign import CampaignJob, merge_failure_into, run_campaign
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.obs import Telemetry
from repro.sim.simulator import DeadlockError
from repro.testing.fuzzer import FuzzResult
from repro.testing.invariants import DEFAULT_WATCHDOG_INTERVAL, InvariantError
from repro.testing.random_tester import RandomTester
from repro.xg.errors import Guarantee
from repro.xg.interface import XGVariant
from repro.xg.permissions import PagePermission

#: Containment classifications, worst first. ``escaped`` means the rogue
#: hurt the host (crash/deadlock/invariant violation) — the one outcome a
#: sweep must never see.
CONTAINMENT_OUTCOMES = ("escaped", "quarantined", "throttled", "timed_out", "absorbed")

#: The stock plan library. Each plan isolates one Byzantine personality;
#: ``shapeshifter`` mixes them all. Campaigns reseed per cell with
#: :meth:`RoguePlan.reseed`, so the library entries stay immutable.
ROGUE_PLANS = {
    # Interface-legal but antisocial: heavy unsolicited-response traffic.
    "spoofer": RoguePlan(
        "spoofer",
        moves={"legal_get": 2, "spurious_response": 4, "stale_response": 2,
               "wrong_addr_response": 2},
    ),
    # Plays nice on requests, lies when probed.
    "liar": RoguePlan(
        "liar",
        moves={"legal_get": 4, "legal_put": 2},
        inv_responses={"wrong_type": 2, "wrong_addr": 1, "correct": 1},
    ),
    # Replays its own history: same-uid wire duplicates plus double acks.
    "replayer": RoguePlan(
        "replayer",
        moves={"legal_get": 3, "legal_put": 1, "stale_replay": 4},
        inv_responses={"double": 2, "correct": 1},
    ),
    # Acquires blocks, then never answers a probe (G2c timeout path).
    "mute": RoguePlan(
        "mute",
        moves={"legal_get": 3, "silence": 2},
        inv_responses={"ignore": 1},
        mean_gap=40,
    ),
    # Denial of service with perfectly legal requests.
    "flooder": RoguePlan(
        "flooder",
        moves={"legal_get": 1, "flood_burst": 5},
        mean_gap=8,
        burst=8,
    ),
    # Behaves, then dies mid-transaction with mail unread.
    "zombie": RoguePlan(
        "zombie",
        moves={"legal_get": 4, "legal_put": 2},
        inv_responses={"correct": 3, "ignore": 1},
        die_at=15_000,
    ),
    # Unparseable garbage: bad addresses, unknown types, missing payloads.
    "garbler": RoguePlan(
        "garbler",
        moves={"legal_get": 1, "malformed": 5},
    ),
    # Everything at once.
    "shapeshifter": RoguePlan(
        "shapeshifter",
        moves={name: 1 for name in
               ("legal_get", "legal_put", "spurious_response",
                "wrong_addr_response", "stale_replay", "stale_response",
                "malformed", "flood_burst", "silence")},
        inv_responses={"correct": 2, "wrong_type": 1, "wrong_addr": 1,
                       "ignore": 1, "double": 1},
    ),
}


class RogueResult(FuzzResult):
    """One rogue campaign's outcome: safety + containment accounting."""

    def __init__(self):
        super().__init__()
        self.plan = ""
        self.plan_json = ""
        self.containment = ""
        self.quarantine_state = "healthy"
        self.accel_disabled = False
        self.invariant_violated = False
        self.invariant_detail = ""
        self.forensics = None
        self.watchdog_samples = 0
        self.watchdog_checks = 0
        self.watchdog_skipped = 0
        self.malformed_rejected = 0
        self.nacks_sent = 0
        self.grants_suppressed = 0
        self.throttle_applied = 0
        self.rate_limited = 0
        self.quarantine_surrogates = 0
        self.requests_dropped_disabled = 0
        self.duplicates_sunk = 0
        self.rogue_died = False

    @property
    def contained(self):
        """True when the rogue never hurt the host."""
        return self.host_safe and not self.invariant_violated

    def as_dict(self):
        data = super().as_dict()
        data.update(
            plan=self.plan,
            plan_json=self.plan_json,
            containment=self.containment,
            contained=self.contained,
            quarantine_state=self.quarantine_state,
            accel_disabled=self.accel_disabled,
            invariant_violated=self.invariant_violated,
            invariant_detail=self.invariant_detail,
            forensics=self.forensics,
            watchdog_samples=self.watchdog_samples,
            watchdog_checks=self.watchdog_checks,
            watchdog_skipped=self.watchdog_skipped,
            malformed_rejected=self.malformed_rejected,
            nacks_sent=self.nacks_sent,
            grants_suppressed=self.grants_suppressed,
            throttle_applied=self.throttle_applied,
            rate_limited=self.rate_limited,
            quarantine_surrogates=self.quarantine_surrogates,
            requests_dropped_disabled=self.requests_dropped_disabled,
            duplicates_sunk=self.duplicates_sunk,
            rogue_died=self.rogue_died,
        )
        return data


def _classify(result):
    """Containment outcome, worst rung the campaign reached.

    ``escaped`` is any harm to the host; ``quarantined`` means the OS
    ladder disabled the accelerator; ``throttled`` means the punitive
    rate clamp engaged; ``timed_out`` means probes had to fall back to
    the G2c surrogate; ``absorbed`` means XG simply corrected/logged
    everything inline.
    """
    if not result.contained:
        return "escaped"
    if result.accel_disabled:
        return "quarantined"
    if result.quarantine_state == "throttled" or result.throttle_applied:
        return "throttled"
    if result.violations.get(Guarantee.G2C_TIMEOUT.name, 0):
        return "timed_out"
    return "absorbed"


def run_rogue_campaign(
    host,
    xg_variant,
    plan="shapeshifter",
    seed=0,
    duration=60_000,
    cpu_ops=1200,
    accel_timeout=2500,
    probe_retries=2,
    disable_after=6,
    warn_after=2,
    throttle_after=4,
    throttle_rate=(2, 200),
    rate_limit=(16, 100),
    invariant_interval=DEFAULT_WATCHDOG_INTERVAL,
    contested_blocks=2,
    n_cpus=2,
    telemetry=False,
):
    """Run one rogue campaign; returns (:class:`RogueResult`, system).

    ``plan`` is a :data:`ROGUE_PLANS` name or a :class:`RoguePlan`; it is
    reseeded with ``seed`` so cells of a sweep draw distinct behavior
    streams while staying replayable from the serialized plan alone.
    The full quarantine ladder is armed by default (warn -> throttle ->
    disable), the request rate limiter is on, and the online invariant
    watchdog samples every ``invariant_interval`` ticks (0 disables).

    ``contested_blocks`` blocks are hammered by *both* the CPUs and the
    rogue — they are what forces host-initiated Invalidates across to
    the rogue, so its probe reactions (lie / ignore / double-answer)
    actually fire. CPU loads there still count toward liveness but are
    excluded from value checking; the rogue may legally write them.
    CPU-only pages carry no accelerator permissions, so CPU data-value
    checking stays sound no matter what the rogue sends — the paper is
    explicit that XG protects the *host*, not pages the accelerator may
    legally write.
    """
    if isinstance(plan, str):
        plan = ROGUE_PLANS[plan]
    plan = plan.reseed(seed)
    contested = [0x180000 + 64 * i for i in range(contested_blocks)]
    cpu_pool = [0x100000 + 64 * i for i in range(8)] + contested
    rogue_pool = [0x200000 + 64 * i for i in range(8)] + contested
    config = SystemConfig(
        host=host,
        org=AccelOrg.XG,
        xg_variant=xg_variant,
        n_cpus=n_cpus,
        cpu_l1_sets=4,
        cpu_l1_assoc=2,
        shared_l2_sets=8,
        shared_l2_assoc=4,
        randomize_latencies=True,
        seed=seed,
        deadlock_threshold=200_000,
        accel_timeout=accel_timeout,
        probe_retries=probe_retries,
        disable_after=disable_after,
        warn_after=warn_after,
        throttle_after=throttle_after,
        throttle_rate=throttle_rate,
        rate_limit=rate_limit,
        invariant_interval=invariant_interval,
        mem_latency=30,
        tags={"adversary": ("rogue", {"addr_pool": rogue_pool, "plan": plan})},
    )
    system = build_system(config)
    obs = Telemetry(system.sim) if telemetry else None
    system.permissions.default = PagePermission.NONE
    for addr in rogue_pool:
        system.permissions.grant(addr, PagePermission.READ_WRITE)

    result = RogueResult()
    result.plan = plan.name
    result.plan_json = plan.to_json()
    tester = RandomTester(
        system.sim,
        system.cpu_seqs,
        cpu_pool,
        ops_target=cpu_ops,
        store_fraction=0.45,
        check_data=True,
        unchecked_blocks=contested,
    )
    rogue = system.accel_caches[0]
    rogue.start()
    tester.start()
    try:
        # Phase 1: CPUs and the rogue run together under the watchdog.
        system.sim.run(max_ticks=duration)
        # Phase 2: silence the rogue and drain — timeouts and surrogate
        # answers must close every transaction the rogue left dangling.
        rogue.stop()
        tester.stop()
        system.sim.run()
    except InvariantError as exc:
        result.invariant_violated = True
        result.invariant_detail = str(exc)
        result.crash_detail = f"{type(exc).__name__}: {exc}"
        result.forensics = getattr(exc, "forensics", None)
    except DeadlockError as exc:
        result.host_deadlocked = True
        result.crash_detail = f"{type(exc).__name__}: {exc}"
        result.diagnosis = exc.diagnose()
    except Exception as exc:  # noqa: BLE001 - any other escape is a host crash
        result.host_crashed = True
        result.crash_detail = f"{type(exc).__name__}: {exc}"
    if obs is not None:
        obs.finalize()
    result.cpu_loads_checked = tester.loads_checked
    result.cpu_stores_committed = tester.stores_committed
    result.adversary_messages = rogue.stats.get("adversary_msgs")
    result.rogue_died = rogue.dead
    result.final_tick = system.sim.tick

    log = system.error_log
    result.violations_total = len(log)
    result.violations = {g.name: n for g, n in log.by_guarantee().items()}
    result.quarantine_state = log.quarantine_state
    result.accel_disabled = log.accel_disabled
    xg = system.xg
    result.malformed_rejected = xg.stats.get("malformed_rejected")
    result.nacks_sent = xg.stats.get("dropped_disabled")
    result.grants_suppressed = xg.stats.get("grants_suppressed_disabled")
    result.throttle_applied = xg.stats.get("throttle_applied")
    result.rate_limited = xg.stats.get("rate_limited")
    result.quarantine_surrogates = xg.stats.get("quarantine_surrogates")
    result.requests_dropped_disabled = xg.stats.get("dropped_disabled")
    result.duplicates_sunk = xg.stats.get(
        "duplicates_sunk.accel_request"
    ) + xg.stats.get("duplicates_sunk.accel_response")
    watchdog = system.watchdog
    if watchdog is not None:
        result.watchdog_samples = watchdog.samples
        result.watchdog_checks = watchdog.checks
        result.watchdog_skipped = watchdog.skipped
        if watchdog.violations and not result.invariant_violated:
            result.invariant_violated = True
            result.invariant_detail = watchdog.violations[0]["error"]
            result.forensics = watchdog.violations[0]
    result.containment = _classify(result)
    return result, system


def _run_rogue_job(host, variant, plan_name, seed, duration, cpu_ops,
                   accel_timeout, invariant_interval):
    """One rogue campaign, worker-side; returns its (picklable) result row."""
    result, _system = run_rogue_campaign(
        host,
        variant,
        plan=plan_name,
        seed=seed,
        duration=duration,
        cpu_ops=cpu_ops,
        accel_timeout=accel_timeout,
        invariant_interval=invariant_interval,
    )
    data = result.as_dict()
    data.update(host=host.name, variant=variant.name, plan=plan_name, seed=seed)
    return data


def run_rogue_matrix(
    plans=None,
    hosts=(HostProtocol.MESI, HostProtocol.HAMMER, HostProtocol.MESIF),
    variants=(XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL),
    seeds=range(1),
    duration=40_000,
    cpu_ops=600,
    accel_timeout=2000,
    invariant_interval=DEFAULT_WATCHDOG_INTERVAL,
    workers=1,
):
    """Sweep plan x host x XG variant x seed; one row per campaign.

    Rows come back in submission order regardless of ``workers``, so a
    parallel sweep's report is byte-identical to the serial one. A worker
    that escapes its own error handling is folded into a rectangular
    failure row (``containment='escaped'``) carrying any watchdog
    forensics the exception brought along.
    """
    if plans is None:
        plans = tuple(ROGUE_PLANS)
    unknown = set(plans) - set(ROGUE_PLANS)
    if unknown:
        raise ValueError(f"unknown rogue plans {sorted(unknown)}")
    campaign_jobs = []
    templates = []
    for plan_name in plans:
        for host in hosts:
            for variant in variants:
                for seed in seeds:
                    campaign_jobs.append(
                        CampaignJob(
                            runner=_run_rogue_job,
                            args=(host, variant, plan_name, seed, duration,
                                  cpu_ops, accel_timeout, invariant_interval),
                            label=f"{plan_name}/{host.name}/{variant.name}/seed{seed}",
                        )
                    )
                    template = RogueResult().as_dict()
                    template.update(
                        host=host.name, variant=variant.name,
                        plan=plan_name, seed=seed,
                    )
                    templates.append(template)
    rows = []
    for template, outcome in zip(templates, run_campaign(campaign_jobs, workers=workers)):
        if outcome.ok:
            row = outcome.value
            if outcome.forensics is not None and not row.get("forensics"):
                # fabric forensics_all: the worker kept its black box even
                # though the campaign succeeded
                row["forensics"] = outcome.forensics
            rows.append(row)
        else:
            row = merge_failure_into(template, outcome)
            row["containment"] = "escaped"
            row["contained"] = False
            if outcome.error_type == "InvariantError":
                row["invariant_violated"] = True
                row["invariant_detail"] = outcome.error
            row["forensics"] = outcome.forensics
            rows.append(row)
    return rows
