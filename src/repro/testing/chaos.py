"""Chaos campaigns: an unreliable interconnect against a hardened XG.

The fuzz harness (:mod:`repro.testing.fuzzer`) replaces the accelerator
with an adversary but assumes the wires are perfect. This harness keeps
the accelerator-side traffic source and additionally injects *link*
faults — drops, link-layer replay duplicates, congestion delay spikes,
payload corruption — on the XG<->accelerator crossing via a seeded
:class:`~repro.sim.faults.FaultPlan`.

The claims a chaos campaign asserts are the paper's safety claims under
a strictly harsher fault model:

* the host never crashes and never deadlocks, no matter what the link
  loses, replays, reorders-in-time, or corrupts;
* CPU traffic keeps completing and every CPU load remains data-checked;
* every fault XG could not silently recover (retry, dedupe, absorb) is
  surfaced to the OS in the error log;
* when something *does* wedge, the failure report carries
  :meth:`DeadlockError.diagnose` forensics instead of a bare exception.
"""

from repro.eval.campaign import CampaignJob, merge_failure_into, run_campaign
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.obs import Telemetry
from repro.sim.faults import FAULT_KINDS, FaultPlan, single_link_plan
from repro.sim.simulator import DeadlockError
from repro.testing.fuzzer import FuzzResult
from repro.testing.random_tester import RandomTester
from repro.xg.interface import XGVariant
from repro.xg.permissions import PagePermission


class ChaosResult(FuzzResult):
    """One chaos campaign's outcome: safety + fault/recovery accounting."""

    def __init__(self):
        super().__init__()
        self.cpu_loads_value_checked = 0
        self.faults_injected = {}
        self.faults_total = 0
        self.probe_retries = 0
        self.duplicates_sunk = 0
        self.retry_echoes_absorbed = 0
        self.quarantine_surrogates = 0
        self.requests_dropped_disabled = 0
        self.accel_disabled = False
        self.spans_closed = 0
        self.spans_orphaned = 0

    def as_dict(self):
        data = super().as_dict()
        data.update(
            cpu_loads_value_checked=self.cpu_loads_value_checked,
            faults_injected=dict(self.faults_injected),
            faults_total=self.faults_total,
            probe_retries=self.probe_retries,
            duplicates_sunk=self.duplicates_sunk,
            retry_echoes_absorbed=self.retry_echoes_absorbed,
            quarantine_surrogates=self.quarantine_surrogates,
            requests_dropped_disabled=self.requests_dropped_disabled,
            accel_disabled=self.accel_disabled,
            spans_closed=self.spans_closed,
            spans_orphaned=self.spans_orphaned,
        )
        return data


def _as_plan(faults, fault_seed, windows=()):
    if faults is None:
        faults = {}
    if isinstance(faults, FaultPlan):
        return faults
    return single_link_plan(dict(faults), seed=fault_seed, link="accel", windows=windows)


def run_chaos_campaign(
    host,
    xg_variant,
    faults=None,
    windows=(),
    adversary="flood",
    seed=0,
    fault_seed=None,
    duration=60_000,
    cpu_ops=1200,
    adversary_kwargs=None,
    accel_timeout=2500,
    probe_retries=2,
    disable_after=None,
    n_cpus=2,
    rate_limit=None,
    contested_blocks=2,
    telemetry=False,
    lineage=False,
    series_interval=0,
):
    """Run one chaos campaign; returns (:class:`ChaosResult`, system).

    ``faults`` is a :class:`FaultPlan` or a ``{kind: rate}`` dict (kinds
    from :data:`FAULT_KINDS`) applied to the ordered XG<->accelerator
    link; ``windows`` adds scheduled :class:`FaultWindow` intervals (e.g.
    a blackhole). The host interconnect stays reliable — host protocols
    assume a lossless fabric; the crossing is the threat model
    (Section 2.1). ``adversary`` picks the accelerator-side traffic
    source (same four as the fuzzer); the default ``flood`` emits only
    interface-legal traffic, so every OS-visible violation in a flood
    campaign is attributable to injected link faults.

    ``contested_blocks`` blocks are hammered by *both* the CPUs and the
    accelerator. They are what forces host-initiated probes (Invalidate /
    recall) across the faulty crossing, exercising the retry-with-backoff
    and surrogate paths; CPU loads there still count toward liveness but
    are excluded from value checking, since a corrupted accelerator
    writeback may legally land in them.

    ``telemetry=True`` attaches a :class:`~repro.obs.Telemetry` hub to
    the simulator — transaction spans, transitions, injected faults, and
    marks are recorded and left on ``system.sim.obs`` (finalized) for
    export; ``series_interval`` additionally samples counter time series
    every that many ticks. ``lineage=True`` (requires telemetry) also
    records the causal message-lineage graph, so every closed span
    carries a ``blame`` breakdown even under injected link faults.
    """
    plan = _as_plan(faults, seed if fault_seed is None else fault_seed, windows)
    contested = [0x180000 + 64 * i for i in range(contested_blocks)]
    cpu_pool = [0x100000 + 64 * i for i in range(8)] + contested
    adversary_pool = [0x200000 + 64 * i for i in range(8)] + contested
    kwargs = dict(adversary_kwargs or {})
    kwargs.setdefault("addr_pool", adversary_pool)
    if adversary == "flood":
        # Keep the flood alive on a lossy link: re-request addresses whose
        # grant or writeback-ack the link ate.
        kwargs.setdefault("retry_after", 4 * accel_timeout)
    config = SystemConfig(
        host=host,
        org=AccelOrg.XG,
        xg_variant=xg_variant,
        n_cpus=n_cpus,
        cpu_l1_sets=4,
        cpu_l1_assoc=2,
        shared_l2_sets=8,
        shared_l2_assoc=4,
        randomize_latencies=True,
        seed=seed,
        deadlock_threshold=200_000,
        accel_timeout=accel_timeout,
        probe_retries=probe_retries,
        disable_after=disable_after,
        mem_latency=30,
        rate_limit=rate_limit,
        fault_plan=plan,
        lineage=lineage,
        tags={"adversary": (adversary, kwargs)},
    )
    system = build_system(config)
    obs = None
    if telemetry:
        obs = Telemetry(system.sim)
        if series_interval:
            obs.start_series(series_interval)
    # The accelerator owns its private pool and the contested blocks;
    # CPU-only pages carry no accelerator permissions, so CPU data
    # checking stays sound even when the link corrupts accelerator-bound
    # payloads.
    system.permissions.default = PagePermission.NONE
    for addr in adversary_pool:
        system.permissions.grant(addr, PagePermission.READ_WRITE)

    result = ChaosResult()
    tester = RandomTester(
        system.sim,
        system.cpu_seqs,
        cpu_pool,
        ops_target=cpu_ops,
        store_fraction=0.45,
        check_data=True,
        unchecked_blocks=contested,
    )
    adversary_component = system.accel_caches[0]
    adversary_component.start()
    tester.start()
    try:
        # Phase 1: CPUs, accelerator traffic, and link faults together.
        system.sim.run(max_ticks=duration)
        # Phase 2: silence the accelerator, drain remaining transactions —
        # retries/timeouts must close every open probe even if the link
        # keeps eating messages.
        adversary_component.stop()
        tester.stop()
        system.sim.run()
    except DeadlockError as exc:
        result.host_deadlocked = True
        result.crash_detail = f"{type(exc).__name__}: {exc}"
        result.diagnosis = exc.diagnose()
    except Exception as exc:  # noqa: BLE001 - any other escape is a host crash
        result.host_crashed = True
        result.crash_detail = f"{type(exc).__name__}: {exc}"
    if obs is not None:
        # After a full drain every span must have closed through its own
        # lifecycle; finalize() force-closes stragglers as "orphaned" and
        # the count is surfaced so campaigns can assert it stayed zero.
        obs.finalize()
        result.spans_closed = obs.spans.finished_total
        result.spans_orphaned = obs.orphaned_count()
    result.cpu_loads_checked = tester.loads_checked
    result.cpu_loads_value_checked = tester.loads_value_checked
    result.cpu_stores_committed = tester.stores_committed
    result.adversary_messages = adversary_component.stats.get("adversary_msgs")
    result.final_tick = system.sim.tick
    log = system.error_log
    result.violations_total = len(log)
    result.violations = {g.name: n for g, n in log.by_guarantee().items()}
    result.accel_disabled = log.accel_disabled
    result.faults_injected = dict(plan.stats)
    result.faults_total = plan.total_injected
    xg = system.xg
    result.probe_retries = xg.stats.get("probe_retries")
    result.duplicates_sunk = xg.stats.get("duplicates_sunk.accel_request") + xg.stats.get(
        "duplicates_sunk.accel_response"
    )
    result.retry_echoes_absorbed = xg.stats.get("retry_echoes_absorbed")
    result.quarantine_surrogates = xg.stats.get("quarantine_surrogates")
    result.requests_dropped_disabled = xg.stats.get("dropped_disabled")
    return result, system


def _run_chaos_job(host, variant, rates, fault_label, rate, seed, duration,
                   cpu_ops, adversary, accel_timeout, probe_retries):
    """One chaos campaign, worker-side; returns its (picklable) result row."""
    result, _system = run_chaos_campaign(
        host,
        variant,
        faults=rates,
        adversary=adversary,
        seed=seed,
        duration=duration,
        cpu_ops=cpu_ops,
        accel_timeout=accel_timeout,
        probe_retries=probe_retries,
    )
    data = result.as_dict()
    data.update(
        host=host.name,
        variant=variant.name,
        fault=fault_label,
        rate=rate,
        seed=seed,
    )
    return data


def run_chaos_matrix(
    fault_kinds=("drop", "duplicate", "delay", "corrupt"),
    rate=0.2,
    hosts=(HostProtocol.MESI, HostProtocol.HAMMER),
    variants=(XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL),
    adversary="flood",
    seeds=range(1),
    duration=40_000,
    cpu_ops=600,
    accel_timeout=2000,
    probe_retries=2,
    workers=1,
):
    """Sweep fault kind x host x XG variant x seed; one row per campaign.

    Also runs a ``mixed`` campaign per (host, variant, seed) with every
    kind active at once — the compound case is where interaction bugs
    (e.g. a duplicate of a delayed retry answer) actually live.
    ``workers`` distributes the campaigns over a process pool; rows come
    back in submission order, identical to a serial sweep.
    """
    unknown = set(fault_kinds) - set(FAULT_KINDS)
    if unknown:
        raise ValueError(f"unknown fault kinds {sorted(unknown)}")
    mixes = [(kind, {kind: rate}) for kind in fault_kinds]
    if len(fault_kinds) > 1:
        mixes.append(("mixed", {kind: rate / 2 for kind in fault_kinds}))
    campaign_jobs = []
    templates = []
    for host in hosts:
        for variant in variants:
            for fault_label, rates in mixes:
                for seed in seeds:
                    campaign_jobs.append(
                        CampaignJob(
                            runner=_run_chaos_job,
                            args=(host, variant, rates, fault_label, rate, seed,
                                  duration, cpu_ops, adversary, accel_timeout,
                                  probe_retries),
                            label=f"{host.name}/{variant.name}/{fault_label}/seed{seed}",
                        )
                    )
                    template = ChaosResult().as_dict()
                    template.update(
                        host=host.name, variant=variant.name,
                        fault=fault_label, rate=rate, seed=seed,
                    )
                    templates.append(template)
    rows = []
    for template, outcome in zip(templates, run_campaign(campaign_jobs, workers=workers)):
        if outcome.ok:
            rows.append(outcome.value)
        else:
            rows.append(merge_failure_into(template, outcome))
    return rows
