"""Programmable Byzantine accelerators driven by a serializable plan.

The fuzz adversaries (:mod:`repro.accel.buggy`) each hard-code one
misbehavior. A :class:`RogueAccel` instead executes a :class:`RoguePlan`:
a seeded, serializable mix of protocol-legal-but-adversarial and
outright-illegal moves — spurious/unsolicited responses, wrong-address
acks, stale-uid replays, malformed messages, request floods, silence, and
mid-transaction death. The plan owns its own RNG, so a rogue campaign
replays move-for-move from ``(plan, addr_pool)`` alone, independent of
simulator RNG consumption by networks or CPU testers.

Like every adversary, a rogue is watchdog-exempt: the rogue may wedge
itself; the *host* must stay safe, live, and invariant-clean.
"""

import json
import random
from collections import deque

from repro.memory.datablock import DataBlock
from repro.sim.component import Component
from repro.sim.message import Message
from repro.xg.interface import AccelMsg

#: Scheduled move behaviors a plan may weight.
ROGUE_MOVES = (
    "legal_get",           # well-formed GetS/GetM on a free block
    "legal_put",           # well-formed Put of a held block
    "spurious_response",   # InvAck/WB with no pending probe (G2b)
    "wrong_addr_response", # response aimed at an address nobody probed
    "stale_replay",        # resend an old message: same uid (wire replay)
    "stale_response",      # fresh-uid copy of an old, long-closed response
    "malformed",           # non-int addr / unknown mtype / missing payload
    "flood_burst",         # burst of same-tick requests (DoS)
    "silence",             # deliberately do nothing this move
)

#: Reactions a plan may weight for an incoming Invalidate.
ROGUE_INV_RESPONSES = (
    "correct",    # honest WB/InvAck per held state
    "wrong_type", # owner answers InvAck, sharer answers DirtyWB garbage
    "wrong_addr", # answer, but for a different block
    "ignore",     # never answer (G2c timeout path)
    "double",     # answer twice (trailing echo)
)

_MALFORMED_KINDS = ("bad_addr", "bad_type", "missing_data", "resp_on_req")


class RoguePlan:
    """One deterministic Byzantine behavior mix.

    ``moves`` and ``inv_responses`` are ``{behavior: weight}`` dicts over
    :data:`ROGUE_MOVES` / :data:`ROGUE_INV_RESPONSES`. ``die_at`` stops
    the rogue cold (mid-transaction, unread mail and all) that many ticks
    after ``start()``. The plan round-trips through JSON so a failing
    campaign cell can be re-run from its serialized row.
    """

    def __init__(self, name, seed=0, moves=None, inv_responses=None,
                 mean_gap=20, burst=6, die_at=None):
        self.name = name
        self.seed = seed
        self.moves = dict(moves or {"legal_get": 1.0})
        self.inv_responses = dict(inv_responses or {"correct": 1.0})
        self.mean_gap = mean_gap
        self.burst = burst
        self.die_at = die_at
        unknown = set(self.moves) - set(ROGUE_MOVES)
        if unknown:
            raise ValueError(f"unknown rogue moves {sorted(unknown)}")
        unknown = set(self.inv_responses) - set(ROGUE_INV_RESPONSES)
        if unknown:
            raise ValueError(f"unknown invalidate responses {sorted(unknown)}")
        if not self.moves:
            raise ValueError("a plan needs at least one move behavior")

    def as_dict(self):
        return {
            "name": self.name,
            "seed": self.seed,
            "moves": dict(self.moves),
            "inv_responses": dict(self.inv_responses),
            "mean_gap": self.mean_gap,
            "burst": self.burst,
            "die_at": self.die_at,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    def to_json(self):
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def reseed(self, seed):
        """The same behavior mix under a different RNG stream."""
        data = self.as_dict()
        data["seed"] = seed
        return RoguePlan.from_dict(data)

    def __eq__(self, other):
        return isinstance(other, RoguePlan) and self.as_dict() == other.as_dict()

    def __repr__(self):
        return f"RoguePlan({self.name!r}, seed={self.seed}, moves={sorted(self.moves)})"


class RogueAccel(Component):
    """Executes a :class:`RoguePlan` against one Crossing Guard.

    Keeps a FloodingAccel-style view of which blocks it (believes it)
    holds so "legal" moves stay interface-legal, while the adversarial
    moves draw on a bounded log of previously sent messages for replay.
    ``recent_actions`` keeps the last few dozen ``(tick, behavior, mtype,
    addr)`` tuples for forensics; :meth:`diagnose_extra` feeds them into
    :meth:`~repro.sim.simulator.DeadlockError.diagnose`.
    """

    PORTS = ("fromxg",)
    watchdog_exempt = True

    ACTION_LOG_DEPTH = 64
    SENT_LOG_DEPTH = 32

    def __init__(self, sim, name, net, xg_name, addr_pool, plan=None, block_size=64):
        super().__init__(sim, name)
        self.net = net
        self.xg_name = xg_name
        self.block_size = block_size
        self.addr_pool = list(addr_pool)
        self.plan = plan if plan is not None else RoguePlan("default")
        #: plan-owned RNG: rogue behavior replays independently of sim.rng
        self.rng = random.Random(self.plan.seed)
        self._move_names = sorted(self.plan.moves)
        self._move_weights = [self.plan.moves[n] for n in self._move_names]
        self._inv_names = sorted(self.plan.inv_responses)
        self._inv_weights = [self.plan.inv_responses[n] for n in self._inv_names]
        self.held = {}     # addr -> 'S' | 'O' (what we believe we hold)
        self.pending = set()
        self.sent_log = deque(maxlen=self.SENT_LOG_DEPTH)  # (msg, port)
        self.recent_actions = deque(maxlen=self.ACTION_LOG_DEPTH)
        self.messages_sent = 0
        self.stopped = False
        self.dead = False
        self.died_at = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self):
        self.sim.schedule(1, self._tick)
        if self.plan.die_at is not None:
            self.sim.schedule(self.plan.die_at, self._die)

    def stop(self):
        self.stopped = True

    def _die(self):
        # Mid-transaction death: open Gets stay open, probes go unanswered,
        # delivered mail rots in the in-port. The host must not care.
        if not self.dead:
            self.dead = True
            self.died_at = self.sim.tick
            self._note("die", None, None)

    @property
    def active(self):
        return not (self.stopped or self.dead)

    # -- plumbing ------------------------------------------------------------------

    def _note(self, behavior, mtype, addr):
        name = getattr(mtype, "name", mtype)
        self.recent_actions.append((self.sim.tick, behavior, name, addr))

    def _emit(self, mtype, addr, port, data=None, dirty=False, behavior=""):
        msg = Message(
            mtype, addr, sender=self.name, dest=self.xg_name, data=data, dirty=dirty
        )
        self.net.send(msg, port)
        # Log a private clone: the XG releases the delivered instance to
        # the message pool once consumed, and stale_replay must re-send
        # the original contents, not whatever the carrier was recycled as.
        self.sent_log.append((msg.clone(), port))
        self.messages_sent += 1
        self.stats.inc("adversary_msgs")
        self._note(behavior or "emit", mtype, addr)
        return msg

    def _random_block(self):
        data = DataBlock(self.block_size)
        for offset in range(0, self.block_size, 8):
            data.write_byte(offset, self.rng.randrange(256))
        return data

    # -- scheduled moves -----------------------------------------------------------

    def _tick(self):
        if not self.active:
            return
        behavior = self.rng.choices(self._move_names, weights=self._move_weights)[0]
        getattr(self, f"_move_{behavior}")()
        self.sim.schedule(self.rng.randint(1, 2 * self.plan.mean_gap), self._tick)

    def _move_legal_get(self):
        free = [a for a in self.addr_pool if a not in self.held and a not in self.pending]
        if not free:
            self._note("legal_get_skipped", None, None)
            return
        addr = self.rng.choice(free)
        mtype = AccelMsg.GetM if self.rng.random() < 0.5 else AccelMsg.GetS
        self.pending.add(addr)
        self._emit(mtype, addr, "accel_request", behavior="legal_get")

    def _move_legal_put(self):
        if not self.held:
            return self._move_legal_get()
        addr = self.rng.choice(sorted(self.held))
        state = self.held.pop(addr)
        if state == "O":
            self._emit(AccelMsg.PutM, addr, "accel_request",
                       data=self._random_block(), dirty=True, behavior="legal_put")
        else:
            self._emit(AccelMsg.PutS, addr, "accel_request", behavior="legal_put")

    def _move_spurious_response(self):
        addr = self.rng.choice(self.addr_pool)
        mtype = self.rng.choice((AccelMsg.InvAck, AccelMsg.CleanWB, AccelMsg.DirtyWB))
        data = self._random_block() if mtype is not AccelMsg.InvAck else None
        self._emit(mtype, addr, "accel_response", data=data,
                   dirty=mtype is AccelMsg.DirtyWB, behavior="spurious_response")

    def _move_wrong_addr_response(self):
        # Aim at a block far outside the granted pool: exercises the
        # no-pending-probe and permission paths at once.
        addr = self.rng.choice(self.addr_pool) + 64 * self.rng.randint(64, 128)
        self._emit(AccelMsg.DirtyWB, addr, "accel_response",
                   data=self._random_block(), dirty=True,
                   behavior="wrong_addr_response")

    def _move_stale_replay(self):
        if not self.sent_log:
            return self._move_legal_get()
        msg, port = self.rng.choice(list(self.sent_log))
        # clone() keeps the uid: a wire-level replay XG must dedupe-sink.
        self.net.send(msg.clone(), port)
        self.messages_sent += 1
        self.stats.inc("adversary_msgs")
        self._note("stale_replay", msg.mtype, msg.addr)

    def _move_stale_response(self):
        # A *fresh-uid* copy of long-dead response traffic: not a wire
        # duplicate, so it must land in the G2b accounting instead.
        addr = self.rng.choice(self.addr_pool)
        self._emit(AccelMsg.InvAck, addr, "accel_response",
                   behavior="stale_response")

    def _move_malformed(self):
        kind = self.rng.choice(_MALFORMED_KINDS)
        if kind == "bad_addr":
            # non-integer address: must be rejected before alignment math
            self._emit(AccelMsg.GetM, "0xBAD", "accel_request",
                       behavior="malformed_bad_addr")
        elif kind == "bad_type":
            port = self.rng.choice(("accel_request", "accel_response"))
            self._emit("Bogus", self.rng.choice(self.addr_pool), port,
                       behavior="malformed_bad_type")
        elif kind == "missing_data":
            self._emit(AccelMsg.PutM, self.rng.choice(self.addr_pool),
                       "accel_request", data=None, dirty=True,
                       behavior="malformed_missing_data")
        else:  # resp_on_req
            self._emit(AccelMsg.InvAck, self.rng.choice(self.addr_pool),
                       "accel_request", behavior="malformed_resp_on_req")

    def _move_flood_burst(self):
        for _ in range(self.plan.burst):
            addr = self.rng.choice(self.addr_pool)
            self._emit(AccelMsg.GetM, addr, "accel_request", behavior="flood_burst")

    def _move_silence(self):
        self._note("silence", None, None)

    # -- reactions -----------------------------------------------------------------

    def wakeup(self):
        if self.dead:
            return  # unread mail piles up; that is the point
        while True:
            msg = self.in_ports["fromxg"].pop(self.sim.tick)
            if msg is None:
                return
            self._handle_from_xg(msg)
            msg.release()

    def _handle_from_xg(self, msg):
        mtype = msg.mtype
        if mtype in (AccelMsg.DataS, AccelMsg.DataE, AccelMsg.DataM):
            self.pending.discard(msg.addr)
            self.held[msg.addr] = "S" if mtype is AccelMsg.DataS else "O"
            self._note("granted", mtype, msg.addr)
        elif mtype is AccelMsg.WBAck:
            self._note("wback_acked", mtype, msg.addr)
        elif mtype is AccelMsg.Nack:
            self.pending.discard(msg.addr)
            self.stats.inc("nacks_seen")
            self._note("nacked", mtype, msg.addr)
        elif mtype is AccelMsg.Invalidate:
            self._answer_invalidate(msg.addr)
        else:
            self._note("ignored_from_xg", mtype, msg.addr)

    def _answer_correct(self, addr, state):
        if state == "O":
            self._emit(AccelMsg.DirtyWB, addr, "accel_response",
                       data=self._random_block(), dirty=True, behavior="inv_correct")
        else:
            self._emit(AccelMsg.InvAck, addr, "accel_response", behavior="inv_correct")

    def _answer_invalidate(self, addr):
        reaction = self.rng.choices(self._inv_names, weights=self._inv_weights)[0]
        state = self.held.pop(addr, None)
        if reaction == "ignore":
            self.stats.inc("invalidates_ignored")
            self._note("inv_ignored", AccelMsg.Invalidate, addr)
        elif reaction == "wrong_type":
            if state == "O":
                self._emit(AccelMsg.InvAck, addr, "accel_response",
                           behavior="inv_wrong_type")
            else:
                self._emit(AccelMsg.DirtyWB, addr, "accel_response",
                           data=self._random_block(), dirty=True,
                           behavior="inv_wrong_type")
        elif reaction == "wrong_addr":
            self._emit(AccelMsg.InvAck, addr + self.block_size, "accel_response",
                       behavior="inv_wrong_addr")
        elif reaction == "double":
            self._answer_correct(addr, state)
            self._answer_correct(addr, state)
        else:
            self._answer_correct(addr, state)

    # -- forensics -----------------------------------------------------------------

    def diagnose_extra(self, last=8):
        """Self-describing lines for :meth:`DeadlockError.diagnose`."""
        status = "dead" if self.dead else ("stopped" if self.stopped else "active")
        lines = [
            f"rogue plan={self.plan.name!r} seed={self.plan.seed} status={status}"
            + (f" died_at={self.died_at}" if self.died_at is not None else "")
            + f" sent={self.messages_sent} held={len(self.held)} "
            f"pending={len(self.pending)}"
        ]
        for tick, behavior, mtype, addr in list(self.recent_actions)[-last:]:
            addr_s = f"{addr:#x}" if isinstance(addr, int) else str(addr)
            lines.append(f"t={tick} {behavior} {mtype or '-'} {addr_s}")
        return lines
