"""Single-level accelerator L1 cache — the paper's Table 1, verbatim.

Four stable states (MESI) and a *single* transient state B. Compare with
the host MESI L1, which needs six transient states, ack counters, and
seven response kinds: the entire point of the Crossing Guard interface is
that this table is all an accelerator designer must implement.

Degenerate modes (Section 2.1):

* ``MSI`` — treat DataE as DataM and send only Dirty Writebacks;
* ``VI`` — issue only GetM, hold blocks only in M.
"""

import enum

from repro.coherence.controller import CONSUMED, RETRY, STALL
from repro.protocols.common import CacheControllerBase, CpuOp
from repro.sim.message import Message
from repro.xg.interface import AccelMsg


class AL1State(enum.Enum):
    I = enum.auto()
    S = enum.auto()
    E = enum.auto()
    M = enum.auto()
    B = enum.auto()  # the single transient: any request outstanding


class AL1Event(enum.Enum):
    Load = enum.auto()
    Store = enum.auto()
    Replacement = enum.auto()
    Invalidate = enum.auto()
    DataM = enum.auto()
    DataE = enum.auto()
    DataS = enum.auto()
    WBAck = enum.auto()


class AccelL1Mode(enum.Enum):
    MESI = enum.auto()
    MSI = enum.auto()
    VI = enum.auto()


_XG_EVENTS = {
    AccelMsg.DataM: AL1Event.DataM,
    AccelMsg.DataE: AL1Event.DataE,
    AccelMsg.DataS: AL1Event.DataS,
    AccelMsg.WBAck: AL1Event.WBAck,
    AccelMsg.Invalidate: AL1Event.Invalidate,
}


class AccelL1(CacheControllerBase):
    """Customized accelerator cache speaking the XG interface."""

    CONTROLLER_TYPE = "accel_l1"
    PORTS = ("fromxg", "mandatory")
    INVALID_STATE = AL1State.I

    def __init__(
        self,
        sim,
        name,
        net,
        xg_name,
        num_sets=64,
        assoc=4,
        block_size=64,
        mode=AccelL1Mode.MESI,
    ):
        self.net = net
        self.xg_name = xg_name
        self.mode = mode
        super().__init__(sim, name, num_sets=num_sets, assoc=assoc, block_size=block_size)

    # -- helpers ----------------------------------------------------------------

    def _to_xg(self, mtype, addr, port="accel_request", **kw):
        msg = Message(mtype, addr, sender=self.name, dest=self.xg_name, **kw)
        self.net.send(msg, port)
        return msg

    def _fill_room(self, addr):
        set_index = self.cache.set_index(self.align(addr))
        occupied = sum(
            1 for entry in self.cache.entries() if self.cache.set_index(entry.addr) == set_index
        )
        reserved = sum(
            1
            for tbe in self.tbes
            if tbe.meta.get("needs_slot") and self.cache.set_index(tbe.addr) == set_index
        )
        return self.cache.assoc - occupied - reserved

    # -- dispatch --------------------------------------------------------------------

    def handle_message(self, port, msg):
        # Monomorphic fast path: grants/probes from XG dominate, and
        # "fromxg" is also the higher-priority port — check it first.
        if port == "fromxg":
            try:
                event = _XG_EVENTS[msg.mtype]
            except KeyError:
                # XG-originated administrative traffic (e.g. a Nack to a
                # quarantined sibling) is outside Table 1; a real
                # accelerator ignores what it does not implement.
                self.stats.inc("unexpected_from_xg")
                return CONSUMED
            return self.fire(self.block_state(msg.addr), event, msg)
        return self._handle_mandatory(msg)

    def _handle_mandatory(self, msg):
        addr = self.align(msg.addr)
        state = self.block_state(addr)
        event = AL1Event.Load if msg.mtype is CpuOp.Load else AL1Event.Store
        if state is AL1State.B:
            return STALL
        if state is AL1State.I and self._fill_room(addr) <= 0:
            victim = self.stable_victim(addr)
            if victim is not None:
                synthetic = Message(event, victim.addr, sender=self.name, dest=self.name)
                self.fire(victim.state, AL1Event.Replacement, synthetic)
            return RETRY
        return self.fire(state, event, msg)

    # -- Table 1 ------------------------------------------------------------------------

    def _build_transitions(self):
        t = self.transitions
        S, E = AL1State, AL1Event
        t[(S.M, E.Load)] = self._hit_load
        t[(S.M, E.Store)] = self._hit_store
        t[(S.M, E.Replacement)] = self._m_repl
        t[(S.M, E.Invalidate)] = self._m_inv
        t[(S.E, E.Load)] = self._hit_load
        t[(S.E, E.Store)] = self._e_store
        t[(S.E, E.Replacement)] = self._e_repl
        t[(S.E, E.Invalidate)] = self._e_inv
        t[(S.S, E.Load)] = self._hit_load
        t[(S.S, E.Store)] = self._s_store
        t[(S.S, E.Replacement)] = self._s_repl
        t[(S.S, E.Invalidate)] = self._stable_inv_ack
        t[(S.I, E.Load)] = self._i_load
        t[(S.I, E.Store)] = self._i_store
        t[(S.I, E.Invalidate)] = self._i_inv
        t[(S.B, E.Invalidate)] = self._b_inv
        t[(S.B, E.DataM)] = self._b_data_m
        t[(S.B, E.DataE)] = self._b_data_e
        t[(S.B, E.DataS)] = self._b_data_s
        t[(S.B, E.WBAck)] = self._b_wback

    # -- stable-state CPU ops ----------------------------------------------------------

    def _hit_load(self, msg):
        entry = self.cache.lookup(msg.addr)
        self.respond_to_cpu(msg, entry.data)
        self.stats.inc("accel_load_hits")
        return CONSUMED

    def _hit_store(self, msg):
        entry = self.cache.lookup(msg.addr)
        entry.data.write_byte(self.offset(msg.addr), msg.value)
        entry.dirty = True
        self.respond_to_cpu(msg, entry.data)
        self.stats.inc("accel_store_hits")
        return CONSUMED

    def _e_store(self, msg):
        entry = self.cache.lookup(msg.addr)
        entry.state = AL1State.M  # silent E->M, allowed by the interface
        return self._hit_store(msg)

    def _s_store(self, msg):
        addr = self.align(msg.addr)
        tbe = self.tbes.allocate(addr, AL1State.B, now=self.sim.tick)
        tbe.origin = msg
        self._to_xg(AccelMsg.GetM, addr)
        self.stats.inc("accel_upgrades")
        return CONSUMED

    def _i_load(self, msg):
        addr = self.align(msg.addr)
        tbe = self.tbes.allocate(addr, AL1State.B, now=self.sim.tick)
        tbe.origin = msg
        tbe.meta["needs_slot"] = True
        if self.mode is AccelL1Mode.VI:
            self._to_xg(AccelMsg.GetM, addr)
        else:
            self._to_xg(AccelMsg.GetS, addr)
        self.stats.inc("accel_load_misses")
        return CONSUMED

    def _i_store(self, msg):
        addr = self.align(msg.addr)
        tbe = self.tbes.allocate(addr, AL1State.B, now=self.sim.tick)
        tbe.origin = msg
        tbe.meta["needs_slot"] = True
        self._to_xg(AccelMsg.GetM, addr)
        self.stats.inc("accel_store_misses")
        return CONSUMED

    # -- replacements -----------------------------------------------------------------------

    def _m_repl(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        tbe = self.tbes.allocate(addr, AL1State.B, now=self.sim.tick)
        tbe.meta["put"] = True
        self._to_xg(AccelMsg.PutM, addr, data=entry.data.copy(), dirty=True)
        return CONSUMED

    def _e_repl(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        tbe = self.tbes.allocate(addr, AL1State.B, now=self.sim.tick)
        tbe.meta["put"] = True
        if self.mode is AccelL1Mode.MESI:
            self._to_xg(AccelMsg.PutE, addr, data=entry.data.copy(), dirty=False)
        else:
            # MSI/VI modes only ever send Dirty Writebacks / PutM.
            self._to_xg(AccelMsg.PutM, addr, data=entry.data.copy(), dirty=True)
        return CONSUMED

    def _s_repl(self, msg):
        addr = msg.addr
        tbe = self.tbes.allocate(addr, AL1State.B, now=self.sim.tick)
        tbe.meta["put"] = True
        self._to_xg(AccelMsg.PutS, addr)
        return CONSUMED

    # -- invalidations ---------------------------------------------------------------------------

    def _m_inv(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        self._to_xg(
            AccelMsg.DirtyWB, msg.addr, port="accel_response", data=entry.data.copy(), dirty=True
        )
        self.cache.deallocate(msg.addr)
        return CONSUMED

    def _e_inv(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        if self.mode is AccelL1Mode.MESI:
            self._to_xg(
                AccelMsg.CleanWB, msg.addr, port="accel_response", data=entry.data.copy()
            )
        else:
            self._to_xg(
                AccelMsg.DirtyWB,
                msg.addr,
                port="accel_response",
                data=entry.data.copy(),
                dirty=True,
            )
        self.cache.deallocate(msg.addr)
        return CONSUMED

    def _stable_inv_ack(self, msg):
        self._to_xg(AccelMsg.InvAck, msg.addr, port="accel_response")
        self.cache.deallocate(msg.addr)
        return CONSUMED

    def _i_inv(self, msg):
        self._to_xg(AccelMsg.InvAck, msg.addr, port="accel_response")
        return CONSUMED

    def _b_inv(self, msg):
        # "If the block is not in a stable state, the accelerator cache
        # should always return an InvAck ... and take no further action."
        self._to_xg(AccelMsg.InvAck, msg.addr, port="accel_response")
        return CONSUMED

    # -- data / writeback completions --------------------------------------------------------------

    def _b_data_m(self, msg):
        return self._fill(msg, AL1State.M, dirty=True)

    def _b_data_e(self, msg):
        if self.mode is AccelL1Mode.MESI:
            return self._fill(msg, AL1State.E, dirty=False)
        # MSI/VI: treat DataE as DataM.
        return self._fill(msg, AL1State.M, dirty=True)

    def _b_data_s(self, msg):
        return self._fill(msg, AL1State.S, dirty=False)

    def _fill(self, msg, state, dirty):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.lookup(addr, touch=False)
        if entry is None:
            entry = self.cache.allocate(addr, state, data=msg.data.copy(), dirty=dirty)
        else:
            entry.state = state
            entry.data = msg.data.copy()
            entry.dirty = dirty
        op = tbe.origin
        if op.mtype is CpuOp.Store:
            if state in (AL1State.S,):
                # Grant was only shared but we wanted M: re-request.
                # (Cannot happen with a correct XG; defensive.)
                tbe.origin = op
                self._to_xg(AccelMsg.GetM, addr)
                return CONSUMED
            entry.data.write_byte(self.offset(op.addr), op.value)
            entry.dirty = True
            if entry.state is AL1State.E:
                entry.state = AL1State.M
            self.stats.inc("accel_stores_completed")
        else:
            self.stats.inc("accel_loads_completed")
        self.respond_to_cpu(op, entry.data)
        self.sim.stats_for("latency").observe(
            "accel_miss_latency", self.sim.tick - tbe.opened_at
        )
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)
        return CONSUMED

    def _b_wback(self, msg):
        addr = msg.addr
        if self.cache.lookup(addr, touch=False) is not None:
            self.cache.deallocate(addr)
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)
        return CONSUMED
