"""A customized accelerator cache: streaming with sequential prefetch.

The paper's motivation for the interface is exactly this freedom: "An
accelerator that performs mostly streaming accesses may prefetch
aggressively" (Section 1) — without asking the host designer for
anything. This cache is Table 1 plus a prefetcher:

* on a demand miss to block B it also issues GetS for B+1..B+depth
  (each a perfectly ordinary interface request, one per block, so
  Guarantee 1b is respected by construction);
* prefetched fills park in the cache like any other block; a later
  demand hit on them is the win;
* everything else — states, Invalidate handling, writebacks — is
  inherited unchanged from the Table 1 automaton.

The host never knows: prefetches are indistinguishable from demand
GetS requests, which is the interface working as designed.
"""

from repro.accel.l1_single import AL1State, AccelL1
from repro.coherence.controller import CONSUMED
from repro.xg.interface import AccelMsg


class StreamingAccelL1(AccelL1):
    """Table 1 cache + sequential prefetcher."""

    CONTROLLER_TYPE = "accel_l1_streaming"

    def __init__(self, *args, prefetch_depth=2, **kwargs):
        self.prefetch_depth = prefetch_depth
        super().__init__(*args, **kwargs)

    # -- prefetch issue ---------------------------------------------------------

    def _i_load(self, msg):
        outcome = super()._i_load(msg)
        self._prefetch_after(msg.addr)
        return outcome

    def _prefetch_after(self, addr):
        base = self.align(addr)
        for step in range(1, self.prefetch_depth + 1):
            target = base + step * self.block_size
            if self.block_state(target) is not AL1State.I:
                continue  # resident or already in flight
            if self._fill_room(target) <= 0:
                continue  # never evict demand data for a prefetch
            tbe = self.tbes.allocate(target, AL1State.B, now=self.sim.tick)
            tbe.origin = None  # no CPU op waiting
            tbe.meta["needs_slot"] = True
            tbe.meta["prefetch"] = True
            self._to_xg(AccelMsg.GetS, target)
            self.stats.inc("prefetches_issued")

    # -- fills: a prefetch has no CPU op to complete --------------------------------

    def _fill(self, msg, state, dirty):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        if tbe is not None and tbe.meta.get("prefetch"):
            entry = self.cache.lookup(addr, touch=False)
            if entry is None:
                entry = self.cache.allocate(
                    addr, state, data=msg.data.copy(), dirty=dirty
                )
            else:
                entry.state = state
                entry.data = msg.data.copy()
                entry.dirty = dirty
            entry.meta["prefetched_unused"] = True
            self.stats.inc("prefetch_fills")
            self.tbes.deallocate(addr)
            self.wake_stalled(addr)
            return CONSUMED
        return super()._fill(msg, state, dirty)

    # -- accounting: demand hits on prefetched blocks ------------------------------------

    def _hit_load(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        if entry is not None and entry.meta.get("prefetched_unused"):
            entry.meta["prefetched_unused"] = False
            self.stats.inc("prefetch_hits")
        return super()._hit_load(msg)
