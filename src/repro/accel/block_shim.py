"""Block-size translation between a wide-block accelerator and Crossing
Guard (paper Section 2.5).

The accelerator uses blocks N x the host's 64B. On an accelerator Get the
shim requests every component host block, merges them, and answers with a
single wide DataM; writebacks are split back into component Puts. A host
Invalidate for any component invalidates the whole accelerator block; the
probed component is answered from the wide writeback and the remaining
components are flushed back with Puts (exactly the merge/split behavior
the paper sketches).

Grant policy: components are always requested with GetM, so grants are
uniformly exclusive and the accelerator sees plain DataM — the natural
fit for the wide-block streaming/decoder accelerators that motivate
larger blocks. (Mixed shared/exclusive component grants are the case the
paper notes would force Crossing Guard to hold per-component data; this
shim sidesteps it by design.) Works with the Table 1 cache in any of its
modes since DataM is a legal response to both GetS and GetM.
"""

from repro.coherence.controller import CONSUMED, STALL, CoherenceController, ProtocolError
from repro.memory.datablock import DataBlock
from repro.sim.message import Message
from repro.xg.block_translator import BlockTranslator
from repro.xg.interface import AccelMsg


class _BigBlock:
    """Shim-side record of one wide block's residency."""

    __slots__ = ("state", "pending", "data", "probed", "origin", "put_acks")

    def __init__(self, state):
        self.state = state  # fetching | held | flushing | invalidating
        self.pending = {}  # component addr -> DataBlock (fetch collection)
        self.data = None
        self.probed = None  # component addr an XG Invalidate asked about
        self.origin = None  # accel request being served
        self.put_acks = 0  # outstanding component WBAcks


class BlockShim(CoherenceController):
    """Sits between a wide-block accelerator cache and Crossing Guard."""

    CONTROLLER_TYPE = "block_shim"
    PORTS = ("fromxg", "accel_response", "accel_request")

    def __init__(self, sim, name, accel_net, xg_name, accel_block_size=256, host_block_size=64):
        self.net = accel_net
        self.xg_name = xg_name
        self.accel_name = None
        self.translator = BlockTranslator(
            host_block_size=host_block_size, accel_block_size=accel_block_size
        )
        self.blocks = {}
        super().__init__(sim, name)

    def _build_transitions(self):
        return

    def attach_accelerator(self, accel_name):
        self.accel_name = accel_name

    # -- sends ---------------------------------------------------------------

    def _to_xg(self, mtype, addr, port, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=self.xg_name, **kw)
        self.net.send(msg, port)
        return msg

    def _to_accel(self, mtype, addr, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=self.accel_name, **kw)
        self.net.send(msg, "fromxg")
        return msg

    def stall_key(self, msg):
        return self.translator.accel_align(msg.addr)

    # -- dispatch ---------------------------------------------------------------

    def handle_message(self, port, msg):
        if port == "accel_request":
            return self._accel_request(msg)
        if port == "accel_response":
            return self._accel_response(msg)
        return self._from_xg(msg)

    # -- accelerator side -----------------------------------------------------------

    def _accel_request(self, msg):
        big = self.translator.accel_align(msg.addr)
        record = self.blocks.get(big)
        if msg.mtype in (AccelMsg.GetS, AccelMsg.GetM):
            if record is not None:
                return STALL  # wide block busy: fetch/flush/probe in flight
            record = _BigBlock("fetching")
            record.origin = msg
            self.blocks[big] = record
            for component in self.translator.host_blocks_for(big):
                self._to_xg(AccelMsg.GetM, component, "accel_request")
            self.stats.inc("wide_fetches")
            return CONSUMED
        if msg.mtype in (AccelMsg.PutE, AccelMsg.PutM):
            if record is not None and record.state == "awaiting_wb":
                return self._put_probe_race(msg, big, record)
            if record is not None and record.state == "held":
                # Normal replacement of a resident wide block.
                del self.blocks[big]
                record = None
            if record is not None:
                return STALL
            record = _BigBlock("flushing")
            record.data = msg.data.copy()
            self.blocks[big] = record
            pieces = self.translator.split(big, msg.data)
            record.put_acks = len(pieces)
            for component, piece in pieces.items():
                self._to_xg(
                    AccelMsg.PutM, component, "accel_request", data=piece, dirty=True
                )
            self._to_accel(AccelMsg.WBAck, big)
            self.stats.inc("wide_writebacks")
            return CONSUMED
        raise ProtocolError(self, "shim", msg.mtype, msg, note="unsupported accel request")

    def _put_probe_race(self, msg, big, record):
        """Accelerator's wide Put crossed our wide Invalidate."""
        self._to_accel(AccelMsg.WBAck, big)
        self._finish_invalidation(big, record, msg.data.copy(), expect_trailing_ack=True)
        self.stats.inc("wide_put_inv_races")
        return CONSUMED

    def _accel_response(self, msg):
        big = self.translator.accel_align(msg.addr)
        record = self.blocks.get(big)
        if record is None:
            self.stats.inc("unexpected_accel_responses")
            return CONSUMED
        if record.state == "flushing" and record.probed == "race_done":
            # Trailing InvAck after a Put/Invalidate race: absorb, and the
            # record closes when the sibling Puts complete.
            record.probed = None
            self._maybe_close_flush(big, record)
            return CONSUMED
        if record.state != "awaiting_wb":
            self.stats.inc("unexpected_accel_responses")
            return CONSUMED
        if msg.mtype in (AccelMsg.CleanWB, AccelMsg.DirtyWB):
            self._finish_invalidation(big, record, msg.data.copy(), expect_trailing_ack=False)
        else:  # InvAck: accelerator did not hold it after all
            self._to_xg(AccelMsg.InvAck, record.probed, "accel_response")
            del self.blocks[big]
            self.wake_stalled(big)
        return CONSUMED

    def _finish_invalidation(self, big, record, data, expect_trailing_ack):
        """Answer the probed component; flush the siblings with Puts."""
        pieces = self.translator.split(big, data)
        probed = record.probed
        siblings = [c for c in pieces if c != probed]
        self._to_xg(
            AccelMsg.DirtyWB, probed, "accel_response", data=pieces[probed], dirty=True
        )
        for component in siblings:
            self._to_xg(
                AccelMsg.PutM, component, "accel_request", data=pieces[component], dirty=True
            )
        record.state = "flushing"
        record.put_acks = len(siblings)
        record.probed = "race_done" if expect_trailing_ack else None
        self._maybe_close_flush(big, record)
        # Probes for sibling components stalled while we awaited the wide
        # writeback can now be answered: their data is in flight as Puts.
        self.wake_stalled(big)

    # -- XG side -----------------------------------------------------------------------

    def _from_xg(self, msg):
        big = self.translator.accel_align(msg.addr)
        record = self.blocks.get(big)
        if msg.mtype in (AccelMsg.DataS, AccelMsg.DataE, AccelMsg.DataM):
            record.pending[self.translator.host_align(msg.addr)] = msg.data.copy()
            if len(record.pending) == self.translator.ratio:
                merged = self.translator.merge(big, record.pending)
                self._to_accel(AccelMsg.DataM, big, data=merged, dirty=True)
                record.state = "held"
                record.pending = {}
                record.origin = None
                self.wake_stalled(big)
            return CONSUMED
        if msg.mtype is AccelMsg.WBAck:
            record.put_acks -= 1
            self._maybe_close_flush(big, record)
            return CONSUMED
        if msg.mtype is AccelMsg.Invalidate:
            if record is None:
                self._to_xg(AccelMsg.InvAck, msg.addr, "accel_response")
                return CONSUMED
            if record.state == "held":
                record.state = "awaiting_wb"
                record.probed = self.translator.host_align(msg.addr)
                self._to_accel(AccelMsg.Invalidate, big)
                return CONSUMED
            if record.state == "flushing":
                # Every component Put is already in flight; XG's put/probe
                # race machinery consumes the Put as the probe's data, and
                # this ack is the trailing response it then expects.
                self._to_xg(AccelMsg.InvAck, msg.addr, "accel_response")
                return CONSUMED
            # fetching (XG never probes a component it is still granting)
            # or awaiting_wb (the data is coming; answer afterwards):
            # hold the probe until this wide block settles.
            return STALL
        raise ProtocolError(self, "shim", msg.mtype, msg, note="unexpected XG message")

    def _maybe_close_flush(self, big, record):
        if record.put_acks <= 0 and record.probed is None and record.state == "flushing":
            del self.blocks[big]
            self.wake_stalled(big)
