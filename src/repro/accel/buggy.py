"""Pathological accelerator models (paper Section 4 safety evaluation).

None of these are protocol state machines — they are adversaries aimed at
Crossing Guard. The fuzz harness asserts that no matter what they emit,
the *host* never crashes (no ProtocolError), never deadlocks, and every
violation lands in the OS error log. All models are watchdog-exempt: the
accelerator itself is allowed to wedge, the host is not.
"""

from repro.sim.component import Component
from repro.sim.message import Message
from repro.memory.datablock import DataBlock
from repro.xg.interface import ACCEL_RESPONSES, AccelMsg

_ALL_ACCEL_TYPES = list(AccelMsg)


class _AdversaryBase(Component):
    """Common plumbing: a wired XG target and helpers to emit messages."""

    PORTS = ("fromxg",)
    watchdog_exempt = True

    def __init__(self, sim, name, net, xg_name, block_size=64):
        super().__init__(sim, name)
        self.net = net
        self.xg_name = xg_name
        self.block_size = block_size

    def _emit(self, mtype, addr, port, data=None, dirty=False):
        msg = Message(
            mtype, addr, sender=self.name, dest=self.xg_name, data=data, dirty=dirty
        )
        self.net.send(msg, port)
        self.stats.inc("adversary_msgs")
        return msg

    def _random_block(self, rng):
        data = DataBlock(self.block_size)
        for offset in range(0, self.block_size, 8):
            data.write_byte(offset, rng.randrange(256))
        return data


class FuzzingAccel(_AdversaryBase):
    """Sends completely random interface messages to random addresses.

    Message type, channel (request vs response), payload presence, and
    timing are all random — including interface-illegal combinations
    (responses with no request, requests with missing data, data where
    none belongs). This is the paper's "bombard the Crossing Guard with a
    stream of random coherence messages" experiment.
    """

    def __init__(self, sim, name, net, xg_name, addr_pool, mean_gap=10, block_size=64):
        super().__init__(sim, name, net, xg_name, block_size=block_size)
        self.addr_pool = list(addr_pool)
        self.mean_gap = mean_gap
        self.messages_sent = 0
        self.stopped = False

    def start(self):
        self.sim.schedule(1, self._tick)

    def stop(self):
        self.stopped = True

    def _tick(self):
        if self.stopped:
            return
        rng = self.sim.rng
        mtype = rng.choice(_ALL_ACCEL_TYPES)
        addr = rng.choice(self.addr_pool)
        port = rng.choice(["accel_request", "accel_response"])
        data = self._random_block(rng) if rng.random() < 0.5 else None
        self._emit(mtype, addr, port, data=data, dirty=rng.random() < 0.5)
        self.messages_sent += 1
        self.sim.schedule(rng.randint(1, 2 * self.mean_gap), self._tick)

    def wakeup(self):
        # Drain and ignore everything XG sends us.
        for port in self.PORTS:
            while self.in_ports[port].pop(self.sim.tick) is not None:
                self.stats.inc("ignored_from_xg")


class DeafAccel(_AdversaryBase):
    """Issues legitimate Gets but never answers an Invalidate (G2c).

    The host's probes must still complete via XG's timeout surrogate
    responses.
    """

    def __init__(self, sim, name, net, xg_name, addr_pool, gap=50, block_size=64):
        super().__init__(sim, name, net, xg_name, block_size=block_size)
        self.addr_pool = list(addr_pool)
        self.gap = gap
        self.requests_sent = 0
        self.invalidates_ignored = 0
        self.stopped = False

    def start(self):
        self.sim.schedule(1, self._tick)

    def stop(self):
        self.stopped = True

    def _tick(self):
        if self.stopped:
            return
        rng = self.sim.rng
        addr = rng.choice(self.addr_pool)
        mtype = AccelMsg.GetM if rng.random() < 0.5 else AccelMsg.GetS
        self._emit(mtype, addr, "accel_request")
        self.requests_sent += 1
        self.sim.schedule(rng.randint(1, 2 * self.gap), self._tick)

    def wakeup(self):
        while True:
            msg = self.in_ports["fromxg"].pop(self.sim.tick)
            if msg is None:
                return
            if msg.mtype is AccelMsg.Invalidate:
                self.invalidates_ignored += 1  # say nothing, ever


class WrongResponderAccel(_AdversaryBase):
    """Tracks its blocks like a real cache but answers Invalidates wrong.

    Owned blocks get an InvAck (the paper's zero-writeback correction
    case, G2a); shared blocks get a DirtyWB of garbage (the forwarded-
    data tolerance case).
    """

    def __init__(self, sim, name, net, xg_name, addr_pool, gap=50, block_size=64):
        super().__init__(sim, name, net, xg_name, block_size=block_size)
        self.addr_pool = list(addr_pool)
        self.gap = gap
        self.blocks = {}  # addr -> 'S' | 'O'
        self.pending = set()
        self.wrong_responses = 0
        self.stopped = False

    def start(self):
        self.sim.schedule(1, self._tick)

    def stop(self):
        self.stopped = True

    def _tick(self):
        if self.stopped:
            return
        rng = self.sim.rng
        candidates = [a for a in self.addr_pool if a not in self.pending and a not in self.blocks]
        if candidates:
            addr = rng.choice(candidates)
            mtype = AccelMsg.GetM if rng.random() < 0.5 else AccelMsg.GetS
            self._emit(mtype, addr, "accel_request")
            self.pending.add(addr)
        self.sim.schedule(rng.randint(1, 2 * self.gap), self._tick)

    def wakeup(self):
        while True:
            msg = self.in_ports["fromxg"].pop(self.sim.tick)
            if msg is None:
                return
            if msg.mtype in (AccelMsg.DataS, AccelMsg.DataE, AccelMsg.DataM):
                self.pending.discard(msg.addr)
                self.blocks[msg.addr] = (
                    "O" if msg.mtype in (AccelMsg.DataE, AccelMsg.DataM) else "S"
                )
            elif msg.mtype is AccelMsg.Invalidate:
                held = self.blocks.pop(msg.addr, None)
                if held == "O":
                    # Owner answering with a bare ack: XG must substitute
                    # a zero-block writeback.
                    self._emit(AccelMsg.InvAck, msg.addr, "accel_response")
                else:
                    # Non-owner answering with dirty garbage.
                    self._emit(
                        AccelMsg.DirtyWB,
                        msg.addr,
                        "accel_response",
                        data=self._random_block(self.sim.rng),
                        dirty=True,
                    )
                self.wrong_responses += 1


class FloodingAccel(_AdversaryBase):
    """Denial-of-service: legitimate requests at line rate (Section 2.5).

    Every request is well-formed; the attack is volume. Used to evaluate
    the rate limiter's protection of host throughput.
    """

    def __init__(self, sim, name, net, xg_name, addr_pool, gap=1, block_size=64,
                 retry_after=None):
        super().__init__(sim, name, net, xg_name, block_size=block_size)
        self.addr_pool = list(addr_pool)
        self.gap = gap
        self.requests_sent = 0
        self.responses_seen = 0
        #: addr -> tick the current request/writeback was issued at.
        self.held = {}
        #: when set, re-issue a GetM for an address whose transaction has
        #: been pending this long — keeps the flood alive on a lossy link
        #: (the chaos campaigns drop its messages on the floor).
        self.retry_after = retry_after
        self.retries_sent = 0
        self.stopped = False

    def start(self):
        self.sim.schedule(1, self._tick)

    def stop(self):
        self.stopped = True

    def _tick(self):
        if self.stopped:
            return
        rng = self.sim.rng
        free = [a for a in self.addr_pool if a not in self.held]
        if free:
            addr = rng.choice(free)
            self.held[addr] = self.sim.tick
            self._emit(AccelMsg.GetM, addr, "accel_request")
            self.requests_sent += 1
        elif self.retry_after is not None:
            stuck = [
                a for a, since in self.held.items()
                if self.sim.tick - since >= self.retry_after
            ]
            if stuck:
                addr = rng.choice(stuck)
                self.held[addr] = self.sim.tick
                self._emit(AccelMsg.GetM, addr, "accel_request")
                self.retries_sent += 1
        self.sim.schedule(self.gap, self._tick)

    def wakeup(self):
        while True:
            msg = self.in_ports["fromxg"].pop(self.sim.tick)
            if msg is None:
                return
            if msg.mtype in (AccelMsg.DataS, AccelMsg.DataE, AccelMsg.DataM):
                self.responses_seen += 1
                # Immediately put the block back so it can be re-requested:
                # maximal request traffic with fully legal behavior.
                data = msg.data.copy() if msg.data is not None else DataBlock(self.block_size)
                self._emit(AccelMsg.PutM, msg.addr, "accel_request", data=data, dirty=True)
            elif msg.mtype is AccelMsg.WBAck:
                self.held.pop(msg.addr, None)
            elif msg.mtype is AccelMsg.Invalidate:
                self._emit(AccelMsg.InvAck, msg.addr, "accel_response")
                self.held.pop(msg.addr, None)
