"""Accelerator-side cache hierarchies speaking the Crossing Guard interface.

* :mod:`repro.accel.l1_single` — the paper's Table 1 cache: MESI stable
  states plus a single transient state B, with degenerate VI and MSI
  modes (Section 2.1);
* :mod:`repro.accel.two_level` — the hierarchical design: private per-core
  L1s behind a shared inclusive accelerator L2 that speaks the XG
  interface upward;
* :mod:`repro.accel.buggy` — pathological/byzantine accelerator models
  for the safety evaluation (Section 4).
"""

from repro.accel.l1_single import AccelL1, AccelL1Mode, AL1Event, AL1State
from repro.accel.two_level import AccelL1Two, AccelL2Shared
from repro.accel.buggy import (
    DeafAccel,
    FloodingAccel,
    FuzzingAccel,
    WrongResponderAccel,
)

__all__ = [
    "AL1Event",
    "AL1State",
    "AccelL1",
    "AccelL1Mode",
    "AccelL1Two",
    "AccelL2Shared",
    "DeafAccel",
    "FloodingAccel",
    "FuzzingAccel",
    "WrongResponderAccel",
]
