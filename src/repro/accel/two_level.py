"""Two-level accelerator cache hierarchy (paper Section 2.1).

Private per-core L1s share an inclusive accelerator L2; blocks migrate
between L1s through the L2 *without* involving Crossing Guard or the host
directory (the paper's stated benefit). The L2 exports the very same
Crossing Guard interface downward to its L1s, so the L1 is literally the
Table 1 cache (:class:`repro.accel.l1_single.AccelL1`) pointed at the L2
instead of at XG — the interface composes.

Design points:

* all invalidation-ack collection happens at the L2, keeping L1s at one
  transient state;
* the L2's upward face follows Table 1's rules too: Invalidate during a
  block's busy state is answered with InvAck, and the Put/Invalidate race
  is resolved by the (ordered) network exactly as at XG.
"""

import enum

from repro.coherence.controller import CONSUMED, RETRY, STALL, ProtocolError
from repro.coherence.tbe import TBETable
from repro.coherence.controller import CoherenceController
from repro.memory.cache_array import CacheArray
from repro.memory.datablock import block_align
from repro.sim.message import Message
from repro.xg.interface import AccelMsg

from repro.accel.l1_single import AccelL1

#: The two-level L1 is exactly the single-level design re-pointed at the
#: shared accelerator L2.
AccelL1Two = AccelL1


class AL2State(enum.Enum):
    NP = enum.auto()  # not present
    S = enum.auto()  # shared-clean from XG; L1s may hold S
    O = enum.auto()  # exclusive from XG (DataE/DataM); an L1 may own it
    B_FETCH = enum.auto()  # Get outstanding toward XG
    B_LOCAL = enum.auto()  # collecting local L1 invalidations
    B_PUT = enum.auto()  # Put outstanding toward XG
    B_EVICT = enum.auto()  # inclusive eviction: collecting local copies


class AL2Event(enum.Enum):
    GetS = enum.auto()
    GetM = enum.auto()
    PutS = enum.auto()
    PutE = enum.auto()
    PutM = enum.auto()
    InvAck = enum.auto()
    CleanWB = enum.auto()
    DirtyWB = enum.auto()
    DataS = enum.auto()
    DataE = enum.auto()
    DataM = enum.auto()
    WBAck = enum.auto()
    Invalidate = enum.auto()
    Replacement = enum.auto()


_L1_REQ = {
    AccelMsg.GetS: AL2Event.GetS,
    AccelMsg.GetM: AL2Event.GetM,
    AccelMsg.PutS: AL2Event.PutS,
    AccelMsg.PutE: AL2Event.PutE,
    AccelMsg.PutM: AL2Event.PutM,
}
_L1_RESP = {
    AccelMsg.InvAck: AL2Event.InvAck,
    AccelMsg.CleanWB: AL2Event.CleanWB,
    AccelMsg.DirtyWB: AL2Event.DirtyWB,
}
_XG_MSGS = {
    AccelMsg.DataS: AL2Event.DataS,
    AccelMsg.DataE: AL2Event.DataE,
    AccelMsg.DataM: AL2Event.DataM,
    AccelMsg.WBAck: AL2Event.WBAck,
    AccelMsg.Invalidate: AL2Event.Invalidate,
}


class AccelL2Shared(CoherenceController):
    """Shared inclusive accelerator L2 speaking the XG interface upward."""

    CONTROLLER_TYPE = "accel_l2"
    PORTS = ("fromxg", "accel_response", "accel_request")

    def __init__(
        self,
        sim,
        name,
        l1_net,
        xg_net,
        xg_name,
        num_sets=128,
        assoc=8,
        block_size=64,
    ):
        self.l1_net = l1_net
        self.xg_net = xg_net
        self.xg_name = xg_name
        self.block_size = block_size
        self.cache = CacheArray(num_sets, assoc, block_size=block_size, name=name)
        self.tbes = TBETable(name=name)
        super().__init__(sim, name)

    # -- helpers -----------------------------------------------------------------

    def align(self, addr):
        return block_align(addr, self.block_size)

    def stall_key(self, msg):
        return self.align(msg.addr)

    def _to_l1(self, mtype, addr, dest, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=dest, **kw)
        self.l1_net.send(msg, "fromxg")
        return msg

    def _to_xg(self, mtype, addr, port, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=self.xg_name, **kw)
        self.xg_net.send(msg, port)
        return msg

    def _state(self, addr):
        tbe = self.tbes.lookup(addr)
        if tbe is not None:
            return tbe.state
        entry = self.cache.lookup(addr, touch=False)
        return entry.state if entry is not None else AL2State.NP

    def _fill_room(self, addr):
        set_index = self.cache.set_index(self.align(addr))
        occupied = sum(
            1 for entry in self.cache.entries() if self.cache.set_index(entry.addr) == set_index
        )
        reserved = sum(
            1
            for tbe in self.tbes
            if tbe.meta.get("needs_slot") and self.cache.set_index(tbe.addr) == set_index
        )
        return self.cache.assoc - occupied - reserved

    def _stable_victim(self, addr):
        set_index = self.cache.set_index(self.align(addr))
        candidates = [
            entry
            for entry in self.cache.entries()
            if self.cache.set_index(entry.addr) == set_index and entry.addr not in self.tbes
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda entry: entry.last_use)

    # -- dispatch --------------------------------------------------------------------

    def handle_message(self, port, msg):
        addr = self.align(msg.addr)
        state = self._state(addr)
        # Monomorphic fast path: grants/probes from XG dominate, and
        # "fromxg" is also the highest-priority port — check it first.
        if port == "fromxg":
            try:
                event = _XG_MSGS[msg.mtype]
            except KeyError:
                # Administrative traffic outside Table 1 (e.g. a Nack to a
                # quarantined endpoint): ignore rather than wedge the L2.
                self.stats.inc("unexpected_from_xg")
                return CONSUMED
            return self.fire(state, event, msg)
        if port == "accel_response":
            try:
                event = _L1_RESP[msg.mtype]
            except KeyError:
                self.stats.inc("unexpected_from_l1")
                return CONSUMED
            return self.fire(state, event, msg)
        if port == "accel_request":
            try:
                event = _L1_REQ[msg.mtype]
            except KeyError:
                self.stats.inc("unexpected_from_l1")
                return CONSUMED
            if state in (AL2State.B_FETCH, AL2State.B_LOCAL, AL2State.B_PUT, AL2State.B_EVICT):
                tbe = self.tbes.lookup(addr)
                if (
                    msg.mtype in (AccelMsg.PutS, AccelMsg.PutE, AccelMsg.PutM)
                    and tbe.meta.get("awaiting_l1") == msg.sender
                ):
                    # The L1's Put crossed our Invalidate: use it as the
                    # response and absorb the InvAck that follows.
                    return self._l1_put_race(msg, addr, tbe)
                return STALL
            if state is AL2State.NP and msg.mtype in (AccelMsg.GetS, AccelMsg.GetM):
                if self._fill_room(addr) <= 0:
                    victim = self._stable_victim(addr)
                    if victim is not None:
                        synthetic = Message(
                            AL2Event.Replacement, victim.addr, sender=self.name, dest=self.name
                        )
                        self.fire(victim.state, AL2Event.Replacement, synthetic)
                    if self._fill_room(addr) <= 0:
                        return RETRY
            return self.fire(self._state(addr), event, msg)
        raise AssertionError(f"unknown port {port}")

    # -- transition table ----------------------------------------------------------------

    def _build_transitions(self):
        t = self.transitions
        S, E = AL2State, AL2Event
        t[(S.NP, E.GetS)] = self._np_get
        t[(S.NP, E.GetM)] = self._np_get
        t[(S.S, E.GetS)] = self._s_gets
        t[(S.O, E.GetS)] = self._o_gets
        t[(S.S, E.GetM)] = self._s_getm
        t[(S.O, E.GetM)] = self._o_getm
        for st in (S.S, S.O):
            t[(st, E.PutS)] = self._l1_puts
            t[(st, E.PutE)] = self._l1_putx
            t[(st, E.PutM)] = self._l1_putx
        t[(S.NP, E.PutS)] = self._l1_put_stale
        t[(S.NP, E.PutE)] = self._l1_put_stale
        t[(S.NP, E.PutM)] = self._l1_put_stale
        t[(S.B_FETCH, E.DataS)] = self._fetch_data
        t[(S.B_FETCH, E.DataE)] = self._fetch_data
        t[(S.B_FETCH, E.DataM)] = self._fetch_data
        t[(S.B_LOCAL, E.InvAck)] = self._local_ack
        t[(S.B_LOCAL, E.CleanWB)] = self._local_wb
        t[(S.B_LOCAL, E.DirtyWB)] = self._local_wb
        t[(S.B_EVICT, E.InvAck)] = self._local_ack
        t[(S.B_EVICT, E.CleanWB)] = self._local_wb
        t[(S.B_EVICT, E.DirtyWB)] = self._local_wb
        t[(S.B_PUT, E.WBAck)] = self._put_done
        t[(S.S, E.Invalidate)] = self._xg_inv
        t[(S.O, E.Invalidate)] = self._xg_inv
        t[(S.NP, E.Invalidate)] = self._xg_inv_np
        t[(S.B_PUT, E.Invalidate)] = self._busy_inv
        t[(S.B_FETCH, E.Invalidate)] = self._busy_inv
        t[(S.B_LOCAL, E.Invalidate)] = self._busy_inv_stall
        t[(S.B_EVICT, E.Invalidate)] = self._busy_inv_stall
        t[(S.S, E.Replacement)] = self._repl
        t[(S.O, E.Replacement)] = self._repl
        # Stall rows never execute as transitions (stalls are dispatch
        # behavior), and stale-Put rows are only reachable with buggy L1s;
        # exclude both from the coverage denominator.
        # (NP, PutS) stays in the denominator: a sharer's PutS can race an
        # inclusive eviction and legitimately arrive after the block left.
        self.coverage_exempt |= {
            (S.B_LOCAL, E.Invalidate),
            (S.B_EVICT, E.Invalidate),
            (S.NP, E.PutE),
            (S.NP, E.PutM),
            (S.S, E.PutE),
            (S.S, E.PutM),
        }

    # -- L1 Gets ---------------------------------------------------------------------------

    def _np_get(self, msg):
        addr = msg.addr
        tbe = self.tbes.allocate(addr, AL2State.B_FETCH, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["needs_slot"] = True
        tbe.meta["op"] = msg.mtype
        self._to_xg(
            AccelMsg.GetM if msg.mtype is AccelMsg.GetM else AccelMsg.GetS,
            addr,
            "accel_request",
        )
        self.stats.inc("al2_misses")
        return CONSUMED

    def _fetch_data(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        granted_excl = msg.mtype in (AccelMsg.DataE, AccelMsg.DataM)
        entry = self.cache.allocate(
            addr,
            AL2State.O if granted_excl else AL2State.S,
            data=msg.data.copy(),
            dirty=msg.mtype is AccelMsg.DataM,
        )
        entry.meta["sharers"] = set()
        entry.meta["l1_owner"] = None
        tbe.meta["needs_slot"] = False
        self._grant(entry, tbe.requestor, tbe.meta["op"])
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)
        return CONSUMED

    def _grant(self, entry, requestor, op):
        """Give ``requestor`` its data per our rights and current sharers."""
        addr = entry.addr
        if op is AccelMsg.GetM:
            entry.meta["l1_owner"] = requestor
            entry.meta["sharers"] = set()
            self._to_l1(AccelMsg.DataM, addr, requestor, data=entry.data.copy(), dirty=True)
            entry.dirty = True
        elif (
            entry.state is AL2State.O
            and not entry.meta["sharers"]
            and entry.meta["l1_owner"] is None
        ):
            entry.meta["l1_owner"] = requestor
            if entry.dirty:
                self._to_l1(
                    AccelMsg.DataM, addr, requestor, data=entry.data.copy(), dirty=True
                )
            else:
                self._to_l1(AccelMsg.DataE, addr, requestor, data=entry.data.copy())
        else:
            entry.meta["sharers"].add(requestor)
            self._to_l1(AccelMsg.DataS, addr, requestor, data=entry.data.copy())

    def _s_gets(self, msg):
        entry = self.cache.lookup(msg.addr)
        if entry.meta["l1_owner"] is not None:
            return self._recall_then(msg, entry)
        self._grant(entry, msg.sender, AccelMsg.GetS)
        self.stats.inc("al2_local_hits")
        return CONSUMED

    def _o_gets(self, msg):
        return self._s_gets(msg)

    def _s_getm(self, msg):
        """GetM on a block we only hold shared: upgrade through XG."""
        addr = msg.addr
        entry = self.cache.lookup(addr)
        tbe = self.tbes.allocate(addr, AL2State.B_LOCAL, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = AccelMsg.GetM
        tbe.meta["then_upgrade"] = True
        self._start_local_invalidate(entry, tbe, exclude=msg.sender)
        if tbe.acks_needed == 0:
            self._local_done(addr, tbe)
        return CONSUMED

    def _o_getm(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr)
        tbe = self.tbes.allocate(addr, AL2State.B_LOCAL, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = AccelMsg.GetM
        self._start_local_invalidate(entry, tbe, exclude=msg.sender)
        if tbe.acks_needed == 0:
            self._local_done(addr, tbe)
        return CONSUMED

    def _recall_then(self, msg, entry):
        """An L1 owns the block; recall it before serving the request."""
        addr = entry.addr
        tbe = self.tbes.allocate(addr, AL2State.B_LOCAL, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = msg.mtype
        self._start_local_invalidate(entry, tbe, exclude=msg.sender)
        if tbe.acks_needed == 0:
            self._local_done(addr, tbe)
        return CONSUMED

    def _start_local_invalidate(self, entry, tbe, exclude=None):
        addr = entry.addr
        targets = set(entry.meta["sharers"])
        owner = entry.meta["l1_owner"]
        if owner is not None:
            targets.add(owner)
        if exclude is not None:
            targets.discard(exclude)
        tbe.acks_needed = len(targets)
        tbe.acks_received = 0
        for l1 in sorted(targets):
            self._to_l1(AccelMsg.Invalidate, addr, l1)
        tbe.meta["awaiting_l1"] = owner if owner is not None and owner != exclude else None
        entry.meta["sharers"] -= targets
        if owner is not None and owner != exclude:
            entry.meta["l1_owner"] = None

    def _local_ack(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        tbe.acks_received += 1
        if tbe.acks_received >= tbe.acks_needed:
            self._local_done(addr, tbe)
        return CONSUMED

    def _local_wb(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.lookup(addr, touch=False)
        entry.data = msg.data.copy()
        if msg.mtype is AccelMsg.DirtyWB:
            entry.dirty = True
        tbe.acks_received += 1
        if tbe.acks_received >= tbe.acks_needed:
            self._local_done(addr, tbe)
        return CONSUMED

    def _l1_put_race(self, msg, addr, tbe):
        """An owner's Put crossed our Invalidate (ordered net semantics).

        Consume the Put as the data; the L1 is now in B and will still
        answer the Invalidate with an InvAck, which is what we count.
        """
        entry = self.cache.lookup(addr, touch=False)
        if entry is not None and msg.data is not None:
            entry.data = msg.data.copy()
            if msg.mtype is AccelMsg.PutM:
                entry.dirty = True
        self._to_l1(AccelMsg.WBAck, addr, msg.sender)
        tbe.meta["awaiting_l1"] = None
        self.stats.inc("al2_put_inv_races")
        return CONSUMED

    def _local_done(self, addr, tbe):
        """All local copies collected; continue the waiting operation."""
        entry = self.cache.lookup(addr, touch=False)
        if tbe.meta.get("xg_inv"):
            self._respond_to_xg_invalidate(addr, entry)
            self.tbes.deallocate(addr)
            self.wake_stalled(addr)
            return
        if tbe.meta.get("evicting"):
            self._issue_put_up(addr, entry, tbe)
            return
        if tbe.meta.get("then_upgrade") and entry.state is AL2State.S:
            tbe.state = AL2State.B_FETCH
            tbe.meta["op"] = AccelMsg.GetM
            self._to_xg(AccelMsg.GetM, addr, "accel_request")
            self.cache.deallocate(addr)
            tbe.meta["needs_slot"] = True
            # A stalled XG Invalidate must get its InvAck now (B_FETCH
            # answers immediately) or XG and the L2 deadlock on each other.
            self.wake_stalled(addr)
            return
        self._grant(entry, tbe.requestor, tbe.meta["op"])
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)

    # -- L1 Puts ------------------------------------------------------------------------------

    def _l1_puts(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        entry.meta["sharers"].discard(msg.sender)
        self._to_l1(AccelMsg.WBAck, msg.addr, msg.sender)
        return CONSUMED

    def _l1_putx(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        if entry.meta["l1_owner"] == msg.sender:
            entry.data = msg.data.copy()
            if msg.mtype is AccelMsg.PutM:
                entry.dirty = True
            entry.meta["l1_owner"] = None
        self._to_l1(AccelMsg.WBAck, msg.addr, msg.sender)
        return CONSUMED

    def _l1_put_stale(self, msg):
        # Inclusive L2 lost the block already (should not happen for
        # correct L1s); ack so the L1 does not hang.
        self._to_l1(AccelMsg.WBAck, msg.addr, msg.sender)
        self.stats.inc("al2_stale_puts")
        return CONSUMED

    # -- XG-side events -----------------------------------------------------------------------------

    def _xg_inv(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        tbe = self.tbes.allocate(addr, AL2State.B_LOCAL, now=self.sim.tick)
        tbe.meta["xg_inv"] = True
        self._start_local_invalidate(entry, tbe)
        if tbe.acks_needed == 0:
            self._local_done(addr, tbe)
        return CONSUMED

    def _xg_inv_np(self, msg):
        self._to_xg(AccelMsg.InvAck, msg.addr, "accel_response")
        return CONSUMED

    def _busy_inv(self, msg):
        # Our Put is outstanding: Table 1 semantics — InvAck and no
        # further action; XG resolves the race from the Put itself.
        self._to_xg(AccelMsg.InvAck, msg.addr, "accel_response")
        return CONSUMED

    def _busy_inv_stall(self, msg):
        return STALL

    def _respond_to_xg_invalidate(self, addr, entry):
        if entry is None:
            self._to_xg(AccelMsg.InvAck, addr, "accel_response")
            return
        if entry.state is AL2State.O:
            if entry.dirty:
                self._to_xg(
                    AccelMsg.DirtyWB, addr, "accel_response",
                    data=entry.data.copy(), dirty=True,
                )
            else:
                self._to_xg(
                    AccelMsg.CleanWB, addr, "accel_response", data=entry.data.copy()
                )
        else:
            self._to_xg(AccelMsg.InvAck, addr, "accel_response")
        self.cache.deallocate(addr)

    # -- inclusive eviction --------------------------------------------------------------------------

    def _repl(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        tbe = self.tbes.allocate(addr, AL2State.B_EVICT, now=self.sim.tick)
        tbe.meta["evicting"] = True
        self._start_local_invalidate(entry, tbe)
        if tbe.acks_needed == 0:
            self._issue_put_up(addr, entry, tbe)
        return CONSUMED

    def _issue_put_up(self, addr, entry, tbe):
        tbe.state = AL2State.B_PUT
        if entry.state is AL2State.O:
            if entry.dirty:
                self._to_xg(
                    AccelMsg.PutM, addr, "accel_request", data=entry.data.copy(), dirty=True
                )
            else:
                self._to_xg(AccelMsg.PutE, addr, "accel_request", data=entry.data.copy())
        else:
            self._to_xg(AccelMsg.PutS, addr, "accel_request")
        self.cache.deallocate(addr)

    def _put_done(self, msg):
        addr = msg.addr
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)
        return CONSUMED
