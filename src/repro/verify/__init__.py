"""Exhaustive verification of the Crossing Guard accelerator interface.

The paper stress-tests with a random tester and notes that "an industrial
implementation of Crossing Guard would likely include formal verification
to complement stress testing" (Section 4.1), while full-system model
checking (Murphi) is intractable. This package does what *is* tractable:
an exhaustive breadth-first exploration of an abstract single-address
model of the interface — the Table 1 accelerator automaton, the ordered
accelerator link, and Crossing Guard's per-block transaction rules with a
nondeterministic host — proving, for every reachable interleaving:

* no unspecified receptions on either side;
* every accelerator request receives exactly one response;
* the Put/Invalidate race always resolves;
* quiescent states agree (XG's mirror matches the accelerator's state);
* no deadlock (every non-quiescent state can make progress).
"""

from repro.verify.model import InterfaceModel, VerificationError, explore

__all__ = ["InterfaceModel", "VerificationError", "explore"]
