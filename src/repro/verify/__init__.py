"""Exhaustive verification of the Crossing Guard accelerator interface.

The paper stress-tests with a random tester and notes that "an industrial
implementation of Crossing Guard would likely include formal verification
to complement stress testing" (Section 4.1), while full-system model
checking (Murphi) is intractable. This package does what *is* tractable,
at two levels of abstraction:

* :mod:`repro.verify.model` — an exhaustive breadth-first exploration of
  an abstract single-address model of the interface: the Table 1
  accelerator automaton, the ordered accelerator link, and Crossing
  Guard's per-block transaction rules with a nondeterministic host;
* :mod:`repro.verify.explorer` — reachability exploration of the **real
  simulator** on small concrete cells (2 host cores × 1 accelerator ×
  1-2 addresses, every host × XG-variant combination): all message
  interleavings enumerated, states canonically hashed under core/address
  symmetry, G0-G2 plus quiescent invariants checked at every state, the
  BFS frontier sharded over the campaign executor, and counterexamples
  emitted as replayable traces.

Both prove, for every reachable interleaving: no unspecified receptions,
every request answered exactly once, races resolve, quiescent states
agree (XG's mirror matches the accelerator), and no deadlock. The
differential tests tie the two together: the abstract model's reachable
interface states must be a projection-superset of the concrete
explorer's.
"""

from repro.verify.explorer import (
    ExplorationError,
    ExplorerHarness,
    authoritative_uncovered,
    cell_config,
    cross_check_coverage,
    explore_cell,
    load_reachable_report,
    register_check,
    replay_path,
    run_cell_stress,
    state_set_digest,
)
from repro.verify.model import (
    InterfaceModel,
    VerificationError,
    explore,
    reachable_projections,
)

__all__ = [
    "ExplorationError",
    "ExplorerHarness",
    "InterfaceModel",
    "VerificationError",
    "authoritative_uncovered",
    "cell_config",
    "cross_check_coverage",
    "explore",
    "explore_cell",
    "load_reachable_report",
    "reachable_projections",
    "register_check",
    "replay_path",
    "run_cell_stress",
    "state_set_digest",
]
