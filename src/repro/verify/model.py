"""Single-address exhaustive model of the Crossing Guard interface.

The model captures exactly what crosses the ordered XG<->accelerator link
for one block address:

* the accelerator is the Table 1 automaton (I/S/E/M + single B), driven
  by nondeterministic Load/Store/Replacement events;
* Crossing Guard keeps the paper's per-block transaction state: at most
  one open accelerator Get, one host-side writeback, or one outstanding
  probe, plus the Full State mirror;
* the host is nondeterministic: it may grant any interface-legal data
  response to a pending Get (DataS/DataE/DataM for GetS; DataE/DataM for
  GetM), complete a writeback, or probe the block at any legal time.

Every reachable interleaving of these choices is explored breadth-first.
Verification fails on: an unspecified reception at either agent, a
response-type inconsistent with the accelerator's actual state (the G2a
condition that must never fire for a *correct* accelerator), channel
overflow, a mirror/accelerator mismatch in a quiescent state, or a
reachable state with no enabled transition that is not quiescent
(deadlock).
"""

from collections import deque

# accelerator states
I, S, E, M, B = "I", "S", "E", "M", "B"

# message kinds
GETS, GETM, PUTS, PUTE, PUTM = "GetS", "GetM", "PutS", "PutE", "PutM"
DATAS, DATAE, DATAM, WBACK, INV = "DataS", "DataE", "DataM", "WBAck", "Invalidate"
INVACK, CLEANWB, DIRTYWB = "InvAck", "CleanWB", "DirtyWB"

_REQUESTS = (GETS, GETM, PUTS, PUTE, PUTM)
_RESPONSES = (INVACK, CLEANWB, DIRTYWB)

_CHANNEL_BOUND = 4


class VerificationError(AssertionError):
    """The interface model violated one of its guarantees."""

    def __init__(self, message, state, trace=None):
        self.state = state
        self.trace = trace or []
        detail = "\n  ".join(str(step) for step in self.trace[-12:])
        super().__init__(f"{message}\n  state: {state}\n  trace tail:\n  {detail}")


class State:
    """Immutable, hashable model state."""

    __slots__ = (
        "accel",
        "b_reason",  # None | 'get' | 'put' — what the accel's B awaits
        "a2x",  # tuple: accel -> XG, send order
        "x2a",  # tuple: XG -> accel, send order
        "mirror",  # 'I' | 'S' | 'O'
        "xg_get",  # None | GETS | GETM
        "xg_put",  # None | 'open' (host-side writeback in flight)
        "xg_probe",  # None | ('out', expected_wb) | 'race'
    )

    def __init__(self, accel=I, b_reason=None, a2x=(), x2a=(), mirror="I",
                 xg_get=None, xg_put=None, xg_probe=None):
        self.accel = accel
        self.b_reason = b_reason
        self.a2x = a2x
        self.x2a = x2a
        self.mirror = mirror
        self.xg_get = xg_get
        self.xg_put = xg_put
        self.xg_probe = xg_probe

    def replace(self, **kw):
        fields = {slot: getattr(self, slot) for slot in self.__slots__}
        fields.update(kw)
        return State(**fields)

    def key(self):
        return (
            self.accel, self.b_reason, self.a2x, self.x2a,
            self.mirror, self.xg_get, self.xg_put, self.xg_probe,
        )

    @property
    def quiescent(self):
        return (
            not self.a2x
            and not self.x2a
            and self.xg_get is None
            and self.xg_put is None
            and self.xg_probe is None
            and self.accel is not B
        )

    def __repr__(self):
        return (
            f"State(accel={self.accel}/{self.b_reason}, a2x={list(self.a2x)}, "
            f"x2a={list(self.x2a)}, mirror={self.mirror}, get={self.xg_get}, "
            f"put={self.xg_put}, probe={self.xg_probe})"
        )


class InterfaceModel:
    """Successor function + local checks for the interface model."""

    def __init__(self, allow_probe_when_absent=True):
        #: Transactional XG forwards probes even for blocks the accel does
        #: not hold (it cannot know); Full State answers those locally.
        #: True explores the superset.
        self.allow_probe_when_absent = allow_probe_when_absent

    # -- accelerator reactions (Table 1) ------------------------------------------

    def _accel_receive(self, state, msg):
        accel, b_reason = state.accel, state.b_reason
        if msg in (DATAS, DATAE, DATAM):
            if accel is not B or b_reason != "get":
                raise VerificationError(f"accel got {msg} in {accel}/{b_reason}", state)
            final = {DATAS: S, DATAE: E, DATAM: M}[msg]
            return state.replace(accel=final, b_reason=None)
        if msg == WBACK:
            if accel is not B or b_reason != "put":
                raise VerificationError(f"accel got WBAck in {accel}/{b_reason}", state)
            return state.replace(accel=I, b_reason=None)
        if msg == INV:
            if accel == M:
                return state.replace(accel=I, a2x=state.a2x + (DIRTYWB,))
            if accel == E:
                return state.replace(accel=I, a2x=state.a2x + (CLEANWB,))
            if accel == S:
                return state.replace(accel=I, a2x=state.a2x + (INVACK,))
            # I and B: ack, no further action (Table 1's B row)
            return state.replace(a2x=state.a2x + (INVACK,))
        raise VerificationError(f"accel got unknown message {msg}", state)

    # -- XG reactions ----------------------------------------------------------------

    def _xg_receive_request(self, state, msg):
        if msg in (GETS, GETM):
            if state.xg_probe is not None or state.xg_put is not None:
                return None  # stalled (processed after the transaction closes)
            if state.xg_get is not None:
                raise VerificationError("second Get while one is pending (G1b)", state)
            if state.mirror == "O" or (state.mirror == "S" and msg == GETS):
                raise VerificationError(
                    f"correct accel sent {msg} while mirror={state.mirror} (G1a)", state
                )
            return state.replace(xg_get=msg)
        # Puts
        if state.xg_probe == "race":
            return None  # wait for the trailing InvAck first
        if isinstance(state.xg_probe, tuple):  # ('out', expected_wb): the race
            expected_wb = state.xg_probe[1]
            got_wb = msg in (PUTE, PUTM)
            if got_wb != expected_wb:
                raise VerificationError(
                    f"racing {msg} inconsistent with mirror (G1a)", state
                )
            return state.replace(
                mirror="I", xg_probe="race", x2a=state.x2a + (WBACK,)
            )
        if state.xg_put is not None:
            return None  # previous writeback still draining toward the host
        expected = {PUTS: "S", PUTE: "O", PUTM: "O"}[msg]
        if state.mirror != expected:
            raise VerificationError(
                f"correct accel sent {msg} while mirror={state.mirror} (G1a)", state
            )
        return state.replace(mirror="I", xg_put="open", x2a=state.x2a + (WBACK,))

    def _xg_receive_response(self, state, msg):
        if state.xg_probe == "race":
            if msg != INVACK:
                raise VerificationError(f"expected trailing InvAck, got {msg}", state)
            return state.replace(xg_probe=None)
        if not isinstance(state.xg_probe, tuple):
            raise VerificationError(f"{msg} with no pending probe (G2b)", state)
        expected_wb = state.xg_probe[1]
        got_wb = msg in (CLEANWB, DIRTYWB)
        if got_wb != expected_wb:
            raise VerificationError(
                f"{msg} inconsistent with accel ownership (G2a must not fire "
                f"for a correct accelerator)", state
            )
        return state.replace(mirror="I", xg_probe=None)

    # -- successor enumeration -------------------------------------------------------

    def successors(self, state):
        """Yield (label, next_state) for every enabled transition."""
        out = []

        # 1. accelerator CPU events (stable states only)
        if state.accel == I:
            out.append(("cpu:Load", state.replace(
                accel=B, b_reason="get", a2x=state.a2x + (GETS,))))
            out.append(("cpu:Store", state.replace(
                accel=B, b_reason="get", a2x=state.a2x + (GETM,))))
        elif state.accel == S:
            out.append(("cpu:Store", state.replace(
                accel=B, b_reason="get", a2x=state.a2x + (GETM,))))
            out.append(("cpu:Replace", state.replace(
                accel=B, b_reason="put", a2x=state.a2x + (PUTS,))))
        elif state.accel == E:
            out.append(("cpu:Store", state.replace(accel=M)))
            out.append(("cpu:Replace", state.replace(
                accel=B, b_reason="put", a2x=state.a2x + (PUTE,))))
        elif state.accel == M:
            out.append(("cpu:Replace", state.replace(
                accel=B, b_reason="put", a2x=state.a2x + (PUTM,))))

        # 2. deliver XG -> accel head (single ordered port at the accel)
        if state.x2a:
            msg, rest = state.x2a[0], state.x2a[1:]
            out.append((f"deliver_accel:{msg}",
                        self._accel_receive(state.replace(x2a=rest), msg)))

        # 3. deliver accel -> XG. The ordered lane guarantees XG sees
        # messages in send order; a *stalled* request is set aside (the
        # stall buffer) so later messages proceed past it, but nothing
        # else reorders. Model: deliver the first non-stalling message.
        for index, msg in enumerate(state.a2x):
            rest = state.a2x[:index] + state.a2x[index + 1:]
            if msg in _RESPONSES:
                out.append((f"deliver_xg:{msg}",
                            self._xg_receive_response(state.replace(a2x=rest), msg)))
                break
            nxt = self._xg_receive_request(state.replace(a2x=rest), msg)
            if nxt is not None:
                out.append((f"deliver_xg:{msg}", nxt))
                break
            # stalled request: step over it, preserving its position

        # 4. host/XG spontaneous choices
        if state.xg_get == GETS:
            for grant, mirror in ((DATAS, "S"), (DATAE, "O"), (DATAM, "O")):
                out.append((f"grant:{grant}", state.replace(
                    xg_get=None, mirror=mirror, x2a=state.x2a + (grant,))))
        elif state.xg_get == GETM:
            for grant in (DATAE, DATAM):
                out.append((f"grant:{grant}", state.replace(
                    xg_get=None, mirror="O", x2a=state.x2a + (grant,))))
        if state.xg_put == "open":
            out.append(("host:wb_done", state.replace(xg_put=None)))
        if (
            state.xg_probe is None
            and state.xg_get is None
            and state.xg_put is None
            and INV not in state.x2a
            and (state.mirror != "I" or self.allow_probe_when_absent)
        ):
            out.append(("host:probe", state.replace(
                xg_probe=("out", state.mirror == "O"), x2a=state.x2a + (INV,))))

        return out

    # -- state checks --------------------------------------------------------------------

    def check(self, state):
        if len(state.a2x) > _CHANNEL_BOUND or len(state.x2a) > _CHANNEL_BOUND:
            raise VerificationError("channel bound exceeded", state)
        if state.quiescent:
            expected = {"I": I, "S": S}.get(state.mirror)
            if state.mirror == "O":
                if state.accel not in (E, M):
                    raise VerificationError("mirror=O but accel not owner", state)
            elif state.accel != expected:
                raise VerificationError(
                    f"quiescent mismatch: mirror={state.mirror} accel={state.accel}",
                    state,
                )


def explore(allow_probe_when_absent=True, max_states=500_000):
    """BFS the full state space; returns exploration statistics.

    Raises :class:`VerificationError` on any violated guarantee, including
    a reachable non-quiescent state with no enabled transitions (deadlock).
    """
    model = InterfaceModel(allow_probe_when_absent=allow_probe_when_absent)
    initial = State()
    seen = {initial.key(): None}
    parents = {initial.key(): (None, None)}
    frontier = deque([initial])
    states = 0
    transitions = 0
    deadlocks = 0
    projections = set()
    while frontier:
        state = frontier.popleft()
        states += 1
        projections.add((state.accel, state.mirror))
        if states > max_states:
            raise VerificationError("state space exceeded max_states", state)
        model.check(state)
        try:
            succs = model.successors(state)
        except VerificationError as err:
            err.trace = _trace_to(parents, state.key())
            raise
        if not succs and not state.quiescent:
            raise VerificationError("deadlock", state, _trace_to(parents, state.key()))
        if not succs:
            deadlocks += 0
        for label, nxt in succs:
            transitions += 1
            key = nxt.key()
            if key not in seen:
                seen[key] = None
                parents[key] = (state.key(), label)
                frontier.append(nxt)
    return {
        "states": states,
        "transitions": transitions,
        "quiescent_states": sum(
            1 for key in seen if State(*_expand(key)).quiescent
        ),
        # every reachable (accel state, mirror state) pair — the
        # projection surface the concrete explorer is checked against
        "projections": sorted(projections),
    }


def reachable_projections(allow_probe_when_absent=True):
    """Reachable (accel state, mirror state) pairs of the abstract model.

    The differential contract with :mod:`repro.verify.explorer`: every
    pair the concrete explorer observes on a Full State XG link must
    appear here — the abstract model over-approximates the interface, it
    must never under-approximate it.
    """
    stats = explore(allow_probe_when_absent=allow_probe_when_absent)
    return {tuple(pair) for pair in stats["projections"]}


def _expand(key):
    return key


def _trace_to(parents, key):
    trace = []
    while key is not None:
        parent, label = parents.get(key, (None, None))
        if label is not None:
            trace.append(label)
        key = parent
    return list(reversed(trace))
