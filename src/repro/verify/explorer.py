"""Exhaustive concrete-state reachability explorer.

Where :mod:`repro.verify.model` proves the XG<->accelerator *interface*
correct on an abstract single-address automaton, this module enumerates
the state space of the **real** simulator: actual controllers, compiled
dispatch tables, TBEs, the XG mirror, pooled messages — everything.

The trick is turning a discrete-event simulator into a guarded-action
transition system:

* both networks' ``send`` is shadowed per-instance so every message is
  **parked** instead of delivered — the in-flight channel contents
  become explicit explorer state;
* a *step* is one nondeterministic choice: deliver one parked message
  (ordered lanes expose only their oldest message; the unordered host
  net exposes all), or issue a load/store on an idle sequencer;
* after each step the simulator **settles**: deterministic continuations
  (memory latency callbacks, sequencer completions, wakeups) drain until
  the only remaining events are beyond the settle horizon — probe
  timeouts are pushed past it by a huge ``accel_timeout``, so a settled
  state is uniquely determined by the choice sequence;
* states are canonically hashed from logical snapshots
  (:mod:`repro.coherence.snapshot`) minimized under **symmetry** — CPU
  core permutation and address renaming;
* every state is checked: the XG error log must stay empty (a correct
  accelerator must never trip G0-G2), quiescent states must satisfy
  :func:`repro.testing.invariants.check_all` (single writer, value
  consistency, mirror consistency), non-quiescent states must have a
  deliverable message (deadlock freedom), and parked channels are
  bounded.

States are *reconstructed by replay*: a frontier node is the choice path
from the reset state, re-executed deterministically. That makes frontier
slices picklable — the BFS fans out over the campaign executor
(:func:`repro.eval.campaign.run_campaign`) with byte-identical
visited-set digests for any worker count — and makes every
counterexample a replayable trace on the live simulator by construction.
"""

import hashlib
from dataclasses import replace as dc_replace

from repro.coherence.controller import ProtocolError
from repro.coherence.snapshot import snap_message
from repro.eval.campaign import CampaignJob, run_campaign, shard_evenly
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.sim.simulator import DeadlockError
from repro.testing.invariants import InvariantError, check_all
from repro.xg.interface import XGVariant

#: Block-aligned addresses the explorer drives (block size 64). Chosen
#: so the integers cannot collide with small protocol counters inside a
#: snapshot — address renaming must be a total bijection over every int
#: it touches.
ADDRESS_POOL = (0x40, 0x80)

#: Every store writes the same value regardless of core or address, so
#: data blocks never break core-permutation or address-renaming symmetry.
STORE_VALUE = 0x5A

#: Settle horizon in ticks: deterministic continuations (memory reads,
#: response latencies, network-free wakeups) all land well within this;
#: the XG probe timeout is configured orders of magnitude beyond it.
SETTLE_GAP = 1 << 16

#: Probe timeout for explorer cells — far past the settle horizon, so a
#: timeout can never fire mid-exploration and G2c paths stay out of the
#: transition relation (they are fault-model behavior, not interface
#: behavior).
EXPLORER_ACCEL_TIMEOUT = 1 << 30

#: Bound on simultaneously parked (in-flight) messages; a run past this
#: is an unbounded-channel violation, mirroring the abstract model's
#: ``_CHANNEL_BOUND``.
DEFAULT_CHANNEL_BOUND = 32

HOSTS = {
    "mesi": HostProtocol.MESI,
    "hammer": HostProtocol.HAMMER,
    "mesif": HostProtocol.MESIF,
}

VARIANTS = {
    "full_state": XGVariant.FULL_STATE,
    "transactional": XGVariant.TRANSACTIONAL,
}


class ExplorationError(RuntimeError):
    """The explorer itself failed (bad replay, settle runaway, shard crash)."""


#: Registry of named per-state checks: ``name -> fn(harness) -> str | None``.
#: Names (not callables) cross process boundaries with frontier shards.
CHECKS = {}


def register_check(name, fn):
    """Register a named per-state check usable via ``check=name``."""
    CHECKS[name] = fn
    return fn


def _check_accel_never_owns(harness):
    """Deliberately FALSE invariant used to exercise the counterexample
    pipeline end to end: a correct accelerator *does* reach E/M, so the
    explorer must find a replayable trace that violates this quickly."""
    for cache in harness.system.accel_caches:
        array = getattr(cache, "cache", None)
        if array is None:
            continue
        for entry in array.entries():
            if getattr(entry.state, "name", "") in ("E", "M"):
                return (f"{cache.name} holds {entry.addr:#x} in "
                        f"{entry.state.name} (demo invariant)")
    return None


register_check("demo_accel_never_owns", _check_accel_never_owns)


def cell_config(host="mesi", variant="full_state", addresses=1, n_cpus=2):
    """The small concrete config one explorer cell drives.

    Single-set single-way L1s make replacements reachable with two
    addresses; the shared L2 gets one extra way so *its* evictions stay
    out of scope (they multiply the space without touching the XG link).
    """
    return SystemConfig(
        host=HOSTS[host],
        org=AccelOrg.XG,
        xg_variant=VARIANTS[variant],
        accel_levels=1,
        n_cpus=n_cpus,
        n_accel_cores=1,
        n_accelerators=1,
        cpu_l1_sets=1,
        cpu_l1_assoc=1,
        shared_l2_sets=1,
        shared_l2_assoc=2 if addresses > 1 else 1,
        accel_l1_sets=1,
        accel_l1_assoc=1,
        accel_timeout=EXPLORER_ACCEL_TIMEOUT,
        deadlock_threshold=None,
        invariant_interval=0,
        metrics=False,
        trace_depth=0,
        seed=0,
    )


class _ParkedMessage:
    __slots__ = ("net", "port", "msg", "lane")

    def __init__(self, net, port, msg):
        self.net = net
        self.port = port
        self.msg = msg
        # FIFO lane the real network would clamp (Network.send orders
        # per (sender, dest) when ordered=True)
        self.lane = (net.name, msg.sender, msg.dest)


class ExplorerHarness:
    """One live simulator instance with explorer control installed."""

    def __init__(self, cell, channel_bound=DEFAULT_CHANNEL_BOUND):
        self.cell = dict(cell)
        self.addresses = list(ADDRESS_POOL[: self.cell.get("addresses", 1)])
        self.channel_bound = channel_bound
        self.config = cell_config(**self.cell)
        self.system = build_system(self.config)
        self.sim = self.system.sim
        self.parked = []
        for net in (self.system.host_net, self.system.accel_net):
            self._install_park(net)
        self._core_maps = self._build_core_maps()
        self._settle()

    # -- network parking ------------------------------------------------------

    def _install_park(self, net):
        parked = self.parked
        sim = self.sim

        def park_send(msg, port, delay=0, _net=net):
            parked.append(_ParkedMessage(_net, port, msg))
            return sim.tick + 1

        # Instance attribute shadows the bound method; ``broadcast``
        # routes through ``self.send`` so fan-out parks per-copy too.
        net.send = park_send

    # -- deterministic settle -------------------------------------------------

    def _settle(self):
        sim = self.sim
        for _ in range(100_000):
            tick = sim.events.peek_tick()
            if tick is None or tick - sim.tick > SETTLE_GAP:
                return
            sim.run(max_ticks=tick, final_check=False)
        raise ExplorationError("settle did not converge within 100000 rounds")

    # -- choice enumeration ---------------------------------------------------

    def enabled_actions(self):
        """Every nondeterministic choice from the current settled state."""
        actions = []
        for index, seq in enumerate(self.system.sequencers):
            if seq.outstanding:
                continue  # one op in flight per core bounds the space
            for addr in self.addresses:
                actions.append(("issue", index, "load", addr))
                actions.append(("issue", index, "store", addr))
        seen_lanes = set()
        for index, parked in enumerate(self.parked):
            if parked.net.ordered:
                if parked.lane in seen_lanes:
                    continue  # FIFO lane: only the oldest is deliverable
                seen_lanes.add(parked.lane)
            actions.append((
                "deliver", index,
                parked.msg.sender, parked.msg.dest,
                getattr(parked.msg.mtype, "name", str(parked.msg.mtype)),
            ))
        return actions

    def apply(self, action):
        """Execute one choice, then settle. Raises on a stale replay."""
        action = tuple(action)
        kind = action[0]
        if kind == "issue":
            _, seq_index, op, addr = action
            seq = self.system.sequencers[seq_index]
            if seq.outstanding:
                raise ExplorationError(f"replay divergence: {seq.name} busy")
            if op == "load":
                seq.load(addr)
            elif op == "store":
                seq.store(addr, STORE_VALUE)
            else:
                raise ExplorationError(f"unknown op {op!r}")
        elif kind == "deliver":
            index = action[1]
            if index >= len(self.parked):
                raise ExplorationError("replay divergence: parked index gone")
            parked = self.parked.pop(index)
            msg = parked.msg
            if len(action) > 3 and (msg.sender, msg.dest) != action[2:4]:
                raise ExplorationError(
                    f"replay divergence: parked[{index}] is "
                    f"{msg.sender}->{msg.dest}, trace says "
                    f"{action[2]}->{action[3]}")
            dest = parked.net._endpoints[msg.dest]
            dest.deliver(parked.port, self.sim.tick + 1, msg)
        else:
            raise ExplorationError(f"unknown action kind {kind!r}")
        self._settle()

    # -- state predicates -----------------------------------------------------

    def is_quiescent(self):
        """No parked messages, pending work, open TBEs, or stalls."""
        if self.parked:
            return False
        for seq in self.system.sequencers:
            if seq.outstanding:
                return False
        for comp in self.sim.components:
            if comp.next_pending_tick() is not None:
                return False
            tbes = getattr(comp, "tbes", None)
            if tbes is not None and len(tbes):
                return False
            stalled = getattr(comp, "stalled_count", None)
            if stalled is not None and comp.stalled_count():
                return False
        return True

    def state_problems(self, check=None):
        """All safety-check failures of the current state (empty = clean)."""
        problems = []
        for log in self.system.error_logs:
            if len(log):
                record = log.errors[0]
                problems.append(
                    f"XG guarantee violated: {record.guarantee.name} "
                    f"addr={record.addr:#x}: {record.description}")
        if len(self.parked) > self.channel_bound:
            problems.append(
                f"channel bound exceeded: {len(self.parked)} parked "
                f"messages > {self.channel_bound}")
        if self.is_quiescent():
            try:
                check_all(self.system)
            except InvariantError as exc:
                problems.append(f"quiescent invariant violated: {exc}")
        if check is not None:
            fn = CHECKS.get(check)
            if fn is None:
                raise ExplorationError(f"unknown check {check!r}")
            message = fn(self)
            if message:
                problems.append(f"check {check!r} failed: {message}")
        return problems

    # -- coverage / projection harvest ---------------------------------------

    def covered_pairs(self):
        """Fired transitions so far, grouped by controller type."""
        out = {}
        for comp in self.system.controllers():
            pairs = out.setdefault(comp.CONTROLLER_TYPE, set())
            pairs.update(comp.covered_transitions())
        return out

    def transition_relation(self):
        """Declared transitions, grouped by controller type."""
        out = {}
        for comp in self.system.controllers():
            pairs = out.setdefault(comp.CONTROLLER_TYPE, set())
            pairs.update(comp.transition_relation())
        return out

    def link_projection(self):
        """(accel L1 state, mirror state) letter pairs per address.

        The concrete counterpart of the abstract model's ``(accel,
        mirror)`` fields — the differential test requires every pair seen
        here to be reachable in :mod:`repro.verify.model`. Empty for
        TRANSACTIONAL cells (no mirror to project).
        """
        pairs = set()
        for xg, caches, _accel_l2 in self.system.xg_groups:
            if xg.mirror is None:
                continue
            for addr in self.addresses:
                accel = "I"
                for cache in caches:
                    array = getattr(cache, "cache", None)
                    if array is None:
                        continue
                    entry = array.lookup(addr, touch=False)
                    if entry is not None:
                        accel = getattr(entry.state, "name", str(entry.state))
                    tbes = getattr(cache, "tbes", None)
                    if tbes is not None and addr in tbes:
                        accel = "B"  # request in flight: the abstract transient
                mirror_entry = xg.mirror.get(addr)
                mirror = "I" if mirror_entry is None else mirror_entry.accel_state
                pairs.add((accel, mirror))
        return pairs

    # -- canonical hashing ----------------------------------------------------

    def _build_core_maps(self):
        """All CPU-core renamings as exact-string maps (identity included)."""
        from itertools import permutations

        seqs = [seq.name for seq in self.system.cpu_seqs]
        caches = [cache.name for cache in self.system.cpu_caches]
        maps = []
        for perm in permutations(range(len(seqs))):
            mapping = {}
            for source, target in enumerate(perm):
                if source == target:
                    continue
                mapping[seqs[source]] = seqs[target]
                mapping[caches[source]] = caches[target]
            maps.append(mapping)
        return maps

    def snapshot(self):
        """Logical full-system state as plain data (no ticks, no uids)."""
        components = {}
        for comp in self.sim.components:
            hook = getattr(comp, "snapshot_state", None)
            if hook is not None:
                state = hook()
                if state:
                    components[comp.name] = state
        ordered_lanes = {}
        unordered = []
        for parked in self.parked:
            desc = (parked.net.name, parked.port, snap_message(parked.msg))
            if parked.net.ordered:
                ordered_lanes.setdefault(parked.lane, []).append(desc)
            else:
                unordered.append(desc)
        return {
            "components": components,
            "memory": {
                addr: bytes(self.system.memory.peek(addr).to_bytes())
                for addr in self.addresses
            },
            # FIFO lanes keep their order; the unordered channel is a
            # multiset, so sort it into a canonical sequence
            "lanes": {lane: tuple(msgs) for lane, msgs in ordered_lanes.items()},
            "bag": tuple(sorted(unordered, key=repr)),
        }

    def canonical(self):
        """Canonical state text: min over core and address renamings."""
        snap = self.snapshot()
        best = None
        from itertools import permutations

        for name_map in self._core_maps:
            for addr_perm in permutations(self.addresses):
                addr_map = dict(zip(self.addresses, addr_perm))
                text = repr(_freeze(_rename(snap, name_map, addr_map)))
                if best is None or text < best:
                    best = text
        return best

    def digest(self):
        return _sha(self.canonical())


def _rename(obj, name_map, addr_map):
    """Apply the symmetry renaming to every string and int in a snapshot."""
    if isinstance(obj, str):
        return name_map.get(obj, obj)
    if isinstance(obj, bool) or obj is None or isinstance(obj, (bytes, float)):
        return obj
    if isinstance(obj, int):
        return addr_map.get(obj, obj)
    if isinstance(obj, dict):
        return {
            _rename(key, name_map, addr_map): _rename(value, name_map, addr_map)
            for key, value in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return tuple(_rename(value, name_map, addr_map) for value in obj)
    return obj


def _freeze(obj):
    """Deterministic hashable form: dicts become sorted item tuples."""
    if isinstance(obj, dict):
        items = [(_freeze(key), _freeze(value)) for key, value in obj.items()]
        return ("dict", tuple(sorted(items, key=repr)))
    if isinstance(obj, (list, tuple)):
        return ("tuple", tuple(_freeze(value) for value in obj))
    return obj


def _sha(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def state_set_digest(visited):
    """Order-independent digest of a visited-state set.

    Serial and sharded explorations of the same cell must produce the
    same digest — the acceptance property for parallel frontiers.
    """
    return _sha("\n".join(sorted(visited)))


# -- frontier expansion (runs in campaign workers) ----------------------------


def replay_path(cell, path, channel_bound=DEFAULT_CHANNEL_BOUND):
    """Rebuild the state at the end of ``path`` on a fresh simulator."""
    harness = ExplorerHarness(cell, channel_bound=channel_bound)
    for action in path:
        harness.apply(action)
    return harness


def _expand_paths(cell, paths, check=None, channel_bound=DEFAULT_CHANNEL_BOUND):
    """Campaign shard runner: expand each frontier path to its children.

    Returns plain picklable records; the parent BFS merges them in
    submission order, so sharding never changes the result.
    """
    return [
        _expand_one(cell, tuple(tuple(a) for a in path), check, channel_bound)
        for path in paths
    ]


def _expand_one(cell, path, check, channel_bound):
    parent = replay_path(cell, path, channel_bound=channel_bound)
    record = {
        "path": [list(a) for a in path],
        "quiescent": parent.is_quiescent(),
        "children": [],
        "violation": None,
        "covered": {},
        "projections": set(),
        "relation": {},
    }

    def fail(reason, extra_action=None, harness=None):
        trace = [list(a) for a in path]
        if extra_action is not None:
            trace.append(list(extra_action))
        flagged = harness if harness is not None else parent
        record["violation"] = {
            "cell": dict(cell),
            "path": trace,
            "reason": reason,
            "check": check,
            "canonical": flagged.canonical(),
            "digest": flagged.digest(),
        }

    problems = parent.state_problems(check)
    if problems:
        fail(problems[0])
        return _finish(record, parent)
    actions = parent.enabled_actions()
    if not record["quiescent"] and not any(a[0] == "deliver" for a in actions):
        fail("deadlock: non-quiescent state with no deliverable message")
        return _finish(record, parent)
    for action in actions:
        child = replay_path(cell, path, channel_bound=channel_bound)
        try:
            child.apply(action)
        except (ProtocolError, InvariantError, DeadlockError) as exc:
            fail(f"{type(exc).__name__}: {exc}", extra_action=action)
            break
        problems = child.state_problems(check)
        if problems:
            fail(problems[0], extra_action=action, harness=child)
            break
        _harvest(record, child)
        record["children"].append({
            "action": list(action),
            "digest": child.digest(),
            "quiescent": child.is_quiescent(),
        })
    return _finish(record, parent)


def _harvest(record, harness):
    for ctype, pairs in harness.covered_pairs().items():
        record["covered"].setdefault(ctype, set()).update(
            tuple(pair) for pair in pairs)
    record["projections"].update(harness.link_projection())


def _finish(record, parent):
    _harvest(record, parent)
    for ctype, pairs in parent.transition_relation().items():
        record["relation"].setdefault(ctype, set()).update(
            tuple(pair) for pair in pairs)
    # plain sorted lists: records cross process boundaries
    record["covered"] = {
        ctype: sorted(pairs) for ctype, pairs in record["covered"].items()
    }
    record["relation"] = {
        ctype: sorted(pairs) for ctype, pairs in record["relation"].items()
    }
    record["projections"] = sorted(record["projections"])
    return record


# -- the BFS driver -----------------------------------------------------------


def explore_cell(host="mesi", variant="full_state", addresses=1, n_cpus=2,
                 workers=1, max_states=100_000, check=None,
                 channel_bound=DEFAULT_CHANNEL_BOUND, progress=None):
    """Breadth-first reachability exploration of one (host × variant) cell.

    Returns a result dict: state/transition/quiescent counts, the
    order-independent ``digest`` of the visited set, the
    reachability-proven transition sets per controller type, the XG-link
    projections, and — if any check failed — a replayable
    ``counterexample`` (its ``path`` re-executes on the live simulator
    via :func:`replay_path`).

    ``workers > 1`` shards each BFS level over the campaign executor;
    results merge in submission order, so the visited-set digest is
    byte-identical to the serial run.
    """
    cell = {"host": host, "variant": variant,
            "addresses": addresses, "n_cpus": n_cpus}
    root = ExplorerHarness(cell, channel_bound=channel_bound)
    root_digest = root.digest()
    visited = {root_digest}
    quiescent = {root_digest} if root.is_quiescent() else set()
    frontier = [()]
    reachable = {}
    relation = {}
    projections = set()
    transitions = 0
    counterexample = None
    truncated = False
    depth = 0
    while frontier and counterexample is None:
        records = _expand_frontier(cell, frontier, workers, check, channel_bound)
        next_frontier = []
        for record in records:
            for ctype, pairs in record["covered"].items():
                reachable.setdefault(ctype, set()).update(
                    tuple(pair) for pair in pairs)
            for ctype, pairs in record["relation"].items():
                relation.setdefault(ctype, set()).update(
                    tuple(pair) for pair in pairs)
            projections.update(tuple(pair) for pair in record["projections"])
            if record["violation"] is not None:
                counterexample = record["violation"]
                break
            transitions += len(record["children"])
            for child in record["children"]:
                digest = child["digest"]
                if digest in visited:
                    continue
                if len(visited) >= max_states:
                    truncated = True
                    continue
                visited.add(digest)
                if child["quiescent"]:
                    quiescent.add(digest)
                next_frontier.append(
                    tuple(tuple(a) for a in record["path"])
                    + (tuple(child["action"]),))
        depth += 1
        if progress is not None:
            progress(depth, len(visited), len(next_frontier))
        frontier = next_frontier
    return {
        "cell": cell,
        "states": len(visited),
        "transitions": transitions,
        "quiescent_states": len(quiescent),
        "depth": depth,
        "digest": state_set_digest(visited),
        "reachable": {ctype: sorted(pairs) for ctype, pairs in reachable.items()},
        "relation": {ctype: sorted(pairs) for ctype, pairs in relation.items()},
        "projections": sorted(projections),
        "counterexample": counterexample,
        "truncated": truncated,
        "complete": counterexample is None and not truncated,
        "ok": counterexample is None,
    }


def _expand_frontier(cell, frontier, workers, check, channel_bound):
    paths = [[list(a) for a in path] for path in frontier]
    if workers <= 1 or len(paths) <= 1:
        return _expand_paths(cell, paths, check, channel_bound)
    shards = shard_evenly(paths, workers * 4)
    jobs = [
        CampaignJob(
            runner=_expand_paths,
            args=(cell, shard, check, channel_bound),
            label=f"explore[{cell['host']}/{cell['variant']}] shard {index}",
        )
        for index, shard in enumerate(shards)
    ]
    records = []
    for outcome in run_campaign(jobs, workers=workers):
        if not outcome.ok:
            raise ExplorationError(
                f"frontier shard failed: {outcome.error_type}: "
                f"{outcome.error}\n{outcome.traceback}")
        records.extend(outcome.value)
    return records


# -- coverage cross-check -----------------------------------------------------


def run_cell_stress(cell, seed=0, ops=200):
    """Seeded random run on the *exact* explorer cell configuration.

    Drives the same addresses with at most one outstanding op per
    sequencer (the explorer's own issue discipline), randomized network
    latencies, and the explorer's huge probe timeout — so every
    transition this run covers must be reachable by the explorer. The
    cross-check below enforces exactly that.
    """
    import random

    config = dc_replace(
        cell_config(**cell),
        randomize_latencies=True,
        seed=seed,
        deadlock_threshold=1_000_000,
    )
    system = build_system(config)
    rng = random.Random(seed)
    addresses = list(ADDRESS_POOL[: dict(cell).get("addresses", 1)])
    budget = {"left": int(ops)}

    def issue(seq):
        if budget["left"] <= 0:
            return
        budget["left"] -= 1
        addr = rng.choice(addresses)
        done = lambda msg, data, _seq=seq: issue(_seq)
        if rng.random() < 0.5:
            seq.load(addr, done)
        else:
            seq.store(addr, STORE_VALUE, done)

    for seq in system.sequencers:
        issue(seq)
    system.run_until_drained()
    covered = {}
    for comp in system.controllers():
        pairs = covered.setdefault(comp.CONTROLLER_TYPE, set())
        pairs.update(tuple(pair) for pair in comp.covered_transitions())
    return {ctype: sorted(pairs) for ctype, pairs in covered.items()}


def cross_check_coverage(result, covered):
    """Transitions a stress run covered that exploration says are
    unreachable — must be empty, or one of the two models is wrong."""
    reachable = {
        ctype: {tuple(pair) for pair in pairs}
        for ctype, pairs in result["reachable"].items()
    }
    problems = []
    for ctype, pairs in covered.items():
        extra = {tuple(pair) for pair in pairs} - reachable.get(ctype, set())
        if extra:
            problems.append((ctype, sorted(extra)))
    return problems


def load_reachable_report(path, include_partial=False):
    """Union the reachable-transition sets out of an ``explore_report.json``.

    Returns ``{ctype: {(state, event), ...}}`` suitable for
    :func:`repro.obs.matrix.render_matrix`'s ``reachable`` parameter —
    the bridge that makes ``repro report``'s uncovered lists
    reachability-authoritative.

    Truncated (``max_states``-capped) cells are skipped unless
    ``include_partial`` — an incomplete reachable set would silently
    misclassify unexplored-but-reachable transitions as dead rows.
    """
    import json

    with open(path) as fh:
        payload = json.load(fh)
    cells = payload.get("cells", payload if isinstance(payload, list) else [payload])
    out = {}
    for result in cells:
        if result.get("truncated") and not include_partial:
            continue
        for ctype, pairs in result.get("reachable", {}).items():
            out.setdefault(ctype, set()).update(tuple(pair) for pair in pairs)
    return out


def authoritative_uncovered(result, covered):
    """The report's authoritative uncovered list: reachable minus covered.

    Declared-but-unreachable transitions are excluded — they are dead
    table rows for this cell, not coverage gaps.
    """
    covered_sets = {
        ctype: {tuple(pair) for pair in pairs}
        for ctype, pairs in covered.items()
    }
    out = {}
    for ctype, pairs in result["reachable"].items():
        missing = {tuple(pair) for pair in pairs} - covered_sets.get(ctype, set())
        if missing:
            out[ctype] = sorted(missing)
    return out
