"""Cache-block data payloads.

A :class:`DataBlock` wraps a fixed-size bytearray. The random tester writes
and checks single bytes; the Crossing Guard block-size translator merges and
splits whole blocks (Section 2.5 of the paper).
"""

BLOCK_SIZE = 64


def block_align(addr, block_size=BLOCK_SIZE):
    """Round ``addr`` down to its block base."""
    return addr - (addr % block_size)


def block_offset(addr, block_size=BLOCK_SIZE):
    """Byte offset of ``addr`` within its block."""
    return addr % block_size


class DataBlock:
    """Fixed-size mutable data payload with value semantics on copy.

    Blocks compare equal by content, so the random tester can check a
    loaded block against the expected value directly.
    """

    __slots__ = ("size", "_bytes")

    def __init__(self, size=BLOCK_SIZE, fill=0):
        if size <= 0:
            raise ValueError("block size must be positive")
        if not 0 <= fill <= 0xFF:
            raise ValueError("fill must be a byte value")
        self.size = size
        self._bytes = bytearray([fill]) * size if fill else bytearray(size)

    @classmethod
    def from_bytes(cls, raw):
        """Build a block whose size and content are ``raw``."""
        block = cls(size=len(raw))
        block._bytes[:] = raw
        return block

    def copy(self):
        """An independent copy (messages must not alias cache storage)."""
        clone = DataBlock(size=self.size)
        clone._bytes[:] = self._bytes
        return clone

    def read_byte(self, offset):
        """Byte at ``offset``."""
        return self._bytes[offset]

    def write_byte(self, offset, value):
        """Set byte at ``offset`` to ``value``."""
        if not 0 <= value <= 0xFF:
            raise ValueError(f"byte value out of range: {value}")
        self._bytes[offset] = value

    def read_bytes(self, offset, length):
        """``length`` bytes starting at ``offset``."""
        if offset < 0 or offset + length > self.size:
            raise IndexError("read beyond block")
        return bytes(self._bytes[offset : offset + length])

    def write_bytes(self, offset, raw):
        """Overwrite bytes starting at ``offset``."""
        if offset < 0 or offset + len(raw) > self.size:
            raise IndexError("write beyond block")
        self._bytes[offset : offset + len(raw)] = raw

    def zero(self):
        """Clear the block — Crossing Guard's untrusted-data response."""
        for index in range(self.size):
            self._bytes[index] = 0

    def is_zero(self):
        return not any(self._bytes)

    def to_bytes(self):
        return bytes(self._bytes)

    def __eq__(self, other):
        if not isinstance(other, DataBlock):
            return NotImplemented
        return self._bytes == other._bytes

    def __hash__(self):
        raise TypeError("DataBlock is mutable and unhashable")

    def __repr__(self):
        head = self._bytes[:8].hex()
        return f"DataBlock(size={self.size}, head={head}...)"
