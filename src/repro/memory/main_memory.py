"""Backing main memory.

Directories access memory through this object; the access latency is
applied by the caller via ``sim.schedule(memory.latency, ...)`` so the
memory itself stays a plain store. Unwritten blocks read as zero.
"""

from repro.memory.datablock import BLOCK_SIZE, DataBlock, block_align


class MainMemory:
    """Word-of-truth backing store, one :class:`DataBlock` per block."""

    def __init__(self, block_size=BLOCK_SIZE, latency=80):
        self.block_size = block_size
        self.latency = latency
        self._blocks = {}
        self.reads = 0
        self.writes = 0

    def read(self, addr):
        """Copy of the block containing ``addr`` (zeros if never written)."""
        addr = block_align(addr, self.block_size)
        self.reads += 1
        block = self._blocks.get(addr)
        if block is None:
            return DataBlock(self.block_size)
        return block.copy()

    def write(self, addr, data):
        """Store a copy of ``data`` at ``addr``'s block."""
        addr = block_align(addr, self.block_size)
        if data.size != self.block_size:
            raise ValueError(
                f"block size mismatch: memory {self.block_size}, data {data.size}"
            )
        self.writes += 1
        self._blocks[addr] = data.copy()

    def peek(self, addr):
        """Read without counting (for checkers); zeros if never written."""
        addr = block_align(addr, self.block_size)
        block = self._blocks.get(addr)
        return block.copy() if block is not None else DataBlock(self.block_size)

    def __repr__(self):
        return f"MainMemory(blocks={len(self._blocks)}, latency={self.latency})"
