"""Set-associative cache array with LRU replacement.

The array stores *stable-state* entries only; in-flight blocks live in TBEs
(see :mod:`repro.coherence.tbe`). Entries carry a protocol state, a data
block, and arbitrary per-protocol metadata (sharer sets, permission bits).
"""

from repro.memory.datablock import BLOCK_SIZE, DataBlock, block_align


class CacheEntry:
    """One resident cache block."""

    __slots__ = ("addr", "state", "data", "dirty", "permission", "meta", "last_use")

    def __init__(self, addr, state, data, dirty=False, permission=None):
        self.addr = addr
        self.state = state
        self.data = data
        self.dirty = dirty
        self.permission = permission
        self.meta = {}
        self.last_use = 0

    def __repr__(self):
        state = getattr(self.state, "name", self.state)
        return f"CacheEntry(addr={self.addr:#x}, state={state}, dirty={self.dirty})"


class CacheArray:
    """Set-associative array of :class:`CacheEntry` with true-LRU victims."""

    def __init__(self, num_sets, assoc, block_size=BLOCK_SIZE, name=""):
        if num_sets < 1 or assoc < 1:
            raise ValueError("num_sets and assoc must be >= 1")
        if num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        self.num_sets = num_sets
        self.assoc = assoc
        self.block_size = block_size
        self.name = name
        self._sets = [dict() for _ in range(num_sets)]
        self._use_clock = 0

    # -- indexing ------------------------------------------------------------

    def set_index(self, addr):
        return (addr // self.block_size) % self.num_sets

    def _set_for(self, addr):
        return self._sets[self.set_index(addr)]

    # -- lookup ---------------------------------------------------------------

    def lookup(self, addr, touch=True):
        """Entry for ``addr``'s block, or None. ``touch`` updates LRU."""
        addr = block_align(addr, self.block_size)
        entry = self._set_for(addr).get(addr)
        if entry is not None and touch:
            self._use_clock += 1
            entry.last_use = self._use_clock
        return entry

    def __contains__(self, addr):
        return self.lookup(addr, touch=False) is not None

    # -- allocation -----------------------------------------------------------

    def is_set_full(self, addr):
        return len(self._set_for(block_align(addr, self.block_size))) >= self.assoc

    def allocate(self, addr, state, data=None, dirty=False, permission=None):
        """Insert a new entry; the set must have space (caller evicts first)."""
        addr = block_align(addr, self.block_size)
        target_set = self._set_for(addr)
        if addr in target_set:
            raise ValueError(f"{self.name}: double allocate of {addr:#x}")
        if len(target_set) >= self.assoc:
            raise ValueError(f"{self.name}: set full, evict before allocating {addr:#x}")
        if data is None:
            data = DataBlock(self.block_size)
        entry = CacheEntry(addr, state, data, dirty=dirty, permission=permission)
        self._use_clock += 1
        entry.last_use = self._use_clock
        target_set[addr] = entry
        return entry

    def deallocate(self, addr):
        """Remove the entry for ``addr``; returns it (KeyError if absent)."""
        addr = block_align(addr, self.block_size)
        return self._set_for(addr).pop(addr)

    def victim(self, addr):
        """LRU entry in ``addr``'s set (candidate for eviction), or None."""
        target_set = self._set_for(block_align(addr, self.block_size))
        if not target_set:
            return None
        return min(target_set.values(), key=lambda entry: entry.last_use)

    # -- inspection -----------------------------------------------------------

    def entries(self):
        """All resident entries (order unspecified)."""
        for target_set in self._sets:
            yield from target_set.values()

    def occupancy(self):
        return sum(len(target_set) for target_set in self._sets)

    @property
    def capacity_blocks(self):
        return self.num_sets * self.assoc

    @property
    def capacity_bytes(self):
        return self.capacity_blocks * self.block_size

    def __repr__(self):
        return (
            f"CacheArray({self.name!r}, sets={self.num_sets}, assoc={self.assoc}, "
            f"occupancy={self.occupancy()}/{self.capacity_blocks})"
        )
