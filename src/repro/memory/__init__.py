"""Memory substrate: data blocks, set-associative cache arrays, main memory."""

from repro.memory.datablock import BLOCK_SIZE, DataBlock, block_align, block_offset
from repro.memory.cache_array import CacheArray, CacheEntry
from repro.memory.main_memory import MainMemory

__all__ = [
    "BLOCK_SIZE",
    "CacheArray",
    "CacheEntry",
    "DataBlock",
    "MainMemory",
    "block_align",
    "block_offset",
]
