"""Crossing Guard host port for the inclusive MESI two-level protocol.

To the MESI L2, Crossing Guard is just another private L1 (Section 3): it
issues GetS/GetM/GetS_Only and Puts, counts invalidation acks, sends
Unblocks, and answers Inv/Fwd/Recall — shielding the accelerator from all
of it. Races between an accelerator writeback and a host forward are
resolved from the writeback's data exactly like a host L1's ``MI_A``
transients.
"""

from repro.coherence.controller import CONSUMED, ProtocolError
from repro.memory.datablock import DataBlock
from repro.protocols.mesi.messages import MesiMsg
from repro.xg.base import CrossingGuardBase
from repro.xg.errors import Guarantee
from repro.xg.interface import AccelMsg


_PROBE_NEEDS_DATA = {
    MesiMsg.Inv: False,
    MesiMsg.Fwd_GetS: True,
    MesiMsg.Fwd_GetM: True,
    MesiMsg.Recall: True,
}


class MesiCrossingGuard(CrossingGuardBase):
    """Crossing Guard appearing to the host as a MESI private L1."""

    CONTROLLER_TYPE = "xg_mesi"

    def __init__(self, sim, name, host_net, accel_net, l2_name, **kw):
        self.l2_name = l2_name
        super().__init__(sim, name, host_net, accel_net, **kw)
        # compiled host-response dispatch: one bound handler per message
        # type, mirroring the controllers' flattened transition tables
        self._host_response_dispatch = {
            MesiMsg.DataS: self._resp_data_s,
            MesiMsg.DataE: self._resp_data_e,
            MesiMsg.DataM: self._resp_data_m,
            MesiMsg.InvAck: self._resp_inv_ack,
        }

    def _build_transitions(self):
        # XG is not table-driven; its flows are explicit methods. Keep an
        # empty table so coverage tooling sees no unvisited transitions.
        return

    # -- host-side sends ---------------------------------------------------------

    def _to_l2(self, mtype, addr, port="request", **kw):
        return self.send_to_host(mtype, addr, self.l2_name, port, **kw)

    # -- host messages --------------------------------------------------------------

    def handle_host_message(self, port, msg):
        addr = self.align(msg.addr)
        tbe = self.tbes.lookup(addr)
        if port == "response":
            return self._host_response(msg, addr, tbe)
        return self._host_forward(msg, addr, tbe)

    def _host_response(self, msg, addr, tbe):
        if tbe is None or tbe.meta.get("kind") != "accel_get":
            raise ProtocolError(self, "xg", msg.mtype, msg, note="response with no get open")
        handler = self._host_response_dispatch.get(msg.mtype)
        if handler is None:
            raise ProtocolError(self, "xg", msg.mtype, msg, note="bad host response")
        handler(msg, addr, tbe)
        return CONSUMED

    def _resp_data_s(self, msg, addr, tbe):
        self._to_l2(MesiMsg.UnblockS, addr, port="response")
        self.finish_accel_get(addr, "S", msg.data, dirty=False)

    def _resp_data_e(self, msg, addr, tbe):
        self._to_l2(MesiMsg.UnblockX, addr, port="response")
        self.finish_accel_get(addr, "E", msg.data, dirty=False)

    def _resp_data_m(self, msg, addr, tbe):
        tbe.data = msg.data.copy()
        tbe.dirty = msg.dirty
        tbe.acks_needed = msg.ack_count
        tbe.data_received = True
        if tbe.acks_received >= tbe.acks_needed:
            self._complete_getm(addr, tbe)

    def _resp_inv_ack(self, msg, addr, tbe):
        tbe.acks_received += 1
        if tbe.data_received and tbe.acks_received >= tbe.acks_needed:
            self._complete_getm(addr, tbe)

    def _complete_getm(self, addr, tbe):
        self._to_l2(MesiMsg.UnblockX, addr, port="response")
        grant = "M" if tbe.meta["accel_req"] is AccelMsg.GetM else (
            "M" if tbe.dirty else "E"
        )
        self.finish_accel_get(addr, grant, tbe.data, dirty=tbe.dirty)

    def _host_forward(self, msg, addr, tbe):
        mtype = msg.mtype
        if mtype in (MesiMsg.WBAck, MesiMsg.WBNack):
            if tbe is None or tbe.meta.get("kind") != "accel_put":
                raise ProtocolError(self, "xg", mtype, msg, note="WB ack with no put open")
            self.finish_accel_put(addr)
            return CONSUMED
        if tbe is not None and tbe.meta.get("kind") == "accel_put":
            return self._put_race_forward(msg, addr, tbe)
        if tbe is not None and tbe.meta.get("kind") == "accel_get":
            if mtype is MesiMsg.Inv:
                # The accelerator's upgrade lost to a remote GetM (the host
                # L1's SM_AD+Inv race). The accelerator's stale S copy is
                # unreadable while it waits in B, so acking immediately is
                # coherent; fresh data arrives with the eventual DataM.
                self.send_to_host(MesiMsg.InvAck, addr, msg.requestor, "response")
                self.stats.inc("upgrade_inv_races")
                return CONSUMED
            # A data-needing forward while a Get is open: only reachable
            # when a misbehaving accelerator re-requested a block it owns
            # (Transactional XG cannot pre-filter that, Guarantee 1a).
            # Never stall the host: answer with zeros — corrupt data on
            # the accelerator's own pages, but guaranteed convergence.
            self.report(
                Guarantee.G2A_STABLE_RESPONSE,
                addr,
                f"{mtype.name} during an open accelerator request; zero data supplied",
            )
            self._answer_with_data(msg, addr, DataBlock(self.block_size), dirty=True)
            return CONSUMED
        if tbe is not None:
            if tbe.meta.get("race_resolved"):
                # The previous probe was answered from a racing Put and the
                # host moved on; only the accelerator's trailing InvAck is
                # outstanding. The accelerator holds nothing now.
                self._answer_as_nonholder(msg, addr)
                return CONSUMED
            # The blocking L2 never probes a block with an open XG probe.
            raise ProtocolError(
                self, tbe.meta.get("kind"), mtype, msg, note="probe during open transaction"
            )
        return self._stable_forward(msg, addr)

    def _put_race_forward(self, msg, addr, tbe):
        """A forward overtook our Put: answer from the Put's data."""
        mtype = msg.mtype
        data = tbe.data if tbe.data is not None else DataBlock(self.block_size)
        if mtype is MesiMsg.Inv:
            self.send_to_host(MesiMsg.InvAck, addr, msg.requestor, "response")
        elif mtype is MesiMsg.Fwd_GetS:
            self.send_to_host(MesiMsg.DataS, addr, msg.requestor, "response", data=data.copy())
            self._to_l2(
                MesiMsg.CopyBack, addr, port="response", data=data.copy(), dirty=tbe.dirty
            )
        elif mtype is MesiMsg.Fwd_GetM:
            self.send_to_host(
                MesiMsg.DataM,
                addr,
                msg.requestor,
                "response",
                data=data.copy(),
                dirty=tbe.dirty,
                ack_count=0,
            )
        elif mtype is MesiMsg.Recall:
            self._to_l2(
                MesiMsg.CopyBackInv, addr, port="response", data=data.copy(), dirty=tbe.dirty
            )
        else:
            raise ProtocolError(self, "accel_put", mtype, msg, note="bad forward")
        self.stats.inc("put_forward_races")
        return CONSUMED

    def _stable_forward(self, msg, addr):
        mtype = msg.mtype
        needs_data = _PROBE_NEEDS_DATA[mtype]
        entry = self.mirror_entry(addr)
        if self.is_full_state:
            if entry is None:
                # Accelerator holds nothing; answer as a clean non-holder.
                self._answer_as_nonholder(msg, addr)
                self.stats.inc("probes_answered_locally")
                return CONSUMED
            if entry.retained_data is not None and mtype is MesiMsg.Fwd_GetS:
                # XG owns the block on behalf of a read-only sharer; serve
                # the data and stay a sharer — the accelerator's S copy
                # remains valid since a GetS does not invalidate sharers.
                self.send_to_host(
                    MesiMsg.DataS, addr, msg.requestor, "response",
                    data=entry.retained_data.copy(),
                )
                self._to_l2(
                    MesiMsg.CopyBack, addr, port="response",
                    data=entry.retained_data.copy(), dirty=entry.retained_dirty,
                )
                entry.retained_dirty = False
                self.stats.inc("probes_answered_locally")
                return CONSUMED
            if entry.accel_state == "I" and entry.retained_data is not None:
                # Only XG holds the (retained) block.
                self._answer_with_data(msg, addr, entry.retained_data, entry.retained_dirty)
                self.mirror_remove(addr)
                self.stats.inc("probes_answered_locally")
                return CONSUMED
        else:
            if not self.permissions.allows_read(addr):
                # No-permission blocks are answered without consulting the
                # accelerator — also closes the coherence side channel.
                self._answer_as_nonholder(msg, addr)
                self.stats.inc("probes_answered_locally")
                return CONSUMED
        context = {"mtype": mtype, "requestor": msg.requestor}
        self.start_probe(addr, needs_data, context)
        return CONSUMED

    def _answer_as_nonholder(self, msg, addr):
        """Answer a probe for a block neither XG nor the accelerator holds."""
        if msg.mtype is MesiMsg.Inv:
            self.send_to_host(MesiMsg.InvAck, addr, msg.requestor, "response")
            return
        # A data-needing forward for a block we do not hold: only possible
        # after an earlier error recovery; satisfy the host with zeros.
        self.stats.inc("zero_data_fabrications")
        self._answer_with_data(msg, addr, DataBlock(self.block_size), dirty=True)

    def _answer_with_data(self, msg, addr, data, dirty):
        if msg.mtype is MesiMsg.Fwd_GetS:
            self.send_to_host(MesiMsg.DataS, addr, msg.requestor, "response", data=data.copy())
            self._to_l2(MesiMsg.CopyBack, addr, port="response", data=data.copy(), dirty=dirty)
        elif msg.mtype is MesiMsg.Fwd_GetM:
            self.send_to_host(
                MesiMsg.DataM, addr, msg.requestor, "response", data=data.copy(),
                dirty=dirty, ack_count=0,
            )
        elif msg.mtype is MesiMsg.Recall:
            self._to_l2(
                MesiMsg.CopyBackInv, addr, port="response", data=data.copy(), dirty=dirty
            )
        else:  # Inv
            self.send_to_host(MesiMsg.InvAck, addr, msg.requestor, "response")

    # -- base hooks ------------------------------------------------------------------------

    def host_issue_get(self, addr, want_m, gets_only, tbe):
        if want_m:
            tbe.acks_needed = None
            self._to_l2(MesiMsg.GetM, addr)
        elif gets_only:
            self._to_l2(MesiMsg.GetS_Only, addr)
        else:
            self._to_l2(MesiMsg.GetS, addr)

    def host_issue_put(self, addr, put_type, tbe):
        if put_type is AccelMsg.PutS:
            self._to_l2(MesiMsg.PutS, addr)
        elif put_type is AccelMsg.PutE:
            self._to_l2(MesiMsg.PutE, addr, data=tbe.data.copy(), dirty=False)
        else:
            self._to_l2(MesiMsg.PutM, addr, data=tbe.data.copy(), dirty=True)

    def host_answer_probe(self, addr, tbe, got_wb, data, dirty):
        context = tbe.meta["context"]
        mtype = context["mtype"]
        requestor = context["requestor"]
        if mtype is MesiMsg.Inv:
            if got_wb:
                # Transactional XG forwards the unexpected data to the L2,
                # which acks the requestor on the accelerator's behalf
                # (Section 3.2.2 host modification).
                self._to_l2(
                    MesiMsg.CopyBack, addr, port="response", data=data.copy(), dirty=dirty
                )
            else:
                self.send_to_host(MesiMsg.InvAck, addr, requestor, "response")
            return
        payload = data if data is not None else DataBlock(self.block_size)
        if mtype is MesiMsg.Fwd_GetS:
            self.send_to_host(
                MesiMsg.DataS, addr, requestor, "response", data=payload.copy()
            )
            self._to_l2(
                MesiMsg.CopyBack, addr, port="response", data=payload.copy(), dirty=dirty
            )
        elif mtype is MesiMsg.Fwd_GetM:
            self.send_to_host(
                MesiMsg.DataM, addr, requestor, "response", data=payload.copy(),
                dirty=dirty, ack_count=0,
            )
        elif mtype is MesiMsg.Recall:
            self._to_l2(
                MesiMsg.CopyBackInv, addr, port="response", data=payload.copy(), dirty=dirty
            )
        else:
            raise AssertionError(f"unknown probe context {mtype}")
