"""OS-visible error reporting for Crossing Guard.

When a guarantee is violated Crossing Guard never disturbs the host
protocol; it blocks/corrects the offending message and appends a
machine-readable error record here. The OS policy hook models the
recovery actions the paper lists (terminate the accelerator process,
disable the accelerator, alert the user).
"""

import enum


class Guarantee(enum.Enum):
    """The guarantees of Figure 1."""

    G0A_READ_PERMISSION = enum.auto()  # request without page access
    G0B_WRITE_PERMISSION = enum.auto()  # exclusive request/data without write perm
    G1A_STABLE_REQUEST = enum.auto()  # request inconsistent with stable state
    G1B_TRANSIENT_REQUEST = enum.auto()  # request while one is already pending
    G2A_STABLE_RESPONSE = enum.auto()  # response inconsistent with stable state
    G2B_TRANSIENT_RESPONSE = enum.auto()  # response with no pending request
    G2C_TIMEOUT = enum.auto()  # no response within the timeout
    G3_MALFORMED = enum.auto()  # message the interface cannot even parse


class XGError:
    """One recorded guarantee violation."""

    __slots__ = ("tick", "guarantee", "addr", "description", "accel")

    def __init__(self, tick, guarantee, addr, description, accel=""):
        self.tick = tick
        self.guarantee = guarantee
        self.addr = addr
        self.description = description
        self.accel = accel

    def as_dict(self):
        """Machine-readable record (what an OS driver would log)."""
        return {
            "tick": self.tick,
            "guarantee": self.guarantee.name,
            "addr": self.addr,
            "description": self.description,
            "accel": self.accel,
        }

    def __repr__(self):
        return (
            f"XGError(t={self.tick}, {self.guarantee.name}, addr={self.addr:#x}, "
            f"{self.description!r})"
        )


#: Quarantine ladder rungs, mildest first.
QUARANTINE_STATES = ("healthy", "warned", "throttled", "disabled")


class XGErrorLog:
    """The OS's view of accelerator misbehavior.

    The three thresholds form an escalating quarantine ladder over the
    cumulative violation count:

    * ``warn_after``      — advisory rung: the OS is alerted (a mark in
      the telemetry stream), nothing else changes;
    * ``throttle_after``  — the Crossing Guard clamps the accelerator's
      request rate limiter to its punitive setting;
    * ``disable_after``   — further requests are dropped (Nack'd) at the
      Crossing Guard and probes are answered by surrogate.

    Each may be None to skip that rung; ``disable_after`` alone
    reproduces the original binary enable/disable policy.
    """

    def __init__(self, disable_after=None, warn_after=None, throttle_after=None):
        self.errors = []
        self.disable_after = disable_after
        self.warn_after = warn_after
        self.throttle_after = throttle_after
        self.accel_disabled = False

    @property
    def quarantine_state(self):
        """Current rung of the quarantine ladder."""
        count = len(self.errors)
        if self.accel_disabled:
            return "disabled"
        if self.throttle_after is not None and count >= self.throttle_after:
            return "throttled"
        if self.warn_after is not None and count >= self.warn_after:
            return "warned"
        return "healthy"

    def report(self, tick, guarantee, addr, description, accel=""):
        error = XGError(tick, guarantee, addr, description, accel=accel)
        self.errors.append(error)
        if self.disable_after is not None and len(self.errors) >= self.disable_after:
            self.accel_disabled = True
        return error

    def count(self, guarantee=None):
        if guarantee is None:
            return len(self.errors)
        return sum(1 for error in self.errors if error.guarantee is guarantee)

    def by_guarantee(self):
        counts = {}
        for error in self.errors:
            counts[error.guarantee] = counts.get(error.guarantee, 0) + 1
        return counts

    def as_dict(self):
        """The whole log as plain data: summary plus every record."""
        return {
            "count": len(self.errors),
            "accel_disabled": self.accel_disabled,
            "disable_after": self.disable_after,
            "warn_after": self.warn_after,
            "throttle_after": self.throttle_after,
            "quarantine_state": self.quarantine_state,
            "by_guarantee": {g.name: n for g, n in self.by_guarantee().items()},
            "errors": [error.as_dict() for error in self.errors],
        }

    def __len__(self):
        return len(self.errors)

    def __iter__(self):
        return iter(self.errors)

    def __repr__(self):
        return f"XGErrorLog(errors={len(self.errors)}, disabled={self.accel_disabled})"
