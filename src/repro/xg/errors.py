"""OS-visible error reporting for Crossing Guard.

When a guarantee is violated Crossing Guard never disturbs the host
protocol; it blocks/corrects the offending message and appends a
machine-readable error record here. The OS policy hook models the
recovery actions the paper lists (terminate the accelerator process,
disable the accelerator, alert the user).
"""

import enum


class Guarantee(enum.Enum):
    """The guarantees of Figure 1."""

    G0A_READ_PERMISSION = enum.auto()  # request without page access
    G0B_WRITE_PERMISSION = enum.auto()  # exclusive request/data without write perm
    G1A_STABLE_REQUEST = enum.auto()  # request inconsistent with stable state
    G1B_TRANSIENT_REQUEST = enum.auto()  # request while one is already pending
    G2A_STABLE_RESPONSE = enum.auto()  # response inconsistent with stable state
    G2B_TRANSIENT_RESPONSE = enum.auto()  # response with no pending request
    G2C_TIMEOUT = enum.auto()  # no response within the timeout


class XGError:
    """One recorded guarantee violation."""

    __slots__ = ("tick", "guarantee", "addr", "description", "accel")

    def __init__(self, tick, guarantee, addr, description, accel=""):
        self.tick = tick
        self.guarantee = guarantee
        self.addr = addr
        self.description = description
        self.accel = accel

    def as_dict(self):
        """Machine-readable record (what an OS driver would log)."""
        return {
            "tick": self.tick,
            "guarantee": self.guarantee.name,
            "addr": self.addr,
            "description": self.description,
            "accel": self.accel,
        }

    def __repr__(self):
        return (
            f"XGError(t={self.tick}, {self.guarantee.name}, addr={self.addr:#x}, "
            f"{self.description!r})"
        )


class XGErrorLog:
    """The OS's view of accelerator misbehavior.

    ``disable_after`` models an OS policy that disables the accelerator
    (further requests dropped at the Crossing Guard) once the error count
    crosses a threshold; None leaves the accelerator enabled forever.
    """

    def __init__(self, disable_after=None):
        self.errors = []
        self.disable_after = disable_after
        self.accel_disabled = False

    def report(self, tick, guarantee, addr, description, accel=""):
        error = XGError(tick, guarantee, addr, description, accel=accel)
        self.errors.append(error)
        if self.disable_after is not None and len(self.errors) >= self.disable_after:
            self.accel_disabled = True
        return error

    def count(self, guarantee=None):
        if guarantee is None:
            return len(self.errors)
        return sum(1 for error in self.errors if error.guarantee is guarantee)

    def by_guarantee(self):
        counts = {}
        for error in self.errors:
            counts[error.guarantee] = counts.get(error.guarantee, 0) + 1
        return counts

    def as_dict(self):
        """The whole log as plain data: summary plus every record."""
        return {
            "count": len(self.errors),
            "accel_disabled": self.accel_disabled,
            "disable_after": self.disable_after,
            "by_guarantee": {g.name: n for g, n in self.by_guarantee().items()},
            "errors": [error.as_dict() for error in self.errors],
        }

    def __len__(self):
        return len(self.errors)

    def __iter__(self):
        return iter(self.errors)

    def __repr__(self):
        return f"XGErrorLog(errors={len(self.errors)}, disabled={self.accel_disabled})"
