"""Crossing Guard — the paper's contribution.

Trusted host hardware mediating all coherence interactions between the
host protocol and an accelerator cache hierarchy:

* :mod:`repro.xg.interface` — the standardized accelerator coherence
  interface (5 requests, 4 responses; 1 host request, 3 responses);
* :mod:`repro.xg.errors` — the OS-visible error log for guarantee
  violations (G0-G2c);
* :mod:`repro.xg.permissions` — Border-Control-style page permissions;
* :mod:`repro.xg.rate_limiter` — DoS request throttling (Section 2.5);
* :mod:`repro.xg.block_translator` — accel/host block-size translation
  (Section 2.5);
* :mod:`repro.xg.base` plus :mod:`repro.xg.mesi_xg` /
  :mod:`repro.xg.hammer_xg` — the Crossing Guard controllers, each
  supporting both the Full State and Transactional variants
  (Section 2.3).
"""

from repro.xg.interface import AccelMsg, XGVariant
from repro.xg.errors import Guarantee, XGError, XGErrorLog
from repro.xg.permissions import PagePermission, PermissionTable
from repro.xg.rate_limiter import RateLimiter
from repro.xg.block_translator import BlockTranslator
from repro.xg.mesi_xg import MesiCrossingGuard
from repro.xg.mesif_xg import MesifCrossingGuard
from repro.xg.hammer_xg import HammerCrossingGuard

__all__ = [
    "AccelMsg",
    "BlockTranslator",
    "Guarantee",
    "HammerCrossingGuard",
    "MesiCrossingGuard",
    "MesifCrossingGuard",
    "PagePermission",
    "PermissionTable",
    "RateLimiter",
    "XGError",
    "XGErrorLog",
    "XGVariant",
]
