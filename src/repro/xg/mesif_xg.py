"""Crossing Guard host port for the inclusive MESIF protocol.

Nearly the MESI port, plus the F-state policy: the accelerator interface
cannot express "designated responder" (an F holder must later supply
data, which a Transactional XG has no storage for), so Crossing Guard

* maps a ``DataF`` grant to plain ``DataS`` at the accelerator while
  acknowledging the designation (``UnblockF``) toward the host, and
* **declines** the role when probed: ``Fwd_GetS_F`` is answered with an
  ``FNack``, which the protocol already tolerates because any cache may
  silently drop F.

Because MESIF has no PutS, accelerator PutS requests complete locally —
the same "host does not need them" situation measured for Hammer in
experiment E8, arising here from protocol shape rather than a register.
"""

from repro.coherence.controller import CONSUMED, ProtocolError
from repro.memory.datablock import DataBlock
from repro.protocols.mesif.messages import MesifMsg
from repro.xg.base import CrossingGuardBase
from repro.xg.errors import Guarantee
from repro.xg.interface import AccelMsg


_PROBE_NEEDS_DATA = {
    MesifMsg.Inv: False,
    MesifMsg.Fwd_GetS: True,
    MesifMsg.Fwd_GetM: True,
    MesifMsg.Recall: True,
}


class MesifCrossingGuard(CrossingGuardBase):
    """Crossing Guard appearing to the host as a MESIF private L1."""

    CONTROLLER_TYPE = "xg_mesif"

    def __init__(self, sim, name, host_net, accel_net, l2_name, **kw):
        self.l2_name = l2_name
        super().__init__(sim, name, host_net, accel_net, **kw)
        # compiled host-response dispatch: one bound handler per message
        # type, mirroring the controllers' flattened transition tables
        self._host_response_dispatch = {
            MesifMsg.DataS: self._resp_data_s,
            MesifMsg.DataF: self._resp_data_f,
            MesifMsg.DataE: self._resp_data_e,
            MesifMsg.DataM: self._resp_data_m,
            MesifMsg.InvAck: self._resp_inv_ack,
        }

    def _build_transitions(self):
        return

    def _to_l2(self, mtype, addr, port="request", **kw):
        return self.send_to_host(mtype, addr, self.l2_name, port, **kw)

    # -- host messages --------------------------------------------------------------

    def handle_host_message(self, port, msg):
        addr = self.align(msg.addr)
        tbe = self.tbes.lookup(addr)
        if port == "response":
            return self._host_response(msg, addr, tbe)
        return self._host_forward(msg, addr, tbe)

    def _host_response(self, msg, addr, tbe):
        if tbe is None or tbe.meta.get("kind") != "accel_get":
            raise ProtocolError(self, "xg", msg.mtype, msg, note="response with no get open")
        handler = self._host_response_dispatch.get(msg.mtype)
        if handler is None:
            raise ProtocolError(self, "xg", msg.mtype, msg, note="bad host response")
        handler(msg, addr, tbe)
        return CONSUMED

    def _resp_data_s(self, msg, addr, tbe):
        self._to_l2(MesifMsg.UnblockS, addr, port="response")
        self.finish_accel_get(addr, "S", msg.data, dirty=False)

    def _resp_data_f(self, msg, addr, tbe):
        # Take the designation toward the host, grant only S inward;
        # a later Fwd_GetS_F will be FNacked.
        self._to_l2(MesifMsg.UnblockF, addr, port="response")
        self.finish_accel_get(addr, "S", msg.data, dirty=False)
        self.stats.inc("f_grants_taken_as_s")

    def _resp_data_e(self, msg, addr, tbe):
        self._to_l2(MesifMsg.UnblockX, addr, port="response")
        self.finish_accel_get(addr, "E", msg.data, dirty=False)

    def _resp_data_m(self, msg, addr, tbe):
        tbe.data = msg.data.copy()
        tbe.dirty = msg.dirty
        tbe.acks_needed = msg.ack_count
        tbe.data_received = True
        if tbe.acks_received >= tbe.acks_needed:
            self._complete_getm(addr, tbe)

    def _resp_inv_ack(self, msg, addr, tbe):
        tbe.acks_received += 1
        if tbe.data_received and tbe.acks_received >= tbe.acks_needed:
            self._complete_getm(addr, tbe)

    def _complete_getm(self, addr, tbe):
        self._to_l2(MesifMsg.UnblockX, addr, port="response")
        grant = "M" if tbe.meta["accel_req"] is AccelMsg.GetM else (
            "M" if tbe.dirty else "E"
        )
        self.finish_accel_get(addr, grant, tbe.data, dirty=tbe.dirty)

    def _host_forward(self, msg, addr, tbe):
        mtype = msg.mtype
        if mtype in (MesifMsg.WBAck, MesifMsg.WBNack):
            if tbe is None or tbe.meta.get("kind") != "accel_put":
                raise ProtocolError(self, "xg", mtype, msg, note="WB ack with no put open")
            self.finish_accel_put(addr)
            return CONSUMED
        if mtype is MesifMsg.Fwd_GetS_F:
            # Decline the responder role; the L2 serves from its copy.
            self._to_l2(MesifMsg.FNack, addr, port="response")
            self.stats.inc("f_roles_declined")
            return CONSUMED
        if tbe is not None and tbe.meta.get("kind") == "accel_put":
            return self._put_race_forward(msg, addr, tbe)
        if tbe is not None and tbe.meta.get("kind") == "accel_get":
            if mtype is MesifMsg.Inv:
                self.send_to_host(MesifMsg.InvAck, addr, msg.requestor, "response")
                self.stats.inc("upgrade_inv_races")
                return CONSUMED
            self.report(
                Guarantee.G2A_STABLE_RESPONSE,
                addr,
                f"{mtype.name} during an open accelerator request; zero data supplied",
            )
            self._answer_with_data(msg, addr, DataBlock(self.block_size), dirty=True)
            return CONSUMED
        if tbe is not None:
            if tbe.meta.get("race_resolved"):
                self._answer_as_nonholder(msg, addr)
                return CONSUMED
            raise ProtocolError(
                self, tbe.meta.get("kind"), mtype, msg, note="probe during open transaction"
            )
        return self._stable_forward(msg, addr)

    def _put_race_forward(self, msg, addr, tbe):
        mtype = msg.mtype
        data = tbe.data if tbe.data is not None else DataBlock(self.block_size)
        if mtype is MesifMsg.Inv:
            self.send_to_host(MesifMsg.InvAck, addr, msg.requestor, "response")
        elif mtype is MesifMsg.Fwd_GetS:
            self.send_to_host(MesifMsg.DataF, addr, msg.requestor, "response", data=data.copy())
            self._to_l2(
                MesifMsg.CopyBack, addr, port="response", data=data.copy(), dirty=tbe.dirty
            )
        elif mtype is MesifMsg.Fwd_GetM:
            self.send_to_host(
                MesifMsg.DataM, addr, msg.requestor, "response",
                data=data.copy(), dirty=tbe.dirty, ack_count=0,
            )
        elif mtype is MesifMsg.Recall:
            self._to_l2(
                MesifMsg.CopyBackInv, addr, port="response", data=data.copy(), dirty=tbe.dirty
            )
        else:
            raise ProtocolError(self, "accel_put", mtype, msg, note="bad forward")
        self.stats.inc("put_forward_races")
        return CONSUMED

    def _stable_forward(self, msg, addr):
        mtype = msg.mtype
        needs_data = _PROBE_NEEDS_DATA[mtype]
        entry = self.mirror_entry(addr)
        if self.is_full_state:
            if entry is None:
                self._answer_as_nonholder(msg, addr)
                self.stats.inc("probes_answered_locally")
                return CONSUMED
            if entry.retained_data is not None and mtype is MesifMsg.Fwd_GetS:
                self.send_to_host(
                    MesifMsg.DataF, addr, msg.requestor, "response",
                    data=entry.retained_data.copy(),
                )
                self._to_l2(
                    MesifMsg.CopyBack, addr, port="response",
                    data=entry.retained_data.copy(), dirty=entry.retained_dirty,
                )
                entry.retained_dirty = False
                self.stats.inc("probes_answered_locally")
                return CONSUMED
            if entry.accel_state == "I" and entry.retained_data is not None:
                self._answer_with_data(msg, addr, entry.retained_data, entry.retained_dirty)
                self.mirror_remove(addr)
                self.stats.inc("probes_answered_locally")
                return CONSUMED
        else:
            if not self.permissions.allows_read(addr):
                self._answer_as_nonholder(msg, addr)
                self.stats.inc("probes_answered_locally")
                return CONSUMED
        context = {"mtype": mtype, "requestor": msg.requestor}
        self.start_probe(addr, needs_data, context)
        return CONSUMED

    def _answer_as_nonholder(self, msg, addr):
        if msg.mtype is MesifMsg.Inv:
            self.send_to_host(MesifMsg.InvAck, addr, msg.requestor, "response")
            return
        self.stats.inc("zero_data_fabrications")
        self._answer_with_data(msg, addr, DataBlock(self.block_size), dirty=True)

    def _answer_with_data(self, msg, addr, data, dirty):
        if msg.mtype is MesifMsg.Fwd_GetS:
            self.send_to_host(MesifMsg.DataF, addr, msg.requestor, "response", data=data.copy())
            self._to_l2(MesifMsg.CopyBack, addr, port="response", data=data.copy(), dirty=dirty)
        elif msg.mtype is MesifMsg.Fwd_GetM:
            self.send_to_host(
                MesifMsg.DataM, addr, msg.requestor, "response", data=data.copy(),
                dirty=dirty, ack_count=0,
            )
        elif msg.mtype is MesifMsg.Recall:
            self._to_l2(
                MesifMsg.CopyBackInv, addr, port="response", data=data.copy(), dirty=dirty
            )
        else:
            self.send_to_host(MesifMsg.InvAck, addr, msg.requestor, "response")

    # -- base hooks -------------------------------------------------------------------------

    def host_issue_get(self, addr, want_m, gets_only, tbe):
        if want_m:
            tbe.acks_needed = None
            self._to_l2(MesifMsg.GetM, addr)
        elif gets_only:
            self._to_l2(MesifMsg.GetS_Only, addr)
        else:
            self._to_l2(MesifMsg.GetS, addr)

    def host_issue_put(self, addr, put_type, tbe):
        if put_type is AccelMsg.PutS:
            # MESIF evicts shared blocks silently: there is no PutS to
            # forward at all — the interface message is absorbed here.
            self.stats.inc("puts_absorbed_no_host_message")
            self.finish_accel_put(addr)
            return
        if put_type is AccelMsg.PutE:
            self._to_l2(MesifMsg.PutE, addr, data=tbe.data.copy(), dirty=False)
        else:
            self._to_l2(MesifMsg.PutM, addr, data=tbe.data.copy(), dirty=True)

    def host_answer_probe(self, addr, tbe, got_wb, data, dirty):
        context = tbe.meta["context"]
        mtype = context["mtype"]
        requestor = context["requestor"]
        if mtype is MesifMsg.Inv:
            if got_wb:
                self._to_l2(
                    MesifMsg.CopyBack, addr, port="response", data=data.copy(), dirty=dirty
                )
            else:
                self.send_to_host(MesifMsg.InvAck, addr, requestor, "response")
            return
        payload = data if data is not None else DataBlock(self.block_size)
        if mtype is MesifMsg.Fwd_GetS:
            self.send_to_host(
                MesifMsg.DataF, addr, requestor, "response", data=payload.copy()
            )
            self._to_l2(
                MesifMsg.CopyBack, addr, port="response", data=payload.copy(), dirty=dirty
            )
        elif mtype is MesifMsg.Fwd_GetM:
            self.send_to_host(
                MesifMsg.DataM, addr, requestor, "response", data=payload.copy(),
                dirty=dirty, ack_count=0,
            )
        elif mtype is MesifMsg.Recall:
            self._to_l2(
                MesifMsg.CopyBackInv, addr, port="response", data=payload.copy(), dirty=dirty
            )
        else:
            raise AssertionError(f"unknown probe context {mtype}")
