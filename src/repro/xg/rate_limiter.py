"""Accelerator request rate limiting (paper Section 2.5).

A misbehaving accelerator can mount a denial-of-service attack with
*legitimate* messages at a very high rate, consuming host bandwidth and
directory entries. Crossing Guard throttles accelerator *requests* with a
token bucket (responses are never delayed). The OS sets the rate through
a register, so correct accelerators can be given more headroom when the
host is idle.
"""


class RateLimiter:
    """Token bucket: ``rate`` requests per ``period`` ticks, burst ``burst``.

    ``acquire(now)`` returns 0 when a token is available (and consumes it)
    or the number of ticks to wait before retrying.

    The bucket is kept as an integer *credit* in units of ``1/period``
    tokens (one whole token = ``period`` credit), so refills over
    arbitrarily large tick deltas are exact — the float accumulation the
    original implementation used drifted over long campaigns. A
    ``burst=0`` configuration is floored at one token of capacity: with a
    rate set, a zero-capacity bucket could never accumulate a whole token
    and every request would retry forever (admission livelock).
    """

    def __init__(self, rate=None, period=100, burst=None):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        if period <= 0:
            raise ValueError("period must be positive")
        self.rate = rate
        self.period = period
        self.burst = burst if burst is not None else (rate if rate else 0)
        self._credit = int(self.burst) * period
        self._last_refill = 0
        self.throttled = 0
        self.admitted = 0
        self.rate_changes = 0

    @property
    def unlimited(self):
        return self.rate is None

    @property
    def tokens(self):
        """Whole tokens currently available (diagnostics only)."""
        return self._credit // self.period

    def _capacity(self):
        return max(int(self.burst), 1) * self.period

    def _refill(self, now):
        if now <= self._last_refill:
            return
        elapsed = now - self._last_refill
        self._credit = min(self._capacity(), self._credit + elapsed * self.rate)
        self._last_refill = now

    def acquire(self, now):
        """Try to admit a request at tick ``now``; returns delay (0 = go)."""
        if self.unlimited:
            self.admitted += 1
            return 0
        self._refill(now)
        if self._credit >= self.period:
            self._credit -= self.period
            self.admitted += 1
            return 0
        self.throttled += 1
        deficit = self.period - self._credit
        # exact ceiling division: the tick at which a whole token exists
        return max(1, -(-deficit // self.rate))

    def set_rate(self, rate, period=None, burst=None):
        """OS register write: change the allowed request rate.

        Accumulated credit is rescaled into the new period's units (and
        clamped to the new capacity) so a rate change never mints tokens
        out of thin air and never zeroes legitimately earned headroom.
        """
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        old_period = self.period
        if period is not None:
            if period <= 0:
                raise ValueError("period must be positive")
            self.period = period
        self.rate = rate
        self.burst = burst if burst is not None else (rate if rate else 0)
        self.rate_changes += 1
        if rate is None:
            self._credit = 0
            return
        if self.period != old_period:
            self._credit = self._credit * self.period // old_period
        self._credit = min(self._credit, self._capacity())

    def __repr__(self):
        if self.unlimited:
            return "RateLimiter(unlimited)"
        return f"RateLimiter({self.rate}/{self.period} ticks, burst={self.burst})"
