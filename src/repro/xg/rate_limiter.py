"""Accelerator request rate limiting (paper Section 2.5).

A misbehaving accelerator can mount a denial-of-service attack with
*legitimate* messages at a very high rate, consuming host bandwidth and
directory entries. Crossing Guard throttles accelerator *requests* with a
token bucket (responses are never delayed). The OS sets the rate through
a register, so correct accelerators can be given more headroom when the
host is idle.
"""


class RateLimiter:
    """Token bucket: ``rate`` requests per ``period`` ticks, burst ``burst``.

    ``acquire(now)`` returns 0 when a token is available (and consumes it)
    or the number of ticks to wait before retrying.
    """

    def __init__(self, rate=None, period=100, burst=None):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        self.rate = rate
        self.period = period
        self.burst = burst if burst is not None else (rate if rate else 0)
        self._tokens = float(self.burst)
        self._last_refill = 0
        self.throttled = 0
        self.admitted = 0

    @property
    def unlimited(self):
        return self.rate is None

    def _refill(self, now):
        if now <= self._last_refill:
            return
        elapsed = now - self._last_refill
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate / self.period)
        self._last_refill = now

    def acquire(self, now):
        """Try to admit a request at tick ``now``; returns delay (0 = go)."""
        if self.unlimited:
            self.admitted += 1
            return 0
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.admitted += 1
            return 0
        self.throttled += 1
        deficit = 1.0 - self._tokens
        wait = int(deficit * self.period / self.rate) + 1
        return wait

    def set_rate(self, rate, period=None, burst=None):
        """OS register write: change the allowed request rate."""
        self.rate = rate
        if period is not None:
            self.period = period
        self.burst = burst if burst is not None else (rate if rate else 0)
        self._tokens = min(self._tokens, float(self.burst))

    def __repr__(self):
        if self.unlimited:
            return "RateLimiter(unlimited)"
        return f"RateLimiter({self.rate}/{self.period} ticks, burst={self.burst})"
