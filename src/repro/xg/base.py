"""Crossing Guard core: accelerator-side logic shared by both host ports.

One Crossing Guard instance fronts one accelerator. The accelerator side
(this module) enforces the Figure 1 guarantees, owns the mirror directory
(Full State variant), the probe timeout, and the one legal race — an
accelerator Put passing a host Invalidate on the ordered accel network.
The host side (``MesiCrossingGuard`` / ``HammerCrossingGuard``) makes XG
look like an ordinary private cache to the host protocol and hides ack
counting, forwards, and writeback races from the accelerator.

Transaction kinds (at most one open per accelerator block address):

* ``accel_get``  — accelerator Get being satisfied by the host;
* ``accel_put``  — accelerator Put already WBAck'd, host writeback
  in flight;
* ``probe``      — host-initiated invalidation forwarded to the
  accelerator, with a G2c timeout armed.
"""

from collections import deque

from repro.coherence.controller import CONSUMED, RETRY, STALL, CoherenceController
from repro.coherence.tbe import TBETable
from repro.memory.datablock import DataBlock, block_align
from repro.sim.message import Message
from repro.xg.errors import Guarantee, XGErrorLog
from repro.xg.interface import (
    ACCEL_GET_REQUESTS,
    ACCEL_PUT_REQUESTS,
    ACCEL_REQUESTS,
    ACCEL_RESPONSES,
    AccelMsg,
    XGVariant,
)
from repro.xg.permissions import PagePermission, PermissionTable
from repro.xg.rate_limiter import RateLimiter


class MirrorEntry:
    """Full State XG's record of one block present at the accelerator.

    ``accel_state`` is 'S' or 'O' (owned = E or M granted — the interface
    does not distinguish them at the accelerator). When the host granted
    exclusivity for a read-only page, XG keeps the ownership itself:
    ``accel_state`` stays 'S' (or 'I') and the data lives in
    ``retained_data`` (Guarantee 0b, Section 2.3.1).
    """

    __slots__ = ("accel_state", "retained_data", "retained_dirty", "permission")

    def __init__(self, accel_state, permission):
        self.accel_state = accel_state
        self.retained_data = None
        self.retained_dirty = False
        self.permission = permission

    def __repr__(self):
        retained = ", retained" if self.retained_data is not None else ""
        return f"MirrorEntry({self.accel_state}{retained})"


class CrossingGuardBase(CoherenceController):
    """Shared Crossing Guard machinery; subclasses add one host protocol."""

    PORTS = ("response", "forward", "accel_response", "accel_request")
    CONTROLLER_TYPE = "crossing_guard"

    def __init__(
        self,
        sim,
        name,
        host_net,
        accel_net,
        variant=XGVariant.FULL_STATE,
        permissions=None,
        error_log=None,
        rate_limiter=None,
        accel_timeout=20000,
        probe_retries=0,
        suppress_puts=False,
        block_size=64,
        throttle_rate=None,
    ):
        self.host_net = host_net
        self.accel_net = accel_net
        self.variant = variant
        self.permissions = permissions or PermissionTable(
            default=PagePermission.READ_WRITE
        )
        self.error_log = error_log if error_log is not None else XGErrorLog()
        self.rate_limiter = rate_limiter or RateLimiter()
        self.accel_timeout = accel_timeout
        #: times a silent Invalidate is re-issued (with doubling backoff)
        #: before the G2c surrogate fires. 0 = the paper's single-shot
        #: timeout; >0 hardens against a lossy accel link.
        self.probe_retries = probe_retries
        self.suppress_puts = suppress_puts
        #: punitive ``(rate, period)`` the rate limiter is clamped to when
        #: the error log climbs to the "throttled" quarantine rung; None
        #: leaves the configured rate alone (ladder is advisory there).
        self.throttle_rate = throttle_rate
        self.block_size = block_size
        self.accel_name = None
        self.tbes = TBETable(name=name)
        # Link-fault hardening: recently consumed accel message uids, so a
        # network-duplicated request/response is sunk instead of tripping
        # G1b/G2b spuriously; plus per-address absorption budgets for the
        # extra responses our own Invalidate retries can legitimately evoke.
        self._seen_uids = set()
        self._seen_uid_ring = deque()
        self._absorb_responses = {}  # addr -> [remaining, deadline_tick]
        #: Full State mirror directory: addr -> MirrorEntry
        self.mirror = {} if variant is XGVariant.FULL_STATE else None
        self.mirror_high_water = 0
        super().__init__(sim, name)
        # pre-bound hot-path counters, keyed by message type so the
        # f"to_accel.{...}" strings are built once per type rather than
        # once per message (no-op sinks when metrics are off)
        self._accel_send_sinks = {}
        self._host_send_sinks = {}
        self._accel_req_sinks = {}
        self._host_msgs_sink = self.stats.sink("xg_to_host_msgs")
        self._violation_sink = self.stats.sink("guarantee_violations")

    # -- wiring ------------------------------------------------------------------

    def attach_accelerator(self, accel_name):
        self.accel_name = accel_name

    def align(self, addr):
        return block_align(addr, self.block_size)

    @property
    def is_full_state(self):
        return self.variant is XGVariant.FULL_STATE

    # -- sends -------------------------------------------------------------------

    def send_to_accel(self, mtype, addr, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=self.accel_name, **kw)
        self.accel_net.send(msg, "fromxg")
        sink = self._accel_send_sinks.get(mtype)
        if sink is None:
            sink = self.stats.sink(f"to_accel.{mtype.name}")
            self._accel_send_sinks[mtype] = sink
        sink.inc()
        return msg

    def send_to_host(self, mtype, addr, dest, port, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=dest, **kw)
        self.host_net.send(msg, port)
        self._host_msgs_sink.inc()
        sink = self._host_send_sinks.get(mtype)
        if sink is None:
            sink = self.stats.sink(f"xg_to_host.{mtype.name}")
            self._host_send_sinks[mtype] = sink
        sink.inc()
        return msg

    # -- error reporting -----------------------------------------------------------

    def report(self, guarantee, addr, description):
        self._violation_sink.inc()
        self.stats.inc(f"violation.{guarantee.name}")
        obs = self.sim.obs
        if obs is not None:
            obs.record_mark(
                self.sim.tick, "violation", component=self.name,
                name=guarantee.name, addr=addr,
            )
        log = self.error_log
        before = log.quarantine_state
        error = log.report(
            self.sim.tick, guarantee, addr, description, accel=self.accel_name or ""
        )
        after = log.quarantine_state
        if after != before:
            self._escalate(after, addr)
        return error

    def _escalate(self, state, addr):
        """Climb one rung of the quarantine ladder (warn/throttle/disable)."""
        self.stats.inc(f"quarantine.{state}")
        obs = self.sim.obs
        if obs is not None:
            obs.record_mark(
                self.sim.tick, "quarantine", component=self.name,
                name=state, addr=addr,
            )
        if state == "throttled" and self.throttle_rate is not None:
            rate, period = self.throttle_rate
            self.rate_limiter.set_rate(rate, period=period)
            self.stats.inc("throttle_applied")

    # -- mirror helpers ---------------------------------------------------------------

    def mirror_entry(self, addr):
        if self.mirror is None:
            return None
        return self.mirror.get(self.align(addr))

    def mirror_set(self, addr, accel_state, permission):
        if self.mirror is None:
            return None
        addr = self.align(addr)
        entry = self.mirror.get(addr)
        if entry is None:
            entry = MirrorEntry(accel_state, permission)
            self.mirror[addr] = entry
            self.mirror_high_water = max(self.mirror_high_water, len(self.mirror))
        else:
            entry.accel_state = accel_state
            entry.permission = permission
        return entry

    def mirror_drop_accel(self, addr):
        """Accelerator no longer holds the block; keep retained data if any."""
        if self.mirror is None:
            return
        addr = self.align(addr)
        entry = self.mirror.get(addr)
        if entry is None:
            return
        if entry.retained_data is not None:
            entry.accel_state = "I"
        else:
            del self.mirror[addr]

    def mirror_remove(self, addr):
        """The host reclaimed the block entirely."""
        if self.mirror is not None:
            self.mirror.pop(self.align(addr), None)

    def snapshot_extra(self):
        """XG-specific logical state: the mirror and the quarantine rung."""
        extra = {
            "quarantine": self.error_log.quarantine_state,
            "errors": len(self.error_log),
        }
        if self.mirror is not None:
            extra["mirror"] = {
                addr: (
                    entry.accel_state,
                    None if entry.retained_data is None
                    else bytes(entry.retained_data.to_bytes()),
                    bool(entry.retained_dirty),
                    getattr(entry.permission, "name", entry.permission),
                )
                for addr, entry in self.mirror.items()
            }
        return extra

    # -- duplicate suppression (unreliable accel link) -----------------------------------

    #: how many consumed accel-message uids to remember for dedupe.
    DEDUPE_RING = 256

    def _mark_seen(self, uid):
        if uid in self._seen_uids:
            return
        self._seen_uids.add(uid)
        self._seen_uid_ring.append(uid)
        while len(self._seen_uid_ring) > self.DEDUPE_RING:
            self._seen_uids.discard(self._seen_uid_ring.popleft())

    # -- main dispatch --------------------------------------------------------------------

    def handle_message(self, port, msg):
        if port in ("accel_request", "accel_response"):
            if msg.uid in self._seen_uids:
                # Exact wire duplicate (link-layer replay): the original
                # was already consumed — sink it silently rather than
                # reporting a spurious G1b/G2b against the accelerator.
                self.stats.inc(f"duplicates_sunk.{port}")
                obs = self.sim.obs
                if obs is not None:
                    obs.record_mark(
                        self.sim.tick, "duplicate_sunk",
                        component=self.name, addr=msg.addr,
                    )
                return CONSUMED
            if port == "accel_request":
                outcome = self._handle_accel_request(msg)
            else:
                outcome = self._handle_accel_response(msg)
            if outcome == CONSUMED:
                self._mark_seen(msg.uid)
            return outcome
        return self.handle_host_message(port, msg)

    def handle_host_message(self, port, msg):
        raise NotImplementedError

    # -- accelerator requests (Gets and Puts) ---------------------------------------------------

    def _reject_malformed(self, msg, channel):
        """Typed rejection of a message the interface cannot even parse.

        Rejected *before* any address arithmetic or table lookups: a
        non-integer address or a type outside :class:`AccelMsg` must not
        be able to crash the Crossing Guard (Guarantee 3).
        """
        if self.error_log.accel_disabled:
            self.stats.inc("dropped_disabled")
            return CONSUMED
        addr = self.align(msg.addr) if type(msg.addr) is int else 0
        mname = getattr(msg.mtype, "name", msg.mtype)
        self.stats.inc("malformed_rejected")
        self.report(
            Guarantee.G3_MALFORMED,
            addr,
            f"unparseable message ({mname!r}, addr={msg.addr!r}) "
            f"on {channel} channel",
        )
        return CONSUMED

    def _handle_accel_request(self, msg):
        if type(msg.addr) is not int:
            return self._reject_malformed(msg, "request")
        addr = self.align(msg.addr)
        if self.error_log.accel_disabled:
            # Quarantine re-entry rejection: the request is dropped, and
            # the explicit abort tells a well-behaved endpoint not to
            # wait on a completion that can never come.
            self.stats.inc("dropped_disabled")
            self.send_to_accel(AccelMsg.Nack, addr)
            return CONSUMED
        try:
            is_request = msg.mtype in ACCEL_REQUESTS
        except TypeError:  # unhashable garbage posing as a message type
            return self._reject_malformed(msg, "request")
        if not is_request:
            if not isinstance(msg.mtype, AccelMsg):
                return self._reject_malformed(msg, "request")
            # A known response type on the request channel.
            self.report(
                Guarantee.G2B_TRANSIENT_RESPONSE,
                addr,
                f"non-request {msg.mtype} on request channel",
            )
            return CONSUMED
        tbe = self.tbes.lookup(addr)
        if tbe is not None:
            kind = tbe.meta["kind"]
            if kind == "accel_get":
                self.report(
                    Guarantee.G1B_TRANSIENT_REQUEST,
                    addr,
                    f"{msg.mtype.name} while a request is already pending",
                )
                return CONSUMED
            if kind == "probe":
                if tbe.meta.get("race_resolved"):
                    # Only the trailing InvAck is outstanding; any new
                    # request waits for the probe to fully close.
                    return STALL
                if msg.mtype in ACCEL_PUT_REQUESTS:
                    return self._resolve_put_probe_race(msg, tbe)
                # A Get racing our Invalidate: wait for the probe to close.
                return STALL
            if kind == "accel_put":
                # The accelerator already has its WBAck; a new request is
                # legal but must wait for the host-side writeback.
                return STALL
        delay = self.rate_limiter.acquire(self.sim.tick)
        if delay:
            self.stats.inc("rate_limited")
            self.request_wakeup(self.sim.tick + delay)
            lineage = self.sim.lineage
            if lineage is not None:
                # Classify the upcoming requeue wait as limiter throttling,
                # not a protocol stall (one-shot, consumed by requeued()).
                lineage.requeue_kind = "throttle"
            return RETRY
        if msg.mtype in ACCEL_GET_REQUESTS:
            return self._accel_get(msg, addr)
        return self._accel_put(msg, addr)

    def _accel_get(self, msg, addr):
        permission = self.permissions.lookup(addr)
        if not permission.allows_read():
            self.report(
                Guarantee.G0A_READ_PERMISSION, addr, f"{msg.mtype.name} without read permission"
            )
            return CONSUMED
        if msg.mtype is AccelMsg.GetM and not permission.allows_write():
            self.report(
                Guarantee.G0B_WRITE_PERMISSION, addr, "GetM without write permission"
            )
            return CONSUMED
        mirror = self.mirror_entry(addr)
        if self.is_full_state and mirror is not None:
            if mirror.accel_state == "O" or (
                mirror.accel_state == "S" and msg.mtype is AccelMsg.GetS
            ):
                self.report(
                    Guarantee.G1A_STABLE_REQUEST,
                    addr,
                    f"{msg.mtype.name} while accelerator holds the block "
                    f"({mirror.accel_state})",
                )
                return CONSUMED
        if (
            self.is_full_state
        and mirror is not None
            and mirror.retained_data is not None
            and msg.mtype is AccelMsg.GetS
        ):
            # XG already owns the block on the accelerator's behalf
            # (read-only page): serve the retained copy locally.
            mirror.accel_state = "S"
            self.send_to_accel(
                AccelMsg.DataS, addr, data=mirror.retained_data.copy()
            )
            self.stats.inc("retained_hits")
            obs = self.sim.obs
            if obs is not None:
                # Served from XG-local state: a zero-latency span so the
                # trace still shows the request happened.
                span = obs.spans.start(
                    "accel_get", self.name, addr, self.sim.tick,
                    req=msg.mtype.name,
                )
                obs.spans.finish(span, self.sim.tick, status="retained_hit")
            return CONSUMED
        tbe = self.tbes.allocate(addr, "accel_get", now=self.sim.tick)
        tbe.meta["kind"] = "accel_get"
        tbe.meta["accel_req"] = msg.mtype
        tbe.permission = permission
        want_m = msg.mtype is AccelMsg.GetM
        gets_only = (
            not want_m
            and not permission.allows_write()
            and not self.is_full_state
        )
        self._count_accel_req(msg.mtype)
        obs = self.sim.obs
        if obs is not None:
            span = obs.spans.start(
                "accel_get", self.name, addr, self.sim.tick, req=msg.mtype.name
            )
            tbe.meta["span"] = span
            obs.spans.phase(span, "translated", self.sim.tick)
        self.host_issue_get(addr, want_m=want_m, gets_only=gets_only, tbe=tbe)
        return CONSUMED

    def _count_accel_req(self, mtype):
        sink = self._accel_req_sinks.get(mtype)
        if sink is None:
            sink = self.stats.sink(f"accel_req.{mtype.name}")
            self._accel_req_sinks[mtype] = sink
        sink.inc()

    def _accel_put(self, msg, addr):
        permission = self.permissions.lookup(addr)
        if not permission.allows_read():
            self.report(
                Guarantee.G0A_READ_PERMISSION, addr, f"{msg.mtype.name} without page access"
            )
            return CONSUMED
        if msg.mtype in (AccelMsg.PutE, AccelMsg.PutM) and not permission.allows_write():
            # Owned data coming back for a page the accelerator could never
            # legitimately own read-write.
            self.report(
                Guarantee.G0B_WRITE_PERMISSION,
                addr,
                f"{msg.mtype.name} with data on a non-writable page",
            )
            return CONSUMED
        mirror = self.mirror_entry(addr)
        if self.is_full_state:
            state = mirror.accel_state if mirror is not None else "I"
            valid = (
                (msg.mtype is AccelMsg.PutS and state == "S")
                or (msg.mtype in (AccelMsg.PutE, AccelMsg.PutM) and state == "O")
            )
            if not valid:
                self.report(
                    Guarantee.G1A_STABLE_REQUEST,
                    addr,
                    f"{msg.mtype.name} while accelerator state is {state}",
                )
                return CONSUMED
        if msg.mtype is not AccelMsg.PutS and not isinstance(msg.data, DataBlock):
            self.report(
                Guarantee.G1A_STABLE_REQUEST, addr, f"{msg.mtype.name} without data payload"
            )
            return CONSUMED
        self._count_accel_req(msg.mtype)
        obs = self.sim.obs
        span = None
        if obs is not None:
            span = obs.spans.start(
                "accel_put", self.name, addr, self.sim.tick, req=msg.mtype.name
            )
        # The interface promises exactly one response per request; XG is
        # trusted, so it can ack immediately and complete the writeback
        # toward the host asynchronously.
        self.send_to_accel(AccelMsg.WBAck, addr)
        if span is not None:
            obs.spans.phase(span, "wback_acked", self.sim.tick)
        retained = mirror is not None and mirror.retained_data is not None
        self.mirror_drop_accel(addr)
        if msg.mtype is AccelMsg.PutS and retained:
            # XG still owns the block toward the host; nothing to send.
            self.stats.inc("puts_absorbed_retained")
            if span is not None:
                obs.spans.finish(span, self.sim.tick, status="absorbed")
            return CONSUMED
        tbe = self.tbes.allocate(addr, "accel_put", now=self.sim.tick)
        tbe.meta["kind"] = "accel_put"
        tbe.meta["put_type"] = msg.mtype
        tbe.data = msg.data.copy() if isinstance(msg.data, DataBlock) else None
        tbe.dirty = msg.mtype is AccelMsg.PutM
        if span is not None:
            tbe.meta["span"] = span
            obs.spans.phase(span, "translated", self.sim.tick)
        self.host_issue_put(addr, msg.mtype, tbe)
        return CONSUMED

    # -- accelerator responses (to Invalidate) ------------------------------------------------------

    def _handle_accel_response(self, msg):
        if type(msg.addr) is not int:
            return self._reject_malformed(msg, "response")
        addr = self.align(msg.addr)
        try:
            is_response = msg.mtype in ACCEL_RESPONSES
        except TypeError:  # unhashable garbage posing as a message type
            return self._reject_malformed(msg, "response")
        if not is_response:
            if not isinstance(msg.mtype, AccelMsg):
                return self._reject_malformed(msg, "response")
            if self.error_log.accel_disabled:
                self.stats.inc("dropped_disabled")
                return CONSUMED
            self.report(
                Guarantee.G2B_TRANSIENT_RESPONSE,
                addr,
                f"non-response {msg.mtype} on response channel",
            )
            return CONSUMED
        tbe = self.tbes.lookup(addr)
        if tbe is None or tbe.meta.get("kind") != "probe":
            if self._absorb_retry_echo(addr):
                return CONSUMED
            if self.error_log.accel_disabled:
                # Quarantine: open transactions drain above; anything
                # unmatched from a disabled accelerator is just dropped.
                self.stats.inc("dropped_disabled")
                return CONSUMED
            self.report(
                Guarantee.G2B_TRANSIENT_RESPONSE,
                addr,
                f"{msg.mtype.name} with no pending host request",
            )
            return CONSUMED
        if tbe.meta.get("race_resolved"):
            # The accelerator's Put crossed our Invalidate; this is the
            # InvAck it sent from state B — expected, absorb it and close.
            self._close_probe(addr, tbe)
            return CONSUMED
        obs = self.sim.obs
        if obs is not None:
            span = tbe.meta.get("span")
            if span is not None:
                obs.spans.phase(span, "accel_answered", self.sim.tick)
        timeout = tbe.meta.get("timeout_event")
        if timeout is not None:
            timeout.cancel()
        got_wb = msg.mtype in (AccelMsg.CleanWB, AccelMsg.DirtyWB)
        # isinstance: a Byzantine payload (wrong type entirely) is treated
        # as missing data rather than allowed to crash the copy below
        data = msg.data.copy() if (got_wb and isinstance(msg.data, DataBlock)) else None
        dirty = msg.mtype is AccelMsg.DirtyWB
        if got_wb and data is None:
            self.report(
                Guarantee.G2A_STABLE_RESPONSE, addr, f"{msg.mtype.name} without data"
            )
            got_wb = False
        needs_data = tbe.meta["needs_data"]
        if self.is_full_state:
            expected_wb = tbe.meta["mirror_owned"]
            if got_wb != expected_wb:
                self.report(
                    Guarantee.G2A_STABLE_RESPONSE,
                    addr,
                    f"{msg.mtype.name} but accelerator "
                    f"{'owns' if expected_wb else 'does not own'} the block",
                )
                if expected_wb:
                    # Paper: send a writeback of a zero block instead.
                    data = DataBlock(self.block_size)
                    dirty = True
                    got_wb = True
                else:
                    data = None
                    got_wb = False
        else:
            if needs_data and not got_wb:
                # Transient knowledge suffices: the host request requires
                # data and none came (Guarantee 2a, zero/stale data).
                self.report(
                    Guarantee.G2A_STABLE_RESPONSE,
                    addr,
                    "host probe needs data but accelerator sent InvAck",
                )
                data = DataBlock(self.block_size)
                dirty = True
                got_wb = True
        if got_wb and not self.permissions.allows_write(addr) and not dirty:
            pass  # clean writeback of a read-only block is fine
        elif got_wb and dirty and not self.permissions.allows_write(addr):
            self.report(
                Guarantee.G0B_WRITE_PERMISSION, addr, "dirty data for a non-writable page"
            )
            data = DataBlock(self.block_size)
        got_wb, data, dirty = self._apply_retained(addr, needs_data, got_wb, data, dirty)
        self.mirror_remove(addr)
        self.host_answer_probe(addr, tbe, got_wb=got_wb, data=data, dirty=dirty)
        self._close_probe(addr, tbe)
        return CONSUMED

    def _apply_retained(self, addr, needs_data, got_wb, data, dirty):
        """Serve a data-needing probe from XG's retained copy (G0b blocks).

        When XG kept ownership of a read-only block on the accelerator's
        behalf, the accelerator correctly answers the Invalidate with an
        InvAck; the data the host wants lives here.
        """
        entry = self.mirror_entry(addr)
        if (
            entry is not None
            and entry.retained_data is not None
            and needs_data
            and not got_wb
        ):
            return True, entry.retained_data.copy(), entry.retained_dirty
        return got_wb, data, dirty

    def _absorb_retry_echo(self, addr):
        """Sink one extra response our own Invalidate retries provoked.

        Each re-issued Invalidate may evoke its own answer; only one
        response closes the probe, so up to ``attempts`` trailing echoes
        are expected traffic, not a G2b violation. The budget expires so
        it can never mask a genuinely spurious response indefinitely.
        """
        budget = self._absorb_responses.get(addr)
        if budget is None:
            return False
        remaining, deadline = budget
        if self.sim.tick > deadline or remaining <= 0:
            del self._absorb_responses[addr]
            return False
        budget[0] = remaining - 1
        if budget[0] == 0:
            del self._absorb_responses[addr]
        self.stats.inc("retry_echoes_absorbed")
        return True

    def _close_probe(self, addr, tbe):
        timeout = tbe.meta.get("timeout_event")
        if timeout is not None:
            timeout.cancel()
        obs = self.sim.obs
        lineage = self.sim.lineage
        if lineage is not None:
            probe_lid = tbe.meta.get("probe_lid", 0)
            if probe_lid:
                # The answer (or the give-up timeout) was provoked by our
                # own Invalidate. A Byzantine or non-protocol endpoint
                # replies with no handler context, so bridge the causal
                # chain explicitly before the span's blame walk runs.
                lineage.adopt_cause(probe_lid)
                lineage.tip_hint = probe_lid
        if obs is not None:
            span = tbe.meta.get("span")
            if span is not None:
                obs.spans.finish(
                    span, self.sim.tick, status=tbe.meta.get("span_status", "ok")
                )
        if addr in self.tbes:
            self.tbes.deallocate(addr)
        attempts = tbe.meta.get("probe_attempts", 0)
        if attempts:
            self._absorb_responses[addr] = [
                attempts,
                self.sim.tick + max(8 * self.accel_timeout, 1),
            ]
        relinquish = tbe.meta.pop("relinquish", None)
        if relinquish is not None:
            # Must happen before stalled accelerator requests wake so they
            # observe the in-flight writeback and wait for it.
            self.host_relinquish(addr, *relinquish)
        self.wake_stalled(addr)

    def host_relinquish(self, addr, data, dirty):
        """Hand ownership back to the host after an answered probe.

        Only host ports whose protocol can leave XG as a data-less owner
        (Hammer's merged-GetS case, Section 3.2.1) implement this.
        """
        raise NotImplementedError

    # -- the legal race: accelerator Put passes a host Invalidate -------------------------------------

    def _resolve_put_probe_race(self, msg, tbe):
        """Use the racing Put as the probe's data and ack the accelerator.

        The ordered accel network guarantees the Put arrived before the
        InvAck the accelerator will send from state B; mark the probe
        resolved and absorb that InvAck when it shows up.
        """
        addr = self.align(msg.addr)
        self.stats.inc("put_inv_races")
        obs = self.sim.obs
        if obs is not None:
            span = tbe.meta.get("span")
            if span is not None:
                obs.spans.phase(span, "put_race", self.sim.tick)
        timeout = tbe.meta.get("timeout_event")
        if timeout is not None:
            timeout.cancel()
        self.send_to_accel(AccelMsg.WBAck, addr)
        got_wb = msg.mtype in (AccelMsg.PutE, AccelMsg.PutM)
        data = msg.data.copy() if isinstance(msg.data, DataBlock) else None
        dirty = msg.mtype is AccelMsg.PutM
        if got_wb and data is None:
            self.report(
                Guarantee.G1A_STABLE_REQUEST, addr, f"{msg.mtype.name} without data payload"
            )
            got_wb = False
        if self.is_full_state:
            expected_wb = tbe.meta.get("mirror_owned", False)
            if got_wb != expected_wb:
                # An owned-put racing an Inv of a shared block (or vice
                # versa) is a G1a violation; coerce to what the mirror says.
                self.report(
                    Guarantee.G1A_STABLE_REQUEST,
                    addr,
                    f"racing {msg.mtype.name} inconsistent with mirror state",
                )
                if expected_wb:
                    data = DataBlock(self.block_size)
                    dirty = True
                    got_wb = True
                else:
                    data = None
                    dirty = False
                    got_wb = False
        got_wb, data, dirty = self._apply_retained(
            addr, tbe.meta["needs_data"], got_wb, data, dirty
        )
        if tbe.meta["needs_data"] and not got_wb:
            # PutS raced a probe that needs data: the accelerator was only
            # a sharer — with Full State this mismatch was already
            # impossible; fabricate zeros for safety.
            data = DataBlock(self.block_size)
            dirty = True
            got_wb = True
        self.mirror_remove(addr)
        self.host_answer_probe(addr, tbe, got_wb=got_wb, data=data, dirty=dirty)
        tbe.meta["race_resolved"] = True
        # The trailing InvAck (or the Invalidate that provokes it) can be
        # lost on an unreliable link; bound the wait so this probe TBE —
        # and every request stalled behind it — cannot wedge forever.
        tbe.meta["timeout_event"] = self.sim.schedule(
            self.accel_timeout, self._probe_timeout, addr
        )
        return CONSUMED

    # -- probes toward the accelerator -------------------------------------------------------------------

    def start_probe(self, addr, needs_data, context):
        """Forward an Invalidate to the accelerator and arm the timeout.

        The caller (host subclass) has already decided the probe cannot be
        answered from XG-local knowledge.
        """
        addr = self.align(addr)
        tbe = self.tbes.allocate(addr, "probe", now=self.sim.tick)
        tbe.meta["kind"] = "probe"
        tbe.meta["needs_data"] = needs_data
        tbe.meta["context"] = context
        mirror = self.mirror_entry(addr)
        tbe.meta["mirror_owned"] = bool(mirror is not None and mirror.accel_state == "O")
        obs = self.sim.obs
        if obs is not None:
            tbe.meta["span"] = obs.spans.start(
                "probe", self.name, addr, self.sim.tick, needs_data=needs_data
            )
        if self.error_log.accel_disabled:
            # Quarantine: never probe a disabled accelerator — synthesize
            # the surrogate on the next tick so the host is not held
            # hostage for a timeout that cannot possibly be answered.
            tbe.meta["quarantined"] = True
            tbe.meta["timeout_event"] = self.sim.schedule(1, self._probe_timeout, addr)
            self.stats.inc("quarantine_surrogates")
            return tbe
        self.send_to_accel(AccelMsg.Invalidate, addr)
        lineage = self.sim.lineage
        if lineage is not None:
            tbe.meta["probe_lid"] = lineage.last_lid
        if obs is not None:
            obs.spans.phase(tbe.meta["span"], "forwarded", self.sim.tick)
        tbe.meta["timeout_event"] = self.sim.schedule(
            self.accel_timeout, self._probe_timeout, addr
        )
        self.stats.inc("probes_forwarded")
        return tbe

    def _probe_timeout(self, addr):
        tbe = self.tbes.lookup(addr)
        if tbe is None or tbe.meta.get("kind") != "probe":
            return
        if tbe.meta.get("race_resolved"):
            # The probe was already answered via the racing Put; only the
            # trailing InvAck was outstanding and the link ate it. No host
            # obligation remains — close quietly and budget one late echo
            # in case the ack is merely delayed.
            self.stats.inc("trailing_ack_timeouts")
            tbe.meta["span_status"] = "trailing_ack_lost"
            self._close_probe(addr, tbe)
            self._absorb_responses[addr] = [
                tbe.meta.get("probe_attempts", 0) + 1,
                self.sim.tick + max(8 * self.accel_timeout, 1),
            ]
            return
        attempts = tbe.meta.get("probe_attempts", 0)
        quarantined = tbe.meta.get("quarantined", False)
        if (
            not quarantined
            and not self.error_log.accel_disabled
            and attempts < self.probe_retries
        ):
            # Retry with bounded doubling backoff: the Invalidate (or its
            # answer) may simply have been lost on an unreliable link.
            tbe.meta["probe_attempts"] = attempts + 1
            self.stats.inc("probe_retries")
            obs = self.sim.obs
            if obs is not None:
                span = tbe.meta.get("span")
                if span is not None:
                    obs.spans.phase(span, f"retry_{attempts + 1}", self.sim.tick)
            lineage = self.sim.lineage
            if lineage is not None:
                # The re-issued Invalidate is a timeout product, not caused
                # by any in-flight message: tag its send site so the blame
                # walk books the backoff window as retry_backoff.
                lineage.site_hint = "retry_backoff"
            self.send_to_accel(AccelMsg.Invalidate, addr)
            if lineage is not None:
                tbe.meta["probe_lid"] = lineage.last_lid
            wait = min(self.accel_timeout * (2 ** (attempts + 1)), 8 * self.accel_timeout)
            tbe.meta["timeout_event"] = self.sim.schedule(wait, self._probe_timeout, addr)
            return
        if quarantined:
            self.report(
                Guarantee.G2C_TIMEOUT,
                addr,
                "accelerator quarantined (disabled); surrogate response",
            )
        else:
            self.report(
                Guarantee.G2C_TIMEOUT,
                addr,
                "accelerator did not answer an Invalidate in time"
                + (f" ({attempts + 1} attempts)" if attempts else ""),
            )
        needs_data = tbe.meta["needs_data"]
        owned = tbe.meta.get("mirror_owned", False)
        # Prefer the retained copy (if any) over a fabricated zero block:
        # a quarantined accelerator whose grants were suppressed still
        # gets its real data handed back to the host.
        got_wb, data, dirty_flag = self._apply_retained(addr, needs_data, False, None, False)
        if not got_wb and (needs_data or owned):
            got_wb = True
            data = DataBlock(self.block_size)
            dirty_flag = True
        self.mirror_remove(addr)
        self.host_answer_probe(addr, tbe, got_wb=got_wb, data=data, dirty=dirty_flag)
        tbe.meta["span_status"] = "timeout"
        self._close_probe(addr, tbe)
        self.request_wakeup()

    # -- host-port hooks (implemented by protocol subclasses) ---------------------------------------------

    def host_issue_get(self, addr, want_m, gets_only, tbe):
        raise NotImplementedError

    def host_issue_put(self, addr, put_type, tbe):
        raise NotImplementedError

    def host_answer_probe(self, addr, tbe, got_wb, data, dirty):
        raise NotImplementedError

    # -- completions called by subclasses --------------------------------------------------------------------

    def finish_accel_get(self, addr, grant, data, dirty):
        """Host side satisfied an accelerator Get: respond and record.

        ``grant`` is 'S', 'E', or 'M'.
        """
        addr = self.align(addr)
        tbe = self.tbes.lookup(addr)
        obs = self.sim.obs
        if obs is not None:
            span = tbe.meta.get("span")
            if span is not None:
                obs.spans.phase(span, "host_granted", self.sim.tick)
        permission = tbe.permission
        if self.error_log.accel_disabled:
            # The host-side transaction completed while the accelerator
            # sat in quarantine: drain it without forwarding the grant
            # across the crossing. Full State retains the data so later
            # host probes are served the real bytes instead of surrogate
            # zeros; Transactional falls back to the zero surrogate.
            entry = self.mirror_set(addr, "I", permission)
            if entry is not None:
                entry.retained_data = data.copy()
                entry.retained_dirty = dirty or grant == "M"
            self.stats.inc("grants_suppressed_disabled")
            self.tbes.deallocate(addr)
            if obs is not None:
                span = tbe.meta.get("span")
                if span is not None:
                    obs.spans.finish(span, self.sim.tick, status="suppressed_disabled")
            self.wake_stalled(addr)
            return
        if grant in ("E", "M") and not permission.allows_write():
            # Guarantee 0b: the accelerator may never own a block it cannot
            # write. Full State retains the data and ownership itself.
            entry = self.mirror_set(addr, "S", permission)
            if entry is not None:
                entry.retained_data = data.copy()
                entry.retained_dirty = dirty
            self.send_to_accel(AccelMsg.DataS, addr, data=data.copy())
            self.stats.inc("grants_retained")
        else:
            if grant == "S":
                self.mirror_set(addr, "S", permission)
                self.send_to_accel(AccelMsg.DataS, addr, data=data.copy())
            elif grant == "E":
                self.mirror_set(addr, "O", permission)
                self.send_to_accel(AccelMsg.DataE, addr, data=data.copy())
            else:
                self.mirror_set(addr, "O", permission)
                self.send_to_accel(AccelMsg.DataM, addr, data=data.copy(), dirty=True)
            self.stats.inc(f"grants_{grant}")
        self.tbes.deallocate(addr)
        if obs is not None:
            span = tbe.meta.get("span")
            if span is not None:
                obs.spans.finish(span, self.sim.tick, status="ok", grant=grant)
        self.wake_stalled(addr)

    def finish_accel_put(self, addr):
        """Host side completed (or absorbed the Nack for) a writeback."""
        addr = self.align(addr)
        tbe = self.tbes.deallocate(addr)
        obs = self.sim.obs
        if obs is not None:
            span = tbe.meta.get("span")
            if span is not None:
                obs.spans.finish(span, self.sim.tick, status="ok")
        self.wake_stalled(addr)

    def diagnose_extra(self):
        """Containment summary line for deadlock/invariant forensics."""
        log = self.error_log
        mirror = len(self.mirror) if self.mirror is not None else 0
        return [
            f"quarantine={log.quarantine_state} violations={len(log)} "
            f"limiter={self.rate_limiter!r} open_tbes={len(self.tbes)} "
            f"mirror_entries={mirror} accel={self.accel_name}"
        ]

    def context_switch_cost(self):
        """Work needed to hand this XG to a different accelerator.

        The paper (Section 2.3.2): Transactional XG "may also ease
        time-sharing of the Crossing Guard hardware between accelerators,
        because storage will not need to be sized for a specific
        accelerator." Concretely, before re-attachment the old
        accelerator's footprint must be purged:

        * Full State — every mirrored block needs an Invalidate to the
          old accelerator and (for owned blocks) a writeback to the host;
        * Transactional — only open transactions need to drain; there is
          no per-block state at all.
        """
        open_txns = len(self.tbes)
        if self.mirror is None:
            return {
                "variant": self.variant.name,
                "open_transactions_to_drain": open_txns,
                "blocks_to_invalidate": 0,
                "owned_blocks_to_write_back": 0,
                "total_flush_operations": open_txns,
            }
        owned = sum(1 for entry in self.mirror.values() if entry.accel_state == "O")
        retained = sum(
            1 for entry in self.mirror.values() if entry.retained_data is not None
        )
        blocks = len(self.mirror)
        return {
            "variant": self.variant.name,
            "open_transactions_to_drain": open_txns,
            "blocks_to_invalidate": blocks,
            "owned_blocks_to_write_back": owned + retained,
            "total_flush_operations": open_txns + blocks + owned + retained,
        }

    # -- storage accounting (experiment E7) --------------------------------------------------------------------

    def storage_report(self):
        """Approximate hardware storage this XG variant needs, in bits."""
        tag_bits = 26
        state_bits = 2
        perm_bits = 2
        tbe_bits = tag_bits + 32  # transient bookkeeping per open transaction
        report = {
            "variant": self.variant.name,
            "tbe_high_water": self.tbes.high_water,
            "tbe_bits": self.tbes.high_water * tbe_bits,
        }
        if self.mirror is not None:
            retained = sum(
                1 for entry in self.mirror.values() if entry.retained_data is not None
            )
            report["mirror_entries_high_water"] = self.mirror_high_water
            report["mirror_bits"] = self.mirror_high_water * (
                tag_bits + state_bits + perm_bits
            ) + retained * self.block_size * 8
        else:
            report["mirror_entries_high_water"] = 0
            report["mirror_bits"] = 0
        report["total_bits"] = report["tbe_bits"] + report["mirror_bits"]
        return report
