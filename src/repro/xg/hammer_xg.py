"""Crossing Guard host port for the Hammer-like exclusive MOESI protocol.

To the Hammer host, Crossing Guard appears as one more broadcast-probed
L1/L2 cache (Section 3.2.1): it counts ``n_peers + 1`` responses for its
own Gets, answers every broadcast probe, and performs the two-phase
writeback dance. The interface has no O state, so when the host forwards
a GetS to an accelerator-owned block XG invalidates the accelerator,
forwards the writeback data to the requestor, and *relinquishes ownership*
with a Put to the directory — exactly the flow the paper describes for
the merged-GetS case.
"""

from repro.coherence.controller import CONSUMED, ProtocolError
from repro.memory.datablock import DataBlock
from repro.protocols.hammer.messages import HammerMsg
from repro.xg.base import CrossingGuardBase
from repro.xg.interface import AccelMsg


class HammerCrossingGuard(CrossingGuardBase):
    """Crossing Guard appearing to the host as a Hammer cache."""

    CONTROLLER_TYPE = "xg_hammer"

    def __init__(self, sim, name, host_net, accel_net, dir_name, n_peers, **kw):
        self.dir_name = dir_name
        self.n_peers = n_peers
        super().__init__(sim, name, host_net, accel_net, **kw)
        # compiled response-accumulator dispatch: one bound handler per
        # message type, mirroring the controllers' flattened tables
        self._collect_dispatch = {
            HammerMsg.PeerDataExcl: self._collect_peer_data_excl,
            HammerMsg.PeerData: self._collect_peer_data,
            HammerMsg.MemData: self._collect_mem_data,
            HammerMsg.PeerAck: self._collect_peer_ack,
        }

    def _build_transitions(self):
        return

    def _to_dir(self, mtype, addr, port="request", **kw):
        return self.send_to_host(mtype, addr, self.dir_name, port, **kw)

    # -- host messages ---------------------------------------------------------------

    def handle_host_message(self, port, msg):
        addr = self.align(msg.addr)
        tbe = self.tbes.lookup(addr)
        if port == "response":
            return self._collect(msg, addr, tbe)
        return self._host_forward(msg, addr, tbe)

    # -- Get response counting -----------------------------------------------------------

    def _collect(self, msg, addr, tbe):
        if tbe is None or tbe.meta.get("kind") != "accel_get":
            raise ProtocolError(self, "xg", msg.mtype, msg, note="response with no get open")
        tbe.responses_received += 1
        handler = self._collect_dispatch.get(msg.mtype)
        if handler is None:
            raise ProtocolError(self, "xg", msg.mtype, msg, note="bad host response")
        handler(msg, tbe)
        if msg.shared_hint:
            tbe.meta["shared"] = True
        if tbe.responses_received >= self.n_peers + 1:
            self._complete_get(addr, tbe)
        return CONSUMED

    def _collect_peer_data_excl(self, msg, tbe):
        tbe.meta["excl_transfer"] = True
        tbe.data = msg.data.copy()
        tbe.dirty = False
        tbe.data_received = True

    def _collect_peer_data(self, msg, tbe):
        tbe.data = msg.data.copy()
        tbe.dirty = msg.dirty
        tbe.data_received = True
        tbe.meta["peer_data"] = True

    def _collect_mem_data(self, msg, tbe):
        if not tbe.data_received:
            tbe.data = msg.data.copy()
            tbe.dirty = False

    def _collect_peer_ack(self, msg, tbe):
        pass

    def _complete_get(self, addr, tbe):
        accel_req = tbe.meta["accel_req"]
        if accel_req is AccelMsg.GetM:
            grant = "M"
            unblock = HammerMsg.UnblockM
        elif tbe.meta.get("excl_transfer"):
            grant = "E"
            unblock = HammerMsg.UnblockE
        elif tbe.meta.get("peer_data") or tbe.meta.get("shared") or tbe.meta.get("gets_only"):
            grant = "S"
            unblock = HammerMsg.UnblockS
        else:
            grant = "E"
            unblock = HammerMsg.UnblockE
        self._to_dir(unblock, addr, port="response")
        self.finish_accel_get(addr, grant, tbe.data, dirty=tbe.dirty)

    # -- probes and writeback handshakes ---------------------------------------------------

    def _host_forward(self, msg, addr, tbe):
        mtype = msg.mtype
        if mtype is HammerMsg.WBAck:
            if tbe is None or tbe.meta.get("kind") != "accel_put":
                raise ProtocolError(self, "xg", mtype, msg, note="WBAck with no put open")
            data = tbe.data if tbe.data is not None else DataBlock(self.block_size)
            self._to_dir(
                HammerMsg.WBData, addr, port="response", data=data.copy(), dirty=tbe.dirty
            )
            self.finish_accel_put(addr)
            return CONSUMED
        if mtype is HammerMsg.WBNack:
            if tbe is None or tbe.meta.get("kind") != "accel_put":
                raise ProtocolError(self, "xg", mtype, msg, note="WBNack with no put open")
            self.finish_accel_put(addr)
            return CONSUMED
        if mtype not in (HammerMsg.Fwd_GetS, HammerMsg.Fwd_GetM, HammerMsg.Fwd_GetS_Only):
            raise ProtocolError(self, "xg", mtype, msg, note="bad forward")
        if tbe is not None:
            kind = tbe.meta.get("kind")
            if kind == "accel_get":
                # We do not hold the block yet; probes from older
                # transactions get a plain ack (host L1 transient behavior).
                self.send_to_host(HammerMsg.PeerAck, addr, msg.requestor, "response")
                return CONSUMED
            if kind == "accel_put":
                return self._put_race_probe(msg, addr, tbe)
            if tbe.meta.get("race_resolved"):
                # Previous probe answered via a racing Put; only the
                # trailing InvAck is pending — we hold nothing.
                self.send_to_host(HammerMsg.PeerAck, addr, msg.requestor, "response")
                return CONSUMED
            raise ProtocolError(self, kind, mtype, msg, note="probe during open probe")
        return self._stable_probe(msg, addr)

    def _put_race_probe(self, msg, addr, tbe):
        """Probe raced our pending writeback: serve data like MI_A.

        Once a Fwd_GetM takes the block, the writeback is stale (the
        directory will Nack it) and we are II_A: later probes get a plain
        ack, never the stale data again.
        """
        if tbe.meta.get("relinquished"):
            self.send_to_host(HammerMsg.PeerAck, addr, msg.requestor, "response")
            return CONSUMED
        data = tbe.data if tbe.data is not None else DataBlock(self.block_size)
        if msg.mtype is HammerMsg.Fwd_GetM:
            self.send_to_host(
                HammerMsg.PeerData, addr, msg.requestor, "response",
                data=data.copy(), dirty=tbe.dirty,
            )
            tbe.meta["relinquished"] = True
        else:
            self.send_to_host(
                HammerMsg.PeerData, addr, msg.requestor, "response",
                data=data.copy(), dirty=tbe.dirty, shared_hint=True,
            )
        self.stats.inc("put_forward_races")
        return CONSUMED

    def _stable_probe(self, msg, addr):
        mtype = msg.mtype
        entry = self.mirror_entry(addr)
        if self.is_full_state:
            if entry is None:
                self.send_to_host(HammerMsg.PeerAck, addr, msg.requestor, "response")
                self.stats.inc("probes_answered_locally")
                return CONSUMED
            if mtype in (HammerMsg.Fwd_GetS, HammerMsg.Fwd_GetS_Only):
                if entry.retained_data is not None:
                    # XG is the owner; serve without touching the accel.
                    self.send_to_host(
                        HammerMsg.PeerData, addr, msg.requestor, "response",
                        data=entry.retained_data.copy(), dirty=entry.retained_dirty,
                        shared_hint=True,
                    )
                    self.stats.inc("probes_answered_locally")
                    return CONSUMED
                if entry.accel_state == "S":
                    # Sharers keep their copies on a GetS.
                    self.send_to_host(
                        HammerMsg.PeerAck, addr, msg.requestor, "response", shared_hint=True
                    )
                    self.stats.inc("probes_answered_locally")
                    return CONSUMED
            if mtype is HammerMsg.Fwd_GetM and entry.accel_state == "I":
                # Only XG's retained copy exists; hand it over.
                data = entry.retained_data or DataBlock(self.block_size)
                self.send_to_host(
                    HammerMsg.PeerData, addr, msg.requestor, "response",
                    data=data.copy(), dirty=entry.retained_dirty,
                )
                self.mirror_remove(addr)
                self.stats.inc("probes_answered_locally")
                return CONSUMED
            needs_data = entry.accel_state == "O" or entry.retained_data is not None
        else:
            if not self.permissions.allows_read(addr):
                # Side-channel protection: never consult the accelerator
                # for blocks it has no permissions for.
                self.send_to_host(HammerMsg.PeerAck, addr, msg.requestor, "response")
                self.stats.inc("probes_answered_locally")
                return CONSUMED
            needs_data = False  # response counting tolerates either form
        context = {"mtype": mtype, "requestor": msg.requestor}
        self.start_probe(addr, needs_data, context)
        return CONSUMED

    # -- base hooks --------------------------------------------------------------------------

    def host_issue_get(self, addr, want_m, gets_only, tbe):
        tbe.responses_received = 0
        if want_m:
            self._to_dir(HammerMsg.GetM, addr)
        elif gets_only:
            tbe.meta["gets_only"] = True
            self._to_dir(HammerMsg.GetS_Only, addr)
        else:
            self._to_dir(HammerMsg.GetS, addr)

    def host_issue_put(self, addr, put_type, tbe):
        if put_type is AccelMsg.PutS:
            # Hammer evicts S blocks silently; the explicit PutS is pure
            # interface overhead (measured in E8) unless suppressed.
            if not self.suppress_puts:
                self._to_dir(HammerMsg.PutS, addr)
                self.stats.inc("unnecessary_puts_forwarded")
            else:
                self.stats.inc("puts_suppressed")
            self.finish_accel_put(addr)
            return
        if put_type is AccelMsg.PutE:
            self._to_dir(HammerMsg.PutE, addr)
        else:
            self._to_dir(HammerMsg.PutM, addr)

    def host_answer_probe(self, addr, tbe, got_wb, data, dirty):
        context = tbe.meta["context"]
        mtype = context["mtype"]
        requestor = context["requestor"]
        if not got_wb:
            self.send_to_host(HammerMsg.PeerAck, addr, requestor, "response")
            return
        payload = data if data is not None else DataBlock(self.block_size)
        if mtype is HammerMsg.Fwd_GetM:
            self.send_to_host(
                HammerMsg.PeerData, addr, requestor, "response",
                data=payload.copy(), dirty=dirty,
            )
            return
        # Fwd_GetS / Fwd_GetS_Only on an owned block: serve the requestor,
        # then relinquish ownership with a writeback (Section 3.2.1 —
        # the interface cannot express O to the accelerator).
        self.send_to_host(
            HammerMsg.PeerData, addr, requestor, "response",
            data=payload.copy(), dirty=dirty, shared_hint=True,
        )
        tbe.meta["relinquish"] = (payload.copy(), dirty)

    def host_relinquish(self, addr, data, dirty):
        """Write the block back after serving a GetS for an owned block."""
        tbe = self.tbes.allocate(addr, "accel_put", now=self.sim.tick)
        tbe.meta["kind"] = "accel_put"
        tbe.meta["put_type"] = AccelMsg.PutM
        tbe.data = data
        tbe.dirty = dirty
        self._to_dir(HammerMsg.PutM, addr)
        self.stats.inc("relinquish_puts")
