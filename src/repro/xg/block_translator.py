"""Coherence block-size translation (paper Section 2.5).

When the accelerator uses a *larger* block than the host, Crossing Guard
requests all component host blocks on an accelerator Get, merges them
into one accelerator block once they all arrive, and splits accelerator
writebacks back into host blocks. (The paper argues accelerators are
unlikely to use blocks smaller than the host's 64B, so only the
larger-or-equal direction is supported; equal sizes pass through.)
"""

from repro.memory.datablock import DataBlock


class BlockTranslator:
    """Maps between one accelerator block and N host blocks."""

    def __init__(self, host_block_size=64, accel_block_size=64):
        if accel_block_size % host_block_size:
            raise ValueError(
                "accelerator block size must be a multiple of the host block size"
            )
        if accel_block_size < host_block_size:
            raise ValueError("accelerator blocks smaller than host blocks are unsupported")
        self.host_block_size = host_block_size
        self.accel_block_size = accel_block_size
        self.ratio = accel_block_size // host_block_size

    @property
    def is_identity(self):
        return self.ratio == 1

    def accel_align(self, addr):
        return addr - (addr % self.accel_block_size)

    def host_align(self, addr):
        return addr - (addr % self.host_block_size)

    def host_blocks_for(self, accel_addr):
        """Host block base addresses composing the accel block at ``accel_addr``."""
        base = self.accel_align(accel_addr)
        return [base + i * self.host_block_size for i in range(self.ratio)]

    def merge(self, accel_addr, host_blocks):
        """Merge {host_addr: DataBlock} into one accelerator DataBlock."""
        base = self.accel_align(accel_addr)
        merged = DataBlock(self.accel_block_size)
        for host_addr, block in host_blocks.items():
            offset = host_addr - base
            if offset < 0 or offset + self.host_block_size > self.accel_block_size:
                raise ValueError(f"host block {host_addr:#x} outside accel block {base:#x}")
            merged.write_bytes(offset, block.to_bytes())
        return merged

    def split(self, accel_addr, accel_block):
        """Split an accelerator DataBlock into {host_addr: DataBlock}."""
        if accel_block.size != self.accel_block_size:
            raise ValueError("accel block has wrong size")
        base = self.accel_align(accel_addr)
        out = {}
        for index in range(self.ratio):
            start = index * self.host_block_size
            piece = DataBlock.from_bytes(
                accel_block.read_bytes(start, self.host_block_size)
            )
            out[base + start] = piece
        return out

    def __repr__(self):
        return f"BlockTranslator(host={self.host_block_size}, accel={self.accel_block_size})"
