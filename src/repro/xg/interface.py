"""The standardized accelerator coherence interface (paper Section 2.1).

The accelerator may send five requests and receives exactly one of four
responses per request; the host side of the interface may send one request
(Invalidate) and receives exactly one of three responses. The network
between Crossing Guard and the accelerator is *ordered*, so the only
remaining race is an accelerator Put passing a host Invalidate.
"""

import enum


class AccelMsg(enum.Enum):
    """Every message type that may cross the XG<->accelerator interface."""

    # -- accelerator -> XG requests
    GetS = enum.auto()  # shared, read-only
    GetM = enum.auto()  # exclusive, read-write
    PutS = enum.auto()  # replace a shared block (no data)
    PutE = enum.auto()  # replace an exclusive-clean block (carries data)
    PutM = enum.auto()  # replace a modified block (carries data)

    # -- XG -> accelerator responses
    DataS = enum.auto()  # shared + clean
    DataE = enum.auto()  # exclusive + clean
    DataM = enum.auto()  # exclusive + modified
    WBAck = enum.auto()  # the single response to any Put

    # -- XG -> accelerator request
    Invalidate = enum.auto()

    # -- accelerator -> XG responses (to Invalidate)
    InvAck = enum.auto()  # block not held in an owned state
    CleanWB = enum.auto()  # block was E: clean writeback (carries data)
    DirtyWB = enum.auto()  # block was M: dirty writeback (carries data)

    # -- XG -> accelerator abort: the request it answers will never
    # complete because the accelerator has been quarantined (disabled by
    # OS policy). Only ever sent to an already-disabled endpoint, so a
    # correct accelerator never sees one; receivers treat it as a
    # terminal completion of the aborted request.
    Nack = enum.auto()


ACCEL_REQUESTS = frozenset(
    {AccelMsg.GetS, AccelMsg.GetM, AccelMsg.PutS, AccelMsg.PutE, AccelMsg.PutM}
)
ACCEL_GET_REQUESTS = frozenset({AccelMsg.GetS, AccelMsg.GetM})
ACCEL_PUT_REQUESTS = frozenset({AccelMsg.PutS, AccelMsg.PutE, AccelMsg.PutM})
ACCEL_RESPONSES = frozenset({AccelMsg.InvAck, AccelMsg.CleanWB, AccelMsg.DirtyWB})
XG_DATA_RESPONSES = frozenset({AccelMsg.DataS, AccelMsg.DataE, AccelMsg.DataM})

#: Requests that must carry a data payload.
CARRIES_DATA = frozenset(
    {
        AccelMsg.PutE,
        AccelMsg.PutM,
        AccelMsg.DataS,
        AccelMsg.DataE,
        AccelMsg.DataM,
        AccelMsg.CleanWB,
        AccelMsg.DirtyWB,
    }
)


class XGVariant(enum.Enum):
    """The two Crossing Guard implementations of Section 2.3."""

    FULL_STATE = enum.auto()
    TRANSACTIONAL = enum.auto()


def legal_data_grants(request):
    """Responses the interface allows for an accelerator Get.

    The accelerator may receive DataE or DataM on *either* a GetS or a
    GetM (Section 2.1) — exclusive grants on shared requests are an
    optimization for read-then-write patterns.
    """
    if request is AccelMsg.GetS:
        return (AccelMsg.DataS, AccelMsg.DataE, AccelMsg.DataM)
    if request is AccelMsg.GetM:
        return (AccelMsg.DataE, AccelMsg.DataM)
    raise ValueError(f"not a Get request: {request}")
