"""Border-Control-style page permission tracking (paper Section 3.1).

Crossing Guard checks every accelerator request against the page
permissions the OS granted the accelerator process (Guarantee 0). The
table is indexed by page; permissions apply to whole pages as in Border
Control [23].
"""

import enum


class PagePermission(enum.Enum):
    NONE = 0
    READ = 1
    READ_WRITE = 2

    def allows_read(self):
        return self is not PagePermission.NONE

    def allows_write(self):
        return self is PagePermission.READ_WRITE


class PermissionTable:
    """Per-page permissions for one accelerator.

    ``default`` is what unmapped pages report; a real system would default
    to NONE, but protocol stress tests that assume full access set it to
    READ_WRITE (the paper's Section 4.1 does the same).
    """

    def __init__(self, page_size=4096, default=PagePermission.NONE):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page_size must be a power of two")
        self.page_size = page_size
        self.default = default
        self._pages = {}
        self.lookups = 0

    def page_of(self, addr):
        return addr - (addr % self.page_size)

    def grant(self, addr, permission, length=None):
        """Set permission for the page(s) covering [addr, addr+length)."""
        if length is None:
            length = 1
        page = self.page_of(addr)
        end = addr + length - 1
        while page <= end:
            self._pages[page] = permission
            page += self.page_size

    def revoke(self, addr, length=None):
        self.grant(addr, PagePermission.NONE, length=length)

    def lookup(self, addr):
        self.lookups += 1
        return self._pages.get(self.page_of(addr), self.default)

    def allows_read(self, addr):
        return self.lookup(addr).allows_read()

    def allows_write(self, addr):
        return self.lookup(addr).allows_write()

    def __repr__(self):
        return f"PermissionTable(pages={len(self._pages)}, default={self.default.name})"
