"""Host coherence protocols.

Two baselines, mirroring the paper's Section 3:

* :mod:`repro.protocols.hammer` — AMD-Hammer-like exclusive MOESI with
  broadcast forwards, response counting, owner-tracking directory, and
  two-phase writeback (gem5 ``MOESI_hammer`` analogue).
* :mod:`repro.protocols.mesi` — inclusive MESI two-level with a shared L2
  that embeds an exact-sharer directory (gem5 ``MESI_Two_Level`` analogue).

Both expose the host-protocol modification flags Transactional Crossing
Guard needs (Section 3.2): response counting instead of ack counting /
ack-data equivalence, unexpected-Nack sinking, and the non-upgradable
``GetS_Only`` request.
"""

from repro.protocols.common import CpuOp

__all__ = ["CpuOp"]
