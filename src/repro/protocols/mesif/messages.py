"""Message vocabulary of the inclusive MESIF protocol."""

import enum


class MesifMsg(enum.Enum):
    """All MESIF message types."""

    # -- L1 -> L2 requests (no PutS: S and F evict silently)
    GetS = enum.auto()
    GetM = enum.auto()
    GetS_Only = enum.auto()
    PutE = enum.auto()  # carries clean data
    PutM = enum.auto()  # carries dirty data

    # -- L2 -> L1 forwards
    Inv = enum.auto()
    Fwd_GetS_F = enum.auto()  # to the designated F responder
    Fwd_GetM = enum.auto()  # to the exclusive owner
    Fwd_GetS = enum.auto()  # to the exclusive owner (downgrade)
    Recall = enum.auto()
    WBAck = enum.auto()
    WBNack = enum.auto()

    # -- data/ack responses
    DataS = enum.auto()
    DataF = enum.auto()  # shared + clean + forwarder designation
    DataE = enum.auto()
    DataM = enum.auto()
    InvAck = enum.auto()
    FNack = enum.auto()  # "I no longer hold F" (silent eviction happened)

    # -- L1 -> L2 closure
    UnblockS = enum.auto()
    UnblockF = enum.auto()  # requestor took the F designation
    UnblockX = enum.auto()
    CopyBack = enum.auto()
    CopyBackInv = enum.auto()
