"""Intel-like inclusive MESIF host protocol.

The paper's Section 1 names three industrial host protocols Crossing
Guard must absorb: AMD's exclusive MOESI (our ``hammer``), ARM's
MESI-like, and "Intel ... an inclusive cache hierarchy with a MESI(F)
protocol". This package adds the F (Forward) state to the inclusive
two-level design:

* exactly one sharer holds F — the designated responder for clean data;
  a GetS is forwarded to it (cache-to-cache transfer) and the *requestor*
  inherits F, as on Intel parts;
* S and F blocks evict **silently** (no PutS), so the L2's sharer list is
  conservative and invalidations must tolerate already-gone sharers;
* a stale forward (the F holder dropped the block silently) is answered
  with an FNack and the L2 serves the data itself.

Crossing Guard integration: the accelerator interface cannot express F
(an F holder must later supply data, which a Transactional XG cannot),
so :class:`~repro.xg.mesif_xg.MesifCrossingGuard` accepts F grants as
plain S for the accelerator and *declines* the responder role with an
FNack when probed — the protocol's silent-F-eviction tolerance makes
that free.
"""

from repro.protocols.mesif.messages import MesifMsg
from repro.protocols.mesif.l1 import FL1Event, FL1State, MesifL1
from repro.protocols.mesif.l2 import FL2Event, FL2State, MesifL2

__all__ = [
    "FL1Event",
    "FL1State",
    "FL2Event",
    "FL2State",
    "MesifL1",
    "MesifL2",
    "MesifMsg",
]
