"""MESIF shared inclusive L2 with embedded directory.

Like the MESI L2, a blocking directory closed by Unblocks, with three
MESIF twists:

* per-block ``f_holder``: the sharer designated to forward clean data;
  a GetS is sent to it (``Fwd_GetS_F``) and the requestor inherits F;
* the sharer list is *conservative*: S/F evict silently, so Inv fan-outs
  may hit caches that no longer hold the block (they ack anyway) and a
  forward may bounce (``FNack``), in which case the L2 serves the data;
* there is no PutS at all.
"""

import enum

from repro.coherence.controller import (
    CONSUMED,
    RETRY,
    STALL,
    CoherenceController,
    ProtocolError,
)
from repro.coherence.tbe import TBETable
from repro.memory.cache_array import CacheArray
from repro.memory.datablock import block_align
from repro.protocols.mesif.messages import MesifMsg
from repro.sim.message import Message


class FL2State(enum.Enum):
    NP = enum.auto()
    V = enum.auto()
    X = enum.auto()
    IV = enum.auto()
    BUSY = enum.auto()
    EV_ACK = enum.auto()
    EV_DATA = enum.auto()


class FL2Event(enum.Enum):
    GetS = enum.auto()
    GetM = enum.auto()
    GetS_Only = enum.auto()
    PutE = enum.auto()
    PutM = enum.auto()
    PutStale = enum.auto()
    MemData = enum.auto()
    UnblockS = enum.auto()
    UnblockF = enum.auto()
    UnblockX = enum.auto()
    CopyBack = enum.auto()
    CopyBackInv = enum.auto()
    InvAck = enum.auto()
    FNack = enum.auto()
    Replacement = enum.auto()


_GET_EVENTS = {
    MesifMsg.GetS: FL2Event.GetS,
    MesifMsg.GetM: FL2Event.GetM,
    MesifMsg.GetS_Only: FL2Event.GetS_Only,
}
_RESPONSE_EVENTS = {
    MesifMsg.UnblockS: FL2Event.UnblockS,
    MesifMsg.UnblockF: FL2Event.UnblockF,
    MesifMsg.UnblockX: FL2Event.UnblockX,
    MesifMsg.CopyBack: FL2Event.CopyBack,
    MesifMsg.CopyBackInv: FL2Event.CopyBackInv,
    MesifMsg.InvAck: FL2Event.InvAck,
    MesifMsg.FNack: FL2Event.FNack,
}


class MesifL2(CoherenceController):
    """Shared inclusive L2 / directory for the MESIF protocol."""

    CONTROLLER_TYPE = "mesif_l2"
    PORTS = ("response", "request")

    def __init__(self, sim, name, net, memory, num_sets=256, assoc=8, block_size=64,
                 xg_tolerant=False):
        self.net = net
        self.memory = memory
        self.block_size = block_size
        self.xg_tolerant = xg_tolerant
        self.cache = CacheArray(num_sets, assoc, block_size=block_size, name=name)
        self.tbes = TBETable(name=name)
        super().__init__(sim, name)

    # -- helpers ------------------------------------------------------------------

    def align(self, addr):
        return block_align(addr, self.block_size)

    def _send(self, mtype, addr, dest, port, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=dest, **kw)
        self.net.send(msg, port)
        return msg

    def _state(self, addr):
        tbe = self.tbes.lookup(addr)
        if tbe is not None:
            return tbe.state
        entry = self.cache.lookup(addr, touch=False)
        return entry.state if entry is not None else FL2State.NP

    def _fill_room(self, addr):
        set_index = self.cache.set_index(self.align(addr))
        occupied = sum(
            1 for entry in self.cache.entries() if self.cache.set_index(entry.addr) == set_index
        )
        reserved = sum(
            1
            for tbe in self.tbes
            if tbe.meta.get("needs_slot") and self.cache.set_index(tbe.addr) == set_index
        )
        return self.cache.assoc - occupied - reserved

    def _stable_victim(self, addr):
        set_index = self.cache.set_index(self.align(addr))
        candidates = [
            entry
            for entry in self.cache.entries()
            if self.cache.set_index(entry.addr) == set_index and entry.addr not in self.tbes
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda entry: entry.last_use)

    # -- dispatch ----------------------------------------------------------------------

    def handle_message(self, port, msg):
        addr = msg.addr
        state = self._state(addr)
        # Monomorphic fast path: data/ack/unblock responses dominate
        # steady-state traffic, so resolve them on the first compare.
        if port == "response":
            return self.fire(state, _RESPONSE_EVENTS[msg.mtype], msg)
        # request port
        if state in (FL2State.IV, FL2State.BUSY, FL2State.EV_ACK, FL2State.EV_DATA):
            return STALL
        if msg.mtype in _GET_EVENTS:
            event = _GET_EVENTS[msg.mtype]
            if state is FL2State.NP and self._fill_room(addr) <= 0:
                victim = self._stable_victim(addr)
                if victim is not None:
                    synthetic = Message(
                        FL2Event.Replacement, victim.addr, sender=self.name, dest=self.name
                    )
                    self.fire(victim.state, FL2Event.Replacement, synthetic)
                if self._fill_room(addr) <= 0:
                    return RETRY
            return self.fire(self._state(addr), event, msg)
        if msg.mtype in (MesifMsg.PutE, MesifMsg.PutM):
            entry = self.cache.lookup(addr, touch=False)
            if (
                state is FL2State.X
                and entry.meta["owner"] == msg.sender
            ):
                event = FL2Event.PutM if msg.mtype is MesifMsg.PutM else FL2Event.PutE
            else:
                event = FL2Event.PutStale
            return self.fire(state, event, msg)
        raise ProtocolError(self, state, msg.mtype, msg, note="bad request type")

    # -- transition table ------------------------------------------------------------------

    def _build_transitions(self):
        t = self.transitions
        S, E = FL2State, FL2Event
        t[(S.NP, E.GetS)] = self._np_get
        t[(S.NP, E.GetM)] = self._np_get
        t[(S.NP, E.GetS_Only)] = self._np_get
        t[(S.V, E.GetS)] = self._v_gets
        t[(S.V, E.GetS_Only)] = self._v_gets_only
        t[(S.V, E.GetM)] = self._v_getm
        t[(S.X, E.GetS)] = self._x_gets
        t[(S.X, E.GetS_Only)] = self._x_gets
        t[(S.X, E.GetM)] = self._x_getm
        t[(S.X, E.PutE)] = self._x_put
        t[(S.X, E.PutM)] = self._x_put
        for st in (S.NP, S.V, S.X):
            t[(st, E.PutStale)] = self._put_stale
        t[(S.IV, E.MemData)] = self._iv_mem_data
        t[(S.BUSY, E.UnblockS)] = self._busy_unblock
        t[(S.BUSY, E.UnblockF)] = self._busy_unblock
        t[(S.BUSY, E.UnblockX)] = self._busy_unblock
        t[(S.BUSY, E.CopyBack)] = self._busy_copyback
        t[(S.BUSY, E.FNack)] = self._busy_fnack
        t[(S.EV_ACK, E.InvAck)] = self._ev_ack
        t[(S.EV_ACK, E.CopyBack)] = self._ev_ack_copyback
        t[(S.EV_DATA, E.CopyBackInv)] = self._ev_data
        t[(S.V, E.Replacement)] = self._v_repl
        t[(S.X, E.Replacement)] = self._x_repl
        self.coverage_exempt.add((S.EV_ACK, E.CopyBack))

    # -- gets -------------------------------------------------------------------------------

    def _np_get(self, msg):
        addr = msg.addr
        tbe = self.tbes.allocate(addr, FL2State.IV, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["needs_slot"] = True
        tbe.meta["op"] = msg.mtype
        self.sim.schedule(self.memory.latency, self._mem_data_arrived, addr)
        return CONSUMED

    def _mem_data_arrived(self, addr):
        tbe = self.tbes.lookup(addr)
        synthetic = Message(FL2Event.MemData, addr, sender="memory", dest=self.name)
        synthetic.data = self.memory.read(addr)
        self.fire(tbe.state, FL2Event.MemData, synthetic)
        self.request_wakeup()

    def _iv_mem_data(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.allocate(addr, FL2State.V, data=msg.data)
        entry.meta["sharers"] = set()
        entry.meta["owner"] = None
        entry.meta["f_holder"] = None
        tbe.meta["needs_slot"] = False
        op = tbe.meta["op"]
        if op is MesifMsg.GetM:
            self._send(
                MesifMsg.DataM, addr, tbe.requestor, "response",
                data=entry.data.copy(), ack_count=0,
            )
        elif op is MesifMsg.GetS_Only:
            self._send(MesifMsg.DataS, addr, tbe.requestor, "response", data=entry.data.copy())
        else:
            self._send(MesifMsg.DataE, addr, tbe.requestor, "response", data=entry.data.copy())
        tbe.state = FL2State.BUSY
        return CONSUMED

    def _v_gets(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr)
        tbe = self.tbes.allocate(addr, FL2State.BUSY, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = msg.mtype
        if not entry.meta["sharers"]:
            if entry.dirty:
                self._send(
                    MesifMsg.DataM, addr, msg.sender, "response",
                    data=entry.data.copy(), dirty=True, ack_count=0,
                )
                self.stats.inc("l2_dirty_grants")
            else:
                self._send(MesifMsg.DataE, addr, msg.sender, "response", data=entry.data.copy())
            return CONSUMED
        f_holder = entry.meta["f_holder"]
        if f_holder is not None and f_holder != msg.sender:
            # cache-to-cache transfer from the designated responder
            self._send(MesifMsg.Fwd_GetS_F, addr, f_holder, "forward", requestor=msg.sender)
            self.stats.inc("f_forwards")
        else:
            self._send(MesifMsg.DataF, addr, msg.sender, "response", data=entry.data.copy())
        return CONSUMED

    def _v_gets_only(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr)
        tbe = self.tbes.allocate(addr, FL2State.BUSY, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = msg.mtype
        self._send(MesifMsg.DataS, addr, msg.sender, "response", data=entry.data.copy())
        return CONSUMED

    def _v_getm(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr)
        tbe = self.tbes.allocate(addr, FL2State.BUSY, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = msg.mtype
        to_invalidate = entry.meta["sharers"] - {msg.sender}
        for sharer in sorted(to_invalidate):
            self._send(MesifMsg.Inv, addr, sharer, "forward", requestor=msg.sender)
        self._send(
            MesifMsg.DataM, addr, msg.sender, "response",
            data=entry.data.copy(), dirty=entry.dirty, ack_count=len(to_invalidate),
        )
        return CONSUMED

    def _x_gets(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr)
        owner = entry.meta["owner"]
        if owner == msg.sender:
            if not self.xg_tolerant:
                raise ProtocolError(self, FL2State.X, FL2Event.GetS, msg, note="GetS from owner")
            self.note_protocol_anomaly("GetS from current owner", msg)
            tbe = self.tbes.allocate(addr, FL2State.BUSY, now=self.sim.tick)
            tbe.requestor = msg.sender
            tbe.meta["op"] = msg.mtype
            self._send(
                MesifMsg.DataM, addr, msg.sender, "response",
                data=entry.data.copy(), dirty=True, ack_count=0,
            )
            return CONSUMED
        tbe = self.tbes.allocate(addr, FL2State.BUSY, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = msg.mtype
        tbe.meta["need_copyback"] = True
        self._send(MesifMsg.Fwd_GetS, addr, owner, "forward", requestor=msg.sender)
        return CONSUMED

    def _x_getm(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr)
        owner = entry.meta["owner"]
        if owner == msg.sender:
            if not self.xg_tolerant:
                raise ProtocolError(self, FL2State.X, FL2Event.GetM, msg, note="GetM from owner")
            self.note_protocol_anomaly("GetM from current owner", msg)
            tbe = self.tbes.allocate(addr, FL2State.BUSY, now=self.sim.tick)
            tbe.requestor = msg.sender
            tbe.meta["op"] = msg.mtype
            self._send(
                MesifMsg.DataM, addr, msg.sender, "response",
                data=entry.data.copy(), dirty=True, ack_count=0,
            )
            return CONSUMED
        tbe = self.tbes.allocate(addr, FL2State.BUSY, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = msg.mtype
        self._send(MesifMsg.Fwd_GetM, addr, owner, "forward", requestor=msg.sender)
        return CONSUMED

    # -- puts ---------------------------------------------------------------------------------------

    def _x_put(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        entry.data = msg.data.copy()
        entry.dirty = msg.mtype is MesifMsg.PutM
        entry.meta["owner"] = None
        entry.state = FL2State.V
        self._send(MesifMsg.WBAck, msg.addr, msg.sender, "forward")
        return CONSUMED

    def _put_stale(self, msg):
        self._send(MesifMsg.WBNack, msg.addr, msg.sender, "forward")
        self.stats.inc("l2_stale_puts")
        return CONSUMED

    # -- closure ----------------------------------------------------------------------------------------

    def _busy_unblock(self, msg):
        tbe = self.tbes.lookup(msg.addr)
        tbe.meta["got_unblock"] = True
        tbe.meta["unblock_kind"] = msg.mtype
        self._maybe_close(msg.addr)
        return CONSUMED

    def _busy_copyback(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.lookup(addr, touch=False)
        if not tbe.meta.get("need_copyback"):
            if not self.xg_tolerant:
                raise ProtocolError(
                    self, FL2State.BUSY, FL2Event.CopyBack, msg, note="unexpected copyback"
                )
            self.note_protocol_anomaly("copyback instead of InvAck; acking requestor", msg)
            self._send(MesifMsg.InvAck, addr, tbe.requestor, "response")
            return CONSUMED
        entry.data = msg.data.copy()
        entry.dirty = msg.dirty
        entry.meta["sharers"].add(msg.sender)
        entry.meta["owner"] = None
        tbe.meta["got_copyback"] = True
        self._maybe_close(addr)
        return CONSUMED

    def _busy_fnack(self, msg):
        """The designated responder declined (silent eviction, or a
        Crossing Guard that cannot serve F): serve the requestor from the
        inclusive copy. The decliner must REMAIN a sharer — an XG's
        accelerator may still hold the block in S even though it cannot
        forward it, so only the designation is cleared.
        """
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.lookup(addr, touch=False)
        if entry.meta["f_holder"] == msg.sender:
            entry.meta["f_holder"] = None
        self._send(MesifMsg.DataF, addr, tbe.requestor, "response", data=entry.data.copy())
        self.stats.inc("fnack_fallbacks")
        return CONSUMED

    def _maybe_close(self, addr):
        tbe = self.tbes.lookup(addr)
        if tbe.meta.get("need_copyback") and not tbe.meta.get("got_copyback"):
            return
        if not tbe.meta.get("got_unblock"):
            return
        entry = self.cache.lookup(addr, touch=False)
        kind = tbe.meta["unblock_kind"]
        if kind is MesifMsg.UnblockX:
            entry.meta["sharers"] = set()
            entry.meta["owner"] = tbe.requestor
            entry.meta["f_holder"] = None
            entry.state = FL2State.X
            entry.dirty = False
        else:
            entry.meta["sharers"].add(tbe.requestor)
            if kind is MesifMsg.UnblockF:
                entry.meta["f_holder"] = tbe.requestor
            if entry.meta["owner"] is None:
                entry.state = FL2State.V
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)

    # -- inclusive evictions ----------------------------------------------------------------------------------

    def _v_repl(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        sharers = entry.meta["sharers"]
        if not sharers:
            if entry.dirty:
                self.memory.write(addr, entry.data)
            self.cache.deallocate(addr)
            self.stats.inc("l2_evictions")
            return CONSUMED
        tbe = self.tbes.allocate(addr, FL2State.EV_ACK, now=self.sim.tick)
        tbe.acks_needed = len(sharers)
        for sharer in sorted(sharers):
            self._send(MesifMsg.Inv, addr, sharer, "forward", requestor=self.name)
        return CONSUMED

    def _x_repl(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        self.tbes.allocate(addr, FL2State.EV_DATA, now=self.sim.tick)
        self._send(MesifMsg.Recall, addr, entry.meta["owner"], "forward")
        return CONSUMED

    def _ev_ack(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        tbe.acks_received += 1
        if tbe.acks_received < tbe.acks_needed:
            return CONSUMED
        entry = self.cache.lookup(addr, touch=False)
        if entry.dirty:
            self.memory.write(addr, entry.data)
        self.cache.deallocate(addr)
        self.tbes.deallocate(addr)
        self.stats.inc("l2_evictions")
        self.wake_stalled(addr)
        return CONSUMED

    def _ev_ack_copyback(self, msg):
        if not self.xg_tolerant:
            raise ProtocolError(
                self, FL2State.EV_ACK, FL2Event.CopyBack, msg, note="data on eviction Inv"
            )
        self.note_protocol_anomaly("copyback counted as eviction InvAck", msg)
        return self._ev_ack(msg)

    def _ev_data(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        if msg.dirty:
            self.memory.write(addr, msg.data)
        elif entry.dirty:
            self.memory.write(addr, entry.data)
        self.cache.deallocate(addr)
        self.tbes.deallocate(addr)
        self.stats.inc("l2_evictions")
        self.wake_stalled(addr)
        return CONSUMED
