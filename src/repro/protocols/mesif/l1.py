"""MESIF private L1 controller.

Differences from the MESI L1 (`repro.protocols.mesi.l1`):

* stable state **F**: a clean shared copy designated to answer
  ``Fwd_GetS_F`` probes with a cache-to-cache ``DataF`` transfer; the
  requestor inherits F (Intel behavior) and this cache drops to S;
* S and F replace **silently** — no PutS, no SI_A transient — so an
  ``Inv`` (or a stale ``Fwd_GetS_F``) can legitimately arrive in I and is
  answered with InvAck / FNack.
"""

import enum

from repro.coherence.controller import CONSUMED, RETRY, STALL
from repro.protocols.common import CacheControllerBase, CpuOp
from repro.protocols.mesif.messages import MesifMsg
from repro.sim.message import Message


class FL1State(enum.Enum):
    I = enum.auto()
    S = enum.auto()
    F = enum.auto()
    E = enum.auto()
    M = enum.auto()
    IS_D = enum.auto()
    IM_AD = enum.auto()
    IM_A = enum.auto()
    SM_AD = enum.auto()
    SM_A = enum.auto()
    MI_A = enum.auto()
    EI_A = enum.auto()
    II_A = enum.auto()


class FL1Event(enum.Enum):
    Load = enum.auto()
    Store = enum.auto()
    Replacement = enum.auto()
    DataS = enum.auto()
    DataF = enum.auto()
    DataE = enum.auto()
    DataM = enum.auto()
    InvAck = enum.auto()
    Inv = enum.auto()
    Fwd_GetS_F = enum.auto()
    Fwd_GetS = enum.auto()
    Fwd_GetM = enum.auto()
    Recall = enum.auto()
    WBAck = enum.auto()
    WBNack = enum.auto()


_FORWARD_EVENTS = {
    MesifMsg.Inv: FL1Event.Inv,
    MesifMsg.Fwd_GetS_F: FL1Event.Fwd_GetS_F,
    MesifMsg.Fwd_GetS: FL1Event.Fwd_GetS,
    MesifMsg.Fwd_GetM: FL1Event.Fwd_GetM,
    MesifMsg.Recall: FL1Event.Recall,
    MesifMsg.WBAck: FL1Event.WBAck,
    MesifMsg.WBNack: FL1Event.WBNack,
}
_RESPONSE_EVENTS = {
    MesifMsg.DataS: FL1Event.DataS,
    MesifMsg.DataF: FL1Event.DataF,
    MesifMsg.DataE: FL1Event.DataE,
    MesifMsg.DataM: FL1Event.DataM,
    MesifMsg.InvAck: FL1Event.InvAck,
}
_TRANSIENT = {
    FL1State.IS_D,
    FL1State.IM_AD,
    FL1State.IM_A,
    FL1State.SM_AD,
    FL1State.SM_A,
    FL1State.MI_A,
    FL1State.EI_A,
    FL1State.II_A,
}


class MesifL1(CacheControllerBase):
    """Private MESIF L1 (one per CPU core)."""

    CONTROLLER_TYPE = "mesif_l1"
    PORTS = ("response", "forward", "mandatory")
    INVALID_STATE = FL1State.I

    def __init__(self, sim, name, net, l2_name, num_sets=64, assoc=4, block_size=64):
        self.net = net
        self.l2_name = l2_name
        super().__init__(sim, name, num_sets=num_sets, assoc=assoc, block_size=block_size)

    # -- helpers ----------------------------------------------------------------

    def _send(self, mtype, addr, dest, port, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=dest, **kw)
        self.net.send(msg, port)
        return msg

    def _to_l2(self, mtype, addr, port="request", **kw):
        return self._send(mtype, addr, self.l2_name, port, **kw)

    def _fill_room(self, addr):
        set_index = self.cache.set_index(self.align(addr))
        occupied = sum(
            1 for entry in self.cache.entries() if self.cache.set_index(entry.addr) == set_index
        )
        reserved = sum(
            1
            for tbe in self.tbes
            if tbe.meta.get("needs_slot") and self.cache.set_index(tbe.addr) == set_index
        )
        return self.cache.assoc - occupied - reserved

    def _close(self, addr):
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)

    # -- dispatch ---------------------------------------------------------------------

    def handle_message(self, port, msg):
        # Monomorphic fast path: data/ack responses dominate steady-state
        # traffic, so resolve them on the first compare.
        if port == "response":
            return self.fire(
                self.block_state(msg.addr), _RESPONSE_EVENTS[msg.mtype], msg
            )
        if port == "forward":
            return self.fire(
                self.block_state(msg.addr), _FORWARD_EVENTS[msg.mtype], msg
            )
        return self._handle_mandatory(msg)

    def _handle_mandatory(self, msg):
        addr = self.align(msg.addr)
        state = self.block_state(addr)
        event = FL1Event.Load if msg.mtype is CpuOp.Load else FL1Event.Store
        if state in _TRANSIENT:
            return STALL
        if state is FL1State.I and self._fill_room(addr) <= 0:
            victim = self.stable_victim(addr)
            if victim is not None:
                synthetic = Message(event, victim.addr, sender=self.name, dest=self.name)
                self.fire(victim.state, FL1Event.Replacement, synthetic)
                if self._fill_room(addr) > 0:
                    return self.fire(state, event, msg)
            return RETRY
        return self.fire(state, event, msg)

    # -- transition table ----------------------------------------------------------------

    def _build_transitions(self):
        t = self.transitions
        S, E = FL1State, FL1Event
        t[(S.I, E.Load)] = self._i_load
        t[(S.I, E.Store)] = self._i_store
        for shared in (S.S, S.F):
            t[(shared, E.Load)] = self._hit_load
            t[(shared, E.Store)] = self._shared_store
            t[(shared, E.Replacement)] = self._silent_evict
            t[(shared, E.Inv)] = self._shared_inv
        t[(S.E, E.Load)] = self._hit_load
        t[(S.E, E.Store)] = self._e_store
        t[(S.M, E.Load)] = self._hit_load
        t[(S.M, E.Store)] = self._m_store
        t[(S.E, E.Replacement)] = self._e_repl
        t[(S.M, E.Replacement)] = self._m_repl
        # silent-eviction consequences: stale records at the L2 mean an
        # Inv / F-forward can arrive in I or in a fill transient (the
        # paper's "ISI" scenario: invalidation before the data). The data
        # we are waiting on belongs to a LATER transaction than the Inv
        # (blocking L2), so ack-and-stay is sufficient.
        t[(S.I, E.Inv)] = self._stale_inv
        t[(S.I, E.Fwd_GetS_F)] = self._fnack
        t[(S.S, E.Fwd_GetS_F)] = self._fnack  # F moved on; defensive
        for filling in (S.IS_D, S.IM_AD, S.IM_A):
            t[(filling, E.Inv)] = self._stale_inv
            t[(filling, E.Fwd_GetS_F)] = self._fnack
        # the F responder role
        t[(S.F, E.Fwd_GetS_F)] = self._serve_f
        t[(S.SM_AD, E.Fwd_GetS_F)] = self._serve_f
        # fills
        t[(S.IS_D, E.DataS)] = self._fill_s
        t[(S.IS_D, E.DataF)] = self._fill_f
        t[(S.IS_D, E.DataE)] = self._fill_e
        t[(S.IS_D, E.DataM)] = self._fill_m
        t[(S.IM_AD, E.DataM)] = self._getm_data
        t[(S.IM_AD, E.InvAck)] = self._count_ack
        t[(S.IM_A, E.InvAck)] = self._ack_maybe_done
        t[(S.SM_AD, E.DataM)] = self._getm_data
        t[(S.SM_AD, E.InvAck)] = self._count_ack
        t[(S.SM_A, E.InvAck)] = self._ack_maybe_done
        t[(S.SM_AD, E.Inv)] = self._smad_inv
        # owner forwards
        t[(S.E, E.Fwd_GetS)] = self._owner_fwd_gets
        t[(S.M, E.Fwd_GetS)] = self._owner_fwd_gets
        t[(S.E, E.Fwd_GetM)] = self._owner_fwd_getm
        t[(S.M, E.Fwd_GetM)] = self._owner_fwd_getm
        t[(S.E, E.Recall)] = self._owner_recall
        t[(S.M, E.Recall)] = self._owner_recall
        # writeback transients
        t[(S.MI_A, E.WBAck)] = self._wb_done
        t[(S.EI_A, E.WBAck)] = self._wb_done
        for wb in (S.MI_A, S.EI_A):
            t[(wb, E.Fwd_GetS)] = self._replacing_fwd_gets
            t[(wb, E.Fwd_GetM)] = self._replacing_fwd_getm
            t[(wb, E.Recall)] = self._replacing_recall
        t[(S.II_A, E.WBNack)] = self._wb_done
        t[(S.II_A, E.Inv)] = self._iia_inv
        self.coverage_exempt.add((S.S, E.Fwd_GetS_F))
        # Only GetS_Only is answered with DataS, and only Crossing Guard
        # issues GetS_Only — a host L1 never receives it.
        self.coverage_exempt.add((S.IS_D, E.DataS))

    # -- CPU ops -----------------------------------------------------------------------

    def _i_load(self, msg):
        addr = self.align(msg.addr)
        tbe = self.tbes.allocate(addr, FL1State.IS_D, now=self.sim.tick)
        tbe.origin = msg
        tbe.meta["needs_slot"] = True
        self._to_l2(MesifMsg.GetS, addr)
        return CONSUMED

    def _i_store(self, msg):
        addr = self.align(msg.addr)
        tbe = self.tbes.allocate(addr, FL1State.IM_AD, now=self.sim.tick)
        tbe.origin = msg
        tbe.meta["needs_slot"] = True
        tbe.acks_needed = None
        self._to_l2(MesifMsg.GetM, addr)
        return CONSUMED

    def _hit_load(self, msg):
        entry = self.cache.lookup(msg.addr)
        self.respond_to_cpu(msg, entry.data)
        return CONSUMED

    def _shared_store(self, msg):
        addr = self.align(msg.addr)
        tbe = self.tbes.allocate(addr, FL1State.SM_AD, now=self.sim.tick)
        tbe.origin = msg
        tbe.acks_needed = None
        self._to_l2(MesifMsg.GetM, addr)
        return CONSUMED

    def _e_store(self, msg):
        entry = self.cache.lookup(msg.addr)
        entry.state = FL1State.M
        entry.dirty = True
        entry.data.write_byte(self.offset(msg.addr), msg.value)
        self.respond_to_cpu(msg, entry.data)
        return CONSUMED

    def _m_store(self, msg):
        entry = self.cache.lookup(msg.addr)
        entry.data.write_byte(self.offset(msg.addr), msg.value)
        self.respond_to_cpu(msg, entry.data)
        return CONSUMED

    # -- replacements -------------------------------------------------------------------------

    def _silent_evict(self, msg):
        self.cache.deallocate(msg.addr)
        self.stats.inc("silent_sf_evictions")
        return CONSUMED

    def _e_repl(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        self.tbes.allocate(msg.addr, FL1State.EI_A, now=self.sim.tick)
        self._to_l2(MesifMsg.PutE, msg.addr, data=entry.data.copy(), dirty=False)
        return CONSUMED

    def _m_repl(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        self.tbes.allocate(msg.addr, FL1State.MI_A, now=self.sim.tick)
        self._to_l2(MesifMsg.PutM, msg.addr, data=entry.data.copy(), dirty=True)
        return CONSUMED

    # -- invalidations and the F role ---------------------------------------------------------------

    def _shared_inv(self, msg):
        self._send(MesifMsg.InvAck, msg.addr, msg.requestor, "response")
        self.cache.deallocate(msg.addr)
        return CONSUMED

    def _stale_inv(self, msg):
        # We dropped the block silently; the L2's sharer list is
        # conservative by design. Just ack.
        self._send(MesifMsg.InvAck, msg.addr, msg.requestor, "response")
        self.stats.inc("stale_invs_acked")
        return CONSUMED

    def _fnack(self, msg):
        self._to_l2(MesifMsg.FNack, msg.addr, port="response")
        self.stats.inc("fnacks")
        return CONSUMED

    def _serve_f(self, msg):
        """Forward clean data cache-to-cache; the requestor inherits F."""
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(
            MesifMsg.DataF, msg.addr, msg.requestor, "response", data=entry.data.copy()
        )
        if entry.state is FL1State.F:
            entry.state = FL1State.S
        self.stats.inc("f_transfers")
        return CONSUMED

    def _iia_inv(self, msg):
        self._send(MesifMsg.InvAck, msg.addr, msg.requestor, "response")
        return CONSUMED

    # -- fills ------------------------------------------------------------------------------------------

    def _fill(self, msg, state, dirty=False):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.allocate(addr, state, data=msg.data.copy(), dirty=dirty)
        self.respond_to_cpu(tbe.origin, entry.data)
        unblock = {
            FL1State.S: MesifMsg.UnblockS,
            FL1State.F: MesifMsg.UnblockF,
            FL1State.E: MesifMsg.UnblockX,
            FL1State.M: MesifMsg.UnblockX,
        }[state]
        self._to_l2(unblock, addr, port="response")
        self._close(addr)
        return CONSUMED

    def _fill_s(self, msg):
        return self._fill(msg, FL1State.S)

    def _fill_f(self, msg):
        return self._fill(msg, FL1State.F)

    def _fill_e(self, msg):
        return self._fill(msg, FL1State.E)

    def _fill_m(self, msg):
        return self._fill(msg, FL1State.M, dirty=True)

    def _getm_data(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        tbe.data = msg.data.copy() if msg.data is not None else tbe.data
        tbe.acks_needed = msg.ack_count
        tbe.data_received = True
        if tbe.acks_received >= tbe.acks_needed:
            self._complete_store(addr, tbe)
        else:
            tbe.state = (
                FL1State.IM_A if tbe.state is FL1State.IM_AD else FL1State.SM_A
            )
        return CONSUMED

    def _count_ack(self, msg):
        self.tbes.lookup(msg.addr).acks_received += 1
        return CONSUMED

    def _ack_maybe_done(self, msg):
        tbe = self.tbes.lookup(msg.addr)
        tbe.acks_received += 1
        if tbe.acks_received >= tbe.acks_needed:
            self._complete_store(msg.addr, tbe)
        return CONSUMED

    def _complete_store(self, addr, tbe):
        entry = self.cache.lookup(addr, touch=False)
        if entry is None:
            entry = self.cache.allocate(addr, FL1State.M, data=tbe.data)
        else:
            entry.state = FL1State.M
            if tbe.data is not None:
                entry.data = tbe.data
        entry.dirty = True
        op = tbe.origin
        entry.data.write_byte(self.offset(op.addr), op.value)
        self.respond_to_cpu(op, entry.data)
        self._to_l2(MesifMsg.UnblockX, addr, port="response")
        self._close(addr)

    def _smad_inv(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        self._send(MesifMsg.InvAck, addr, msg.requestor, "response")
        if self.cache.lookup(addr, touch=False) is not None:
            self.cache.deallocate(addr)
        tbe.state = FL1State.IM_AD
        tbe.meta["needs_slot"] = True
        tbe.data = None
        return CONSUMED

    # -- owner forwards --------------------------------------------------------------------------------------

    def _owner_fwd_gets(self, msg):
        """Owner downgrade: data to the requestor (who takes F), dirty
        data back to the L2."""
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(MesifMsg.DataF, msg.addr, msg.requestor, "response", data=entry.data.copy())
        self._to_l2(
            MesifMsg.CopyBack, msg.addr, port="response",
            data=entry.data.copy(), dirty=entry.dirty,
        )
        entry.state = FL1State.S
        entry.dirty = False
        return CONSUMED

    def _owner_fwd_getm(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(
            MesifMsg.DataM, msg.addr, msg.requestor, "response",
            data=entry.data.copy(), dirty=entry.dirty, ack_count=0,
        )
        self.cache.deallocate(msg.addr)
        return CONSUMED

    def _owner_recall(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        self._to_l2(
            MesifMsg.CopyBackInv, msg.addr, port="response",
            data=entry.data.copy(), dirty=entry.dirty,
        )
        self.cache.deallocate(msg.addr)
        return CONSUMED

    # -- writeback transients ------------------------------------------------------------------------------------

    def _wb_done(self, msg):
        addr = msg.addr
        if self.cache.lookup(addr, touch=False) is not None:
            self.cache.deallocate(addr)
        self._close(addr)
        return CONSUMED

    def _replacing_fwd_gets(self, msg):
        tbe = self.tbes.lookup(msg.addr)
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(MesifMsg.DataF, msg.addr, msg.requestor, "response", data=entry.data.copy())
        self._to_l2(
            MesifMsg.CopyBack, msg.addr, port="response",
            data=entry.data.copy(), dirty=entry.dirty,
        )
        tbe.state = FL1State.II_A
        return CONSUMED

    def _replacing_fwd_getm(self, msg):
        tbe = self.tbes.lookup(msg.addr)
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(
            MesifMsg.DataM, msg.addr, msg.requestor, "response",
            data=entry.data.copy(), dirty=entry.dirty, ack_count=0,
        )
        tbe.state = FL1State.II_A
        return CONSUMED

    def _replacing_recall(self, msg):
        tbe = self.tbes.lookup(msg.addr)
        entry = self.cache.lookup(msg.addr, touch=False)
        self._to_l2(
            MesifMsg.CopyBackInv, msg.addr, port="response",
            data=entry.data.copy(), dirty=entry.dirty,
        )
        tbe.state = FL1State.II_A
        return CONSUMED
