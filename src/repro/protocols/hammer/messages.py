"""Message vocabulary of the Hammer-like exclusive MOESI protocol."""

import enum


class HammerMsg(enum.Enum):
    """All Hammer-like message types."""

    # -- cache -> directory requests
    GetS = enum.auto()
    GetM = enum.auto()
    GetS_Only = enum.auto()  # non-upgradable read (Transactional XG, G0b)
    PutM = enum.auto()  # two-phase: no data; covers M and O
    PutE = enum.auto()  # two-phase: no data; clean
    PutS = enum.auto()  # only XG sends this; the host sinks it (Section 2.1)

    # -- directory -> cache
    Fwd_GetS = enum.auto()  # broadcast probe (with requestor)
    Fwd_GetM = enum.auto()
    Fwd_GetS_Only = enum.auto()  # suppresses exclusive-clean transfer
    WBAck = enum.auto()  # go ahead, send WBData
    WBNack = enum.auto()  # stale Put (lost a race)
    MemData = enum.auto()  # memory's response, sent to the requestor

    # -- cache -> requestor (probe responses)
    PeerAck = enum.auto()  # not owner; shared_hint says "I have it in S"
    PeerData = enum.auto()  # owner's data (dirty flag set from M/O)
    PeerDataExcl = enum.auto()  # exclusive-clean transfer from an E owner

    # -- cache -> directory (closure)
    UnblockS = enum.auto()
    UnblockE = enum.auto()
    UnblockM = enum.auto()
    WBData = enum.auto()  # second phase of a writeback


PROBE_TYPES = frozenset(
    {HammerMsg.Fwd_GetS, HammerMsg.Fwd_GetM, HammerMsg.Fwd_GetS_Only}
)
