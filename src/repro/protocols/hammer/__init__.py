"""AMD-Hammer-like exclusive MOESI host protocol (gem5 ``MOESI_hammer``
analogue).

Per-core combined L1/L2 cache controllers sit on a broadcast interconnect.
The directory tracks only the owner (enough to Nack stale Puts) and
broadcasts every Get to all other caches; *every* cache responds to the
requestor — data if owner, an ack otherwise — and the requestor counts
exactly ``n_peers + 1`` responses (peers plus memory). Writebacks are
two-phase (PutM → WBAck → WBData), the race the paper calls out when
integrating Crossing Guard (Section 3.2.1).
"""

from repro.protocols.hammer.messages import HammerMsg
from repro.protocols.hammer.cache import HammerCache, HCEvent, HCState
from repro.protocols.hammer.directory import DirEvent, DirState, HammerDirectory

__all__ = [
    "DirEvent",
    "DirState",
    "HCEvent",
    "HCState",
    "HammerCache",
    "HammerDirectory",
    "HammerMsg",
]
