"""Hammer-like directory + memory controller.

Keeps no sharer list — only the current owner (exactly enough state to
detect stale Puts and Nack them, as the paper notes gem5's hammer
directory does). Every Get is broadcast to all other caches and answered
by memory as well; the directory blocks per address until the requestor's
Unblock (or the writeback's data) closes the transaction.
"""

import enum

from repro.coherence.controller import CONSUMED, STALL, CoherenceController, ProtocolError
from repro.coherence.tbe import TBETable
from repro.memory.datablock import block_align
from repro.protocols.hammer.messages import HammerMsg
from repro.sim.message import Message


class DirState(enum.Enum):
    IDLE = enum.auto()  # no transaction open for the block
    BUSY = enum.auto()  # Get broadcast out, waiting Unblock
    WB = enum.auto()  # WBAck sent, waiting WBData


class DirEvent(enum.Enum):
    GetS = enum.auto()
    GetM = enum.auto()
    GetS_Only = enum.auto()
    PutOwner = enum.auto()  # Put from the tracked owner
    PutStale = enum.auto()  # Put from anyone else
    UnblockS = enum.auto()
    UnblockE = enum.auto()
    UnblockM = enum.auto()
    WBData = enum.auto()


_GET_EVENTS = {
    HammerMsg.GetS: DirEvent.GetS,
    HammerMsg.GetM: DirEvent.GetM,
    HammerMsg.GetS_Only: DirEvent.GetS_Only,
}
_FWD_FOR_GET = {
    HammerMsg.GetS: HammerMsg.Fwd_GetS,
    HammerMsg.GetM: HammerMsg.Fwd_GetM,
    HammerMsg.GetS_Only: HammerMsg.Fwd_GetS_Only,
}
_UNBLOCK_EVENTS = {
    HammerMsg.UnblockS: DirEvent.UnblockS,
    HammerMsg.UnblockE: DirEvent.UnblockE,
    HammerMsg.UnblockM: DirEvent.UnblockM,
}


class HammerDirectory(CoherenceController):
    """Blocking, owner-tracking directory for the Hammer-like protocol."""

    CONTROLLER_TYPE = "hammer_directory"
    PORTS = ("response", "request")

    def __init__(self, sim, name, net, memory, cache_names=(), block_size=64):
        self.net = net
        self.memory = memory
        self.block_size = block_size
        self.cache_names = list(cache_names)
        self.owners = {}
        self.tbes = TBETable(name=name)
        super().__init__(sim, name)

    def add_cache(self, name):
        self.cache_names.append(name)

    # -- helpers -------------------------------------------------------------------

    def align(self, addr):
        return block_align(addr, self.block_size)

    def owner_of(self, addr):
        return self.owners.get(self.align(addr))

    def snapshot_extra(self):
        """The owner map is directory state the base snapshot can't see."""
        return {"owners": dict(self.owners)}

    def _send(self, mtype, addr, dest, port, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=dest, **kw)
        self.net.send(msg, port)
        return msg

    def _state(self, addr):
        tbe = self.tbes.lookup(addr)
        return tbe.state if tbe is not None else DirState.IDLE

    # -- dispatch ---------------------------------------------------------------------

    def handle_message(self, port, msg):
        addr = msg.addr
        state = self._state(addr)
        # Monomorphic fast path: unblock/writeback responses dominate
        # steady-state traffic, so resolve them on the first compare.
        if port == "response":
            event = _UNBLOCK_EVENTS.get(msg.mtype)
            if event is not None:
                return self.fire(state, event, msg)
            if msg.mtype is HammerMsg.WBData:
                return self.fire(state, DirEvent.WBData, msg)
            raise ProtocolError(self, state, msg.mtype, msg, note="bad response type")
        # request port
        if msg.mtype is HammerMsg.PutS:
            # Hammer permits silent S eviction; an explicit PutS (only
            # Crossing Guard sends one) is pure overhead — sink it.
            self.stats.inc("puts_sunk")
            return CONSUMED
        if state is not DirState.IDLE:
            return STALL
        if msg.mtype in _GET_EVENTS:
            return self.fire(state, _GET_EVENTS[msg.mtype], msg)
        if msg.mtype in (HammerMsg.PutM, HammerMsg.PutE):
            if self.owner_of(addr) == msg.sender:
                return self.fire(state, DirEvent.PutOwner, msg)
            return self.fire(state, DirEvent.PutStale, msg)
        raise ProtocolError(self, state, msg.mtype, msg, note="bad request type")

    # -- transition table -----------------------------------------------------------------

    def _build_transitions(self):
        t = self.transitions
        S, E = DirState, DirEvent
        t[(S.IDLE, E.GetS)] = self._get
        t[(S.IDLE, E.GetM)] = self._get
        t[(S.IDLE, E.GetS_Only)] = self._get
        t[(S.IDLE, E.PutOwner)] = self._put_owner
        t[(S.IDLE, E.PutStale)] = self._put_stale
        t[(S.BUSY, E.UnblockS)] = self._unblock_shared
        t[(S.BUSY, E.UnblockE)] = self._unblock_exclusive
        t[(S.BUSY, E.UnblockM)] = self._unblock_exclusive
        t[(S.WB, E.WBData)] = self._wb_data

    # -- handlers ------------------------------------------------------------------------

    def _get(self, msg):
        addr = msg.addr
        tbe = self.tbes.allocate(addr, DirState.BUSY, now=self.sim.tick)
        tbe.requestor = msg.sender
        fwd_type = _FWD_FOR_GET[msg.mtype]
        for cache in self.cache_names:
            if cache == msg.sender:
                continue
            self._send(fwd_type, addr, cache, "forward", requestor=msg.sender)
        self.stats.inc("broadcasts")
        self.stats.inc("probes_sent", max(0, len(self.cache_names) - 1))
        self.sim.schedule(self.memory.latency, self._mem_read_done, addr, msg.sender)
        return CONSUMED

    def _mem_read_done(self, addr, requestor):
        data = self.memory.read(addr)
        self._send(HammerMsg.MemData, addr, requestor, "response", data=data)

    def _unblock_shared(self, msg):
        # Owner unchanged: an M owner that served a GetS is now O and still
        # responsible for the dirty data.
        self.tbes.deallocate(msg.addr)
        self.wake_stalled(msg.addr)
        return CONSUMED

    def _unblock_exclusive(self, msg):
        self.owners[self.align(msg.addr)] = msg.sender
        self.tbes.deallocate(msg.addr)
        self.wake_stalled(msg.addr)
        return CONSUMED

    def _put_owner(self, msg):
        tbe = self.tbes.allocate(msg.addr, DirState.WB, now=self.sim.tick)
        tbe.requestor = msg.sender
        self._send(HammerMsg.WBAck, msg.addr, msg.sender, "forward")
        return CONSUMED

    def _put_stale(self, msg):
        """Put that lost a race (or a bogus one): Nack, no state change."""
        self._send(HammerMsg.WBNack, msg.addr, msg.sender, "forward")
        self.stats.inc("stale_puts")
        return CONSUMED

    def _wb_data(self, msg):
        addr = msg.addr
        if msg.dirty:
            self.memory.write(addr, msg.data)
        self.owners.pop(self.align(addr), None)
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)
        return CONSUMED
