"""Hammer-like combined L1/L2 cache controller (one per core).

Every directory broadcast probes *every* other cache, so every state —
stable or transient — must answer ``Fwd_GetS``/``Fwd_GetM``/
``Fwd_GetS_Only``. A requestor counts exactly ``n_peers`` probe responses
plus the directory's memory response; this ack-counting burden is the
complexity Crossing Guard lifts off accelerator caches.

Data-grant rules:
* ``Fwd_GetS`` at an M owner → stays owner in O, ships dirty shared data;
* ``Fwd_GetS`` at an E owner → exclusive-clean transfer (requestor gets
  E; this is how a GetS can return DataE through Crossing Guard);
* ``Fwd_GetS_Only`` suppresses the exclusive transfer (E owner downgrades
  to S) — the request type added for Transactional XG's Guarantee 0b;
* ``Fwd_GetM`` at M/O/E → ship data, invalidate.

``xg_tolerant`` enables the Section 3.2.1 host modifications: count
responses instead of strictly typed acks (tolerating zero or multiple
data responses) and sink unexpected WBNacks.
"""

import enum

from repro.coherence.controller import CONSUMED, RETRY, STALL, ProtocolError
from repro.protocols.common import CacheControllerBase, CpuOp
from repro.protocols.hammer.messages import HammerMsg
from repro.sim.message import Message


class HCState(enum.Enum):
    I = enum.auto()
    S = enum.auto()
    E = enum.auto()
    M = enum.auto()
    O = enum.auto()
    IS_AD = enum.auto()  # GetS outstanding, counting responses
    IM_AD = enum.auto()  # GetM outstanding
    SM_AD = enum.auto()  # upgrade outstanding (still holds S data)
    OM_A = enum.auto()  # owner upgrading: own data authoritative
    MI_A = enum.auto()  # PutM sent (dirty), waiting WBAck
    OI_A = enum.auto()  # PutM sent from O
    EI_A = enum.auto()  # PutE sent (clean)
    II_A = enum.auto()  # lost ownership mid-writeback, waiting WBNack


class HCEvent(enum.Enum):
    Load = enum.auto()
    Store = enum.auto()
    Replacement = enum.auto()
    Fwd_GetS = enum.auto()
    Fwd_GetM = enum.auto()
    Fwd_GetS_Only = enum.auto()
    PeerAck = enum.auto()
    PeerData = enum.auto()
    PeerDataExcl = enum.auto()
    MemData = enum.auto()
    WBAck = enum.auto()
    WBNack = enum.auto()


_PROBE_EVENTS = {
    HammerMsg.Fwd_GetS: HCEvent.Fwd_GetS,
    HammerMsg.Fwd_GetM: HCEvent.Fwd_GetM,
    HammerMsg.Fwd_GetS_Only: HCEvent.Fwd_GetS_Only,
    HammerMsg.WBAck: HCEvent.WBAck,
    HammerMsg.WBNack: HCEvent.WBNack,
}
_RESPONSE_EVENTS = {
    HammerMsg.PeerAck: HCEvent.PeerAck,
    HammerMsg.PeerData: HCEvent.PeerData,
    HammerMsg.PeerDataExcl: HCEvent.PeerDataExcl,
    HammerMsg.MemData: HCEvent.MemData,
}
_TRANSIENT = {
    HCState.IS_AD,
    HCState.IM_AD,
    HCState.SM_AD,
    HCState.OM_A,
    HCState.MI_A,
    HCState.OI_A,
    HCState.EI_A,
    HCState.II_A,
}
_COLLECTING = {HCState.IS_AD, HCState.IM_AD, HCState.SM_AD, HCState.OM_A}


class HammerCache(CacheControllerBase):
    """Per-core MOESI cache for the Hammer-like protocol."""

    CONTROLLER_TYPE = "hammer_cache"
    PORTS = ("response", "forward", "mandatory")
    INVALID_STATE = HCState.I

    def __init__(
        self,
        sim,
        name,
        net,
        dir_name,
        n_peers,
        num_sets=64,
        assoc=4,
        block_size=64,
        xg_tolerant=False,
    ):
        self.net = net
        self.dir_name = dir_name
        self.n_peers = n_peers
        self.xg_tolerant = xg_tolerant
        super().__init__(sim, name, num_sets=num_sets, assoc=assoc, block_size=block_size)

    # -- helpers ---------------------------------------------------------------

    def _send(self, mtype, addr, dest, port, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=dest, **kw)
        self.net.send(msg, port)
        return msg

    def _to_dir(self, mtype, addr, port="request", **kw):
        return self._send(mtype, addr, self.dir_name, port, **kw)

    def _fill_room(self, addr):
        set_index = self.cache.set_index(self.align(addr))
        occupied = sum(
            1 for entry in self.cache.entries() if self.cache.set_index(entry.addr) == set_index
        )
        reserved = sum(
            1
            for tbe in self.tbes
            if tbe.meta.get("needs_slot") and self.cache.set_index(tbe.addr) == set_index
        )
        return self.cache.assoc - occupied - reserved

    # -- dispatch ------------------------------------------------------------------

    def handle_message(self, port, msg):
        # Monomorphic fast path: data/ack responses dominate steady-state
        # traffic, so resolve them on the first compare.
        if port == "response":
            return self.fire(
                self.block_state(msg.addr), _RESPONSE_EVENTS[msg.mtype], msg
            )
        if port == "forward":
            return self.fire(self.block_state(msg.addr), _PROBE_EVENTS[msg.mtype], msg)
        return self._handle_mandatory(msg)

    def _handle_mandatory(self, msg):
        addr = self.align(msg.addr)
        state = self.block_state(addr)
        event = HCEvent.Load if msg.mtype is CpuOp.Load else HCEvent.Store
        if state in _TRANSIENT:
            return STALL
        if state is HCState.I and self._fill_room(addr) <= 0:
            victim = self.stable_victim(addr)
            if victim is not None:
                synthetic = Message(event, victim.addr, sender=self.name, dest=self.name)
                self.fire(victim.state, HCEvent.Replacement, synthetic)
                if self._fill_room(addr) > 0:
                    return self.fire(state, event, msg)
            return RETRY
        return self.fire(state, event, msg)

    # -- transition table -----------------------------------------------------------

    def _build_transitions(self):
        t = self.transitions
        S, E = HCState, HCEvent
        # CPU ops
        t[(S.I, E.Load)] = self._i_load
        t[(S.I, E.Store)] = self._i_store
        for hit_state in (S.S, S.E, S.M, S.O):
            t[(hit_state, E.Load)] = self._hit_load
        t[(S.M, E.Store)] = self._m_store
        t[(S.E, E.Store)] = self._e_store
        t[(S.S, E.Store)] = self._s_store
        t[(S.O, E.Store)] = self._o_store
        # replacements
        t[(S.S, E.Replacement)] = self._s_repl
        t[(S.E, E.Replacement)] = self._e_repl
        t[(S.M, E.Replacement)] = self._m_repl
        t[(S.O, E.Replacement)] = self._o_repl
        # probes on stable states
        t[(S.I, E.Fwd_GetS)] = self._ack_probe
        t[(S.I, E.Fwd_GetM)] = self._ack_probe
        t[(S.I, E.Fwd_GetS_Only)] = self._ack_probe
        t[(S.S, E.Fwd_GetS)] = self._shared_ack
        t[(S.S, E.Fwd_GetS_Only)] = self._shared_ack
        t[(S.S, E.Fwd_GetM)] = self._s_fwd_getm
        t[(S.E, E.Fwd_GetS)] = self._e_fwd_gets
        t[(S.E, E.Fwd_GetS_Only)] = self._e_fwd_gets_only
        t[(S.E, E.Fwd_GetM)] = self._owner_fwd_getm
        t[(S.M, E.Fwd_GetS)] = self._m_fwd_gets
        t[(S.M, E.Fwd_GetS_Only)] = self._m_fwd_gets
        t[(S.M, E.Fwd_GetM)] = self._owner_fwd_getm
        t[(S.O, E.Fwd_GetS)] = self._o_fwd_gets
        t[(S.O, E.Fwd_GetS_Only)] = self._o_fwd_gets
        t[(S.O, E.Fwd_GetM)] = self._owner_fwd_getm
        # probes on transients
        for st in (S.IS_AD, S.IM_AD, S.II_A):
            t[(st, E.Fwd_GetS)] = self._ack_probe
            t[(st, E.Fwd_GetS_Only)] = self._ack_probe
            t[(st, E.Fwd_GetM)] = self._ack_probe
        t[(S.SM_AD, E.Fwd_GetS)] = self._shared_ack
        t[(S.SM_AD, E.Fwd_GetS_Only)] = self._shared_ack
        t[(S.SM_AD, E.Fwd_GetM)] = self._smad_fwd_getm
        t[(S.OM_A, E.Fwd_GetS)] = self._oma_fwd_gets
        t[(S.OM_A, E.Fwd_GetS_Only)] = self._oma_fwd_gets
        t[(S.OM_A, E.Fwd_GetM)] = self._oma_fwd_getm
        t[(S.MI_A, E.Fwd_GetS)] = self._replacing_owner_gets
        t[(S.MI_A, E.Fwd_GetS_Only)] = self._replacing_owner_gets
        t[(S.MI_A, E.Fwd_GetM)] = self._replacing_owner_getm
        t[(S.OI_A, E.Fwd_GetS)] = self._replacing_owner_gets
        t[(S.OI_A, E.Fwd_GetS_Only)] = self._replacing_owner_gets
        t[(S.OI_A, E.Fwd_GetM)] = self._replacing_owner_getm
        t[(S.EI_A, E.Fwd_GetS)] = self._eia_fwd_gets
        t[(S.EI_A, E.Fwd_GetS_Only)] = self._eia_fwd_gets_only
        t[(S.EI_A, E.Fwd_GetM)] = self._replacing_owner_getm
        # response collection
        for st in _COLLECTING:
            t[(st, E.PeerAck)] = self._collect
            t[(st, E.PeerData)] = self._collect
            t[(st, E.PeerDataExcl)] = self._collect
            t[(st, E.MemData)] = self._collect
        # Exclusive-clean transfers only answer GetS, and an O upgrader can
        # never see peer data (it is the owner); keep the defensive rows
        # but exclude them from the coverage denominator.
        self.coverage_exempt |= {
            (S.IM_AD, E.PeerDataExcl),
            (S.SM_AD, E.PeerDataExcl),
            (S.OM_A, E.PeerDataExcl),
            (S.OM_A, E.PeerData),
        }
        # writeback completion
        t[(S.MI_A, E.WBAck)] = self._wb_send_data
        t[(S.OI_A, E.WBAck)] = self._wb_send_data
        t[(S.EI_A, E.WBAck)] = self._wb_send_data
        t[(S.II_A, E.WBNack)] = self._wb_nacked
        # unexpected Nacks (sunk only in xg_tolerant hosts, Section 3.2.1)
        t[(S.I, E.WBNack)] = self._sink_nack
        t[(S.S, E.WBNack)] = self._sink_nack
        self.coverage_exempt |= {(S.I, E.WBNack), (S.S, E.WBNack)}

    # -- CPU ops --------------------------------------------------------------------

    def _start_get(self, msg, mtype, state):
        addr = self.align(msg.addr)
        tbe = self.tbes.allocate(addr, state, now=self.sim.tick)
        tbe.origin = msg
        tbe.acks_needed = self.n_peers + 1  # peers + memory response
        tbe.meta["op"] = mtype
        if state in (HCState.IS_AD, HCState.IM_AD):
            tbe.meta["needs_slot"] = True
        self._to_dir(mtype, addr)
        self.stats.inc(f"misses_{mtype.name}")
        return tbe

    def _i_load(self, msg):
        self._start_get(msg, HammerMsg.GetS, HCState.IS_AD)
        return CONSUMED

    def _i_store(self, msg):
        self._start_get(msg, HammerMsg.GetM, HCState.IM_AD)
        return CONSUMED

    def _s_store(self, msg):
        self._start_get(msg, HammerMsg.GetM, HCState.SM_AD)
        return CONSUMED

    def _o_store(self, msg):
        tbe = self._start_get(msg, HammerMsg.GetM, HCState.OM_A)
        tbe.meta["keep_own_data"] = True
        return CONSUMED

    def _hit_load(self, msg):
        entry = self.cache.lookup(msg.addr)
        self.respond_to_cpu(msg, entry.data)
        self.stats.inc("load_hits")
        return CONSUMED

    def _m_store(self, msg):
        entry = self.cache.lookup(msg.addr)
        entry.data.write_byte(self.offset(msg.addr), msg.value)
        self.respond_to_cpu(msg, entry.data)
        self.stats.inc("store_hits")
        return CONSUMED

    def _e_store(self, msg):
        entry = self.cache.lookup(msg.addr)
        entry.state = HCState.M  # silent upgrade
        entry.dirty = True
        entry.data.write_byte(self.offset(msg.addr), msg.value)
        self.respond_to_cpu(msg, entry.data)
        self.stats.inc("store_hits")
        return CONSUMED

    # -- replacements -------------------------------------------------------------------

    def _s_repl(self, msg):
        # Hammer allows silent eviction of S blocks — the reason XG's PutS
        # traffic is pure overhead on this host (Section 2.1).
        self.cache.deallocate(msg.addr)
        self.stats.inc("silent_s_evictions")
        return CONSUMED

    def _e_repl(self, msg):
        self.tbes.allocate(msg.addr, HCState.EI_A, now=self.sim.tick)
        self._to_dir(HammerMsg.PutE, msg.addr)
        return CONSUMED

    def _m_repl(self, msg):
        self.tbes.allocate(msg.addr, HCState.MI_A, now=self.sim.tick)
        self._to_dir(HammerMsg.PutM, msg.addr)
        return CONSUMED

    def _o_repl(self, msg):
        self.tbes.allocate(msg.addr, HCState.OI_A, now=self.sim.tick)
        self._to_dir(HammerMsg.PutM, msg.addr)
        return CONSUMED

    # -- probes ------------------------------------------------------------------------------

    def _ack_probe(self, msg):
        self._send(HammerMsg.PeerAck, msg.addr, msg.requestor, "response")
        return CONSUMED

    def _shared_ack(self, msg):
        self._send(HammerMsg.PeerAck, msg.addr, msg.requestor, "response", shared_hint=True)
        return CONSUMED

    def _s_fwd_getm(self, msg):
        self._send(HammerMsg.PeerAck, msg.addr, msg.requestor, "response")
        self.cache.deallocate(msg.addr)
        return CONSUMED

    def _e_fwd_gets(self, msg):
        """Exclusive-clean transfer: requestor will take E, we drop to I."""
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(
            HammerMsg.PeerDataExcl, msg.addr, msg.requestor, "response", data=entry.data.copy()
        )
        self.cache.deallocate(msg.addr)
        return CONSUMED

    def _e_fwd_gets_only(self, msg):
        """GetS_Only suppresses the transfer: downgrade to S instead."""
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(
            HammerMsg.PeerData,
            msg.addr,
            msg.requestor,
            "response",
            data=entry.data.copy(),
            shared_hint=True,
        )
        entry.state = HCState.S
        return CONSUMED

    def _m_fwd_gets(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(
            HammerMsg.PeerData,
            msg.addr,
            msg.requestor,
            "response",
            data=entry.data.copy(),
            dirty=True,
            shared_hint=True,
        )
        entry.state = HCState.O
        return CONSUMED

    def _o_fwd_gets(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(
            HammerMsg.PeerData,
            msg.addr,
            msg.requestor,
            "response",
            data=entry.data.copy(),
            dirty=True,
            shared_hint=True,
        )
        return CONSUMED

    def _owner_fwd_getm(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(
            HammerMsg.PeerData,
            msg.addr,
            msg.requestor,
            "response",
            data=entry.data.copy(),
            dirty=entry.dirty,
        )
        self.cache.deallocate(msg.addr)
        return CONSUMED

    def _smad_fwd_getm(self, msg):
        """Upgrade lost: ack, drop our S copy, wait for data like IM_AD."""
        tbe = self.tbes.lookup(msg.addr)
        self._send(HammerMsg.PeerAck, msg.addr, msg.requestor, "response")
        entry = self.cache.lookup(msg.addr, touch=False)
        if entry is not None:
            self.cache.deallocate(msg.addr)
        tbe.state = HCState.IM_AD
        tbe.meta["needs_slot"] = True
        return CONSUMED

    def _oma_fwd_gets(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(
            HammerMsg.PeerData,
            msg.addr,
            msg.requestor,
            "response",
            data=entry.data.copy(),
            dirty=True,
            shared_hint=True,
        )
        return CONSUMED

    def _oma_fwd_getm(self, msg):
        """Owner-upgrade lost ownership: ship data, fall back to IM_AD."""
        tbe = self.tbes.lookup(msg.addr)
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(
            HammerMsg.PeerData,
            msg.addr,
            msg.requestor,
            "response",
            data=entry.data.copy(),
            dirty=True,
        )
        self.cache.deallocate(msg.addr)
        tbe.state = HCState.IM_AD
        tbe.meta["keep_own_data"] = False
        tbe.meta["needs_slot"] = True
        return CONSUMED

    def _replacing_owner_gets(self, msg):
        """M/O replacement raced a GetS: still owner, serve dirty data."""
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(
            HammerMsg.PeerData,
            msg.addr,
            msg.requestor,
            "response",
            data=entry.data.copy(),
            dirty=True,
            shared_hint=True,
        )
        return CONSUMED

    def _replacing_owner_getm(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        tbe = self.tbes.lookup(msg.addr)
        self._send(
            HammerMsg.PeerData,
            msg.addr,
            msg.requestor,
            "response",
            data=entry.data.copy(),
            dirty=entry.dirty,
        )
        tbe.state = HCState.II_A
        return CONSUMED

    def _eia_fwd_gets(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        tbe = self.tbes.lookup(msg.addr)
        self._send(
            HammerMsg.PeerDataExcl, msg.addr, msg.requestor, "response", data=entry.data.copy()
        )
        tbe.state = HCState.II_A
        return CONSUMED

    def _eia_fwd_gets_only(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        self._send(
            HammerMsg.PeerData,
            msg.addr,
            msg.requestor,
            "response",
            data=entry.data.copy(),
            shared_hint=True,
        )
        return CONSUMED

    # -- response collection ------------------------------------------------------------------

    def _collect(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        tbe.responses_received += 1
        if msg.mtype is HammerMsg.PeerDataExcl:
            tbe.meta["excl_transfer"] = True
            tbe.data = msg.data.copy()
            tbe.dirty = False
            tbe.data_received = True
        elif msg.mtype is HammerMsg.PeerData:
            if tbe.data_received and not self.xg_tolerant and not tbe.meta.get("keep_own_data"):
                raise ProtocolError(
                    self, tbe.state, HCEvent.PeerData, msg, note="second data response"
                )
            if not tbe.meta.get("keep_own_data"):
                tbe.data = msg.data.copy()
                tbe.dirty = msg.dirty
            tbe.data_received = True
            tbe.meta["peer_data"] = True
        elif msg.mtype is HammerMsg.MemData:
            if not tbe.data_received and not tbe.meta.get("keep_own_data"):
                tbe.data = msg.data.copy()
                tbe.dirty = False
        if msg.shared_hint:
            tbe.meta["shared"] = True
        if tbe.responses_received >= tbe.acks_needed:
            self._complete_get(addr, tbe)
        return CONSUMED

    def _complete_get(self, addr, tbe):
        op = tbe.meta["op"]
        entry = self.cache.lookup(addr, touch=False)
        if op is HammerMsg.GetM:
            final = HCState.M
        elif tbe.meta.get("excl_transfer"):
            final = HCState.E
        elif op is HammerMsg.GetS_Only:
            final = HCState.S
        elif tbe.meta.get("peer_data") or tbe.meta.get("shared"):
            final = HCState.S
        else:
            final = HCState.E
        if entry is None:
            data = tbe.data if tbe.data is not None else None
            entry = self.cache.allocate(addr, final, data=data)
        else:
            entry.state = final
            if tbe.data is not None and not tbe.meta.get("keep_own_data"):
                entry.data = tbe.data
        entry.dirty = tbe.dirty or (tbe.meta.get("keep_own_data", False))
        origin = tbe.origin
        if origin.mtype is CpuOp.Store:
            entry.data.write_byte(self.offset(origin.addr), origin.value)
            entry.dirty = True
            self.stats.inc("stores_completed")
        else:
            self.stats.inc("loads_completed")
        self.respond_to_cpu(origin, entry.data)
        self.sim.stats_for("latency").observe("miss_latency", self.sim.tick - tbe.opened_at)
        unblock = {
            HCState.M: HammerMsg.UnblockM,
            HCState.E: HammerMsg.UnblockE,
            HCState.S: HammerMsg.UnblockS,
        }[final]
        self._to_dir(unblock, addr, port="response")
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)

    # -- writeback completion ----------------------------------------------------------------------

    def _wb_send_data(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.lookup(addr, touch=False)
        dirty = tbe.state in (HCState.MI_A, HCState.OI_A)
        self._to_dir(
            HammerMsg.WBData, addr, port="response", data=entry.data.copy(), dirty=dirty
        )
        self.cache.deallocate(addr)
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)
        return CONSUMED

    def _wb_nacked(self, msg):
        addr = msg.addr
        if self.cache.lookup(addr, touch=False) is not None:
            self.cache.deallocate(addr)
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)
        return CONSUMED

    def _sink_nack(self, msg):
        """Sink an unexpected Nack (host modification for Transactional XG)."""
        if not self.xg_tolerant:
            raise ProtocolError(
                self, self.block_state(msg.addr), HCEvent.WBNack, msg, note="unexpected Nack"
            )
        self.note_protocol_anomaly("sank unexpected WBNack", msg)
        return CONSUMED
