"""MESI two-level private L1 controller.

This is the baseline the paper compares the accelerator interface against:
it must handle four host request kinds and seven response kinds and needs
six+ transient states with ack counters — exactly the complexity Table 1's
accelerator cache avoids.

Notable races handled here (Sorin et al. style):

* ``SM_AD`` + Inv — upgrade loses to a remote GetM: ack the winner, fall
  back to ``IM_AD`` and wait for fresh data;
* ``MI_A``/``EI_A`` + Fwd/Recall — replacement races a forward: serve the
  forward, enter ``II_A``, and absorb the directory's WBNack;
* ``II_A`` + Inv — after an owner downgraded during its own writeback it
  is a sharer again and must still ack invalidations.
"""

import enum

from repro.coherence.controller import CONSUMED, RETRY, STALL, ProtocolError
from repro.protocols.common import CacheControllerBase, CpuOp
from repro.protocols.mesi.messages import MesiMsg
from repro.sim.message import Message


class L1State(enum.Enum):
    I = enum.auto()
    S = enum.auto()
    E = enum.auto()
    M = enum.auto()
    IS_D = enum.auto()  # GetS issued, waiting data
    IM_AD = enum.auto()  # GetM issued, waiting data + acks
    IM_A = enum.auto()  # have data, waiting acks
    SM_AD = enum.auto()  # upgrade issued, waiting data/grant + acks
    SM_A = enum.auto()  # upgrade has grant, waiting acks
    MI_A = enum.auto()  # PutM issued, waiting WBAck
    EI_A = enum.auto()  # PutE issued, waiting WBAck
    SI_A = enum.auto()  # PutS issued, waiting WBAck
    II_A = enum.auto()  # block surrendered mid-writeback, waiting WBNack


class L1Event(enum.Enum):
    Load = enum.auto()
    Store = enum.auto()
    Replacement = enum.auto()
    DataS = enum.auto()
    DataE = enum.auto()
    DataM = enum.auto()
    InvAck = enum.auto()
    Inv = enum.auto()
    Fwd_GetS = enum.auto()
    Fwd_GetM = enum.auto()
    Recall = enum.auto()
    WBAck = enum.auto()
    WBNack = enum.auto()


_FORWARD_EVENTS = {
    MesiMsg.Inv: L1Event.Inv,
    MesiMsg.Fwd_GetS: L1Event.Fwd_GetS,
    MesiMsg.Fwd_GetM: L1Event.Fwd_GetM,
    MesiMsg.Recall: L1Event.Recall,
    MesiMsg.WBAck: L1Event.WBAck,
    MesiMsg.WBNack: L1Event.WBNack,
}

_RESPONSE_EVENTS = {
    MesiMsg.DataS: L1Event.DataS,
    MesiMsg.DataE: L1Event.DataE,
    MesiMsg.DataM: L1Event.DataM,
    MesiMsg.InvAck: L1Event.InvAck,
}

_TRANSIENT = {
    L1State.IS_D,
    L1State.IM_AD,
    L1State.IM_A,
    L1State.SM_AD,
    L1State.SM_A,
    L1State.MI_A,
    L1State.EI_A,
    L1State.SI_A,
    L1State.II_A,
}


class MesiL1(CacheControllerBase):
    """Private MESI L1 (one per CPU core)."""

    CONTROLLER_TYPE = "mesi_l1"
    PORTS = ("response", "forward", "mandatory")
    INVALID_STATE = L1State.I

    def __init__(self, sim, name, net, l2_name, num_sets=64, assoc=4, block_size=64):
        self.net = net
        self.l2_name = l2_name
        super().__init__(sim, name, num_sets=num_sets, assoc=assoc, block_size=block_size)

    # -- helpers --------------------------------------------------------------

    def _send(self, mtype, addr, dest, port, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=dest, **kw)
        self.net.send(msg, port)
        return msg

    def _to_l2(self, mtype, addr, port="request", **kw):
        return self._send(mtype, addr, self.l2_name, port, **kw)

    def _fill_room(self, addr):
        """Free ways in addr's set, net of fills already promised a slot."""
        set_index = self.cache.set_index(self.align(addr))
        occupied = sum(
            1 for entry in self.cache.entries() if self.cache.set_index(entry.addr) == set_index
        )
        reserved = sum(
            1
            for tbe in self.tbes
            if tbe.meta.get("needs_slot") and self.cache.set_index(tbe.addr) == set_index
        )
        return self.cache.assoc - occupied - reserved

    def _finish_read(self, addr, tbe, entry):
        """Complete the CPU load recorded in the TBE."""
        self.respond_to_cpu(tbe.origin, entry.data)
        self.stats.inc("loads_completed")
        self.sim.stats_for("latency").observe(
            "l1_miss_latency", self.sim.tick - tbe.opened_at
        )

    def _finish_write(self, addr, tbe, entry):
        """Apply the CPU store recorded in the TBE and complete it."""
        op = tbe.origin
        entry.data.write_byte(self.offset(op.addr), op.value)
        entry.dirty = True
        self.respond_to_cpu(op, entry.data)
        self.stats.inc("stores_completed")
        self.sim.stats_for("latency").observe(
            "l1_miss_latency", self.sim.tick - tbe.opened_at
        )

    def _close(self, addr):
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)

    # -- message dispatch ------------------------------------------------------

    def handle_message(self, port, msg):
        # Monomorphic fast path: data/ack responses dominate steady-state
        # traffic, so resolve them on the first compare.
        if port == "response":
            return self.fire(
                self.block_state(msg.addr), _RESPONSE_EVENTS[msg.mtype], msg
            )
        if port == "forward":
            return self.fire(
                self.block_state(msg.addr), _FORWARD_EVENTS[msg.mtype], msg
            )
        if port == "mandatory":
            return self._handle_mandatory(msg)
        raise AssertionError(f"unknown port {port}")

    def _handle_mandatory(self, msg):
        addr = self.align(msg.addr)
        state = self.block_state(addr)
        event = L1Event.Load if msg.mtype is CpuOp.Load else L1Event.Store
        if state in _TRANSIENT:
            return STALL
        if state is L1State.I and self._fill_room(addr) <= 0:
            victim = self.stable_victim(addr)
            if victim is not None:
                synthetic = Message(event, victim.addr, sender=self.name, dest=self.name)
                self.fire(victim.state, L1Event.Replacement, synthetic)
            return RETRY
        return self.fire(state, event, msg)

    # -- transition table ----------------------------------------------------------

    def _build_transitions(self):
        t = self.transitions
        S, E = L1State, L1Event
        # CPU requests on stable states
        t[(S.I, E.Load)] = self._i_load
        t[(S.I, E.Store)] = self._i_store
        t[(S.S, E.Load)] = self._hit_load
        t[(S.S, E.Store)] = self._s_store
        t[(S.E, E.Load)] = self._hit_load
        t[(S.E, E.Store)] = self._e_store
        t[(S.M, E.Load)] = self._hit_load
        t[(S.M, E.Store)] = self._m_store
        # replacements
        t[(S.S, E.Replacement)] = self._s_repl
        t[(S.E, E.Replacement)] = self._e_repl
        t[(S.M, E.Replacement)] = self._m_repl
        # data/ack responses
        t[(S.IS_D, E.DataS)] = self._isd_data_s
        t[(S.IS_D, E.DataE)] = self._isd_data_e
        t[(S.IS_D, E.DataM)] = self._isd_data_m
        t[(S.IM_AD, E.DataM)] = self._imad_data_m
        t[(S.IM_AD, E.InvAck)] = self._count_ack
        t[(S.IM_A, E.InvAck)] = self._ima_ack
        t[(S.SM_AD, E.DataM)] = self._imad_data_m
        t[(S.SM_AD, E.InvAck)] = self._count_ack
        t[(S.SM_A, E.InvAck)] = self._ima_ack
        t[(S.SM_AD, E.Inv)] = self._smad_inv
        # forwards on stable states
        t[(S.S, E.Inv)] = self._s_inv
        t[(S.E, E.Fwd_GetS)] = self._owner_fwd_gets
        t[(S.M, E.Fwd_GetS)] = self._owner_fwd_gets
        t[(S.E, E.Fwd_GetM)] = self._owner_fwd_getm
        t[(S.M, E.Fwd_GetM)] = self._owner_fwd_getm
        t[(S.E, E.Recall)] = self._owner_recall
        t[(S.M, E.Recall)] = self._owner_recall
        # writeback transients
        t[(S.MI_A, E.WBAck)] = self._wb_done
        t[(S.EI_A, E.WBAck)] = self._wb_done
        t[(S.SI_A, E.WBAck)] = self._wb_done
        t[(S.MI_A, E.Fwd_GetS)] = self._replacing_fwd_gets
        t[(S.EI_A, E.Fwd_GetS)] = self._replacing_fwd_gets
        t[(S.MI_A, E.Fwd_GetM)] = self._replacing_fwd_getm
        t[(S.EI_A, E.Fwd_GetM)] = self._replacing_fwd_getm
        t[(S.MI_A, E.Recall)] = self._replacing_recall
        t[(S.EI_A, E.Recall)] = self._replacing_recall
        t[(S.SI_A, E.Inv)] = self._sia_inv
        t[(S.II_A, E.Inv)] = self._iia_inv
        t[(S.II_A, E.WBNack)] = self._wb_done

    # -- CPU request handlers ---------------------------------------------------

    def _i_load(self, msg):
        addr = self.align(msg.addr)
        tbe = self.tbes.allocate(addr, L1State.IS_D, now=self.sim.tick)
        tbe.origin = msg
        tbe.meta["needs_slot"] = True
        self._to_l2(MesiMsg.GetS, addr)
        self.stats.inc("l1_load_misses")
        return CONSUMED

    def _i_store(self, msg):
        addr = self.align(msg.addr)
        tbe = self.tbes.allocate(addr, L1State.IM_AD, now=self.sim.tick)
        tbe.origin = msg
        tbe.meta["needs_slot"] = True
        tbe.acks_needed = None
        self._to_l2(MesiMsg.GetM, addr)
        self.stats.inc("l1_store_misses")
        return CONSUMED

    def _hit_load(self, msg):
        entry = self.cache.lookup(msg.addr)
        self.respond_to_cpu(msg, entry.data)
        self.stats.inc("l1_load_hits")
        return CONSUMED

    def _s_store(self, msg):
        addr = self.align(msg.addr)
        tbe = self.tbes.allocate(addr, L1State.SM_AD, now=self.sim.tick)
        tbe.origin = msg
        tbe.acks_needed = None
        self._to_l2(MesiMsg.GetM, addr)
        self.stats.inc("l1_upgrade_misses")
        return CONSUMED

    def _e_store(self, msg):
        entry = self.cache.lookup(msg.addr)
        entry.state = L1State.M  # silent E->M upgrade
        entry.data.write_byte(self.offset(msg.addr), msg.value)
        entry.dirty = True
        self.respond_to_cpu(msg, entry.data)
        self.stats.inc("l1_store_hits")
        return CONSUMED

    def _m_store(self, msg):
        entry = self.cache.lookup(msg.addr)
        entry.data.write_byte(self.offset(msg.addr), msg.value)
        self.respond_to_cpu(msg, entry.data)
        self.stats.inc("l1_store_hits")
        return CONSUMED

    # -- replacements --------------------------------------------------------------

    def _s_repl(self, msg):
        addr = msg.addr
        self.tbes.allocate(addr, L1State.SI_A, now=self.sim.tick)
        self._to_l2(MesiMsg.PutS, addr)
        self.stats.inc("l1_puts")
        return CONSUMED

    def _e_repl(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        self.tbes.allocate(addr, L1State.EI_A, now=self.sim.tick)
        self._to_l2(MesiMsg.PutE, addr, data=entry.data.copy(), dirty=False)
        self.stats.inc("l1_pute")
        return CONSUMED

    def _m_repl(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        self.tbes.allocate(addr, L1State.MI_A, now=self.sim.tick)
        self._to_l2(MesiMsg.PutM, addr, data=entry.data.copy(), dirty=True)
        self.stats.inc("l1_putm")
        return CONSUMED

    # -- fill responses ----------------------------------------------------------------

    def _isd_data_s(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.allocate(addr, L1State.S, data=msg.data.copy())
        self._finish_read(addr, tbe, entry)
        self._to_l2(MesiMsg.UnblockS, addr, port="response")
        self._close(addr)
        return CONSUMED

    def _isd_data_e(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.allocate(addr, L1State.E, data=msg.data.copy())
        self._finish_read(addr, tbe, entry)
        self._to_l2(MesiMsg.UnblockX, addr, port="response")
        self._close(addr)
        return CONSUMED

    def _isd_data_m(self, msg):
        # Dirty-migration grant: L2 hands over its dirty copy on a GetS.
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.allocate(addr, L1State.M, data=msg.data.copy(), dirty=True)
        self._finish_read(addr, tbe, entry)
        self._to_l2(MesiMsg.UnblockX, addr, port="response")
        self._close(addr)
        return CONSUMED

    def _imad_data_m(self, msg):
        """Data (or upgrade grant) for an outstanding GetM; covers IM_AD/SM_AD."""
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        tbe.data = msg.data.copy() if msg.data is not None else tbe.data
        tbe.acks_needed = msg.ack_count
        tbe.data_received = True
        if tbe.acks_received >= tbe.acks_needed:
            self._complete_store(addr, tbe)
        else:
            tbe.state = L1State.IM_A if tbe.state is L1State.IM_AD else L1State.SM_A
        return CONSUMED

    def _count_ack(self, msg):
        tbe = self.tbes.lookup(msg.addr)
        tbe.acks_received += 1
        return CONSUMED

    def _ima_ack(self, msg):
        tbe = self.tbes.lookup(msg.addr)
        tbe.acks_received += 1
        if tbe.acks_received >= tbe.acks_needed:
            self._complete_store(msg.addr, tbe)
        return CONSUMED

    def _complete_store(self, addr, tbe):
        entry = self.cache.lookup(addr, touch=False)
        if entry is None:
            entry = self.cache.allocate(addr, L1State.M, data=tbe.data)
        else:
            entry.state = L1State.M
            if tbe.data is not None:
                entry.data = tbe.data
        entry.dirty = True
        self._finish_write(addr, tbe, entry)
        self._to_l2(MesiMsg.UnblockX, addr, port="response")
        self._close(addr)

    def _smad_inv(self, msg):
        """Upgrade lost the race: ack the winner, restart as a plain GetM."""
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        self._send(MesiMsg.InvAck, addr, msg.requestor, "response")
        entry = self.cache.lookup(addr, touch=False)
        if entry is not None:
            self.cache.deallocate(addr)
        tbe.state = L1State.IM_AD
        tbe.meta["needs_slot"] = True
        tbe.data = None
        return CONSUMED

    # -- forwards on stable states -------------------------------------------------------

    def _s_inv(self, msg):
        addr = msg.addr
        self._send(MesiMsg.InvAck, addr, msg.requestor, "response")
        self.cache.deallocate(addr)
        return CONSUMED

    def _owner_fwd_gets(self, msg):
        """E/M owner downgrades to S; data to requestor, CopyBack to L2."""
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        self._send(MesiMsg.DataS, addr, msg.requestor, "response", data=entry.data.copy())
        self._to_l2(
            MesiMsg.CopyBack, addr, port="response", data=entry.data.copy(), dirty=entry.dirty
        )
        entry.state = L1State.S
        entry.dirty = False
        return CONSUMED

    def _owner_fwd_getm(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        self._send(
            MesiMsg.DataM,
            addr,
            msg.requestor,
            "response",
            data=entry.data.copy(),
            dirty=entry.dirty,
            ack_count=0,
        )
        self.cache.deallocate(addr)
        return CONSUMED

    def _owner_recall(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        self._to_l2(
            MesiMsg.CopyBackInv, addr, port="response", data=entry.data.copy(), dirty=entry.dirty
        )
        self.cache.deallocate(addr)
        return CONSUMED

    # -- writeback transients ---------------------------------------------------------------

    def _wb_done(self, msg):
        addr = msg.addr
        if self.cache.lookup(addr, touch=False) is not None:
            self.cache.deallocate(addr)
        self._close(addr)
        return CONSUMED

    def _replacing_fwd_gets(self, msg):
        """Replacement raced a Fwd_GetS: serve it; our Put will be Nacked."""
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.lookup(addr, touch=False)
        self._send(MesiMsg.DataS, addr, msg.requestor, "response", data=entry.data.copy())
        self._to_l2(
            MesiMsg.CopyBack, addr, port="response", data=entry.data.copy(), dirty=entry.dirty
        )
        tbe.state = L1State.II_A
        return CONSUMED

    def _replacing_fwd_getm(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.lookup(addr, touch=False)
        self._send(
            MesiMsg.DataM,
            addr,
            msg.requestor,
            "response",
            data=entry.data.copy(),
            dirty=entry.dirty,
            ack_count=0,
        )
        tbe.state = L1State.II_A
        return CONSUMED

    def _replacing_recall(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.lookup(addr, touch=False)
        self._to_l2(
            MesiMsg.CopyBackInv, addr, port="response", data=entry.data.copy(), dirty=entry.dirty
        )
        tbe.state = L1State.II_A
        return CONSUMED

    def _sia_inv(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        self._send(MesiMsg.InvAck, addr, msg.requestor, "response")
        tbe.state = L1State.II_A
        return CONSUMED

    def _iia_inv(self, msg):
        """Still a sharer on L2's books after a downgrade; keep acking."""
        self._send(MesiMsg.InvAck, msg.addr, msg.requestor, "response")
        return CONSUMED
