"""MESI two-level shared inclusive L2 with embedded directory.

The L2 is a *blocking* directory: each block has at most one open
transaction (TBE), closed by the requestor's Unblock; racing requests wait
in per-address stall buffers. Sharer tracking is exact (explicit PutS),
which is what lets stale Puts be detected and WBNack'd — the property the
paper leans on for Guarantee 1a tolerance.

The ``xg_tolerant`` flag enables the Section 3.2.2 host modifications for
Transactional Crossing Guard:

* a CopyBack that arrives when no copyback is expected (a buggy
  accelerator "wrote back" instead of acking an Inv) is absorbed and the
  L2 acks the requestor on the accelerator's behalf;
* a GetM/GetS from the cache the directory already considers owner is
  served gracefully instead of being a protocol error.
"""

import enum

from repro.coherence.controller import CONSUMED, RETRY, STALL, ProtocolError
from repro.coherence.tbe import TBETable
from repro.memory.cache_array import CacheArray
from repro.coherence.controller import CoherenceController
from repro.memory.datablock import block_align
from repro.protocols.mesi.messages import MesiMsg
from repro.sim.message import Message


class L2State(enum.Enum):
    NP = enum.auto()  # not present
    V = enum.auto()  # valid at L2; zero or more sharers; no exclusive owner
    X = enum.auto()  # an L1 holds the block exclusively (E or M)
    IV = enum.auto()  # fetching from memory
    BUSY = enum.auto()  # transaction open, waiting Unblock (+CopyBack)
    EV_ACK = enum.auto()  # evicting: waiting sharer InvAcks
    EV_DATA = enum.auto()  # evicting: waiting owner CopyBackInv


class L2Event(enum.Enum):
    GetS = enum.auto()
    GetM = enum.auto()
    GetS_Only = enum.auto()
    PutS = enum.auto()
    PutE = enum.auto()
    PutM = enum.auto()
    PutStale = enum.auto()
    MemData = enum.auto()
    UnblockS = enum.auto()
    UnblockX = enum.auto()
    CopyBack = enum.auto()
    CopyBackInv = enum.auto()
    InvAck = enum.auto()
    Replacement = enum.auto()


_GET_EVENTS = {
    MesiMsg.GetS: L2Event.GetS,
    MesiMsg.GetM: L2Event.GetM,
    MesiMsg.GetS_Only: L2Event.GetS_Only,
}
_PUT_TYPES = {MesiMsg.PutS, MesiMsg.PutE, MesiMsg.PutM}
_RESPONSE_EVENTS = {
    MesiMsg.UnblockS: L2Event.UnblockS,
    MesiMsg.UnblockX: L2Event.UnblockX,
    MesiMsg.CopyBack: L2Event.CopyBack,
    MesiMsg.CopyBackInv: L2Event.CopyBackInv,
    MesiMsg.InvAck: L2Event.InvAck,
}


class MesiL2(CoherenceController):
    """Shared inclusive L2 / directory for the MESI two-level protocol."""

    CONTROLLER_TYPE = "mesi_l2"
    PORTS = ("response", "request")

    def __init__(
        self,
        sim,
        name,
        net,
        memory,
        num_sets=256,
        assoc=8,
        block_size=64,
        xg_tolerant=False,
    ):
        self.net = net
        self.memory = memory
        self.block_size = block_size
        self.xg_tolerant = xg_tolerant
        self.cache = CacheArray(num_sets, assoc, block_size=block_size, name=name)
        self.tbes = TBETable(name=name)
        super().__init__(sim, name)

    # -- helpers -----------------------------------------------------------------

    def align(self, addr):
        return block_align(addr, self.block_size)

    def _send(self, mtype, addr, dest, port, **kw):
        msg = Message(mtype, addr, sender=self.name, dest=dest, **kw)
        self.net.send(msg, port)
        return msg

    def _state(self, addr):
        tbe = self.tbes.lookup(addr)
        if tbe is not None:
            return tbe.state
        entry = self.cache.lookup(addr, touch=False)
        if entry is None:
            return L2State.NP
        return entry.state

    def _fill_room(self, addr):
        set_index = self.cache.set_index(self.align(addr))
        occupied = sum(
            1 for entry in self.cache.entries() if self.cache.set_index(entry.addr) == set_index
        )
        reserved = sum(
            1
            for tbe in self.tbes
            if tbe.meta.get("needs_slot") and self.cache.set_index(tbe.addr) == set_index
        )
        return self.cache.assoc - occupied - reserved

    def _stable_victim(self, addr):
        set_index = self.cache.set_index(self.align(addr))
        candidates = [
            entry
            for entry in self.cache.entries()
            if self.cache.set_index(entry.addr) == set_index and entry.addr not in self.tbes
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda entry: entry.last_use)

    # -- dispatch --------------------------------------------------------------------

    def handle_message(self, port, msg):
        addr = msg.addr
        state = self._state(addr)
        # Monomorphic fast path: data/ack/unblock responses dominate
        # steady-state traffic, so resolve them on the first compare.
        if port == "response":
            return self.fire(state, _RESPONSE_EVENTS[msg.mtype], msg)
        # request port
        if state in (L2State.IV, L2State.BUSY, L2State.EV_ACK, L2State.EV_DATA):
            return STALL
        if msg.mtype in _GET_EVENTS:
            event = _GET_EVENTS[msg.mtype]
            if state is L2State.NP and self._fill_room(addr) <= 0:
                victim = self._stable_victim(addr)
                if victim is not None:
                    synthetic = Message(
                        L2Event.Replacement, victim.addr, sender=self.name, dest=self.name
                    )
                    self.fire(victim.state, L2Event.Replacement, synthetic)
                if self._fill_room(addr) <= 0:
                    # Eviction is in flight (or impossible right now);
                    # its completion rescans this port.
                    return RETRY
            return self.fire(state, event, msg)
        if msg.mtype in _PUT_TYPES:
            event = self._classify_put(msg, state)
            return self.fire(state, event, msg)
        raise ProtocolError(self, state, msg.mtype, msg, note="bad request type")

    def _classify_put(self, msg, state):
        entry = self.cache.lookup(msg.addr, touch=False)
        if state is L2State.X and msg.mtype in (MesiMsg.PutM, MesiMsg.PutE):
            if entry.meta["owner"] == msg.sender:
                return L2Event.PutM if msg.mtype is MesiMsg.PutM else L2Event.PutE
        if state is L2State.V and msg.mtype is MesiMsg.PutS:
            if msg.sender in entry.meta["sharers"]:
                return L2Event.PutS
        return L2Event.PutStale

    # -- transition table ----------------------------------------------------------------

    def _build_transitions(self):
        t = self.transitions
        S, E = L2State, L2Event
        t[(S.NP, E.GetS)] = self._np_get
        t[(S.NP, E.GetM)] = self._np_get
        t[(S.NP, E.GetS_Only)] = self._np_get
        t[(S.V, E.GetS)] = self._v_gets
        t[(S.V, E.GetS_Only)] = self._v_gets_only
        t[(S.V, E.GetM)] = self._v_getm
        t[(S.X, E.GetS)] = self._x_gets
        t[(S.X, E.GetS_Only)] = self._x_gets
        t[(S.X, E.GetM)] = self._x_getm
        t[(S.V, E.PutS)] = self._v_puts
        t[(S.X, E.PutM)] = self._x_put
        t[(S.X, E.PutE)] = self._x_put
        t[(S.NP, E.PutStale)] = self._put_stale
        t[(S.V, E.PutStale)] = self._put_stale
        t[(S.X, E.PutStale)] = self._put_stale
        t[(S.IV, E.MemData)] = self._iv_mem_data
        t[(S.BUSY, E.UnblockS)] = self._busy_unblock
        t[(S.BUSY, E.UnblockX)] = self._busy_unblock
        t[(S.BUSY, E.CopyBack)] = self._busy_copyback
        t[(S.EV_ACK, E.InvAck)] = self._ev_ack
        t[(S.EV_ACK, E.CopyBack)] = self._ev_ack_copyback
        t[(S.EV_DATA, E.CopyBackInv)] = self._ev_data
        t[(S.V, E.Replacement)] = self._v_repl
        t[(S.X, E.Replacement)] = self._x_repl
        # Reachable only via a misbehaving accelerator behind Transactional
        # XG (Section 3.2.2 tolerance); excluded from baseline coverage.
        self.coverage_exempt.add((S.EV_ACK, E.CopyBack))

    # -- request handlers ----------------------------------------------------------

    def _np_get(self, msg):
        addr = msg.addr
        tbe = self.tbes.allocate(addr, L2State.IV, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["needs_slot"] = True
        tbe.meta["op"] = msg.mtype
        self.stats.inc("l2_misses")
        self.sim.schedule(self.memory.latency, self._mem_data_arrived, addr)
        return CONSUMED

    def _mem_data_arrived(self, addr):
        tbe = self.tbes.lookup(addr)
        synthetic = Message(L2Event.MemData, addr, sender="memory", dest=self.name)
        synthetic.data = self.memory.read(addr)
        self.fire(tbe.state, L2Event.MemData, synthetic)
        self.request_wakeup()

    def _iv_mem_data(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.allocate(addr, L2State.V, data=msg.data)
        entry.meta["sharers"] = set()
        entry.meta["owner"] = None
        tbe.meta["needs_slot"] = False
        op = tbe.meta["op"]
        if op is MesiMsg.GetM:
            self._send(
                MesiMsg.DataM,
                addr,
                tbe.requestor,
                "response",
                data=entry.data.copy(),
                ack_count=0,
            )
        elif op is MesiMsg.GetS_Only:
            self._send(MesiMsg.DataS, addr, tbe.requestor, "response", data=entry.data.copy())
        else:  # GetS with no sharers: grant E
            self._send(MesiMsg.DataE, addr, tbe.requestor, "response", data=entry.data.copy())
        tbe.state = L2State.BUSY
        return CONSUMED

    def _v_gets(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr)
        tbe = self.tbes.allocate(addr, L2State.BUSY, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = msg.mtype
        if not entry.meta["sharers"]:
            if entry.dirty:
                # Dirty-migration grant: hand the dirty block over in M.
                self._send(
                    MesiMsg.DataM,
                    addr,
                    msg.sender,
                    "response",
                    data=entry.data.copy(),
                    dirty=True,
                    ack_count=0,
                )
                self.stats.inc("l2_dirty_grants")
            else:
                self._send(
                    MesiMsg.DataE, addr, msg.sender, "response", data=entry.data.copy()
                )
        else:
            self._send(MesiMsg.DataS, addr, msg.sender, "response", data=entry.data.copy())
        return CONSUMED

    def _v_gets_only(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr)
        tbe = self.tbes.allocate(addr, L2State.BUSY, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = msg.mtype
        self._send(MesiMsg.DataS, addr, msg.sender, "response", data=entry.data.copy())
        return CONSUMED

    def _v_getm(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr)
        tbe = self.tbes.allocate(addr, L2State.BUSY, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = msg.mtype
        to_invalidate = entry.meta["sharers"] - {msg.sender}
        for sharer in sorted(to_invalidate):
            self._send(MesiMsg.Inv, addr, sharer, "forward", requestor=msg.sender)
        self._send(
            MesiMsg.DataM,
            addr,
            msg.sender,
            "response",
            data=entry.data.copy(),
            dirty=entry.dirty,
            ack_count=len(to_invalidate),
        )
        self.stats.inc("l2_invalidations", len(to_invalidate))
        return CONSUMED

    def _x_gets(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr)
        owner = entry.meta["owner"]
        if owner == msg.sender:
            # Only a misbehaving accelerator behind Transactional XG does
            # this; a correct L1 already holds the block.
            if not self.xg_tolerant:
                raise ProtocolError(self, L2State.X, L2Event.GetS, msg, note="GetS from owner")
            self.note_protocol_anomaly("GetS from current owner", msg)
            tbe = self.tbes.allocate(addr, L2State.BUSY, now=self.sim.tick)
            tbe.requestor = msg.sender
            tbe.meta["op"] = msg.mtype
            self._send(
                MesiMsg.DataM,
                addr,
                msg.sender,
                "response",
                data=entry.data.copy(),
                dirty=True,
                ack_count=0,
            )
            return CONSUMED
        tbe = self.tbes.allocate(addr, L2State.BUSY, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = msg.mtype
        tbe.meta["need_copyback"] = True
        fwd = MesiMsg.Fwd_GetS
        self._send(fwd, addr, owner, "forward", requestor=msg.sender)
        return CONSUMED

    def _x_getm(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr)
        owner = entry.meta["owner"]
        if owner == msg.sender:
            if not self.xg_tolerant:
                raise ProtocolError(self, L2State.X, L2Event.GetM, msg, note="GetM from owner")
            self.note_protocol_anomaly("GetM from current owner", msg)
            tbe = self.tbes.allocate(addr, L2State.BUSY, now=self.sim.tick)
            tbe.requestor = msg.sender
            tbe.meta["op"] = msg.mtype
            self._send(
                MesiMsg.DataM,
                addr,
                msg.sender,
                "response",
                data=entry.data.copy(),
                dirty=True,
                ack_count=0,
            )
            return CONSUMED
        tbe = self.tbes.allocate(addr, L2State.BUSY, now=self.sim.tick)
        tbe.requestor = msg.sender
        tbe.meta["op"] = msg.mtype
        self._send(MesiMsg.Fwd_GetM, addr, owner, "forward", requestor=msg.sender)
        return CONSUMED

    # -- writebacks --------------------------------------------------------------------

    def _v_puts(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        entry.meta["sharers"].discard(msg.sender)
        self._send(MesiMsg.WBAck, msg.addr, msg.sender, "forward")
        self.stats.inc("l2_puts_accepted")
        return CONSUMED

    def _x_put(self, msg):
        entry = self.cache.lookup(msg.addr, touch=False)
        entry.data = msg.data.copy()
        entry.dirty = msg.mtype is MesiMsg.PutM
        entry.meta["owner"] = None
        entry.state = L2State.V
        self._send(MesiMsg.WBAck, msg.addr, msg.sender, "forward")
        self.stats.inc("l2_writebacks_accepted")
        return CONSUMED

    def _put_stale(self, msg):
        """A Put that raced a forward/invalidate: benign, Nack it."""
        entry = self.cache.lookup(msg.addr, touch=False)
        if entry is not None:
            entry.meta["sharers"].discard(msg.sender)
        self._send(MesiMsg.WBNack, msg.addr, msg.sender, "forward")
        self.stats.inc("l2_stale_puts")
        return CONSUMED

    # -- transaction closure ----------------------------------------------------------------

    def _busy_unblock(self, msg):
        tbe = self.tbes.lookup(msg.addr)
        tbe.meta["got_unblock"] = True
        tbe.meta["unblock_exclusive"] = msg.mtype is MesiMsg.UnblockX
        self._maybe_close(msg.addr)
        return CONSUMED

    def _busy_copyback(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        entry = self.cache.lookup(addr, touch=False)
        if not tbe.meta.get("need_copyback"):
            # Buggy accelerator wrote back instead of acking an Inv
            # (Section 3.2.2): ack the requestor on its behalf.
            if not self.xg_tolerant:
                raise ProtocolError(
                    self, L2State.BUSY, L2Event.CopyBack, msg, note="unexpected copyback"
                )
            self.note_protocol_anomaly("copyback instead of InvAck; acking requestor", msg)
            self._send(MesiMsg.InvAck, addr, tbe.requestor, "response")
            return CONSUMED
        entry.data = msg.data.copy()
        entry.dirty = msg.dirty
        entry.meta["sharers"].add(msg.sender)
        entry.meta["owner"] = None
        tbe.meta["got_copyback"] = True
        self._maybe_close(addr)
        return CONSUMED

    def _maybe_close(self, addr):
        tbe = self.tbes.lookup(addr)
        if tbe.meta.get("need_copyback") and not tbe.meta.get("got_copyback"):
            return
        if not tbe.meta.get("got_unblock"):
            return
        entry = self.cache.lookup(addr, touch=False)
        if tbe.meta["unblock_exclusive"]:
            entry.meta["sharers"] = set()
            entry.meta["owner"] = tbe.requestor
            entry.state = L2State.X
            entry.dirty = False
        else:
            entry.meta["sharers"].add(tbe.requestor)
            if entry.meta["owner"] is None:
                entry.state = L2State.V
        self.tbes.deallocate(addr)
        self.wake_stalled(addr)

    # -- inclusive evictions --------------------------------------------------------------------

    def _v_repl(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        sharers = entry.meta["sharers"]
        if not sharers:
            if entry.dirty:
                self.memory.write(addr, entry.data)
            self.cache.deallocate(addr)
            self.stats.inc("l2_evictions")
            return CONSUMED
        tbe = self.tbes.allocate(addr, L2State.EV_ACK, now=self.sim.tick)
        tbe.acks_needed = len(sharers)
        for sharer in sorted(sharers):
            self._send(MesiMsg.Inv, addr, sharer, "forward", requestor=self.name)
        self.stats.inc("l2_recall_invs", len(sharers))
        return CONSUMED

    def _x_repl(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        self.tbes.allocate(addr, L2State.EV_DATA, now=self.sim.tick)
        self._send(MesiMsg.Recall, addr, entry.meta["owner"], "forward")
        self.stats.inc("l2_recalls")
        return CONSUMED

    def _ev_ack(self, msg):
        addr = msg.addr
        tbe = self.tbes.lookup(addr)
        tbe.acks_received += 1
        if tbe.acks_received < tbe.acks_needed:
            return CONSUMED
        entry = self.cache.lookup(addr, touch=False)
        if entry.dirty:
            self.memory.write(addr, entry.data)
        self.cache.deallocate(addr)
        self.tbes.deallocate(addr)
        self.stats.inc("l2_evictions")
        self.wake_stalled(addr)
        return CONSUMED

    def _ev_ack_copyback(self, msg):
        """Ack/Data equivalence on eviction Invs (Section 3.2.2 tolerance).

        A buggy accelerator answered an eviction Inv with data; count it
        as the ack and ignore the untrusted payload.
        """
        if not self.xg_tolerant:
            raise ProtocolError(
                self, L2State.EV_ACK, L2Event.CopyBack, msg, note="data on eviction Inv"
            )
        self.note_protocol_anomaly("copyback counted as eviction InvAck", msg)
        return self._ev_ack(msg)

    def _ev_data(self, msg):
        addr = msg.addr
        entry = self.cache.lookup(addr, touch=False)
        if msg.dirty:
            self.memory.write(addr, msg.data)
        elif entry.dirty:
            self.memory.write(addr, entry.data)
        self.cache.deallocate(addr)
        self.tbes.deallocate(addr)
        self.stats.inc("l2_evictions")
        self.wake_stalled(addr)
        return CONSUMED
