"""Inclusive MESI two-level host protocol (gem5 ``MESI_Two_Level`` analogue).

Private L1s attach to a shared, inclusive L2 that embeds an exact-sharer
directory. The L2 is a blocking directory: one open transaction per block,
closed by an Unblock from the requestor; racing requests stall in
per-address buffers. Invalidation acks flow directly from sharers to the
requestor, which counts them (the complexity Crossing Guard hides from
accelerator caches).
"""

from repro.protocols.mesi.messages import MesiMsg
from repro.protocols.mesi.l1 import L1Event, L1State, MesiL1
from repro.protocols.mesi.l2 import L2Event, L2State, MesiL2

__all__ = [
    "L1Event",
    "L1State",
    "L2Event",
    "L2State",
    "MesiL1",
    "MesiL2",
    "MesiMsg",
]
