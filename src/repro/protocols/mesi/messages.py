"""Message vocabulary of the inclusive MESI two-level protocol.

This is the host-protocol surface an "accelerator-side cache" (Figure 2a
of the paper) must speak, and which Crossing Guard speaks on the
accelerator's behalf: four request kinds from the host and seven response
kinds, versus the accelerator interface's one and three.
"""

import enum


class MesiMsg(enum.Enum):
    """All MESI two-level message types."""

    # -- L1 -> L2 requests
    GetS = enum.auto()
    GetM = enum.auto()
    GetS_Only = enum.auto()  # non-upgradable read (Transactional XG, G0b)
    PutS = enum.auto()
    PutE = enum.auto()  # carries clean data
    PutM = enum.auto()  # carries dirty data

    # -- L2 -> L1 forwards
    Inv = enum.auto()  # invalidate; ack msg.requestor
    Fwd_GetS = enum.auto()  # owner: send DataS to requestor + CopyBack to L2
    Fwd_GetM = enum.auto()  # owner: send DataM to requestor, invalidate
    Recall = enum.auto()  # inclusive-eviction: owner returns CopyBackInv
    WBAck = enum.auto()
    WBNack = enum.auto()  # stale Put (legitimate race)

    # -- data/ack responses
    DataS = enum.auto()
    DataE = enum.auto()
    DataM = enum.auto()  # carries ack_count when from L2
    InvAck = enum.auto()

    # -- L1 -> L2 transaction closure
    UnblockS = enum.auto()
    UnblockX = enum.auto()  # requestor took E or M
    CopyBack = enum.auto()  # owner downgrade data (stays sharer)
    CopyBackInv = enum.auto()  # owner recall data (fully invalidated)


REQUEST_TYPES = frozenset(
    {MesiMsg.GetS, MesiMsg.GetM, MesiMsg.GetS_Only, MesiMsg.PutS, MesiMsg.PutE, MesiMsg.PutM}
)
FORWARD_TYPES = frozenset(
    {MesiMsg.Inv, MesiMsg.Fwd_GetS, MesiMsg.Fwd_GetM, MesiMsg.Recall, MesiMsg.WBAck, MesiMsg.WBNack}
)
RESPONSE_TYPES = frozenset(
    {
        MesiMsg.DataS,
        MesiMsg.DataE,
        MesiMsg.DataM,
        MesiMsg.InvAck,
        MesiMsg.UnblockS,
        MesiMsg.UnblockX,
        MesiMsg.CopyBack,
        MesiMsg.CopyBackInv,
    }
)
