"""Pieces shared by both host protocols and the accelerator caches.

Defines the CPU-facing request types (the "mandatory queue" in Ruby
terms) and a cache controller base with the bookkeeping every L1-like
controller needs: a data array plus a TBE table, combined state lookup,
sequencer completion callbacks, and replacement victim selection.
"""

import enum

from repro.coherence.controller import CoherenceController
from repro.coherence.tbe import TBETable
from repro.memory.cache_array import CacheArray
from repro.memory.datablock import block_align, block_offset


class CpuOp(enum.Enum):
    """Requests a sequencer (CPU or accelerator core) issues to its cache."""

    Load = enum.auto()
    Store = enum.auto()


class CacheControllerBase(CoherenceController):
    """Base for controllers that own a data array + TBE table.

    The "state" of a block is its TBE's transient state when a transaction
    is open, the resident entry's stable state otherwise, and the
    protocol's invalid state when neither exists.
    """

    INVALID_STATE = None

    #: Mandatory (CPU/accelerator op) messages are parked in ``tbe.origin``
    #: until the transaction completes and the sequencer's callback has run
    #: — the wakeup loop must not recycle them at CONSUMED time. The
    #: sequencer releases them at completion instead.
    RELEASE_EXEMPT_PORTS = ("mandatory",)

    def __init__(self, sim, name, num_sets=64, assoc=4, block_size=64, tbe_capacity=None):
        self.cache = CacheArray(num_sets, assoc, block_size=block_size, name=name)
        self.tbes = TBETable(capacity=tbe_capacity, name=name)
        self.block_size = block_size
        self.sequencers = {}
        # pre-resolved hot-path accessors: block_state runs per message, so
        # skip the attribute chains and (for power-of-two blocks) the
        # modulo-based align
        self._tbe_lookup = self.tbes.lookup
        self._cache_lookup = self.cache.lookup
        if block_size & (block_size - 1) == 0:
            self._block_mask = ~(block_size - 1)
        else:
            self._block_mask = None
        super().__init__(sim, name)

    # -- state lookup ----------------------------------------------------------

    def block_state(self, addr):
        """Current protocol state of ``addr``'s block."""
        mask = self._block_mask
        if mask is not None:
            addr &= mask
        else:
            addr = block_align(addr, self.block_size)
        tbe = self._tbe_lookup(addr)
        if tbe is not None:
            return tbe.state
        entry = self._cache_lookup(addr, touch=False)
        if entry is not None:
            return entry.state
        return self.INVALID_STATE

    def align(self, addr):
        mask = self._block_mask
        if mask is not None:
            return addr & mask
        return block_align(addr, self.block_size)

    def stall_key(self, msg):
        """Stall on the block, not the byte: CPU ops carry full addresses."""
        return self.align(msg.addr)

    def offset(self, addr):
        return block_offset(addr, self.block_size)

    # -- sequencer interface -----------------------------------------------------

    def attach_sequencer(self, sequencer):
        """Register a sequencer; several may share one cache (GPU cores)."""
        self.sequencers[sequencer.name] = sequencer

    def respond_to_cpu(self, msg, data):
        """Complete a CPU op back to its issuing sequencer."""
        sequencer = self.sequencers.get(msg.sender)
        if sequencer is not None:
            sequencer.request_done(msg, data.copy() if data is not None else None)

    # -- replacement helpers --------------------------------------------------------

    def stable_victim(self, addr):
        """LRU victim in ``addr``'s set that is in a stable state, or None.

        Entries with an open TBE are mid-transaction and cannot be evicted.
        """
        target_set_index = self.cache.set_index(self.align(addr))
        candidates = [
            entry
            for entry in self.cache.entries()
            if self.cache.set_index(entry.addr) == target_set_index
            and entry.addr not in self.tbes
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda entry: entry.last_use)

    def has_room_or_victim(self, addr):
        """True when a fill for ``addr`` can proceed now or after an eviction."""
        if not self.cache.is_set_full(addr):
            return True
        return self.stable_victim(addr) is not None
