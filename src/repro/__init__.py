"""Crossing Guard: Mediating Host-Accelerator Coherence Interactions.

A full-system reproduction of Olson, Hill & Wood (ASPLOS 2017): a
discrete-event coherence simulator with two host protocols (Hammer-like
exclusive MOESI and inclusive MESI two-level), the standardized Crossing
Guard accelerator coherence interface, both Crossing Guard variants
(Full State and Transactional), single- and two-level accelerator cache
hierarchies, byzantine accelerator models, and the random-stress / fuzz /
performance evaluation harnesses.

Quick start::

    from repro import SystemConfig, HostProtocol, AccelOrg, build_system

    config = SystemConfig(host=HostProtocol.MESI, org=AccelOrg.XG)
    system = build_system(config)
    system.accel_seqs[0].load(0x1000, callback=lambda msg, data: ...)
    system.sim.run()

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.host.config import AccelOrg, HostProtocol, SystemConfig, all_evaluated_configs
from repro.host.system import System, build_system
from repro.sim.simulator import DeadlockError, Simulator
from repro.testing.fuzzer import run_fuzz_campaign
from repro.testing.random_tester import DataCheckError, RandomTester
from repro.xg.errors import Guarantee, XGError, XGErrorLog
from repro.xg.interface import AccelMsg, XGVariant
from repro.xg.permissions import PagePermission, PermissionTable

__version__ = "1.0.0"

__all__ = [
    "AccelMsg",
    "AccelOrg",
    "DataCheckError",
    "DeadlockError",
    "Guarantee",
    "HostProtocol",
    "PagePermission",
    "PermissionTable",
    "RandomTester",
    "Simulator",
    "System",
    "SystemConfig",
    "XGError",
    "XGErrorLog",
    "XGVariant",
    "all_evaluated_configs",
    "build_system",
    "run_fuzz_campaign",
    "__version__",
]
