"""Base class for coherence controllers.

Semantics mirror gem5 Ruby's generated controllers:

* input ports are drained in declared priority order — responses before
  forwards before requests, which is required for deadlock freedom;
* a message whose transition cannot run yet is *stalled-and-waited* into a
  per-address buffer and woken when that address's transaction closes;
* every executed (state, event) pair is recorded for the Section 4.1
  coverage accounting;
* an undefined (state, event) pair raises :class:`ProtocolError` — the
  "cache controller error" the paper's host must be protected from.
"""

from collections import defaultdict, deque

from repro.sim.component import Component

CONSUMED = "consumed"
STALL = "stall"
RETRY = "retry"


class ProtocolError(RuntimeError):
    """A controller saw an event its protocol does not define.

    When a raw (unprotected) accelerator misbehaves, this is the host
    crash the paper warns about; with Crossing Guard in place the host
    never raises it.
    """

    def __init__(self, controller, state, event, msg, note=""):
        self.controller = controller
        self.state = state
        self.event = event
        self.msg = msg
        state_name = getattr(state, "name", state)
        event_name = getattr(event, "name", event)
        detail = f" ({note})" if note else ""
        super().__init__(
            f"{controller.name}: no transition for state={state_name} "
            f"event={event_name} on {msg}{detail}"
        )


class CoherenceController(Component):
    """A state-machine controller with stall buffers and coverage.

    Subclasses:
      * set ``PORTS`` (priority order) and ``CONTROLLER_TYPE``;
      * build ``self.transitions[(state, event)] = handler`` in
        ``_build_transitions``;
      * implement ``handle_message(port, msg) -> CONSUMED|STALL|RETRY``,
        usually by classifying the message into an event and calling
        :meth:`fire`.
    """

    CONTROLLER_TYPE = "generic"

    #: ticks of processing time per consumed message (0 = infinitely fast,
    #: the default). When set, the controller handles one message per
    #: occupancy window, so a flooded directory develops real queueing —
    #: used by the contention experiments.
    occupancy = 0

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.transitions = {}
        self.coverage = defaultdict(int)
        #: transitions excluded from the coverage denominator (e.g. paths
        #: reachable only with a misbehaving accelerator behind XG)
        self.coverage_exempt = set()
        self._build_transitions()
        self._stalled = defaultdict(deque)
        self._stalled_since = {}
        self._busy_until = 0
        self.protocol_errors = []
        # pre-bound hot-path counters (no-op sinks when metrics are off)
        self._stall_sink = self.stats.sink("stalls")
        self._anomaly_sink = self.stats.sink("protocol_anomalies")

    # -- subclass API -----------------------------------------------------------

    def _build_transitions(self):
        raise NotImplementedError

    def handle_message(self, port, msg):
        raise NotImplementedError

    # -- transition machinery ------------------------------------------------

    def fire(self, state, event, msg):
        """Run the transition for (state, event); record coverage.

        Returns the handler's outcome (CONSUMED unless it says otherwise).
        """
        handler = self.transitions.get((state, event))
        if handler is None:
            raise ProtocolError(self, state, event, msg)
        outcome = handler(msg)
        if outcome is None:
            outcome = CONSUMED
        if outcome is not STALL:
            # Stalls are not transitions; only executed work counts.
            self.coverage[(state, event)] += 1
            obs = self.sim.obs
            if obs is not None:
                obs.record_transition(
                    self.sim.tick, self.name, self.CONTROLLER_TYPE, state, event
                )
        return outcome

    def has_transition(self, state, event):
        return (state, event) in self.transitions

    def possible_transitions(self):
        """Declared (state, event) pairs — the coverage denominator."""
        return set(self.transitions) - self.coverage_exempt

    # -- stall-and-wait ---------------------------------------------------------

    def stall_key(self, msg):
        """Address key stalled messages wait on (override to customize)."""
        return msg.addr

    def wake_stalled(self, addr):
        """Re-enqueue messages stalled on ``addr`` at their ports' heads."""
        waiting = self._stalled.pop(addr, None)
        self._stalled_since.pop(addr, None)
        if not waiting:
            return
        for port, msg in reversed(waiting):
            self.in_ports[port].push_front(self.sim.tick, msg)
        self.request_wakeup()

    def stalled_count(self):
        return sum(len(queue) for queue in self._stalled.values())

    # -- main loop ---------------------------------------------------------------

    def wakeup(self):
        if self.sim.tick < self._busy_until:
            self.request_wakeup(self._busy_until)
            return
        while True:
            did_work = False
            for port in self.PORTS:
                buf = self.in_ports[port]
                # Pop BEFORE handling: a handler may wake stalled messages
                # onto this port's head, and popping afterwards would
                # remove the woken message and re-process this one.
                msg = buf.pop(self.sim.tick)
                if msg is None:
                    continue
                outcome = self.handle_message(port, msg)
                if outcome == STALL:
                    key = self.stall_key(msg)
                    self._stalled[key].append((port, msg))
                    self._stalled_since.setdefault(key, self.sim.tick)
                    self._stall_sink.inc()
                    did_work = True
                elif outcome == RETRY:
                    buf.push_front(self.sim.tick, msg)
                    continue
                else:
                    did_work = True
                break
            if did_work and self.occupancy:
                # Busy for the occupancy window; resume afterwards.
                self._busy_until = self.sim.tick + self.occupancy
                self.stats.inc("busy_ticks", self.occupancy)
                self.request_wakeup(self._busy_until)
                return
            if not did_work:
                return

    # -- deadlock accounting -------------------------------------------------------

    def oldest_pending_tick(self, now):
        oldest = super().oldest_pending_tick(now)
        for since in self._stalled_since.values():
            if oldest is None or since < oldest:
                oldest = since
        return oldest

    # -- error reporting ------------------------------------------------------------

    def note_protocol_anomaly(self, description, msg=None):
        """Record a tolerated anomaly (xg-tolerant host modes sink these)."""
        self.protocol_errors.append((self.sim.tick, description, msg))
        self._anomaly_sink.inc()
        obs = self.sim.obs
        if obs is not None:
            obs.record_mark(
                self.sim.tick, "anomaly", component=self.name, name=description
            )
