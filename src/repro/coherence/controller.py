"""Base class for coherence controllers.

Semantics mirror gem5 Ruby's generated controllers:

* input ports are drained in declared priority order — responses before
  forwards before requests, which is required for deadlock freedom;
* a message whose transition cannot run yet is *stalled-and-waited* into a
  per-address buffer and woken when that address's transaction closes;
* every executed (state, event) pair is recorded for the Section 4.1
  coverage accounting;
* an undefined (state, event) pair raises :class:`ProtocolError` — the
  "cache controller error" the paper's host must be protected from.
"""

from collections import defaultdict, deque
from contextlib import contextmanager

from repro.sim.component import Component

CONSUMED = "consumed"
STALL = "stall"
RETRY = "retry"

#: shared empty row for compiled-dispatch misses (never mutated)
_NO_ROW = {}


@contextmanager
def dispatch_mode(mode):
    """Build controllers under a specific dispatch mode.

    ``"compiled"`` (the default) installs the flattened per-instance
    fast path; ``"legacy"`` keeps the original table-lookup ``fire``
    method. The golden-run equivalence suite constructs one system under
    each mode and asserts their digests are identical.
    """
    if mode not in ("compiled", "legacy"):
        raise ValueError(f"unknown dispatch mode {mode!r}")
    previous = CoherenceController.DISPATCH_MODE
    CoherenceController.DISPATCH_MODE = mode
    try:
        yield
    finally:
        CoherenceController.DISPATCH_MODE = previous


class ProtocolError(RuntimeError):
    """A controller saw an event its protocol does not define.

    When a raw (unprotected) accelerator misbehaves, this is the host
    crash the paper warns about; with Crossing Guard in place the host
    never raises it.
    """

    def __init__(self, controller, state, event, msg, note=""):
        self.controller = controller
        self.state = state
        self.event = event
        self.msg = msg
        state_name = getattr(state, "name", state)
        event_name = getattr(event, "name", event)
        detail = f" ({note})" if note else ""
        super().__init__(
            f"{controller.name}: no transition for state={state_name} "
            f"event={event_name} on {msg}{detail}"
        )


class CoherenceController(Component):
    """A state-machine controller with stall buffers and coverage.

    Subclasses:
      * set ``PORTS`` (priority order) and ``CONTROLLER_TYPE``;
      * build ``self.transitions[(state, event)] = handler`` in
        ``_build_transitions``;
      * implement ``handle_message(port, msg) -> CONSUMED|STALL|RETRY``,
        usually by classifying the message into an event and calling
        :meth:`fire`.
    """

    CONTROLLER_TYPE = "generic"

    #: how :meth:`fire` dispatches: ``"compiled"`` flattens the transition
    #: table into a per-instance closure at construction; ``"legacy"``
    #: keeps the original dict-of-tuples lookup. Flip with
    #: :func:`dispatch_mode`; both paths are step-for-step identical
    #: (proven by :mod:`repro.testing.golden`).
    DISPATCH_MODE = "compiled"

    #: ticks of processing time per consumed message (0 = infinitely fast,
    #: the default). When set, the controller handles one message per
    #: occupancy window, so a flooded directory develops real queueing —
    #: used by the contention experiments.
    occupancy = 0

    #: Ports whose messages the wakeup loop must NOT release after a
    #: CONSUMED outcome because protocol code retains the instance past
    #: the handler (e.g. ``mandatory`` CPU ops parked in ``tbe.origin``
    #: until the sequencer completes them). Everything else is released
    #: back to the message pool the moment its transition consumes it.
    RELEASE_EXEMPT_PORTS = ()

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.transitions = {}
        self.coverage = defaultdict(int)
        #: transitions excluded from the coverage denominator (e.g. paths
        #: reachable only with a misbehaving accelerator behind XG)
        self.coverage_exempt = set()
        self._build_transitions()
        self.recompile_dispatch()
        self._stalled = defaultdict(deque)
        self._stalled_since = {}
        self._stalled_total = 0
        self._busy_until = 0
        self.protocol_errors = []
        # input buffers in declared priority order, resolved once
        # (third element: may the wakeup loop pool-release consumed
        # messages from this port?)
        self._prio_ports = tuple(
            (port, self.in_ports[port], port not in self.RELEASE_EXEMPT_PORTS)
            for port in self.PORTS
        )
        # pre-bound hot-path counters (no-op sinks when metrics are off)
        self._stall_sink = self.stats.sink("stalls")
        self._anomaly_sink = self.stats.sink("protocol_anomalies")
        # lineage service class: which blame bucket this controller's
        # handler compute lands in (the wakeup loop stamps it per record)
        ctype = self.CONTROLLER_TYPE
        if ctype.startswith("xg") or ctype == "crossing_guard":
            self._lineage_class = "xg_translate"
        elif ctype.startswith("accel") or ctype == "block_shim":
            self._lineage_class = "service"
        else:
            self._lineage_class = "host_service"

    # -- subclass API -----------------------------------------------------------

    def _build_transitions(self):
        raise NotImplementedError

    def handle_message(self, port, msg):
        raise NotImplementedError

    # -- transition machinery ------------------------------------------------

    def fire(self, state, event, msg):
        """Run the transition for (state, event); record coverage.

        Returns the handler's outcome (CONSUMED unless it says otherwise).

        This is the legacy reference path. Under the default
        ``DISPATCH_MODE = "compiled"`` it is shadowed by a per-instance
        closure over the flattened table (see :meth:`recompile_dispatch`);
        the two are behaviorally identical.
        """
        handler = self.transitions.get((state, event))
        if handler is None:
            raise ProtocolError(self, state, event, msg)
        outcome = handler(msg)
        if outcome is None:
            outcome = CONSUMED
        if outcome is not STALL:
            # Stalls are not transitions; only executed work counts.
            self.coverage[(state, event)] += 1
            obs = self.sim.obs
            if obs is not None:
                obs.record_transition(
                    self.sim.tick, self.name, self.CONTROLLER_TYPE, state, event
                )
        return outcome

    def recompile_dispatch(self):
        """(Re)flatten ``self.transitions`` into the compiled fast path.

        Called automatically after ``_build_transitions``; call again after
        mutating ``self.transitions`` at runtime, or the compiled table
        keeps serving the old entries.
        """
        table = {}
        for key, handler in self.transitions.items():
            state, event = key
            row = table.get(state)
            if row is None:
                row = table[state] = {}
            # keep the original key tuple so coverage accounting reuses it
            # instead of allocating a fresh tuple per fired transition
            row[event] = (handler, key)
        self._dispatch = table
        if self.DISPATCH_MODE == "compiled":
            self.fire = self._compile_fire()
        else:
            self.__dict__.pop("fire", None)

    def _compile_fire(self):
        """Build the monomorphic ``fire`` closure over pre-resolved state.

        Everything the hot path needs — the flattened dispatch table, the
        coverage dict, the simulator, and this controller's identity — is
        captured once here, so per-message work is two dict probes plus the
        handler call (no tuple allocation, no attribute chains).
        """
        dispatch = self._dispatch
        coverage = self.coverage
        sim = self.sim
        name = self.name
        ctype = self.CONTROLLER_TYPE
        controller = self

        def fire(state, event, msg):
            entry = dispatch.get(state, _NO_ROW).get(event)
            if entry is None:
                raise ProtocolError(controller, state, event, msg)
            handler, key = entry
            outcome = handler(msg)
            if outcome is None:
                outcome = CONSUMED
            if outcome is not STALL:
                # Stalls are not transitions; only executed work counts.
                coverage[key] += 1
                obs = sim.obs
                if obs is not None:
                    obs.record_transition(sim.tick, name, ctype, state, event)
            return outcome

        return fire

    def has_transition(self, state, event):
        return (state, event) in self.transitions

    def possible_transitions(self):
        """Declared (state, event) pairs — the coverage denominator."""
        return set(self.transitions) - self.coverage_exempt

    # -- explorer hooks ---------------------------------------------------------

    def transition_relation(self):
        """Declared transitions as sorted (state name, event name) pairs.

        The compiled dispatch table *is* the guarded-action transition
        relation; this projects it to plain strings so the reachability
        explorer can compare it against coverage and reachability sets
        without importing per-protocol enums.
        """
        return sorted(
            (getattr(s, "name", str(s)), getattr(e, "name", str(e)))
            for s, e in self.possible_transitions()
        )

    def covered_transitions(self):
        """Executed transitions as sorted (state name, event name) pairs."""
        return sorted(
            (getattr(s, "name", str(s)), getattr(e, "name", str(e)))
            for s, e in self.coverage
        )

    def snapshot_state(self):
        """Logical protocol state of this controller as plain data.

        Captures everything that determines future behavior — resident
        cache entries, open TBEs, stalled messages, visible port contents
        — and nothing that merely records history (ticks, uids, LRU
        clocks, stats). Subclasses with extra mutable protocol state
        (e.g. a directory's owner map, the XG mirror) extend it via
        :meth:`snapshot_extra`.
        """
        from repro.coherence.snapshot import (
            snap_cache_entry, snap_message, snap_tbe)

        snap = {}
        cache = getattr(self, "cache", None)
        if cache is not None:
            snap["cache"] = {
                entry.addr: snap_cache_entry(entry)
                for entry in cache.entries()
            }
        tbes = getattr(self, "tbes", None)
        if tbes is not None:
            snap["tbes"] = {tbe.addr: snap_tbe(tbe) for tbe in tbes}
        if self._stalled:
            snap["stalled"] = {
                key: tuple((port, snap_message(msg)) for port, msg in waiting)
                for key, waiting in self._stalled.items()
            }
        ports = {
            port: tuple(snap_message(msg) for msg in buf)
            for port, buf in self.in_ports.items()
            if len(buf)
        }
        if ports:
            snap["ports"] = ports
        snap.update(self.snapshot_extra())
        return snap

    def snapshot_extra(self):
        """Per-protocol additions to :meth:`snapshot_state` (default none)."""
        return {}

    # -- stall-and-wait ---------------------------------------------------------

    def stall_key(self, msg):
        """Address key stalled messages wait on (override to customize)."""
        return msg.addr

    def wake_stalled(self, addr):
        """Re-enqueue messages stalled on ``addr`` at their ports' heads."""
        waiting = self._stalled.pop(addr, None)
        self._stalled_since.pop(addr, None)
        if not waiting:
            return
        self._stalled_total -= len(waiting)
        for port, msg in reversed(waiting):
            self.in_ports[port].push_front(self.sim.tick, msg)
        self.request_wakeup()

    def stalled_count(self):
        return self._stalled_total

    # -- main loop ---------------------------------------------------------------

    def wakeup(self):
        if self.sim.tick < self._busy_until:
            self.request_wakeup(self._busy_until)
            return
        lineage = self.sim.lineage
        while True:
            did_work = False
            for port, buf, releasable in self._prio_ports:
                # Pop BEFORE handling: a handler may wake stalled messages
                # onto this port's head, and popping afterwards would
                # remove the woken message and re-process this one.
                msg = buf.pop(self.sim.tick)
                if msg is None:
                    continue
                if lineage is not None:
                    # Installs this message as the cause context every send
                    # inside the handler inherits. wakeup() is never
                    # re-entered while a handler runs, so a flat reset (not
                    # a save/restore) is correct.
                    lid = lineage.begin(msg.uid, self.sim.tick,
                                        self._lineage_class)
                    outcome = self.handle_message(port, msg)
                    lineage.current = 0
                else:
                    lid = 0
                    outcome = self.handle_message(port, msg)
                if outcome == STALL:
                    # The message stays alive in the stall buffer; it is
                    # released on the pass that finally consumes it.
                    key = self.stall_key(msg)
                    self._stalled[key].append((port, msg))
                    self._stalled_since.setdefault(key, self.sim.tick)
                    self._stalled_total += 1
                    self._stall_sink.inc()
                    if lid:
                        lineage.stalled(lid, self.sim.tick)
                    did_work = True
                elif outcome == RETRY:
                    buf.push_front(self.sim.tick, msg)
                    if lid:
                        lineage.requeued(lid, self.sim.tick)
                    continue
                else:
                    if releasable:
                        msg.release()
                    did_work = True
                break
            if did_work and self.occupancy:
                # Busy for the occupancy window; resume afterwards.
                self._busy_until = self.sim.tick + self.occupancy
                self.note_busy(self.occupancy)
                self.request_wakeup(self._busy_until)
                return
            if not did_work:
                return

    # -- deadlock accounting -------------------------------------------------------

    def oldest_pending_tick(self, now):
        oldest = super().oldest_pending_tick(now)
        for since in self._stalled_since.values():
            if oldest is None or since < oldest:
                oldest = since
        return oldest

    # -- error reporting ------------------------------------------------------------

    def note_protocol_anomaly(self, description, msg=None):
        """Record a tolerated anomaly (xg-tolerant host modes sink these).

        The forensic log keeps a private clone: the live message carrier
        may be released to the pool (and recycled) right after handling.
        """
        snapshot = msg.clone() if msg is not None else None
        self.protocol_errors.append((self.sim.tick, description, snapshot))
        self._anomaly_sink.inc()
        obs = self.sim.obs
        if obs is not None:
            obs.record_mark(
                self.sim.tick, "anomaly", component=self.name, name=description
            )
