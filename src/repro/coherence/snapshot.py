"""Logical state snapshots for the reachability explorer.

The explorer (:mod:`repro.verify.explorer`) hashes *logical* system
states: everything that determines future protocol behavior, and nothing
that merely records how we got here. These helpers turn live objects —
cache entries, TBEs, messages, per-protocol ``meta`` dicts — into plain,
hashable, deterministic tuples with the volatile parts stripped:

* tick values, message uids, span/lineage handles, LRU clocks and
  event-cancel tokens never enter a snapshot (two runs reaching the same
  protocol state at different ticks must hash identically);
* enums become their ``name``, sets become sorted tuples, data blocks
  become bytes, nested dicts become sorted key/value tuples;
* unknown objects fall back to ``repr`` — safe for the small config
  cells the explorer drives, and loud in a diff if something volatile
  ever leaks through.
"""

import enum

#: TBE/entry ``meta`` keys that hold scheduling artifacts (event cancel
#: tokens, telemetry spans, lineage ids) rather than protocol state.
VOLATILE_META_KEYS = frozenset({
    "timeout_event",
    "span",
    "span_status",
    "probe_lid",
})


def snap_value(value):
    """Convert one value to a deterministic, hashable representation."""
    if value is None or isinstance(value, (bool, int, str, bytes, float)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    # Message carriers appear in meta ("accel_req", TBE.origin) and in
    # channel contents; duck-type on the pooled Message slots.
    if hasattr(value, "mtype") and hasattr(value, "uid"):
        return snap_message(value)
    if hasattr(value, "to_bytes") and hasattr(value, "write"):  # DataBlock
        return bytes(value.to_bytes())
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(snap_value(v) for v in value))
    if isinstance(value, dict):
        return snap_meta(value)
    if isinstance(value, (list, tuple)):
        return tuple(snap_value(v) for v in value)
    return repr(value)


def snap_message(msg):
    """Logical content of a message: type/addr/parties/payload, no uid."""
    data = msg.data
    return (
        "msg",
        getattr(msg.mtype, "name", str(msg.mtype)),
        msg.addr,
        msg.sender,
        msg.dest,
        msg.requestor,
        msg.value,
        msg.ack_count,
        bool(msg.dirty),
        bool(msg.shared_hint),
        None if data is None else bytes(data.to_bytes()),
    )


def snap_meta(meta):
    """Sorted (key, value) tuple of a ``meta`` dict, volatile keys dropped."""
    return tuple(sorted(
        (key, snap_value(value))
        for key, value in meta.items()
        if key not in VOLATILE_META_KEYS
    ))


def snap_cache_entry(entry):
    """Logical content of a resident cache entry (LRU clock excluded)."""
    return (
        getattr(entry.state, "name", str(entry.state)),
        bytes(entry.data.to_bytes()) if entry.data is not None else None,
        bool(entry.dirty),
        getattr(entry.permission, "name", entry.permission),
        snap_meta(entry.meta),
    )


def snap_tbe(tbe):
    """Logical content of a TBE (``opened_at`` tick excluded)."""
    return (
        getattr(tbe.state, "name", str(tbe.state)),
        bytes(tbe.data.to_bytes()) if tbe.data is not None else None,
        bool(tbe.dirty),
        tbe.acks_needed,
        tbe.acks_received,
        tbe.responses_received,
        bool(tbe.data_received),
        tbe.requestor,
        None if tbe.origin is None else snap_message(tbe.origin),
        getattr(tbe.permission, "name", tbe.permission),
        snap_meta(tbe.meta),
    )
