"""SLICC-like controller framework.

Provides the machinery SLICC generates for gem5 Ruby controllers: explicit
(state, event) transition tables, transient-buffer entries (TBEs),
per-address stall-and-wait buffers, and transition coverage accounting used
by the Section 4.1 stress-test methodology.
"""

from repro.coherence.controller import (
    CONSUMED,
    RETRY,
    STALL,
    CoherenceController,
    ProtocolError,
)
from repro.coherence.tbe import TBE, TBETable
from repro.coherence.coverage import CoverageReport, collect_coverage

__all__ = [
    "CONSUMED",
    "CoherenceController",
    "CoverageReport",
    "ProtocolError",
    "RETRY",
    "STALL",
    "TBE",
    "TBETable",
    "collect_coverage",
]
