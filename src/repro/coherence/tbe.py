"""Transient Buffer Entries (TBEs, a.k.a. MSHRs).

A TBE holds everything a controller knows about one in-flight transaction:
the transient state, accumulated data, ack/response counts, and who asked.
The TBE table bounds how many transactions a controller can have open —
Crossing Guard sizes its table to bound the state a misbehaving accelerator
can pin (Section 2.3.2).
"""


class TBE:
    """State for one open transaction on one block address."""

    __slots__ = (
        "addr",
        "state",
        "data",
        "dirty",
        "acks_needed",
        "acks_received",
        "responses_received",
        "data_received",
        "requestor",
        "origin",
        "permission",
        "opened_at",
        "meta",
    )

    def __init__(self, addr, state, opened_at=0):
        self.addr = addr
        self.state = state
        self.data = None
        self.dirty = False
        self.acks_needed = 0
        self.acks_received = 0
        self.responses_received = 0
        self.data_received = False
        self.requestor = None
        self.origin = None
        self.permission = None
        self.opened_at = opened_at
        self.meta = {}

    @property
    def all_acks_in(self):
        return self.acks_received >= self.acks_needed

    def __repr__(self):
        state = getattr(self.state, "name", self.state)
        return (
            f"TBE(addr={self.addr:#x}, state={state}, "
            f"acks={self.acks_received}/{self.acks_needed})"
        )


class TBETable:
    """Bounded map from block address to :class:`TBE`."""

    def __init__(self, capacity=None, name=""):
        self.capacity = capacity
        self.name = name
        self._entries = {}
        self.high_water = 0

    def allocate(self, addr, state, now=0):
        """Open a transaction; raises if one is already open or table full."""
        if addr in self._entries:
            raise ValueError(f"{self.name}: TBE already open for {addr:#x}")
        if self.is_full():
            raise ValueError(f"{self.name}: TBE table full ({self.capacity})")
        tbe = TBE(addr, state, opened_at=now)
        self._entries[addr] = tbe
        self.high_water = max(self.high_water, len(self._entries))
        return tbe

    def lookup(self, addr):
        """Open TBE for ``addr`` or None."""
        return self._entries.get(addr)

    def deallocate(self, addr):
        """Close the transaction (KeyError if not open)."""
        return self._entries.pop(addr)

    def is_full(self):
        return self.capacity is not None and len(self._entries) >= self.capacity

    def __contains__(self, addr):
        return addr in self._entries

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def addresses(self):
        return list(self._entries)

    def __repr__(self):
        return f"TBETable({self.name!r}, open={len(self._entries)}, cap={self.capacity})"
