"""Transition-coverage accounting (paper Section 4.1).

The paper counts the state/event pairs the random tester visits at each
cache controller and compares against the pairs believed possible. Here
"possible" is exactly the declared transition table, so coverage is the
fraction of declared transitions executed at least once.
"""

from collections import defaultdict


class CoverageReport:
    """Coverage for one controller type, possibly many instances."""

    def __init__(self, controller_type):
        self.controller_type = controller_type
        self.visited = defaultdict(int)
        self.possible = set()

    def add_instance(self, controller):
        self.possible |= controller.possible_transitions()
        for pair, count in controller.coverage.items():
            self.visited[pair] += count

    @property
    def visited_pairs(self):
        return set(self.visited)

    @property
    def missing(self):
        """Declared transitions never executed."""
        return self.possible - self.visited_pairs

    @property
    def fraction(self):
        if not self.possible:
            return 1.0
        return len(self.visited_pairs & self.possible) / len(self.possible)

    def merge(self, other):
        if other.controller_type != self.controller_type:
            raise ValueError("cannot merge coverage across controller types")
        self.possible |= other.possible
        for pair, count in other.visited.items():
            self.visited[pair] += count

    def rows(self):
        """(state, event, count) rows sorted by name for reporting."""
        out = []
        for (state, event), count in self.visited.items():
            out.append(
                (getattr(state, "name", str(state)), getattr(event, "name", str(event)), count)
            )
        return sorted(out)

    def __repr__(self):
        return (
            f"CoverageReport({self.controller_type}, "
            f"{len(self.visited_pairs & self.possible)}/{len(self.possible)} "
            f"= {self.fraction:.1%})"
        )


def collect_coverage(controllers):
    """Group controllers by CONTROLLER_TYPE into CoverageReports."""
    reports = {}
    for controller in controllers:
        ctype = controller.CONTROLLER_TYPE
        report = reports.get(ctype)
        if report is None:
            report = CoverageReport(ctype)
            reports[ctype] = report
        report.add_instance(controller)
    return reports
