"""Cross-process campaign telemetry fabric: live progress without perturbation.

A parallel campaign (:func:`repro.eval.campaign.run_campaign`) fans
independent simulations over a process pool and, until this module,
nothing was visible until the submission-order merge barrier finished.
The fabric makes the campaign observable while it runs:

* **workers** emit compact structured *frames* — job started/finished,
  periodic progress (tick, events/sec, coverage growth, open spans),
  heartbeats — through a bounded ``multiprocessing`` queue via a
  :class:`FabricEmitter` that **never blocks**: a full queue drops the
  frame and counts the drop;
* a **collector thread** in the parent (:class:`FabricCollector`) drains
  frames into mergeable aggregates — :class:`~repro.obs.sketch.LatencySketch`
  and :class:`~repro.obs.sketch.CounterSeries` fold byte-identically
  regardless of arrival order — plus per-worker liveness state
  (heartbeat age drives straggler/stalled-shard detection);
* a **live renderer** (:class:`LiveRenderer`) shows per-worker
  throughput, job progress, and heartbeat ages on a TTY, degrading to
  periodic plain-text lines on CI logs;
* each worker keeps a :class:`~repro.obs.recorder.FlightRecorder` ring;
  a failed job ships its black box in ``CampaignOutcome.forensics``.

The hard contract: the fabric must not change merged campaign results.
Worker-side progress sampling rides the simulator's out-of-band monitor
mechanism (no events, no stats, no RNG — the invariant-watchdog
guarantee), frames carry only telemetry, and the collector aggregates
outside the result path entirely. Fabric-on and fabric-off campaigns are
byte-identical; the equivalence tests assert it.
"""

import os
import queue as queue_mod
import sys
import threading
import time
from contextlib import contextmanager

from repro.obs.recorder import FlightRecorder
from repro.obs.sketch import CounterSeries, LatencySketch
from repro.obs.spans import sample_counters
from repro.sim import simulator as _simulator

#: Fabric tuning knobs shipped to every worker (plain dict: it crosses
#: the process boundary through the pool initializer).
DEFAULT_CONFIG = {
    "progress_interval_ticks": 5000,   # monitor period inside each sim
    "min_emit_interval": 0.05,         # wall seconds between progress frames
    "heartbeat_interval": 0.5,         # wall seconds: max silence before a
                                       # suppressed progress turns into a
                                       # lightweight heartbeat frame
    "sketch_bucket_width": 8,          # ticks, for span-latency sketches
    "job_ms_bucket_width": 50,         # milliseconds, for job wall-clock
    "series_bucket_ticks": 5000,       # CounterSeries tick bucketing
    "recorder_frames": 256,            # flight-recorder frame ring
    "recorder_tail": 64,               # trace/transition tail length
    "forensics_all": False,            # keep FlightRecorder snapshots for
                                       # successful jobs too (--forensics-all;
                                       # bounded per job, off by default)
}

#: Queue capacity: deep enough that drops only happen when the collector
#: genuinely cannot keep up, small enough to bound parent memory.
QUEUE_CAPACITY = 10_000

#: Heartbeat age (seconds) after which a worker counts as stalled and its
#: running shard is marked lost by :meth:`FabricCollector.mark_stale`.
DEFAULT_STALL_AFTER = 10.0


# -- worker side ----------------------------------------------------------------

_WORKER_EMITTER = None


def worker_emitter():
    """This process's :class:`FabricEmitter`, or None (fabric off)."""
    return _WORKER_EMITTER


def _progress_callback(sim, final):
    emitter = _WORKER_EMITTER
    if emitter is not None:
        emitter.on_progress(sim, final)


def init_fabric_worker(frame_queue, config):
    """Process-pool initializer: install the emitter + progress hook.

    Runs once per worker process. ``frame_queue`` is the collector's
    bounded queue (picklable through the pool's process-creation path);
    ``config`` is a plain dict of fabric knobs.
    """
    global _WORKER_EMITTER
    _WORKER_EMITTER = FabricEmitter(
        frame_queue.put_nowait, worker_id=os.getpid(), config=config
    )
    _simulator.set_progress_hook(
        _progress_callback, interval=config["progress_interval_ticks"]
    )


def _clear_fabric_worker():
    global _WORKER_EMITTER
    _WORKER_EMITTER = None
    _simulator.set_progress_hook(None)


@contextmanager
def inproc_worker(collector):
    """Run the worker-side fabric in this process (``workers=1`` path).

    Installs an emitter feeding the collector's queue plus the progress
    hook, exactly like the pool initializer, and restores the previous
    state on exit so in-process campaigns never leak hooks into later
    simulations (golden runs in the same test process, say).
    """
    global _WORKER_EMITTER
    prev_emitter = _WORKER_EMITTER
    prev_hook = _simulator.progress_hook()
    init_fabric_worker(collector.queue, collector.config)
    try:
        yield _WORKER_EMITTER
    finally:
        _WORKER_EMITTER = prev_emitter
        if prev_hook is None:
            _simulator.set_progress_hook(None)
        else:
            _simulator.set_progress_hook(prev_hook[0], interval=prev_hook[1])


class FabricEmitter:
    """Worker-side frame source: bounded, non-blocking, self-accounting.

    ``send`` is any callable that may raise :class:`queue.Full`; the
    emitter converts that into a dropped-frame count carried on the next
    frame that does get through — the simulation hot path never blocks on
    a backed-up collector.
    """

    def __init__(self, send, worker_id, config=None):
        self.send = send
        self.worker_id = worker_id
        self.config = dict(DEFAULT_CONFIG, **(config or {}))
        self.dropped = 0
        self.frames_sent = 0
        self.recorder = FlightRecorder(
            frame_capacity=self.config["recorder_frames"],
            tail=self.config["recorder_tail"],
        )
        self.sketches = {}
        self.series = CounterSeries(self.config["series_bucket_ticks"])
        self._job = None          # (index, label)
        self._job_started_wall = 0.0
        self._jobs_done = 0
        self._last_emit_wall = 0.0
        self._last_rate = (0.0, 0)   # (wall, events) for events/sec
        self._last_sample = None     # previous counter sample (for deltas)
        self._last_coverage = 0
        self._last_sim = None

    # -- plumbing ---------------------------------------------------------------

    def _emit(self, frame):
        self.recorder.record_frame(frame)
        try:
            self.send(frame)
        except queue_mod.Full:
            self.dropped += 1
        else:
            self.frames_sent += 1

    def sketch(self, name, bucket_width):
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = LatencySketch(bucket_width)
        return sketch

    # -- job lifecycle ----------------------------------------------------------

    def job_started(self, index, label):
        now = time.monotonic()
        self._job = (index, label)
        self._job_started_wall = now
        self._last_rate = (now, 0)
        self._last_sample = None
        self._last_coverage = 0
        self._last_sim = None
        self._emit({
            "kind": "job_started", "worker": self.worker_id,
            "job": index, "label": label, "dropped": self.dropped,
        })

    def job_finished(self, index, label, ok, error_type=""):
        now = time.monotonic()
        seconds = now - self._job_started_wall
        self._jobs_done += 1
        self.sketch("job_ms", self.config["job_ms_bucket_width"]).observe(
            seconds * 1000.0
        )
        sim = self._last_sim
        if sim is not None and sim.obs is not None:
            width = self.config["sketch_bucket_width"]
            for kind, hist in sim.obs.spans.latency_histograms(
                    bucket_width=width).items():
                self.sketch(f"span.{kind}", width).merge(
                    LatencySketch.from_histogram(hist)
                )
        sample = self._last_sample or {}
        self._emit({
            "kind": "job_finished", "worker": self.worker_id,
            "job": index, "label": label, "ok": ok,
            "error_type": error_type, "seconds": seconds,
            "jobs_done": self._jobs_done,
            "events_fired": sample.get("events_fired", 0),
            "final_tick": sample.get("tick", 0),
            "coverage_visited": self._last_coverage,
            "sketches": {k: s.as_dict() for k, s in self.sketches.items()},
            "series": self.series.as_dict(),
            "dropped": self.dropped,
        })
        # sketches/series were shipped cumulatively; reset so the next
        # job_finished frame's payload stays a disjoint contribution
        self.sketches = {}
        self.series = CounterSeries(self.config["series_bucket_ticks"])
        self._job = None
        self._last_sim = None
        self._last_emit_wall = now

    # -- periodic progress (called from the simulator monitor) ------------------

    def on_progress(self, sim, final):
        self._last_sim = sim
        sample = sample_counters(sim)
        obs = sim.obs
        if obs is not None:
            sample["open_spans"] = obs.spans.open_count
            sample["spans_closed"] = obs.spans.finished_total
        coverage = 0
        for comp in sim.components:
            cov = getattr(comp, "coverage", None)
            if cov is not None:
                coverage += len(cov)
        prev = self._last_sample
        if prev is not None:
            tick = sample["tick"]
            self.series.record(
                tick, "events_fired",
                sample["events_fired"] - prev["events_fired"],
            )
            self.series.record(
                tick, "coverage_visited", coverage - self._last_coverage
            )
            if "spans_closed" in sample:
                self.series.record(
                    tick, "spans_closed",
                    sample["spans_closed"] - prev.get("spans_closed", 0),
                )
        else:
            self.series.record(sample["tick"], "events_fired",
                               sample["events_fired"])
            self.series.record(sample["tick"], "coverage_visited", coverage)
        self._last_sample = sample
        self._last_coverage = coverage

        now = time.monotonic()
        since_emit = now - self._last_emit_wall
        if not final and since_emit < self.config["min_emit_interval"]:
            if since_emit >= self.config["heartbeat_interval"]:
                self._emit({
                    "kind": "heartbeat", "worker": self.worker_id,
                    "dropped": self.dropped,
                })
                self._last_emit_wall = now
            return
        rate_wall, rate_events = self._last_rate
        elapsed = now - rate_wall
        events = sample["events_fired"]
        rate = (events - rate_events) / elapsed if elapsed > 0 else 0.0
        self._last_rate = (now, events)
        self._last_emit_wall = now
        job = self._job or (None, "")
        frame = {
            "kind": "progress", "worker": self.worker_id,
            "job": job[0], "label": job[1],
            "tick": sample["tick"], "events_fired": events,
            "events_per_sec": rate,
            "open_tbes": sample["open_tbes"],
            "stalled_msgs": sample["stalled_msgs"],
            "coverage_visited": coverage,
            "dropped": self.dropped,
        }
        if "open_spans" in sample:
            frame["open_spans"] = sample["open_spans"]
            frame["spans_closed"] = sample["spans_closed"]
        self._emit(frame)

    # -- failure forensics -------------------------------------------------------

    def failure_forensics(self, invariant=None, exc=None):
        """The flight-recorder payload for a failed job (plain data)."""
        sim = getattr(exc, "sim", None) or self._last_sim
        return {
            "invariant": invariant,
            "flight_recorder": self.recorder.snapshot(
                sim=sim, error=str(exc) if exc is not None else ""
            ),
        }

    def __repr__(self):
        return (f"FabricEmitter(worker={self.worker_id}, "
                f"sent={self.frames_sent}, dropped={self.dropped})")


# -- collector side -------------------------------------------------------------


class FabricCollector:
    """Parent-side aggregation of worker frames + campaign lifecycle.

    Create one, pass it to :func:`repro.eval.campaign.run_campaign` (or
    install it ambiently with :func:`use_fabric`); ``begin``/``finish``
    bracket each campaign, spinning a drain thread over a bounded queue.
    All aggregate state is guarded by one lock — frames are low-rate by
    design, so contention is irrelevant.
    """

    def __init__(self, renderer=None, stall_after=DEFAULT_STALL_AFTER,
                 config=None, clock=time.monotonic):
        self.renderer = renderer
        self.stall_after = stall_after
        self.config = dict(DEFAULT_CONFIG, **(config or {}))
        self.clock = clock
        self.queue = None
        self._thread = None
        self._stop = None
        self._lock = threading.Lock()
        self._started_wall = None
        # aggregate state (lock-guarded)
        self.jobs_total = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_lost = 0
        self.frames_seen = 0
        self.frames_dropped = 0
        self.workers = {}    # wid -> liveness/throughput state
        self.jobs = {}       # index -> {"label", "worker", "status"}
        self.sketches = {}   # name -> LatencySketch
        self.series = CounterSeries(self.config["series_bucket_ticks"])
        self.coverage_visited = 0

    # -- campaign lifecycle -----------------------------------------------------

    def begin(self, jobs_total, multiprocess):
        """Start collecting for one campaign of ``jobs_total`` jobs."""
        if self._thread is not None:
            raise RuntimeError("collector already collecting (begin without finish)")
        with self._lock:
            self.jobs_total += jobs_total
        if self._started_wall is None:
            self._started_wall = self.clock()
        if multiprocess:
            import multiprocessing

            self.queue = multiprocessing.get_context().Queue(QUEUE_CAPACITY)
        else:
            self.queue = queue_mod.Queue(QUEUE_CAPACITY)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._drain, name="fabric-collector", daemon=True
        )
        self._thread.start()

    def finish(self):
        """Stop the drain thread after emptying the queue; final render."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10.0)
        self._thread = None
        frame_queue, self.queue = self.queue, None
        # late frames (worker feeder threads flush at process exit) — drain
        # whatever made it into the queue before tearing it down
        while True:
            try:
                self.handle(frame_queue.get_nowait())
            except queue_mod.Empty:
                break
        if hasattr(frame_queue, "close"):
            frame_queue.close()
            frame_queue.join_thread()
        self.mark_stale()
        if self.renderer is not None:
            self.renderer.render(self.snapshot(), final=True)

    def _drain(self):
        last_render = 0.0
        interval = self.renderer.interval if self.renderer is not None else 1.0
        while True:
            try:
                frame = self.queue.get(timeout=0.1)
            except queue_mod.Empty:
                frame = None
                if self._stop.is_set():
                    return
            except (EOFError, OSError):
                return
            if frame is not None:
                self.handle(frame)
            now = self.clock()
            if now - last_render >= interval:
                last_render = now
                self.mark_stale(now)
                if self.renderer is not None:
                    self.renderer.render(self.snapshot(now))

    # -- aggregation (pure; directly testable without threads) -------------------

    def handle(self, frame, now=None):
        """Fold one frame into the aggregate state."""
        if now is None:
            now = self.clock()
        kind = frame.get("kind")
        wid = frame.get("worker")
        with self._lock:
            self.frames_seen += 1
            worker = self.workers.get(wid)
            if worker is None:
                worker = self.workers[wid] = {
                    "id": wid, "last_seen": now, "job": None, "label": "",
                    "events_per_sec": 0.0, "tick": 0, "jobs_done": 0,
                    "dropped": 0, "stalled": False,
                }
            worker["last_seen"] = now
            worker["stalled"] = False
            if "dropped" in frame:
                self.frames_dropped += max(
                    0, frame["dropped"] - worker["dropped"]
                )
                worker["dropped"] = frame["dropped"]
            if kind == "job_started":
                worker["job"] = frame["job"]
                worker["label"] = frame["label"]
                self.jobs[frame["job"]] = {
                    "label": frame["label"], "worker": wid,
                    "status": "running",
                }
            elif kind == "progress":
                worker["events_per_sec"] = frame["events_per_sec"]
                worker["tick"] = frame["tick"]
                if frame.get("job") is not None:
                    worker["job"] = frame["job"]
                    worker["label"] = frame.get("label", "")
            elif kind == "job_finished":
                worker["jobs_done"] += 1
                worker["job"] = None
                job = self.jobs.setdefault(
                    frame["job"], {"label": frame["label"], "worker": wid}
                )
                job["status"] = "done" if frame["ok"] else "failed"
                job["seconds"] = frame["seconds"]
                self.jobs_done += 1
                if not frame["ok"]:
                    self.jobs_failed += 1
                self.coverage_visited += frame.get("coverage_visited", 0)
                for name, data in frame.get("sketches", {}).items():
                    contributed = LatencySketch.from_dict(data)
                    mine = self.sketches.get(name)
                    if mine is None:
                        self.sketches[name] = contributed
                    else:
                        mine.merge(contributed)
                series = frame.get("series")
                if series:
                    self.series.merge(CounterSeries.from_dict(series))
            # heartbeat frames only refresh last_seen/dropped (done above)

    def job_lost(self, index, label, error=""):
        """Mark one shard lost (worker died / pool broke): never hangs."""
        with self._lock:
            job = self.jobs.setdefault(index, {"label": label, "worker": None})
            if job.get("status") in ("done", "failed", "lost"):
                return
            job["status"] = "lost"
            job["error"] = error
            self.jobs_lost += 1
            wid = job.get("worker")
            if wid in self.workers:
                self.workers[wid]["stalled"] = True
                self.workers[wid]["job"] = None

    def lost_forensics(self, index):
        """Parent-side black box for a shard whose worker never reported back."""
        with self._lock:
            job = self.jobs.get(index, {})
            wid = job.get("worker")
            worker = dict(self.workers.get(wid, {}))
        return {
            "invariant": None,
            "flight_recorder": {
                "error": job.get("error", "worker lost"),
                "frames": [],
                "note": ("worker process died before shipping its black box; "
                         "collector-side last-known state attached"),
                "job": {"label": job.get("label", ""), "status": "lost"},
                "worker": worker,
            },
        }

    def mark_stale(self, now=None):
        """Flag workers whose heartbeat aged out; mark their shards lost.

        Returns the worker ids flagged this call. Driven periodically by
        the drain thread, so a silently dead worker surfaces in the live
        view (and its shard stops counting as running) within
        ``stall_after`` seconds instead of hanging the campaign view.
        """
        if now is None:
            now = self.clock()
        flagged = []
        with self._lock:
            stale = [
                w for w in self.workers.values()
                if not w["stalled"] and now - w["last_seen"] > self.stall_after
            ]
            for worker in stale:
                worker["stalled"] = True
                flagged.append(worker["id"])
        for worker_id in flagged:
            running = [
                index for index, job in self.jobs.items()
                if job.get("worker") == worker_id
                and job.get("status") == "running"
            ]
            for index in running:
                self.job_lost(index, self.jobs[index].get("label", ""),
                              error=f"worker {worker_id} heartbeat stale")
        return flagged

    # -- views -------------------------------------------------------------------

    def snapshot(self, now=None):
        """Plain-data view for the live renderer (lock-consistent)."""
        if now is None:
            now = self.clock()
        with self._lock:
            workers = [
                {
                    "id": w["id"],
                    "label": w["label"] if w["job"] is not None else "",
                    "events_per_sec": w["events_per_sec"],
                    "tick": w["tick"],
                    "jobs_done": w["jobs_done"],
                    "heartbeat_age": max(0.0, now - w["last_seen"]),
                    "dropped": w["dropped"],
                    "stalled": w["stalled"],
                }
                for _, w in sorted(self.workers.items())
            ]
            running = sum(
                1 for job in self.jobs.values() if job.get("status") == "running"
            )
            return {
                "jobs_total": self.jobs_total,
                "jobs_done": self.jobs_done,
                "jobs_failed": self.jobs_failed,
                "jobs_lost": self.jobs_lost,
                "jobs_running": running,
                "workers": workers,
                "events_per_sec": sum(w["events_per_sec"] for w in workers),
                "coverage_visited": self.coverage_visited,
                "frames_seen": self.frames_seen,
                "frames_dropped": self.frames_dropped,
                "elapsed": (now - self._started_wall
                            if self._started_wall is not None else 0.0),
            }

    def summary(self):
        """Final mergeable aggregates (the dashboard/report payload)."""
        snap = self.snapshot()
        with self._lock:
            snap["sketches"] = {
                name: sketch.as_dict()
                for name, sketch in sorted(self.sketches.items())
            }
            snap["series"] = self.series.as_dict()
            snap["jobs"] = {
                str(index): dict(job) for index, job in sorted(self.jobs.items())
            }
        return snap

    def __repr__(self):
        return (f"FabricCollector(jobs={self.jobs_done}/{self.jobs_total}, "
                f"workers={len(self.workers)}, frames={self.frames_seen})")


# -- ambient fabric (what run_campaign picks up when no arg is passed) -----------

_CURRENT = None


def current_fabric():
    """The ambient collector installed by :func:`use_fabric`, or None."""
    return _CURRENT


@contextmanager
def use_fabric(collector):
    """Install ``collector`` as the ambient fabric for nested campaigns.

    Lets the CLI wrap existing campaign entry points
    (``run_stress_coverage`` and friends) without threading a fabric
    argument through every experiment signature.
    """
    global _CURRENT
    prev = _CURRENT
    _CURRENT = collector
    try:
        yield collector
    finally:
        _CURRENT = prev


@contextmanager
def live_fabric(live=True, interval=1.0, stream=None, force_mode=None,
                stall_after=DEFAULT_STALL_AFTER, config=None):
    """One-stop CLI context: collector + renderer + ambient installation.

    ``live=False`` yields ``None`` and does nothing — callers can wrap
    their campaign unconditionally. The renderer auto-detects TTY vs
    plain mode (``force_mode`` pins it, for tests and CI).
    """
    if not live:
        yield None
        return
    renderer = LiveRenderer(stream=stream, interval=interval, mode=force_mode)
    collector = FabricCollector(renderer=renderer, stall_after=stall_after,
                                config=config)
    with use_fabric(collector):
        yield collector
    renderer.close()


@contextmanager
def inproc_session(collector, label="run"):
    """Fabric bracket for a single non-campaign simulation (fuzz/chaos CLI).

    Brings up the collector, installs the in-process emitter + progress
    hook, and frames the run as one job, so ``--live`` on single-run
    commands shows the same heartbeat/throughput view as campaigns.
    """
    collector.begin(jobs_total=1, multiprocess=False)
    try:
        with inproc_worker(collector) as emitter:
            emitter.job_started(0, label)
            try:
                yield emitter
            except BaseException:
                emitter.job_finished(0, label, ok=False,
                                     error_type="Exception")
                raise
            emitter.job_finished(0, label, ok=True)
    finally:
        collector.finish()


# -- live rendering --------------------------------------------------------------


def _fmt_rate(rate):
    if rate >= 1e6:
        return f"{rate / 1e6:.1f}M ev/s"
    if rate >= 1e3:
        return f"{rate / 1e3:.0f}k ev/s"
    return f"{rate:.0f} ev/s"


class LiveRenderer:
    """Terminal progress view with clean non-TTY degradation.

    ``mode`` is ``"tty"`` (ANSI in-place redraw), ``"plain"`` (periodic
    single-line updates — what CI logs get), or None to auto-detect from
    the stream. All output goes to ``stream`` (default: real stdout).
    """

    def __init__(self, stream=None, interval=1.0, mode=None):
        self.stream = stream if stream is not None else sys.stdout
        self.interval = max(0.05, float(interval))
        if mode is None:
            isatty = getattr(self.stream, "isatty", lambda: False)
            mode = "tty" if isatty() else "plain"
        if mode not in ("tty", "plain"):
            raise ValueError(f"unknown renderer mode {mode!r}")
        self.mode = mode
        self.renders = 0
        self._lines_drawn = 0

    def _status_line(self, snap):
        parts = [
            f"jobs {snap['jobs_done']}/{snap['jobs_total']}",
        ]
        if snap["jobs_failed"]:
            parts.append(f"{snap['jobs_failed']} failed")
        if snap["jobs_lost"]:
            parts.append(f"{snap['jobs_lost']} LOST")
        live = [w for w in snap["workers"] if not w["stalled"]]
        stalled = len(snap["workers"]) - len(live)
        parts.append(f"{len(live)} workers" + (f" ({stalled} stalled)"
                                               if stalled else ""))
        parts.append(_fmt_rate(snap["events_per_sec"]))
        parts.append(f"cov {snap['coverage_visited']}")
        ages = [w["heartbeat_age"] for w in snap["workers"]]
        if ages:
            parts.append(f"hb {max(ages):.1f}s")
        if snap["frames_dropped"]:
            parts.append(f"{snap['frames_dropped']} frames dropped")
        parts.append(f"{snap['elapsed']:.0f}s")
        return "fabric: " + " | ".join(parts)

    def _worker_lines(self, snap):
        lines = []
        for worker in snap["workers"]:
            state = "STALLED" if worker["stalled"] else _fmt_rate(
                worker["events_per_sec"]
            )
            label = worker["label"] or "idle"
            lines.append(
                f"  w{worker['id']}: {state:>12}  hb {worker['heartbeat_age']:4.1f}s"
                f"  done {worker['jobs_done']:3d}  {label[:48]}"
            )
        return lines

    def render(self, snap, final=False):
        self.renders += 1
        write = self.stream.write
        if self.mode == "tty":
            if self._lines_drawn:
                write(f"\x1b[{self._lines_drawn}F\x1b[J")
            lines = [self._status_line(snap)] + self._worker_lines(snap)
            write("\n".join(lines) + "\n")
            self._lines_drawn = len(lines)
        else:
            write(self._status_line(snap) + "\n")
        self.stream.flush()

    def close(self):
        if self.mode == "tty" and self._lines_drawn:
            self.stream.write("\n")
            self.stream.flush()
        self._lines_drawn = 0
