"""Unified observability: spans, traces, metrics, coverage, campaign fabric.

* :mod:`repro.obs.spans` — :class:`Telemetry` (the per-simulation hub)
  and :class:`SpanRecorder`/:class:`Span` (transaction lifecycles with
  phase timestamps);
* :mod:`repro.obs.perfetto` — Chrome/Perfetto trace-event JSON export
  of a recording (:func:`build_trace` / :func:`write_trace` /
  :func:`validate_trace`);
* :mod:`repro.obs.matrix` — per-(protocol, accel-mode) coverage
  heatmaps and span-latency percentiles (:class:`CoverageMatrix`,
  :func:`render_matrix`);
* :mod:`repro.obs.sketch` — mergeable fixed-bucket metric sketches
  (:class:`LatencySketch`, :class:`CounterSeries`) whose folds are
  byte-identical regardless of merge order;
* :mod:`repro.obs.lineage` — causal message lineage and per-span
  critical-path blame (:class:`LineageTracker`, :class:`BlameMatrix`):
  every closed span's duration decomposed exactly into wire / queue /
  stall / service / translation segments;
* :mod:`repro.obs.recorder` — the per-job :class:`FlightRecorder` black
  box shipped in ``CampaignOutcome.forensics`` on failure;
* :mod:`repro.obs.fabric` — the cross-process campaign telemetry fabric
  (:class:`FabricCollector`, :class:`FabricEmitter`,
  :class:`LiveRenderer`, :func:`use_fabric`, :func:`live_fabric`).

Everything here is opt-in: a simulator with ``sim.obs`` unset pays one
attribute load + identity check per hook site, nothing more.
"""

from repro.obs.fabric import (
    FabricCollector,
    FabricEmitter,
    LiveRenderer,
    live_fabric,
    use_fabric,
)
from repro.obs.lineage import SEGMENTS, BlameMatrix, LineageTracker
from repro.obs.matrix import CellSummary, CoverageMatrix, render_blame, render_matrix
from repro.obs.perfetto import build_trace, validate_trace, write_trace
from repro.obs.recorder import FlightRecorder
from repro.obs.sketch import CounterSeries, LatencySketch
from repro.obs.spans import Span, SpanRecorder, Telemetry, sample_counters

__all__ = [
    "BlameMatrix",
    "CellSummary",
    "CounterSeries",
    "CoverageMatrix",
    "FabricCollector",
    "FabricEmitter",
    "FlightRecorder",
    "LatencySketch",
    "LineageTracker",
    "LiveRenderer",
    "SEGMENTS",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "build_trace",
    "live_fabric",
    "render_blame",
    "render_matrix",
    "sample_counters",
    "use_fabric",
    "validate_trace",
    "write_trace",
]
