"""Unified observability: transaction spans, traces, metrics, coverage.

* :mod:`repro.obs.spans` — :class:`Telemetry` (the per-simulation hub)
  and :class:`SpanRecorder`/:class:`Span` (transaction lifecycles with
  phase timestamps);
* :mod:`repro.obs.perfetto` — Chrome/Perfetto trace-event JSON export
  of a recording (:func:`build_trace` / :func:`write_trace` /
  :func:`validate_trace`);
* :mod:`repro.obs.matrix` — per-(protocol, accel-mode) coverage
  heatmaps and span-latency percentiles (:class:`CoverageMatrix`,
  :func:`render_matrix`).

Everything here is opt-in: a simulator with ``sim.obs`` unset pays one
attribute load + identity check per hook site, nothing more.
"""

from repro.obs.matrix import CellSummary, CoverageMatrix, render_matrix
from repro.obs.perfetto import build_trace, validate_trace, write_trace
from repro.obs.spans import Span, SpanRecorder, Telemetry

__all__ = [
    "CellSummary",
    "CoverageMatrix",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "build_trace",
    "render_matrix",
    "validate_trace",
    "write_trace",
]
