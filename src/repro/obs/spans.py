"""Transaction spans and the per-simulation telemetry hub.

A *span* is one coherence transaction observed end to end: an accelerator
``GetS``/``GetM``/``Put*`` crossing XG into the host protocol and back, a
host-initiated probe toward the accelerator, or a sequencer load/store.
Each span carries phase timestamps (issued → translated → host-granted →
data-returned → acked) recorded by lightweight hooks at the transaction
owners, so "how long did this GetM wait on host invalidations" is a
query, not a post-mortem.

:class:`Telemetry` is the hub: attach one to a simulator (``sim.obs``)
and the hooks in :class:`~repro.sim.network.Network`,
:class:`~repro.coherence.controller.CoherenceController`,
:class:`~repro.xg.base.CrossingGuardBase`, and
:class:`~repro.host.cpu.Sequencer` start recording. With no hub attached
(the default) every hook is a single attribute load and identity check —
telemetry costs nothing when it is off.
"""

from repro.sim.stats import Histogram


class Span:
    """One transaction's recorded lifetime.

    ``phases`` is an ordered list of ``(name, tick)`` pairs; ``status``
    is ``"open"`` until :meth:`SpanRecorder.finish` stamps the outcome
    (``"ok"``, ``"timeout"``, ``"retained_hit"``, ``"orphaned"``, ...).
    """

    __slots__ = ("sid", "kind", "component", "addr", "start", "end", "status",
                 "phases", "meta")

    def __init__(self, sid, kind, component, addr, start, meta=None):
        self.sid = sid
        self.kind = kind
        self.component = component
        self.addr = addr
        self.start = start
        self.end = None
        self.status = "open"
        self.phases = []
        self.meta = meta or {}

    @property
    def open(self):
        return self.end is None

    @property
    def duration(self):
        if self.end is None:
            return None
        return self.end - self.start

    def phase_tick(self, name):
        """Tick of the first phase named ``name``, or None."""
        for phase, tick in self.phases:
            if phase == name:
                return tick
        return None

    def as_dict(self):
        return {
            "sid": self.sid,
            "kind": self.kind,
            "component": self.component,
            "addr": self.addr,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "phases": list(self.phases),
            "meta": dict(self.meta),
        }

    def __repr__(self):
        addr = f"{self.addr:#x}" if isinstance(self.addr, int) else self.addr
        tail = f"..{self.end}]" if self.end is not None else "..)"
        return (
            f"Span({self.kind} {addr} @{self.component} "
            f"[{self.start}{tail} {self.status})"
        )


class SpanRecorder:
    """Owns every span of one simulation: open set + bounded closed ring.

    Closing is idempotent — a span can be finished exactly once; later
    finishes (a retry racing a timeout, say) are ignored, which is what
    makes span lifecycles deterministic under fault injection.
    """

    def __init__(self, capacity=250_000):
        self.capacity = capacity
        self.closed = []
        self.dropped = 0
        self._open = {}
        self._next_sid = 0
        self._finished_total = 0
        #: optional ``hook(span)`` invoked exactly once per close, at the
        #: close tick — the lineage blame walk hangs off this so span
        #: attribution happens while the causal chain is still hot.
        self.blame_hook = None

    # -- lifecycle -----------------------------------------------------------

    def start(self, kind, component, addr, tick, **meta):
        sid = self._next_sid
        self._next_sid += 1
        span = Span(sid, kind, component, addr, tick, meta=meta or None)
        self._open[sid] = span
        return span

    def phase(self, span, name, tick):
        if span.end is None:
            span.phases.append((name, tick))

    def finish(self, span, tick, status="ok", **meta):
        """Close ``span`` at ``tick``. Idempotent; keeps the first close."""
        if span.end is not None:
            return
        span.end = tick
        span.status = status
        if meta:
            span.meta.update(meta)
        self._open.pop(span.sid, None)
        self._finished_total += 1
        hook = self.blame_hook
        if hook is not None:
            hook(span)
        closed = self.closed
        closed.append(span)
        if len(closed) > self.capacity:
            drop = len(closed) - self.capacity
            del closed[:drop]
            self.dropped += drop

    def drain(self, tick, status="orphaned"):
        """Close every still-open span (end of run / abandoned work).

        Returns the spans that were force-closed — a clean shutdown after
        a fully drained simulation returns an empty list, which is the
        property the fault-injection lifecycle tests assert.
        """
        leaked = list(self._open.values())
        for span in leaked:
            self.finish(span, tick, status=status)
        return leaked

    # -- queries ---------------------------------------------------------------

    @property
    def open_count(self):
        return len(self._open)

    @property
    def finished_total(self):
        return self._finished_total

    def open_spans(self):
        return list(self._open.values())

    def by_kind(self, kind):
        return [span for span in self.closed if span.kind == kind]

    def by_status(self, status):
        return [span for span in self.closed if span.status == status]

    def latency_histograms(self, bucket_width=8):
        """Per-kind closed-span latency :class:`Histogram` map."""
        hists = {}
        for span in self.closed:
            hist = hists.get(span.kind)
            if hist is None:
                hist = Histogram(bucket_width)
                hists[span.kind] = hist
            hist.observe(span.end - span.start)
        return hists

    def __len__(self):
        return len(self.closed)


#: Default counters sampled into the time series.
SERIES_FIELDS = ("events_fired", "open_spans", "spans_closed")


def sample_counters(sim):
    """One engine counter snapshot: the shared sampler body.

    Used by both the :class:`Telemetry` time series and the campaign
    fabric's progress frames, so a worker's live numbers and a traced
    run's counter tracks always agree on definitions.
    """
    open_tbes = 0
    stalled = 0
    for comp in sim.components:
        tbes = getattr(comp, "tbes", None)
        if tbes is not None:
            open_tbes += len(tbes)
        if hasattr(comp, "stalled_count"):
            stalled += comp.stalled_count()
    return {
        "tick": sim.tick,
        "events_fired": sim._events_fired,
        "open_tbes": open_tbes,
        "stalled_msgs": stalled,
    }


class Telemetry:
    """The observability hub for one simulator.

    Constructing it attaches it as ``sim.obs``; hooks all over the engine
    then record into it:

    * **spans** — transaction spans (see :class:`SpanRecorder`);
    * **transitions** — every executed (state, event) pair per controller,
      bounded by ``max_transitions`` (overflow is counted, not silently
      discarded);
    * **faults** — injected link faults, with tick and kind;
    * **marks** — instants worth seeing on a timeline (guarantee
      violations, tolerated anomalies, duplicate suppression);
    * **series** — periodic counter snapshots for campaign jobs
      (:meth:`start_series`).
    """

    def __init__(self, sim, transitions=True, max_transitions=200_000,
                 span_capacity=250_000, lineage=None):
        self.sim = sim
        self.spans = SpanRecorder(capacity=span_capacity)
        self.transitions = [] if transitions else None
        self.transitions_dropped = 0
        self.max_transitions = max_transitions
        self.faults = []
        self.marks = []
        self.busy = []
        self.series = []
        self.series_interval = 0
        self._finalized = False
        if lineage is None:
            lineage = getattr(sim, "lineage_default", False)
        if lineage:
            from repro.obs.lineage import LineageTracker

            self.lineage = LineageTracker()
            self.spans.blame_hook = self.lineage.finish_span
            sim.lineage = self.lineage
        else:
            self.lineage = None
        sim.obs = self

    def detach(self):
        """Stop recording: clear the simulator's hub reference."""
        if self.sim.obs is self:
            self.sim.obs = None
        if self.lineage is not None and self.sim.lineage is self.lineage:
            self.sim.lineage = None

    # -- hook entry points (called from the engine; must stay cheap) -----------

    def record_transition(self, tick, component, ctype, state, event):
        transitions = self.transitions
        if transitions is None:
            return
        if len(transitions) >= self.max_transitions:
            self.transitions_dropped += 1
            return
        transitions.append(
            (tick, component, ctype,
             getattr(state, "name", str(state)), getattr(event, "name", str(event)))
        )

    def record_busy(self, tick, component, ticks):
        """One occupancy window: ``component`` busy for ``ticks`` from ``tick``.

        Recorded exactly when the ``busy_ticks`` counter increments, so the
        sum over a component's records always equals its counter — the
        Perfetto exporter draws its real occupancy tracks from these.
        """
        self.busy.append((tick, component, ticks))

    def record_fault(self, tick, link, kind, msg=None):
        mtype = getattr(getattr(msg, "mtype", None), "name", None)
        self.faults.append((tick, link, kind, mtype))

    def record_mark(self, tick, kind, component="", name="", addr=None):
        self.marks.append((tick, kind, component, name, addr))

    # -- time series ---------------------------------------------------------------

    def start_series(self, interval, extra=None):
        """Sample counters every ``interval`` ticks while the sim has work.

        ``extra`` is an optional zero-arg callable returning a dict merged
        into each sample. The sampler re-arms itself only while other
        events remain queued, so it can never keep an otherwise-drained
        simulation alive.
        """
        if interval < 1:
            raise ValueError(f"series interval must be >= 1, got {interval}")
        self.series_interval = interval
        self._series_extra = extra
        self.sim.schedule(0, self._sample_series)

    def _sample_series(self):
        self._take_sample()
        # Re-arm only while the queue holds real work: this sampler event
        # already popped, so a non-empty queue means the sim is still live.
        if self.sim.events:
            self.sim.schedule(self.series_interval, self._sample_series)

    def _take_sample(self):
        base = sample_counters(self.sim)
        # key order matters: trace files are compared byte-for-byte by the
        # determinism tests, so keep the historical sample layout
        sample = {
            "tick": base["tick"],
            "events_fired": base["events_fired"],
            "open_spans": self.spans.open_count,
            "spans_closed": self.spans.finished_total,
            "open_tbes": base["open_tbes"],
            "stalled_msgs": base["stalled_msgs"],
        }
        extra = getattr(self, "_series_extra", None)
        if extra is not None:
            sample.update(extra())
        self.series.append(sample)

    # -- shutdown / summaries ----------------------------------------------------------

    def finalize(self):
        """Close out recording at end of run.

        Takes a final series sample (when sampling was on) and force-closes
        any spans still open as ``"orphaned"``. Returns the orphaned spans.
        Idempotent.
        """
        if self._finalized:
            return []
        self._finalized = True
        if self.series_interval:
            self._take_sample()
        return self.spans.drain(self.sim.tick)

    def orphaned_count(self):
        return len(self.spans.by_status("orphaned"))

    @property
    def spans_dropped(self):
        """Closed spans evicted from the bounded ring (truncated recording).

        Non-zero means latency percentiles and per-status counts
        under-sample the *early* part of the run; ``repro report`` and
        ``repro trace`` surface a warning so truncation is never silent.
        """
        return self.spans.dropped

    def blame_matrix(self, config_label, seed=0, bucket_width=8, top_n=20):
        """One run's :class:`~repro.obs.lineage.BlameMatrix` from closed spans.

        Empty (but valid and mergeable) when lineage was off — spans then
        carry no ``blame`` meta and contribute nothing.
        """
        from repro.obs.lineage import blame_matrix_from_telemetry

        return blame_matrix_from_telemetry(
            self, config_label, seed=seed,
            bucket_width=bucket_width, top_n=top_n,
        )

    def transition_counts(self):
        """Aggregate (ctype, state, event) -> count over the recording."""
        counts = {}
        for _tick, _comp, ctype, state, event in self.transitions or ():
            key = (ctype, state, event)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def summary(self, bucket_width=8):
        """Picklable per-run digest for campaign-side merging."""
        hists = self.spans.latency_histograms(bucket_width=bucket_width)
        statuses = {}
        for span in self.spans.closed:
            key = (span.kind, span.status)
            statuses[key] = statuses.get(key, 0) + 1
        return {
            "span_hists": hists,
            "span_statuses": statuses,
            "spans_closed": self.spans.finished_total,
            "spans_dropped": self.spans.dropped,
            "spans_open": self.spans.open_count,
            "transitions": (len(self.transitions)
                            if self.transitions is not None else 0),
            "transitions_dropped": self.transitions_dropped,
            "faults": len(self.faults),
            "marks": len(self.marks),
        }

    def __repr__(self):
        return (
            f"Telemetry(spans={len(self.spans)}+{self.spans.open_count} open, "
            f"transitions={len(self.transitions) if self.transitions is not None else 'off'}, "
            f"faults={len(self.faults)}, marks={len(self.marks)})"
        )
