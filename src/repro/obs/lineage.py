"""Causal message lineage + exact per-transaction latency attribution.

Spans (:mod:`repro.obs.spans`) record *when* a transaction's phases
happened; this module explains *why* the time went where it did. A
:class:`LineageTracker` attached to :class:`~repro.obs.Telemetry`
maintains a bounded ring of :class:`LineageRecord` cause records — one
per delivered network message plus a synthetic root per sequencer issue —
linked by "the handler of message A sent message B". Records live on the
tracker, never on pooled :class:`~repro.sim.message.Message` carriers
(those recycle the moment a transition consumes them).

From every closed span the tracker walks the causal chain backwards from
the message whose handling closed the span, partitioning the interval
``[span.start, span.end]`` into labeled integer segments::

    wire          in-flight network latency (incl. endpoint/crossing delay)
    queue_wait    bandwidth queueing, ordered-lane clamping, buffer wait
    stall         residency in a controller's per-address stall bucket
    service       handler compute on an accelerator-side controller
    xg_translate  handler compute inside a Crossing Guard
    host_service  handler compute on a host-side controller
    retry_backoff probe-retry timeout wait before a re-issued Invalidate
    throttle      rate-limiter RETRY wait at the XG admission point

The walk is *conservative by construction*: a single monotonically
decreasing cursor moves from ``span.end`` to ``span.start`` and every
step books exactly the ticks it consumed (any unexplained remainder is
flushed to ``service``), so ``sum(segments.values())`` equals the span
duration exactly — the conservation invariant the tests assert.

:class:`BlameMatrix` aggregates segments per (config label x span kind)
cell on top of :class:`~repro.obs.sketch.LatencySketch`, so campaign
workers fold byte-identically through the PR 8 fabric regardless of
worker count or arrival order.

Everything here is digest-neutral: the tracker schedules no events,
touches no stats, and never consumes ``sim.rng`` — golden digests are
byte-identical with lineage on and off.
"""

import json
from collections import deque

from repro.obs.sketch import LatencySketch

#: Every bucket a segment tick can land in (the exhaustive attribution
#: alphabet; see the module docstring for meanings).
SEGMENTS = (
    "wire", "queue_wait", "stall", "service",
    "xg_translate", "host_service", "retry_backoff", "throttle",
)

#: Send-site labels that are themselves segment buckets: a record whose
#: ``site`` is one of these attributes its pre-send gap (timeout wait,
#: limiter wait) to that bucket instead of the sender's service class.
_SITE_BUCKETS = frozenset(("retry_backoff", "throttle"))

#: Bound on records retained (and thus on chain length indirectly);
#: eviction is FIFO and also clears the record's pending-handling slot,
#: so dropped/never-delivered messages cannot leak tracker state.
DEFAULT_CAPACITY = 65_536

#: Walks stop after this many hops even if records remain — a backstop
#: against pathological chains; the remainder conserves into ``service``.
MAX_WALK_HOPS = 4_096


class LineageRecord:
    """One causal hop: a message send, its delivery, and its handling."""

    __slots__ = (
        "lid", "uid", "mtype", "sender", "dest", "site", "send_tick",
        "arrival", "wire", "cause", "handled", "service_class",
        "stall_ticks", "throttle_ticks", "wait_since", "wait_kind",
        "claimed",
    )

    def __init__(self, lid, uid, mtype, sender, dest, site, send_tick,
                 arrival, wire, cause):
        self.lid = lid
        self.uid = uid
        self.mtype = mtype
        self.sender = sender
        self.dest = dest
        self.site = site
        self.send_tick = send_tick
        self.arrival = arrival
        self.wire = wire
        self.cause = cause
        self.handled = None
        self.service_class = "service"
        self.stall_ticks = 0
        self.throttle_ticks = 0
        self.wait_since = None
        self.wait_kind = ""
        #: sid of the first span whose blame walk consumed this record;
        #: a second span hitting a claimed record is a causal span link
        #: (the Perfetto flow arrows).
        self.claimed = None

    def __repr__(self):
        return (f"LineageRecord(#{self.lid} {self.mtype} "
                f"{self.sender}->{self.dest} sent={self.send_tick} "
                f"arr={self.arrival} handled={self.handled} "
                f"cause=#{self.cause})")


class LineageTracker:
    """Bounded causal-record ring + critical-path blame extraction.

    Lives on :class:`~repro.obs.Telemetry` (``obs.lineage``) and is
    mirrored onto the simulator (``sim.lineage``) so the engine hooks —
    :meth:`Network.send <repro.sim.network.Network.send>`, the controller
    wakeup loop, the sequencer issue path — pay exactly one attribute
    load plus a None check when lineage is off.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY, max_flows=50_000):
        self.capacity = capacity
        self.max_flows = max_flows
        self.records = {}
        self._order = deque()
        #: uid -> lid awaiting handling; re-registered on stall/retry so
        #: wait time accrues to the same record, cleared on eviction.
        self._pending = {}
        self._next_lid = 1
        #: lid of the record currently being handled (the cause context
        #: every send inside the handler inherits); 0 outside handlers.
        self.current = 0
        #: most recently created lid — the forensic walk tip for a
        #: wedged run whose closing message never arrived.
        self.last_lid = 0
        #: one-shot site label consumed by the next :meth:`record_send`
        #: (e.g. "retry_backoff" set by the XG probe-timeout path).
        self.site_hint = None
        #: one-shot wait classification consumed by the next
        #: :meth:`requeued` (e.g. "throttle" from the XG rate limiter).
        self.requeue_kind = None
        #: one-shot walk tip consumed by the next :meth:`finish_span`
        #: when no handler context exists (a span closed from a
        #: scheduled timeout rather than a message handler).
        self.tip_hint = 0
        #: causal span links discovered by blame walks:
        #: (enclosing sid, caused sid) pairs for the Perfetto flows.
        self.flows = []
        self.recorded = 0
        self.evicted = 0

    # -- engine hooks (hot path when lineage is on; keep them lean) -----------

    def record_send(self, msg, send_tick, arrival, wire, site=None, cause=None):
        """Record one message send; returns the new record's lid.

        ``wire`` is the in-flight portion of ``arrival - send_tick``
        (latency model + endpoint delays + sender-side delay); the walk
        books the remainder — bandwidth queueing, ordered-lane clamping,
        injected fault delay — as ``queue_wait``.
        """
        hint = self.site_hint
        if hint is not None:
            site = hint
            self.site_hint = None
        if cause is None:
            cause = self.current
        lid = self._next_lid
        self._next_lid = lid + 1
        mtype = msg.mtype
        rec = LineageRecord(
            lid, msg.uid, getattr(mtype, "name", None) or str(mtype),
            msg.sender, msg.dest, site or "", send_tick, arrival, wire, cause,
        )
        self.records[lid] = rec
        self._order.append(lid)
        self._pending[msg.uid] = lid
        self.last_lid = lid
        self.recorded += 1
        if len(self._order) > self.capacity:
            old = self._order.popleft()
            dead = self.records.pop(old, None)
            if dead is not None and self._pending.get(dead.uid) == old:
                # never-handled (e.g. fault-dropped before delivery or
                # consumed by a non-controller component): the pending
                # slot ages out with its record — no leak.
                del self._pending[dead.uid]
            self.evicted += 1
        return lid

    def begin(self, uid, tick, service_class):
        """A controller starts handling the message with ``uid``.

        Closes any stall/throttle wait, stamps the handling tick and the
        handler's service class, and installs the record as the current
        cause context. Returns the lid (0 when untracked). The caller
        resets ``self.current`` to 0 after the handler returns — the
        wakeup loop is never re-entered while a handler runs.
        """
        lid = self._pending.pop(uid, 0)
        if lid:
            rec = self.records.get(lid)
            if rec is None:
                lid = 0
            else:
                since = rec.wait_since
                if since is not None:
                    waited = tick - since
                    if waited > 0:
                        if rec.wait_kind == "throttle":
                            rec.throttle_ticks += waited
                        else:
                            rec.stall_ticks += waited
                    rec.wait_since = None
                rec.handled = tick
                rec.service_class = service_class
        self.current = lid
        return lid

    def stalled(self, lid, tick):
        """The just-handled message went into a per-address stall bucket."""
        rec = self.records.get(lid)
        if rec is not None:
            rec.wait_since = tick
            rec.wait_kind = "stall"
            rec.handled = None
            self._pending[rec.uid] = lid

    def requeued(self, lid, tick):
        """The just-handled message was pushed back (RETRY outcome).

        The wait kind comes from the one-shot ``requeue_kind`` hint —
        "throttle" when the XG rate limiter bounced the message — and
        defaults to stall accounting otherwise.
        """
        kind = self.requeue_kind or "stall"
        self.requeue_kind = None
        rec = self.records.get(lid)
        if rec is not None:
            rec.wait_since = tick
            rec.wait_kind = kind
            rec.handled = None
            self._pending[rec.uid] = lid

    def adopt_cause(self, lid):
        """Bridge a causal gap: the record being handled replies to ``lid``.

        A reply from a non-protocol endpoint (Byzantine adversary, raw
        test agent) carries no handler context, so its record's cause is
        0 and blame walks dead-end at it. The protocol side that
        *provoked* the reply (e.g. XG closing a probe) knows the true
        cause and grafts it in; only an unset cause is ever overwritten.
        """
        if not lid or not self.current:
            return
        rec = self.records.get(self.current)
        if rec is not None and rec.cause == 0:
            rec.cause = lid

    # -- blame extraction ------------------------------------------------------

    def finish_span(self, span):
        """Attribute a just-closed span; installed as the span blame hook.

        Writes ``span.meta["blame"]`` (bucket -> ticks, summing exactly
        to the duration) and ``span.meta["blame_path"]`` (the ordered
        critical-path segment list), and records causal span links for
        the Perfetto flow arrows.
        """
        tip = self.current or self.tip_hint
        self.tip_hint = 0
        segments, path, linked = self._walk(
            span.start, span.end, tip, claim_sid=span.sid
        )
        span.meta["blame"] = segments
        span.meta["blame_path"] = path
        if linked:
            flows = self.flows
            for other in sorted(linked):
                if len(flows) >= self.max_flows:
                    break
                flows.append((span.sid, other))

    def partial_blame(self, span, now):
        """Best-effort critical path for a still-open span (forensics).

        Walks back from the most recent causal activity over
        ``[span.start, now]`` — the flight-recorder view of where a
        wedged transaction's time has gone so far. Conserves exactly
        like :meth:`finish_span` (remainder flushes to ``service``).
        """
        segments, path, _ = self._walk(span.start, now, self.last_lid)
        return {
            "sid": span.sid,
            "kind": span.kind,
            "component": span.component,
            "addr": span.addr,
            "start": span.start,
            "end": now,
            "segments": segments,
            "path": path,
        }

    def _walk(self, start, end, tip_lid, claim_sid=None):
        """Partition ``[start, end]`` exactly over the chain from ``tip_lid``.

        Returns ``(segments, path, linked_sids)``. The cursor only moves
        backwards and every move books its ticks, so the segment sum
        equals ``end - start`` by construction.
        """
        segments = {}
        rev = []  # (bucket, ticks) in reverse (walk) order
        linked = set()

        def add(bucket, ticks):
            if ticks > 0:
                segments[bucket] = segments.get(bucket, 0) + ticks
                if rev and rev[-1][0] == bucket:
                    rev[-1] = (bucket, rev[-1][1] + ticks)
                else:
                    rev.append((bucket, ticks))

        cursor = end
        rec = self.records.get(tip_lid) if tip_lid else None
        hops = 0
        while rec is not None and cursor > start and hops < MAX_WALK_HOPS:
            hops += 1
            if claim_sid is not None:
                claimed = rec.claimed
                if claimed is None:
                    rec.claimed = claim_sid
                elif claimed != claim_sid:
                    linked.add(claimed)
            # a timeout/limiter product that was never handled (dropped on
            # the link, or eaten by a non-protocol endpoint): the whole
            # post-send wait belongs to the retry machinery that produced
            # it, not to transit queueing
            if rec.handled is None and rec.site in _SITE_BUCKETS:
                sent = max(min(rec.send_tick, cursor), start)
                add(rec.site, cursor - sent)
                cursor = sent
                if cursor <= start:
                    break
            # handler compute after the final consume of this message
            handled = rec.handled
            if handled is None:
                handled = cursor
            handled = max(min(handled, cursor), start)
            add(rec.service_class, cursor - handled)
            cursor = handled
            if cursor <= start:
                break
            # buffer residency: stall-bucket / limiter / plain queue wait
            arrival = max(min(rec.arrival, cursor), start)
            window = cursor - arrival
            if window > 0:
                stall = min(rec.stall_ticks, window)
                add("stall", stall)
                throttle = min(rec.throttle_ticks, window - stall)
                add("throttle", throttle)
                add("queue_wait", window - stall - throttle)
                cursor = arrival
            if cursor <= start:
                break
            # in-flight: modeled latency is wire, the rest is queueing
            sent = max(min(rec.send_tick, cursor), start)
            window = cursor - sent
            if window > 0:
                wire = min(rec.wire, window)
                add("wire", wire)
                add("queue_wait", window - wire)
                cursor = sent
            if cursor <= start:
                break
            # pre-send gap: backoff/limiter wait for flagged sites, else
            # the causing handler's compute time
            parent = self.records.get(rec.cause) if rec.cause else None
            if rec.site in _SITE_BUCKETS:
                gap_bucket = rec.site
            elif parent is not None:
                gap_bucket = parent.service_class
            else:
                gap_bucket = "service"
            if parent is None:
                add(gap_bucket, cursor - start)
                cursor = start
                break
            parent_handled = parent.handled
            if parent_handled is None:
                parent_handled = cursor
            parent_handled = max(min(parent_handled, cursor), start)
            add(gap_bucket, cursor - parent_handled)
            cursor = parent_handled
            rec = parent
        # whatever the chain could not explain conserves into service
        add("service", cursor - start)
        path = [(bucket, ticks) for bucket, ticks in reversed(rev)]
        return segments, path, linked

    def __repr__(self):
        return (f"LineageTracker(records={len(self.records)}, "
                f"pending={len(self._pending)}, recorded={self.recorded}, "
                f"evicted={self.evicted}, flows={len(self.flows)})")


def _top_key(entry):
    return (-entry["duration"], entry["config"], entry["seed"], entry["sid"])


class BlameMatrix:
    """Mergeable campaign-wide blame aggregate.

    Cells are keyed ``(config label, span kind)`` and hold an integer
    span count, a :class:`~repro.obs.sketch.LatencySketch` of durations,
    and integer per-segment tick totals — all order-free to merge, so
    workers=N folds byte-identically to workers=1. The top list keeps
    the ``top_n`` slowest transactions (with their critical paths) under
    a total order on ``(-duration, config, seed, sid)``: any global
    top-N entry survives its own shard's local truncation, so the merged
    top list is exactly the serial one.
    """

    def __init__(self, bucket_width=8, top_n=20):
        self.bucket_width = bucket_width
        self.top_n = top_n
        self.cells = {}
        self.top = []

    def add_span(self, config, seed, span):
        blame = span.meta.get("blame") if span.meta else None
        if blame is None or span.end is None:
            return
        duration = span.end - span.start
        key = (config, span.kind)
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = {
                "spans": 0,
                "duration": LatencySketch(self.bucket_width),
                "segments": {},
            }
        cell["spans"] += 1
        cell["duration"].observe(duration)
        segments = cell["segments"]
        for bucket, ticks in blame.items():
            segments[bucket] = segments.get(bucket, 0) + ticks
        self.top.append({
            "duration": duration,
            "config": config,
            "seed": seed,
            "sid": span.sid,
            "kind": span.kind,
            "addr": span.addr,
            "status": span.status,
            "path": [[bucket, ticks]
                     for bucket, ticks in span.meta.get("blame_path", ())],
        })
        if len(self.top) > 4 * self.top_n:
            self._trim()

    def _trim(self):
        self.top.sort(key=_top_key)
        del self.top[self.top_n:]

    def merge(self, other):
        """Fold another matrix in (order-free; widths must match)."""
        if other.bucket_width != self.bucket_width:
            raise ValueError(
                f"bucket width mismatch: {self.bucket_width} vs "
                f"{other.bucket_width}"
            )
        for key, cell in other.cells.items():
            mine = self.cells.get(key)
            if mine is None:
                mine = self.cells[key] = {
                    "spans": 0,
                    "duration": LatencySketch(self.bucket_width),
                    "segments": {},
                }
            mine["spans"] += cell["spans"]
            mine["duration"].merge(cell["duration"])
            segments = mine["segments"]
            for bucket, ticks in cell["segments"].items():
                segments[bucket] = segments.get(bucket, 0) + ticks
        self.top.extend(dict(entry) for entry in other.top)
        self._trim()
        return self

    # -- views -----------------------------------------------------------------

    def top_spans(self):
        """The final, exactly-ordered top list."""
        self._trim()
        return [dict(entry) for entry in self.top]

    def rows(self):
        """Per-cell summary rows for reports: one dict per (config, kind)."""
        self._trim()
        rows = []
        for (config, kind), cell in sorted(self.cells.items()):
            total = sum(cell["segments"].values())
            row = {
                "config": config,
                "kind": kind,
                "spans": cell["spans"],
                "total_ticks": total,
                "p50": cell["duration"].percentile(0.50),
                "p99": cell["duration"].percentile(0.99),
                "segments": dict(sorted(cell["segments"].items())),
            }
            if total:
                dominant = max(
                    cell["segments"].items(), key=lambda kv: (kv[1], kv[0])
                )
                row["dominant"] = dominant[0]
                row["dominant_pct"] = 100.0 * dominant[1] / total
            else:
                row["dominant"] = ""
                row["dominant_pct"] = 0.0
            rows.append(row)
        return rows

    # -- (de)serialization -------------------------------------------------------

    def as_dict(self):
        self._trim()
        return {
            "bucket_width": self.bucket_width,
            "top_n": self.top_n,
            "cells": {
                f"{config}|{kind}": {
                    "spans": cell["spans"],
                    "duration": cell["duration"].as_dict(),
                    "segments": dict(sorted(cell["segments"].items())),
                }
                for (config, kind), cell in sorted(self.cells.items())
            },
            "top": [dict(entry) for entry in self.top],
        }

    @classmethod
    def from_dict(cls, data):
        matrix = cls(bucket_width=data["bucket_width"],
                     top_n=data.get("top_n", 20))
        for key, cell in data.get("cells", {}).items():
            config, _, kind = key.rpartition("|")
            matrix.cells[(config, kind)] = {
                "spans": cell["spans"],
                "duration": LatencySketch.from_dict(cell["duration"]),
                "segments": dict(cell["segments"]),
            }
        matrix.top = [dict(entry) for entry in data.get("top", [])]
        matrix._trim()
        return matrix

    def canonical(self):
        """Canonical JSON bytes — byte-identical across merge orders."""
        return json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        ).encode()

    def __eq__(self, other):
        if not isinstance(other, BlameMatrix):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __repr__(self):
        self._trim()
        return (f"BlameMatrix(cells={len(self.cells)}, "
                f"top={len(self.top)}/{self.top_n}, "
                f"bucket_width={self.bucket_width})")


def blame_matrix_from_telemetry(telemetry, config_label, seed=0,
                                bucket_width=8, top_n=20):
    """Build one run's :class:`BlameMatrix` from its closed spans."""
    matrix = BlameMatrix(bucket_width=bucket_width, top_n=top_n)
    for span in telemetry.spans.closed:
        matrix.add_span(config_label, seed, span)
    return matrix
