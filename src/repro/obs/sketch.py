"""Mergeable fixed-bucket metric sketches for cross-process aggregation.

Campaign workers summarize what they saw — span latencies, per-tick
counter growth — into *sketches*: fixed-size, plain-data digests whose
merge is a commutative, associative integer fold. That property is what
the campaign telemetry fabric rests on: frames arrive at the collector
in whatever order the process pool produces them, and the aggregate must
not depend on that order. Both classes here guarantee it structurally —
every merge is a key-wise integer sum (plus min/max, which are also
order-free) — and :meth:`canonical` serializes the state with sorted
keys, so two folds of the same contributions are **byte-identical**
regardless of arrival order. The fabric equivalence tests assert exactly
that.

Unlike :class:`~repro.sim.stats.Histogram` (whose merge re-bins on a
width mismatch), a sketch's bucket width is part of its identity:
merging mismatched widths is a programming error and raises, because a
silent re-bin would break the byte-identity contract.
"""

import json


class LatencySketch:
    """Fixed-bucket latency digest: count/sum/min/max + bucket counts.

    ``bucket_width`` is fixed at construction and must match across every
    merge — all workers of one campaign are built from the same fabric
    config, so widths agree by construction.
    """

    __slots__ = ("bucket_width", "count", "total", "min", "max", "buckets")

    def __init__(self, bucket_width=8):
        if bucket_width < 1:
            raise ValueError(f"bucket_width must be >= 1, got {bucket_width}")
        self.bucket_width = bucket_width
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets = {}

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value) // self.bucket_width
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def observe_bucketed(self, bucket, count, total, low, high):
        """Fold ``count`` pre-bucketed observations in (exact-width source)."""
        self.count += count
        self.total += total
        if low is not None and (self.min is None or low < self.min):
            self.min = low
        if high is not None and (self.max is None or high > self.max):
            self.max = high
        self.buckets[bucket] = self.buckets.get(bucket, 0) + count

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """Approximate ``q``-quantile (q in [0, 1]) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        width = self.bucket_width
        for bucket in sorted(self.buckets):
            in_bucket = self.buckets[bucket]
            if cumulative + in_bucket >= target:
                fraction = (target - cumulative) / in_bucket
                estimate = bucket * width + fraction * width
                return min(max(estimate, self.min), self.max)
            cumulative += in_bucket
        return self.max

    def merge(self, other):
        """Key-wise integer fold of ``other`` into self. Order-free."""
        if other.bucket_width != self.bucket_width:
            raise ValueError(
                f"sketch width mismatch: {self.bucket_width} vs "
                f"{other.bucket_width} (widths are part of a sketch's identity)"
            )
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count
        return self

    @classmethod
    def from_histogram(cls, hist):
        """Exact conversion from a same-shaped :class:`Histogram`."""
        sketch = cls(bucket_width=hist.bucket_width)
        sketch.count = hist.count
        sketch.total = hist.total
        sketch.min = hist.min
        sketch.max = hist.max
        sketch.buckets = dict(hist.buckets)
        return sketch

    def as_dict(self):
        return {
            "bucket_width": self.bucket_width,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            # string keys so the dict survives JSON round-trips unchanged
            "buckets": {str(k): v for k, v in self.buckets.items()},
        }

    @classmethod
    def from_dict(cls, data):
        sketch = cls(bucket_width=data["bucket_width"])
        sketch.count = data["count"]
        sketch.total = data["sum"]
        sketch.min = data["min"]
        sketch.max = data["max"]
        sketch.buckets = {int(k): v for k, v in data["buckets"].items()}
        return sketch

    def canonical(self):
        """Sorted-key JSON bytes: equal folds serialize byte-identically."""
        return json.dumps(self.as_dict(), sort_keys=True).encode()

    def __eq__(self, other):
        return (isinstance(other, LatencySketch)
                and self.canonical() == other.canonical())

    def __repr__(self):
        return (f"LatencySketch(width={self.bucket_width}, count={self.count}, "
                f"mean={self.mean:.1f})")


class CounterSeries:
    """Per-name counter growth bucketed by simulation tick, mergeable.

    Workers record *deltas* ("events_fired grew by 1800 inside tick
    bucket 3"); the collector folds every worker's contribution with a
    key-wise sum. The bucket key is simulation time, not arrival time, so
    the folded series is a deterministic function of the jobs that ran —
    not of pool scheduling.
    """

    __slots__ = ("bucket_ticks", "series")

    def __init__(self, bucket_ticks=5000):
        if bucket_ticks < 1:
            raise ValueError(f"bucket_ticks must be >= 1, got {bucket_ticks}")
        self.bucket_ticks = bucket_ticks
        self.series = {}  # name -> {bucket index -> summed delta}

    def record(self, tick, name, delta):
        if not delta:
            return
        bucket = tick // self.bucket_ticks
        buckets = self.series.get(name)
        if buckets is None:
            buckets = self.series[name] = {}
        buckets[bucket] = buckets.get(bucket, 0) + delta

    def merge(self, other):
        if other.bucket_ticks != self.bucket_ticks:
            raise ValueError(
                f"series bucket mismatch: {self.bucket_ticks} vs "
                f"{other.bucket_ticks}"
            )
        for name, buckets in other.series.items():
            mine = self.series.get(name)
            if mine is None:
                mine = self.series[name] = {}
            for bucket, delta in buckets.items():
                mine[bucket] = mine.get(bucket, 0) + delta
        return self

    def total(self, name):
        return sum(self.series.get(name, {}).values())

    def as_dict(self):
        return {
            "bucket_ticks": self.bucket_ticks,
            "series": {
                name: {str(bucket): delta for bucket, delta in buckets.items()}
                for name, buckets in self.series.items()
            },
        }

    @classmethod
    def from_dict(cls, data):
        series = cls(bucket_ticks=data["bucket_ticks"])
        series.series = {
            name: {int(bucket): delta for bucket, delta in buckets.items()}
            for name, buckets in data["series"].items()
        }
        return series

    def canonical(self):
        """Sorted-key JSON bytes: equal folds serialize byte-identically."""
        return json.dumps(self.as_dict(), sort_keys=True).encode()

    def __eq__(self, other):
        return (isinstance(other, CounterSeries)
                and self.canonical() == other.canonical())

    def __repr__(self):
        return (f"CounterSeries(bucket_ticks={self.bucket_ticks}, "
                f"names={sorted(self.series)})")
