"""Per-job flight recorder: a bounded in-worker black box.

A campaign worker that fails ships forensics *with* its failure instead
of requiring a traced replay: the :class:`FlightRecorder` keeps a
bounded ring of the most recent telemetry frames the worker emitted plus
the last-N network-trace and transition records of the simulation that
was running, and :meth:`snapshot` flattens all of it into plain picklable
data. :func:`repro.eval.campaign._execute` serializes the snapshot into
``CampaignOutcome.forensics`` only when a job fails, deadlocks, or times
out — successful jobs pay the ring writes (cheap, bounded) and ship
nothing.
"""

from collections import deque


def format_trace_record(record):
    """One network-trace ring tuple as a plain string (pickle-safe)."""
    tick, net, mtype, addr, sender, dest, note = record
    mname = getattr(mtype, "name", mtype)
    addr_s = f"{addr:#x}" if isinstance(addr, int) else str(addr)
    suffix = f" [{note}]" if note else ""
    return f"t={tick} {net}: {mname} {addr_s} {sender}->{dest}{suffix}"


class FlightRecorder:
    """Bounded ring of recent frames + tail of the sim's trace/transitions.

    Memory is bounded by construction: ``frame_capacity`` frames (each a
    small dict of scalars) and ``tail`` trace/transition records taken
    only at snapshot time. Recording never allocates beyond the rings.
    """

    def __init__(self, frame_capacity=256, tail=64):
        self.frame_capacity = frame_capacity
        self.tail = tail
        self.frames = deque(maxlen=frame_capacity)
        self.frames_seen = 0

    def record_frame(self, frame):
        self.frames.append(frame)
        self.frames_seen += 1

    def snapshot(self, sim=None, error=""):
        """Plain-data black box for one failed job.

        ``sim`` (when reachable — a :class:`DeadlockError` carries it, and
        the progress hook remembers the last simulator it sampled) adds
        the engine-side tail: final tick, the last-N network sends from
        the forensic trace ring, the last-N recorded transitions, and the
        open-span count. Everything returned pickles across a process
        boundary; nothing references the simulator itself.
        """
        record = {
            "error": error,
            "frames": list(self.frames),
            "frames_seen": self.frames_seen,
            "frames_capacity": self.frame_capacity,
        }
        if sim is None:
            return record
        record["tick"] = sim.tick
        record["events_fired"] = sim._events_fired
        if sim.trace is not None:
            trace = list(sim.trace)[-self.tail:]
            record["trace"] = [format_trace_record(r) for r in trace]
        else:
            record["trace"] = []
            record["trace_note"] = (
                "network trace disabled (trace_depth=0); replay the seed "
                "with tracing enabled for messages"
            )
        obs = sim.obs
        if obs is not None:
            record["open_spans"] = obs.spans.open_count
            record["spans_closed"] = obs.spans.finished_total
            if obs.transitions:
                record["transitions"] = [
                    f"t={tick} {component} [{ctype}]: {state}/{event}"
                    for tick, component, ctype, state, event
                    in obs.transitions[-self.tail:]
                ]
            lineage = getattr(obs, "lineage", None)
            if lineage is not None:
                open_spans = obs.spans.open_spans()
                if open_spans:
                    # The failing transaction is almost always the oldest
                    # open span; ship where its time went so far.
                    oldest = min(open_spans, key=lambda s: (s.start, s.sid))
                    record["critical_path"] = lineage.partial_blame(
                        oldest, sim.tick
                    )
        return record

    def __len__(self):
        return len(self.frames)

    def __repr__(self):
        return (f"FlightRecorder(frames={len(self.frames)}/"
                f"{self.frame_capacity}, seen={self.frames_seen})")
