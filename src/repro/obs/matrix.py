"""Per-configuration coverage matrix and span-latency percentile report.

The stress campaign exercises the paper's (host protocol × accelerator
organization) configuration matrix; each run produces per-controller
:class:`~repro.coherence.coverage.CoverageReport` objects and, when
telemetry is on, a :meth:`~repro.obs.spans.Telemetry.summary` digest.
This module folds those per-run results into one :class:`CoverageMatrix`
— merged through the same submission-order campaign merge as everything
else, so parallel and serial campaigns produce identical matrices — and
renders it as a text heatmap plus per-cell span-latency percentiles.
"""

from repro.coherence.coverage import CoverageReport
from repro.eval.report import format_table
from repro.sim.stats import Histogram

#: Shading ramp for the heatmap, indexed by coverage fraction.
_SHADES = " ░▒▓█"


def shade(fraction):
    """One shading character for a coverage fraction in [0, 1]."""
    if fraction >= 1.0:
        return _SHADES[-1]
    return _SHADES[int(fraction * (len(_SHADES) - 1))]


class CellSummary:
    """Aggregated results for one (host, organization) cell."""

    def __init__(self, key):
        self.key = key
        self.runs = 0
        #: controller type -> merged CoverageReport
        self.coverage = {}
        #: span kind -> merged latency Histogram
        self.span_hists = {}
        #: (span kind, status) -> count
        self.span_statuses = {}
        self.spans_closed = 0
        self.spans_dropped = 0
        self.transitions = 0
        self.faults = 0

    def add_coverage(self, reports):
        """Merge a per-run {ctype: CoverageReport} map."""
        for ctype, report in reports.items():
            mine = self.coverage.get(ctype)
            if mine is None:
                mine = CoverageReport(ctype)
                self.coverage[ctype] = mine
            mine.merge(report)

    def add_telemetry(self, summary):
        """Merge one :meth:`Telemetry.summary` digest."""
        for kind, hist in summary.get("span_hists", {}).items():
            mine = self.span_hists.get(kind)
            if mine is None:
                mine = Histogram(hist.bucket_width)
                self.span_hists[kind] = mine
            hist.merge_into(mine)
        for key, count in summary.get("span_statuses", {}).items():
            self.span_statuses[key] = self.span_statuses.get(key, 0) + count
        self.spans_closed += summary.get("spans_closed", 0)
        self.spans_dropped += summary.get("spans_dropped", 0)
        self.transitions += summary.get("transitions", 0)
        self.faults += summary.get("faults", 0)

    def add_run(self, coverage=None, telemetry_summary=None):
        self.runs += 1
        if coverage:
            self.add_coverage(coverage)
        if telemetry_summary:
            self.add_telemetry(telemetry_summary)

    def merge(self, other):
        self.runs += other.runs
        self.add_coverage(other.coverage)
        for kind, hist in other.span_hists.items():
            mine = self.span_hists.get(kind)
            if mine is None:
                mine = Histogram(hist.bucket_width)
                self.span_hists[kind] = mine
            hist.merge_into(mine)
        for key, count in other.span_statuses.items():
            self.span_statuses[key] = self.span_statuses.get(key, 0) + count
        self.spans_closed += other.spans_closed
        self.spans_dropped += other.spans_dropped
        self.transitions += other.transitions
        self.faults += other.faults

    @property
    def fraction(self):
        """Pooled coverage fraction across all controller types."""
        possible = 0
        visited = 0
        for report in self.coverage.values():
            possible += len(report.possible)
            visited += len(report.visited_pairs & report.possible)
        if not possible:
            return 1.0
        return visited / possible

    def missing_transitions(self, reachable=None):
        """(ctype, state name, event name) tuples never executed.

        ``reachable`` — an optional ``{ctype: {(state, event), ...}}``
        mapping from the reachability explorer
        (:func:`repro.verify.explorer.load_reachable_report`) — filters
        the list down to transitions *proven reachable*: declared table
        rows the explorer showed no run can ever execute are dead code,
        not coverage holes. Controller types the explorer has no data
        for pass through unfiltered.
        """
        out = []
        for ctype, report in sorted(self.coverage.items()):
            known = None if reachable is None else reachable.get(ctype)
            for state, event in report.missing:
                names = (getattr(state, "name", str(state)),
                         getattr(event, "name", str(event)))
                if known is not None and names not in known:
                    continue
                out.append((ctype,) + names)
        return sorted(out)

    def __repr__(self):
        return (f"CellSummary({self.key!r}, runs={self.runs}, "
                f"coverage={self.fraction:.1%}, spans={self.spans_closed})")


class CoverageMatrix:
    """All cells of one campaign, keyed by config label ("host/org")."""

    def __init__(self):
        self.cells = {}

    def cell(self, key):
        cell = self.cells.get(key)
        if cell is None:
            cell = CellSummary(key)
            self.cells[key] = cell
        return cell

    def add_run(self, key, coverage=None, telemetry_summary=None):
        self.cell(key).add_run(coverage, telemetry_summary)

    def merge(self, other):
        for key, cell in other.cells.items():
            self.cell(key).merge(cell)

    def axes(self):
        """Sorted (hosts, orgs) split out of the "host/org" cell keys."""
        hosts = set()
        orgs = set()
        for key in self.cells:
            host, _, org = key.partition("/")
            hosts.add(host)
            orgs.add(org)
        return sorted(hosts), sorted(orgs)

    def __len__(self):
        return len(self.cells)


def render_heatmap(matrix):
    """Coverage heatmap: hosts as rows, accel organizations as columns."""
    hosts, orgs = matrix.axes()
    if not hosts:
        return "coverage matrix: no cells recorded"
    rows = []
    for host in hosts:
        row = [host]
        for org in orgs:
            cell = matrix.cells.get(f"{host}/{org}")
            if cell is None:
                row.append("-")
            else:
                row.append(f"{shade(cell.fraction)} {cell.fraction:6.1%}")
        rows.append(row)
    return format_table(["host"] + orgs, rows,
                        title="transition coverage by configuration")


def render_latencies(matrix, percentiles=(50, 90, 99)):
    """Per-cell span-latency percentile table (ticks)."""
    headers = ["config", "span kind", "count"] + [f"p{p}" for p in percentiles]
    rows = []
    for key in sorted(matrix.cells):
        cell = matrix.cells[key]
        for kind in sorted(cell.span_hists):
            hist = cell.span_hists[kind]
            rows.append([key, kind, hist.count]
                        + [f"{hist.percentile(p / 100):.1f}" for p in percentiles])
    if not rows:
        return "span latencies: no telemetry recorded (run with telemetry on)"
    return format_table(headers, rows, title="span latency percentiles (ticks)")


def render_statuses(matrix):
    """Per-cell span outcome table — timeouts and orphans jump out here."""
    rows = []
    for key in sorted(matrix.cells):
        cell = matrix.cells[key]
        for (kind, status), count in sorted(cell.span_statuses.items()):
            rows.append([key, kind, status, count])
    if not rows:
        return ""
    return format_table(["config", "span kind", "status", "count"], rows,
                        title="span outcomes")


def render_missing(matrix, limit=12, reachable=None):
    """The transitions each cell never executed (coverage holes).

    With ``reachable`` (explorer output) the list becomes authoritative:
    only reachable-but-uncovered transitions are reported, and the count
    of proven-unreachable table rows is shown separately.
    """
    lines = []
    for key in sorted(matrix.cells):
        cell = matrix.cells[key]
        missing = cell.missing_transitions(reachable)
        excluded = 0
        if reachable is not None:
            excluded = len(cell.missing_transitions()) - len(missing)
        if not missing:
            if excluded:
                lines.append(f"{key}: 0 reachable uncovered transition(s) "
                             f"({excluded} proven unreachable excluded)")
            continue
        shown = missing[:limit]
        label = ("uncovered reachable transition(s)" if reachable is not None
                 else "uncovered transition(s)")
        tail = (f" ({excluded} proven unreachable excluded)"
                if excluded else "")
        lines.append(f"{key}: {len(missing)} {label}{tail}")
        for ctype, state, event in shown:
            lines.append(f"    {ctype}: {state} x {event}")
        if len(missing) > len(shown):
            lines.append(f"    ... and {len(missing) - len(shown)} more")
    if not lines:
        return "no coverage holes: every declared transition executed"
    return "\n".join(lines)


def render_dropped_warning(matrix):
    """Warning when any cell's span ring evicted closed spans.

    Dropped spans mean the latency percentiles and outcome counts above
    under-sample the *early* part of the affected runs; the warning names
    the cells so truncated numbers are never read as complete ones.
    """
    dropped = {
        key: cell.spans_dropped
        for key, cell in sorted(matrix.cells.items())
        if cell.spans_dropped
    }
    if not dropped:
        return ""
    total = sum(dropped.values())
    cells = ", ".join(f"{key} ({count})" for key, count in dropped.items())
    return (f"WARNING: {total} closed span(s) evicted from bounded recorder "
            f"rings — latency percentiles under-sample early-run spans.\n"
            f"  affected cells: {cells}\n"
            f"  raise Telemetry(span_capacity=...) to record longer runs fully")


def render_blame(blame, top=5):
    """Blame breakdown + slowest transactions from a ``BlameMatrix``.

    ``blame`` may be a live :class:`~repro.obs.lineage.BlameMatrix` or its
    ``as_dict()`` payload (the form campaign results carry). Per-cell
    rows show what fraction of total span ticks each segment claimed;
    the tail lists the top-N slowest transactions with their critical
    paths.
    """
    from repro.obs.lineage import SEGMENTS, BlameMatrix

    if isinstance(blame, dict):
        blame = BlameMatrix.from_dict(blame)
    rows = blame.rows()
    if not rows:
        return ("blame: no lineage recorded "
                "(enable SystemConfig(lineage=True) / --lineage)")
    headers = (["config", "span kind", "spans", "p50", "p99"]
               + list(SEGMENTS))
    table_rows = []
    for row in rows:
        total = row["total_ticks"]
        segments = row["segments"]
        cells = []
        for segment in SEGMENTS:
            ticks = segments.get(segment, 0)
            cells.append(f"{100.0 * ticks / total:5.1f}%" if total and ticks
                         else "-")
        table_rows.append(
            [row["config"], row["kind"], row["spans"],
             f"{row['p50']:.0f}", f"{row['p99']:.0f}"] + cells
        )
    sections = [format_table(headers, table_rows,
                             title="blame breakdown (% of span ticks)")]
    top_entries = blame.top_spans()[:top]
    if top_entries:
        lines = [f"slowest {len(top_entries)} transaction(s) with critical paths:"]
        for entry in top_entries:
            addr = (f"{entry['addr']:#x}" if isinstance(entry["addr"], int)
                    else str(entry["addr"]))
            lines.append(
                f"  {entry['duration']:>8} ticks  {entry['config']}"
                f"  seed={entry['seed']}  {entry['kind']} {addr}"
                f" [{entry['status']}]"
            )
            path = " -> ".join(
                f"{bucket}:{ticks}" for bucket, ticks in entry["path"]
            )
            lines.append(f"      {path or '(no path recorded)'}")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def render_matrix(matrix, percentiles=(50, 90, 99), missing_limit=12,
                  reachable=None):
    """Full report: heatmap, latency percentiles, outcomes, holes.

    ``reachable`` (see :meth:`CellSummary.missing_transitions`) upgrades
    the coverage-hole section to the explorer-authoritative uncovered
    list.
    """
    sections = [render_heatmap(matrix), render_latencies(matrix, percentiles)]
    statuses = render_statuses(matrix)
    if statuses:
        sections.append(statuses)
    warning = render_dropped_warning(matrix)
    if warning:
        sections.append(warning)
    sections.append(render_missing(matrix, limit=missing_limit,
                                   reachable=reachable))
    return "\n\n".join(sections)
