"""Chrome trace-event JSON export for :class:`~repro.obs.spans.Telemetry`.

Produces the JSON object format of the Trace Event spec (the one
``chrome://tracing`` and https://ui.perfetto.dev load directly):

* **pid 1 — transactions**: one thread per component, one "X" complete
  slice per span, with phase sub-slices nested inside. Overlapping spans
  on the same component spread across lanes (extra tids) so nothing is
  hidden.
* **pid 2 — protocol**: one thread per controller, an instant per
  executed (state, event) transition.
* **pid 3 — faults**: planned :class:`~repro.sim.faults.FaultWindow`
  ranges as slices per link, injected faults and guarantee marks as
  instants.
* **pid 4 — counters**: "C" counter tracks from the telemetry time
  series, real per-component occupancy (bucketed ``busy_ticks`` from
  :meth:`~repro.sim.component.Component.note_busy`), and derived
  transition-density occupancy for components that never go busy.

Ticks map 1:1 to microseconds (``ts``/``dur``), so a 10k-tick run reads
as a 10 ms trace — the absolute unit is arbitrary, relative timing is
what matters.
"""

import json

PID_SPANS = 1
PID_PROTOCOL = 2
PID_FAULTS = 3
PID_COUNTERS = 4

#: How many buckets the derived occupancy counters use across the run.
OCCUPANCY_BUCKETS = 200


def _meta(events, pid, name, tid=None):
    if tid is None:
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name", "args": {"name": name}})
    else:
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name", "args": {"name": name}})


def _allocate_lanes(spans):
    """Greedy interval-graph coloring: span -> lane index.

    Spans on one component may overlap (a probe racing a Put); each gets
    the lowest lane whose previous occupant already ended.
    """
    lanes = []  # lane -> end tick of last span placed there
    assignment = {}
    for span in sorted(spans, key=lambda s: (s.start, s.sid)):
        for lane, busy_until in enumerate(lanes):
            if span.start >= busy_until:
                lanes[lane] = span.end
                assignment[span.sid] = lane
                break
        else:
            assignment[span.sid] = len(lanes)
            lanes.append(span.end)
    return assignment


def _span_args(span):
    args = {"sid": span.sid, "status": span.status}
    if span.addr is not None:
        args["addr"] = (f"{span.addr:#x}" if isinstance(span.addr, int)
                        else str(span.addr))
    for key, value in span.meta.items():
        args[key] = value if isinstance(value, (int, float, bool)) else str(value)
    return args


def _emit_spans(events, telemetry):
    by_component = {}
    for span in telemetry.spans.closed:
        by_component.setdefault(span.component, []).append(span)

    placed = {}  # sid -> (ts, dur, tid), for the causal flow arrows
    tid = 0
    for component in sorted(by_component):
        spans = by_component[component]
        lane_of = _allocate_lanes(spans)
        lane_count = max(lane_of.values()) + 1 if lane_of else 1
        for lane in range(lane_count):
            suffix = "" if lane == 0 else f" (lane {lane})"
            _meta(events, PID_SPANS, f"{component}{suffix}", tid=tid + lane)
        for span in spans:
            span_tid = tid + lane_of[span.sid]
            dur = span.end - span.start
            placed[span.sid] = (span.start, max(dur, 1), span_tid)
            events.append({
                "ph": "X", "pid": PID_SPANS, "tid": span_tid,
                "ts": span.start, "dur": max(dur, 1),
                "name": span.kind, "cat": "span",
                "args": _span_args(span),
            })
            # Phase sub-slices nest inside the parent by containment:
            # each covers [phase tick, next phase tick or span end).
            boundaries = list(span.phases) + [("end", span.end)]
            for (name, start), (_next_name, nxt) in zip(boundaries, boundaries[1:]):
                events.append({
                    "ph": "X", "pid": PID_SPANS, "tid": span_tid,
                    "ts": start, "dur": max(nxt - start, 1),
                    "name": name, "cat": "phase",
                    "args": {"sid": span.sid},
                })
        tid += lane_count
    return placed


def _emit_flows(events, telemetry, placed):
    """Flow arrows between causally linked spans.

    The lineage blame walk records ``(enclosing sid, caused sid)`` pairs
    whenever two spans' critical paths share a causal record. Each pair
    becomes one Chrome flow: ``"s"`` anchored on the earlier (caused)
    span, ``"f"`` (binding-point ``"e"``: enclosing slice) on the later
    one. Arrows with either endpoint outside the emitted span set are
    skipped — the validator rejects dangling flows.
    """
    lineage = getattr(telemetry, "lineage", None)
    if lineage is None or not lineage.flows:
        return
    flow_id = 0
    for parent_sid, child_sid in lineage.flows:
        parent = placed.get(parent_sid)
        child = placed.get(child_sid)
        if parent is None or child is None:
            continue
        parent_ts, parent_dur, parent_tid = parent
        child_ts, _child_dur, child_tid = child
        flow_id += 1
        events.append({
            "ph": "s", "pid": PID_SPANS, "tid": child_tid,
            "ts": child_ts, "id": flow_id,
            "name": "cause", "cat": "flow",
        })
        # clamp into the destination slice so the binding is unambiguous;
        # child_ts <= parent end always (the child closed first), so the
        # arrow never points backwards in time.
        events.append({
            "ph": "f", "bp": "e", "pid": PID_SPANS, "tid": parent_tid,
            "ts": min(max(child_ts, parent_ts), parent_ts + parent_dur),
            "id": flow_id, "name": "cause", "cat": "flow",
        })


def _emit_transitions(events, telemetry):
    if not telemetry.transitions:
        return
    tids = {}
    for tick, component, ctype, state, event in telemetry.transitions:
        tid = tids.get(component)
        if tid is None:
            tid = len(tids)
            tids[component] = tid
            _meta(events, PID_PROTOCOL, f"{component} [{ctype}]", tid=tid)
        events.append({
            "ph": "i", "pid": PID_PROTOCOL, "tid": tid, "ts": tick, "s": "t",
            "name": f"{state}/{event}", "cat": "transition",
        })


def _emit_faults(events, telemetry, fault_plan):
    tids = {}

    def link_tid(link):
        tid = tids.get(link)
        if tid is None:
            tid = len(tids) + 1  # tid 0 is the marks thread
            tids[link] = tid
            _meta(events, PID_FAULTS, f"link {link}", tid=tid)
        return tid

    _meta(events, PID_FAULTS, "marks", tid=0)

    if fault_plan is not None:
        for link, link_faults in sorted(getattr(fault_plan, "links", {}).items()):
            tid = link_tid(link)
            for window in getattr(link_faults, "windows", ()):
                events.append({
                    "ph": "X", "pid": PID_FAULTS, "tid": tid,
                    "ts": window.start, "dur": max(window.end - window.start, 1),
                    "name": f"window:{window.kind}", "cat": "fault-window",
                    "args": {"rate": window.rate},
                })

    for tick, link, kind, mtype in telemetry.faults:
        events.append({
            "ph": "i", "pid": PID_FAULTS, "tid": link_tid(link), "ts": tick,
            "s": "t", "name": kind, "cat": "fault",
            "args": {"mtype": mtype} if mtype else {},
        })

    for tick, kind, component, name, addr in telemetry.marks:
        args = {}
        if component:
            args["component"] = component
        if addr is not None:
            args["addr"] = f"{addr:#x}" if isinstance(addr, int) else str(addr)
        events.append({
            "ph": "i", "pid": PID_FAULTS, "tid": 0, "ts": tick, "s": "p",
            "name": f"{kind}:{name}" if name else kind, "cat": "mark",
            "args": args,
        })


def _emit_counters(events, telemetry):
    for sample in telemetry.series:
        tick = sample["tick"]
        for key, value in sample.items():
            if key == "tick" or not isinstance(value, (int, float)):
                continue
            events.append({
                "ph": "C", "pid": PID_COUNTERS, "tid": 0, "ts": tick,
                "name": key, "cat": "series", "args": {"value": value},
            })

    # Real occupancy: the busy windows Component.note_busy recorded.
    # Bucketed busy ticks per component; each component's track sums to
    # exactly its simulator-side ``busy_ticks`` counter.
    busy = getattr(telemetry, "busy", None) or ()
    measured = set()
    if busy:
        last_tick = busy[-1][0]
        bucket = max(1, (last_tick + 1) // OCCUPANCY_BUCKETS)
        totals = {}
        for tick, component, ticks in busy:
            slot = (tick // bucket) * bucket
            comp_totals = totals.setdefault(component, {})
            comp_totals[slot] = comp_totals.get(slot, 0) + ticks
        measured = set(totals)
        for component in sorted(totals):
            for slot in sorted(totals[component]):
                events.append({
                    "ph": "C", "pid": PID_COUNTERS, "tid": 0, "ts": slot,
                    "name": f"occupancy.{component}", "cat": "occupancy",
                    "args": {"busy_ticks": totals[component][slot]},
                })

    # Derived occupancy for zero-occupancy components: transitions executed
    # per bucket — a poor man's utilization track, visible even without a
    # series. Components with real busy accounting above are skipped so one
    # track name never mixes the two units.
    transitions = telemetry.transitions
    if not transitions:
        return
    last_tick = transitions[-1][0]
    bucket = max(1, (last_tick + 1) // OCCUPANCY_BUCKETS)
    counts = {}
    for tick, component, _ctype, _state, _event in transitions:
        if component in measured:
            continue
        counts.setdefault(component, {})
        slot = (tick // bucket) * bucket
        comp_counts = counts[component]
        comp_counts[slot] = comp_counts.get(slot, 0) + 1
    for component in sorted(counts):
        for slot in sorted(counts[component]):
            events.append({
                "ph": "C", "pid": PID_COUNTERS, "tid": 0, "ts": slot,
                "name": f"occupancy.{component}", "cat": "occupancy",
                "args": {"transitions": counts[component][slot]},
            })


def build_trace(telemetry, fault_plan=None, label=""):
    """Render a telemetry recording as a Chrome trace-event JSON object."""
    events = []
    _meta(events, PID_SPANS, "transactions")
    _meta(events, PID_PROTOCOL, "protocol transitions")
    _meta(events, PID_FAULTS, "faults & marks")
    _meta(events, PID_COUNTERS, "counters")
    _meta(events, PID_COUNTERS, "counters", tid=0)

    placed = _emit_spans(events, telemetry)
    _emit_flows(events, telemetry, placed)
    _emit_transitions(events, telemetry)
    _emit_faults(events, telemetry, fault_plan)
    _emit_counters(events, telemetry)

    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "tick_unit": "1 tick = 1 us",
        },
    }
    if label:
        payload["otherData"]["config"] = label
    return payload


#: Event phases we emit; validation rejects anything else.
_KNOWN_PHASES = {"X", "i", "C", "M", "s", "t", "f"}
_INSTANT_SCOPES = {"g", "p", "t"}
_FLOW_PHASES = {"s", "t", "f"}


def validate_trace(payload):
    """Check ``payload`` against the Chrome trace-event JSON object format.

    Returns a list of problem strings — empty means the trace is loadable
    by chrome://tracing and Perfetto. Used by CI to gate the uploaded
    trace artifact.
    """
    problems = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    # flow bookkeeping: every bind id needs a start ("s") and a terminal
    # ("f"); steps ("t") may only ride an id that has both
    flow_starts = {}
    flow_ends = {}
    flow_steps = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing integer {field}")
        if ph == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                problems.append(f"{where}: metadata name {event.get('name')!r}")
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                problems.append(f"{where}: metadata needs args.name string")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0, got {dur!r}")
        elif ph == "i":
            if event.get("s", "t") not in _INSTANT_SCOPES:
                problems.append(f"{where}: instant scope {event.get('s')!r}")
        elif ph in _FLOW_PHASES:
            bind = event.get("id")
            if not isinstance(bind, (int, str)):
                problems.append(f"{where}: flow event needs an id, "
                                f"got {bind!r}")
                continue
            if ph == "f" and event.get("bp", "e") != "e":
                problems.append(
                    f"{where}: flow finish bp must be 'e', "
                    f"got {event.get('bp')!r}"
                )
            bucket = (flow_starts if ph == "s"
                      else flow_ends if ph == "f" else flow_steps)
            bucket.setdefault(bind, index)
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter needs args")
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                problems.append(f"{where}: counter args must be numeric")
            elif event.get("cat") == "series" and set(args) != {"value"}:
                # series tracks carry exactly one "value" arg; extra or
                # renamed keys would silently fork a second counter track
                problems.append(
                    f"{where}: series counter args must be exactly "
                    f"{{'value'}}, got {sorted(args)}"
                )
        if ph == "X" and event.get("cat") == "fault-window":
            args = event.get("args")
            rate = args.get("rate") if isinstance(args, dict) else None
            if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
                problems.append(
                    f"{where}: fault-window needs numeric args.rate in "
                    f"[0, 1], got {rate!r}"
                )
    for bind, index in sorted(flow_starts.items(), key=lambda kv: kv[1]):
        if bind not in flow_ends:
            problems.append(
                f"traceEvents[{index}]: flow id {bind!r} starts but "
                f"never finishes (dangling arrow)"
            )
    for bind, index in sorted(flow_ends.items(), key=lambda kv: kv[1]):
        if bind not in flow_starts:
            problems.append(
                f"traceEvents[{index}]: flow id {bind!r} finishes "
                f"without a start (dangling arrow)"
            )
    for bind, index in sorted(flow_steps.items(), key=lambda kv: kv[1]):
        if bind not in flow_starts or bind not in flow_ends:
            problems.append(
                f"traceEvents[{index}]: flow step id {bind!r} lacks a "
                f"matching start/finish"
            )
    return problems


def write_trace(payload, path):
    """Validate and write ``payload`` to ``path``; returns the event count."""
    problems = validate_trace(payload)
    if problems:
        raise ValueError(
            "refusing to write invalid trace: " + "; ".join(problems[:5])
        )
    with open(path, "w") as fh:
        json.dump(payload, fh, separators=(",", ":"))
    return len(payload["traceEvents"])
