"""Load/store sequencer.

The sequencer is the CPU- (or accelerator-core-) side of a cache
controller's mandatory queue: workloads issue byte loads and stores, the
sequencer tracks outstanding requests and completion latency, and delivers
completions back to workload callbacks. It replaces gem5-gpu's timing CPU
models — instruction semantics are irrelevant to coherence behavior, the
load/store stream is what exercises the protocols.
"""

from repro.protocols.common import CpuOp
from repro.sim.component import Component
from repro.sim.message import Message


class OutstandingOp:
    """Bookkeeping for one in-flight load or store."""

    __slots__ = ("msg", "callback", "issued_at", "span")

    def __init__(self, msg, callback, issued_at, span=None):
        self.msg = msg
        self.callback = callback
        self.issued_at = issued_at
        self.span = span


class Sequencer(Component):
    """Issues loads/stores into an attached cache controller.

    Any number of requests may be outstanding (subject to
    ``max_outstanding``); the attached controller completes them in any
    order via :meth:`request_done`.
    """

    PORTS = ()

    def __init__(self, sim, name, issue_latency=1, response_latency=0, max_outstanding=16):
        super().__init__(sim, name)
        self.cache = None
        self.issue_latency = issue_latency
        self.response_latency = response_latency
        self.max_outstanding = max_outstanding
        self.outstanding = {}
        # pre-bound hot-path counters (no-ops when metrics are off)
        self._issued_sink = self.stats.sink("ops_issued")
        self._completed_sink = self.stats.sink("ops_completed")

    def attach(self, cache_controller):
        """Bind to the L1-like controller this sequencer feeds."""
        self.cache = cache_controller
        cache_controller.attach_sequencer(self)

    # -- issue -----------------------------------------------------------------

    def can_issue(self):
        return self.cache is not None and len(self.outstanding) < self.max_outstanding

    def load(self, addr, callback=None):
        """Issue a byte load. Returns the request message."""
        return self._issue(CpuOp.Load, addr, None, callback)

    def store(self, addr, value, callback=None):
        """Issue a byte store of ``value``. Returns the request message."""
        return self._issue(CpuOp.Store, addr, value, callback)

    def _issue(self, op, addr, value, callback):
        if not self.can_issue():
            raise RuntimeError(f"{self.name}: cannot issue (full or unattached)")
        msg = Message(op, addr, sender=self.name, dest=self.cache.name, value=value)
        now = self.sim.tick
        span = None
        obs = self.sim.obs
        if obs is not None:
            span = obs.spans.start(f"op_{op.name.lower()}", self.name, addr, now)
        self.outstanding[msg.uid] = OutstandingOp(msg, callback, now, span=span)
        lineage = self.sim.lineage
        if lineage is not None:
            # Synthetic chain root: the mandatory-queue delivery bypasses
            # the Network hook. cause is pinned to 0 because _issue may run
            # inside a completion callback (i.e. while another message's
            # handler is the current cause) and a new CPU op is not caused
            # by the op that just finished.
            lineage.record_send(msg, now, now + self.issue_latency,
                                self.issue_latency, site="issue", cause=0)
        self.cache.deliver("mandatory", now + self.issue_latency, msg)
        self._issued_sink.inc()
        return msg

    # -- completion ----------------------------------------------------------------

    def request_done(self, msg, data):
        """Called by the cache controller when ``msg`` completes.

        ``response_latency`` models a return link (the host-side-cache
        organization pays it on every access).
        """
        record = self.outstanding.pop(msg.uid)
        if record.span is not None:
            obs = self.sim.obs
            if obs is not None:
                obs.spans.phase(record.span, "cache_answered", self.sim.tick)
        if self.response_latency:
            self.sim.schedule(self.response_latency, self._complete, record, msg, data)
        else:
            self._complete(record, msg, data)

    def _complete(self, record, msg, data):
        latency = self.sim.tick - record.issued_at
        self._completed_sink.inc()
        self.stats.observe("op_latency", latency)
        if record.span is not None:
            obs = self.sim.obs
            if obs is not None:
                obs.spans.finish(record.span, self.sim.tick, status="ok")
        if record.callback is not None:
            record.callback(msg, data)
        # The op message's life ends here: the controller dropped its
        # tbe.origin reference when the transaction closed, the callback
        # has run, and nothing downstream may keep the instance.
        msg.release()

    def drained(self):
        return not self.outstanding

    def oldest_pending_tick(self, now):
        """Outstanding ops count as pending work for the deadlock watchdog."""
        if not self.outstanding:
            return None
        return min(record.issued_at for record in self.outstanding.values())

    def snapshot_state(self):
        """Logical outstanding-op set for the reachability explorer.

        Issue ticks and message uids are history, not state: two runs
        with the same ops in flight must snapshot identically.
        """
        return {
            "outstanding": tuple(sorted(
                (record.msg.addr, record.msg.mtype.name, record.msg.value)
                for record in self.outstanding.values()
            )),
        }
