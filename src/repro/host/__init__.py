"""Host-side system components: CPU sequencers, host-side accelerator cache,
system builders for the paper's 12 evaluated configurations."""

from repro.host.cpu import Sequencer

__all__ = ["Sequencer"]
