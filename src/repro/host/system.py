"""System builder: assemble any of the paper's evaluated configurations.

``build_system(config)`` wires up the host protocol, the chosen
accelerator organization, the networks (unordered host interconnect,
ordered XG<->accelerator link), sequencers for every CPU and accelerator
core, and — for XG organizations — the Crossing Guard with its permission
table, rate limiter, and OS error log.
"""

from repro.accel.buggy import DeafAccel, FloodingAccel, FuzzingAccel, WrongResponderAccel
from repro.accel.l1_single import AccelL1, AccelL1Mode
from repro.accel.rogue import RogueAccel
from repro.accel.streaming import StreamingAccelL1
from repro.accel.two_level import AccelL2Shared
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.cpu import Sequencer
from repro.memory.main_memory import MainMemory
from repro.protocols.hammer.cache import HammerCache
from repro.protocols.hammer.directory import HammerDirectory
from repro.protocols.mesi.l1 import MesiL1
from repro.protocols.mesi.l2 import MesiL2
from repro.protocols.mesif.l1 import MesifL1
from repro.protocols.mesif.l2 import MesifL2
from repro.sim.message import set_pool_debug
from repro.sim.network import FixedLatency, Network, RandomLatency
from repro.sim.simulator import Simulator
from repro.xg.errors import XGErrorLog
from repro.xg.hammer_xg import HammerCrossingGuard
from repro.xg.mesi_xg import MesiCrossingGuard
from repro.xg.mesif_xg import MesifCrossingGuard
from repro.xg.permissions import PagePermission, PermissionTable
from repro.xg.rate_limiter import RateLimiter


class System:
    """A built simulation: simulator, networks, controllers, sequencers."""

    def __init__(self, config):
        self.config = config
        self.sim = None
        self.host_net = None
        self.accel_net = None
        self.memory = None
        self.cpu_seqs = []
        self.accel_seqs = []
        self.cpu_caches = []
        self.accel_caches = []
        self.accel_l2 = None
        self.accel_l2s = []
        self.xgs = []
        self.error_logs = []
        self.permissions_list = []
        #: per-accelerator (xg, [accel caches], accel_l2 or None)
        self.xg_groups = []
        self.directory = None  # hammer dir or mesi L2
        #: online invariant watchdog (None unless config.invariant_interval)
        self.watchdog = None

    # first-accelerator conveniences (the common single-accel case)
    @property
    def xg(self):
        return self.xgs[0] if self.xgs else None

    @property
    def error_log(self):
        return self.error_logs[0] if self.error_logs else None

    @property
    def permissions(self):
        return self.permissions_list[0] if self.permissions_list else None

    @property
    def sequencers(self):
        return self.cpu_seqs + self.accel_seqs

    def controllers(self):
        """Every coherence controller, for coverage collection."""
        out = list(self.cpu_caches) + list(self.accel_caches)
        if self.accel_l2 is not None:
            out.append(self.accel_l2)
        out.extend(self.accel_l2s[1:])  # first is in accel_l2 handling below
        out.extend(self.xgs)
        out.append(self.directory)
        return out

    def run_until_drained(self, max_ticks=100_000_000):
        reason = self.sim.run(max_ticks=max_ticks)
        if reason != "idle":
            raise RuntimeError(f"system did not drain: {reason}")
        return self

    def stats_summary(self):
        """The numbers a report needs, in one flat dict."""

        def latency(seqs):
            total = count = 0
            for seq in seqs:
                hist = seq.stats.histogram("op_latency")
                total += hist.total
                count += hist.count
            return (total / count if count else 0.0), count

        cpu_latency, cpu_ops = latency(self.cpu_seqs)
        accel_latency, accel_ops = latency(self.accel_seqs)
        summary = {
            "config": self.config.label,
            "ticks": self.sim.tick,
            "cpu_ops": cpu_ops,
            "cpu_mean_latency": cpu_latency,
            "accel_ops": accel_ops,
            "accel_mean_latency": accel_latency,
            "host_net_messages": self.sim.stats_for("network.host").get("messages"),
            "accel_net_messages": self.sim.stats_for("network.accel").get("messages"),
        }
        if self.xgs:
            summary["xg_to_host_msgs"] = sum(
                xg.stats.get("xg_to_host_msgs") for xg in self.xgs
            )
            summary["guarantee_violations"] = sum(len(log) for log in self.error_logs)
            summary["xg_storage_bits"] = sum(
                xg.storage_report()["total_bits"] for xg in self.xgs
            )
        return summary


def _latency(lo, hi):
    return FixedLatency(lo) if lo == hi else RandomLatency(lo, hi)


def build_system(config: SystemConfig) -> System:
    set_pool_debug(config.pool_debug)
    system = System(config)
    sim = Simulator(
        seed=config.seed,
        deadlock_threshold=config.deadlock_threshold,
        trace_depth=config.trace_depth,
        metrics=config.metrics,
    )
    system.sim = sim
    # Records only flow once Telemetry attaches a LineageTracker; this
    # default just makes a later `Telemetry(sim)` honor the config.
    sim.lineage_default = config.lineage
    system.memory = MainMemory(block_size=config.block_size, latency=config.mem_latency)

    if config.randomize_latencies:
        host_lat = RandomLatency(config.random_lat_lo, config.random_lat_hi)
        accel_lat = RandomLatency(config.random_lat_lo, config.random_lat_hi)
    else:
        host_lat = _latency(config.host_net_lo, config.host_net_hi)
        accel_lat = _latency(config.accel_net_lo, config.accel_net_hi)
    host_net = Network(
        sim, host_lat, ordered=False, name="host",
        bandwidth=config.host_net_bandwidth, fault_plan=config.fault_plan,
    )
    # The XG<->accelerator network must be ordered (Section 2.1). XG sits
    # at the host edge of the physical crossing, so traffic to/from it
    # pays the crossing while intra-accelerator traffic stays fast.
    accel_net = Network(
        sim, accel_lat, ordered=True, name="accel", fault_plan=config.fault_plan
    )
    system.host_net = host_net
    system.accel_net = accel_net

    # Each accelerator is one agent on the host fabric regardless of
    # organization: an accel-side cache, a host-side cache, or an XG.
    xg_present = config.org is AccelOrg.XG
    n_agents = config.n_accelerators if xg_present else 1
    n_host_caches = config.n_cpus + n_agents

    # -- host protocol fabric ----------------------------------------------------
    if config.host in (HostProtocol.MESI, HostProtocol.MESIF):
        l2_cls = MesiL2 if config.host is HostProtocol.MESI else MesifL2
        l1_cls = MesiL1 if config.host is HostProtocol.MESI else MesifL1
        directory = l2_cls(
            sim,
            "l2",
            host_net,
            system.memory,
            num_sets=config.shared_l2_sets,
            assoc=config.shared_l2_assoc,
            block_size=config.block_size,
            xg_tolerant=xg_present,
        )
        host_net.attach(directory)
        dir_name = "l2"

        def make_host_cache(name, sets, assoc):
            cache = l1_cls(
                sim, name, host_net, dir_name,
                num_sets=sets, assoc=assoc, block_size=config.block_size,
            )
            host_net.attach(cache)
            return cache

    else:
        directory = HammerDirectory(
            sim, "dir", host_net, system.memory, block_size=config.block_size
        )
        host_net.attach(directory)
        dir_name = "dir"
        n_peers = n_host_caches - 1

        def make_host_cache(name, sets, assoc):
            cache = HammerCache(
                sim, name, host_net, dir_name, n_peers,
                num_sets=sets, assoc=assoc, block_size=config.block_size,
                xg_tolerant=xg_present,
            )
            host_net.attach(cache)
            directory.add_cache(name)
            return cache

    directory.occupancy = config.directory_occupancy
    system.directory = directory

    # -- CPU cores -------------------------------------------------------------------
    for i in range(config.n_cpus):
        cache = make_host_cache(f"cpu_l1.{i}", config.cpu_l1_sets, config.cpu_l1_assoc)
        seq = Sequencer(sim, f"cpu.{i}")
        seq.attach(cache)
        system.cpu_caches.append(cache)
        system.cpu_seqs.append(seq)

    # -- accelerator organization ----------------------------------------------------------
    if config.org is AccelOrg.ACCEL_SIDE:
        # Unsafe: the accelerator's cache speaks the raw host protocol
        # across the crossing (Figure 2a). One cache, shared by the
        # accelerator's cores, physically at the accelerator.
        cache = make_host_cache(
            "accel_hostproto", config.accel_l1_sets, config.accel_l1_assoc
        )
        host_net.set_endpoint_delay("accel_hostproto", config.crossing_latency)
        system.accel_caches.append(cache)
        for i in range(config.n_accel_cores):
            seq = Sequencer(sim, f"accel.{i}")
            seq.attach(cache)
            system.accel_seqs.append(seq)
    elif config.org is AccelOrg.HOST_SIDE:
        # Safe but slow: no cache at the accelerator; every access pays
        # the crossing both ways (Figure 2b).
        cache = make_host_cache("hostside", config.accel_l1_sets, config.accel_l1_assoc)
        system.accel_caches.append(cache)
        for i in range(config.n_accel_cores):
            seq = Sequencer(
                sim,
                f"accel.{i}",
                issue_latency=config.crossing_latency,
                response_latency=config.crossing_latency,
            )
            seq.attach(cache)
            system.accel_seqs.append(seq)
    else:
        # Crossing Guard (Figure 2c/2d): one XG instance per accelerator.
        default = {
            "rw": PagePermission.READ_WRITE,
            "read": PagePermission.READ,
            "none": PagePermission.NONE,
        }[config.permissions_default]
        for accel_index in range(config.n_accelerators):
            suffix = "" if accel_index == 0 else f".{accel_index}"
            xg_name = f"xg{suffix}"
            permissions = PermissionTable(default=default)
            error_log = XGErrorLog(
                disable_after=config.disable_after,
                warn_after=config.warn_after,
                throttle_after=config.throttle_after,
            )
            if config.rate_limit is not None:
                rate, period = config.rate_limit
                limiter = RateLimiter(rate=rate, period=period)
            else:
                limiter = RateLimiter()
            xg_kwargs = dict(
                variant=config.xg_variant,
                permissions=permissions,
                error_log=error_log,
                rate_limiter=limiter,
                accel_timeout=config.accel_timeout,
                probe_retries=config.probe_retries,
                suppress_puts=config.suppress_puts,
                throttle_rate=config.throttle_rate,
                block_size=config.block_size,
            )
            if config.host is HostProtocol.MESI:
                xg = MesiCrossingGuard(
                    sim, xg_name, host_net, accel_net, dir_name, **xg_kwargs
                )
            elif config.host is HostProtocol.MESIF:
                xg = MesifCrossingGuard(
                    sim, xg_name, host_net, accel_net, dir_name, **xg_kwargs
                )
            else:
                xg = HammerCrossingGuard(
                    sim, xg_name, host_net, accel_net, dir_name, n_peers, **xg_kwargs
                )
                directory.add_cache(xg_name)
            host_net.attach(xg)
            accel_net.attach(xg)
            if not config.randomize_latencies:
                accel_net.set_endpoint_delay(xg_name, config.crossing_latency)
            system.xgs.append(xg)
            system.error_logs.append(error_log)
            system.permissions_list.append(permissions)
            group_caches = []

            adversary = config.tags.get("adversary")
            if adversary is not None:
                if config.n_accelerators != 1:
                    raise ValueError("adversary tag supports a single accelerator")
                kind, kwargs = adversary
                cls = {
                    "fuzz": FuzzingAccel,
                    "deaf": DeafAccel,
                    "wrong": WrongResponderAccel,
                    "flood": FloodingAccel,
                    "rogue": RogueAccel,
                }[kind]
                accel = cls(
                    sim, "adversary", accel_net, xg_name,
                    block_size=config.block_size, **kwargs,
                )
                accel_net.attach(accel)
                xg.attach_accelerator("adversary")
                system.accel_caches.append(accel)
                system.xg_groups.append((xg, [accel], None))
                continue
            accel_mode = AccelL1Mode[config.accel_mode.upper()]
            core_base = accel_index * config.n_accel_cores
            if config.accel_levels == 1:
                if config.accel_prefetch_depth > 0:
                    l1 = StreamingAccelL1(
                        sim, f"accel_l1{suffix}", accel_net, xg_name,
                        num_sets=config.accel_l1_sets, assoc=config.accel_l1_assoc,
                        block_size=config.block_size, mode=accel_mode,
                        prefetch_depth=config.accel_prefetch_depth,
                    )
                else:
                    l1 = AccelL1(
                        sim, f"accel_l1{suffix}", accel_net, xg_name,
                        num_sets=config.accel_l1_sets, assoc=config.accel_l1_assoc,
                        block_size=config.block_size, mode=accel_mode,
                    )
                accel_net.attach(l1)
                xg.attach_accelerator(l1.name)
                system.accel_caches.append(l1)
                group_caches.append(l1)
                for i in range(config.n_accel_cores):
                    seq = Sequencer(sim, f"accel.{core_base + i}")
                    seq.attach(l1)
                    system.accel_seqs.append(seq)
                system.xg_groups.append((xg, group_caches, None))
            else:
                al2 = AccelL2Shared(
                    sim, f"accel_l2{suffix}", accel_net, accel_net, xg_name,
                    num_sets=config.accel_l2_sets, assoc=config.accel_l2_assoc,
                    block_size=config.block_size,
                )
                accel_net.attach(al2)
                xg.attach_accelerator(al2.name)
                if system.accel_l2 is None:
                    system.accel_l2 = al2
                system.accel_l2s.append(al2)
                for i in range(config.n_accel_cores):
                    l1 = AccelL1(
                        sim, f"accel_l1{suffix}.{i}", accel_net, al2.name,
                        num_sets=config.accel_l1_sets, assoc=config.accel_l1_assoc,
                        block_size=config.block_size,
                    )
                    accel_net.attach(l1)
                    seq = Sequencer(sim, f"accel.{core_base + i}")
                    seq.attach(l1)
                    system.accel_caches.append(l1)
                    group_caches.append(l1)
                    system.accel_seqs.append(seq)
                system.xg_groups.append((xg, group_caches, al2))

    if config.invariant_interval:
        # Imported lazily: repro.testing.invariants imports the protocol
        # state enums, which would cycle back through this module at
        # import time.
        from repro.testing.invariants import InvariantWatchdog

        system.watchdog = sim.attach_monitor(
            InvariantWatchdog(system, interval=config.invariant_interval)
        )

    return system
