"""System configuration for the paper's evaluated organizations.

Section 3 evaluates 12 configurations: {Hammer, MESI} hosts × (
accelerator-side cache [unsafe, Figure 2a], host-side cache [Figure 2b],
XG Full State × {1, 2}-level accel caches, XG Transactional × {1, 2}-level
accel caches).
"""

import enum
from dataclasses import dataclass, field

from repro.xg.interface import XGVariant


class HostProtocol(enum.Enum):
    MESI = enum.auto()
    HAMMER = enum.auto()
    MESIF = enum.auto()  # Intel-like inclusive MESI(F)


class AccelOrg(enum.Enum):
    ACCEL_SIDE = enum.auto()  # Figure 2a: accel cache speaks raw host protocol
    HOST_SIDE = enum.auto()  # Figure 2b: no accel cache; loads cross the link
    XG = enum.auto()  # Figure 2c/2d: Crossing Guard


@dataclass
class SystemConfig:
    """Everything needed to build one simulated system."""

    host: HostProtocol = HostProtocol.MESI
    org: AccelOrg = AccelOrg.XG
    xg_variant: XGVariant = XGVariant.FULL_STATE
    accel_levels: int = 1  # 1 = Table 1 L1 only; 2 = L1s + shared accel L2
    accel_mode: str = "mesi"  # "mesi" | "msi" | "vi" (Section 2.1 degenerate designs)
    accel_prefetch_depth: int = 0  # >0: streaming accel cache with prefetch

    n_cpus: int = 2
    n_accel_cores: int = 1  # cores per accelerator
    n_accelerators: int = 1  # one Crossing Guard instance per accelerator

    # cache geometry (sets, assoc)
    cpu_l1_sets: int = 64
    cpu_l1_assoc: int = 4
    shared_l2_sets: int = 256
    shared_l2_assoc: int = 8
    accel_l1_sets: int = 64
    accel_l1_assoc: int = 4
    accel_l2_sets: int = 128
    accel_l2_assoc: int = 8
    block_size: int = 64

    # timing
    directory_occupancy: int = 0  # ticks per message at the L2/directory
    host_net_lo: int = 2
    host_net_hi: int = 2  # lo == hi -> fixed latency
    host_net_bandwidth: float = None  # msgs/tick (None = unlimited)
    accel_net_lo: int = 4
    accel_net_hi: int = 4
    crossing_latency: int = 40  # host<->accelerator boundary
    mem_latency: int = 100

    # XG knobs
    accel_timeout: int = 50000
    probe_retries: int = 1  # Invalidate re-issues before the G2c surrogate
    # quarantine ladder (cumulative violation counts; None skips a rung)
    disable_after: int = None  # OS policy: quarantine accel after N violations
    warn_after: int = None  # advisory rung: telemetry mark only
    throttle_after: int = None  # clamp the rate limiter to throttle_rate
    throttle_rate: tuple = None  # punitive (rate, period) for the throttled rung
    suppress_puts: bool = False
    rate_limit: tuple = None  # (rate, period) or None
    permissions_default: str = "rw"  # "rw" | "read" | "none"

    # online invariant watchdog sampling period in ticks; 0 disables
    invariant_interval: int = 0

    # fault injection (repro.sim.faults.FaultPlan, consulted by every
    # network on every send; None = perfectly reliable interconnect)
    fault_plan: object = None

    # simulation
    seed: int = 0
    deadlock_threshold: int = 1_000_000
    # False hands every component the shared NullStats: all counter and
    # histogram work becomes a no-op (pure-speed campaign mode)
    metrics: bool = True
    # forensic trace-ring depth; 0 disables recording entirely (fast
    # campaign mode — replay the seed with a nonzero depth for forensics)
    trace_depth: int = 64
    # causal message lineage + per-span blame attribution
    # (repro.obs.lineage); records only flow once a Telemetry hub is
    # attached, and the default is a true no-op on every hot path
    lineage: bool = False
    # message-pool debug mode: released messages are poisoned and a
    # double release raises (repro.sim.message.set_pool_debug). Global,
    # like the pool — the most recently built system wins.
    pool_debug: bool = False

    # set True by the stress harness: random message latencies
    randomize_latencies: bool = False
    random_lat_lo: int = 1
    random_lat_hi: int = 15

    tags: dict = field(default_factory=dict)

    @property
    def label(self):
        if self.org is AccelOrg.ACCEL_SIDE:
            org = "accel-side"
        elif self.org is AccelOrg.HOST_SIDE:
            org = "host-side"
        else:
            variant = "full" if self.xg_variant is XGVariant.FULL_STATE else "txn"
            org = f"xg-{variant}-L{self.accel_levels}"
        return f"{self.host.name.lower()}/{org}"


def all_evaluated_configs(hosts=(HostProtocol.HAMMER, HostProtocol.MESI), **overrides):
    """The paper's 12-configuration matrix (Section 3).

    Pass ``hosts=(..., HostProtocol.MESIF)`` to include the Intel-like
    MESI(F) host this reproduction adds beyond the paper's two.
    """
    configs = []
    for host in hosts:
        configs.append(SystemConfig(host=host, org=AccelOrg.ACCEL_SIDE, **overrides))
        configs.append(SystemConfig(host=host, org=AccelOrg.HOST_SIDE, **overrides))
        for variant in (XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL):
            for levels in (1, 2):
                configs.append(
                    SystemConfig(
                        host=host,
                        org=AccelOrg.XG,
                        xg_variant=variant,
                        accel_levels=levels,
                        **overrides,
                    )
                )
    return configs
