"""Discrete-event simulation substrate.

This subpackage provides the equivalent of the gem5 event core and the Ruby
network model used by the paper: a tick-based event queue
(:mod:`repro.sim.event`), the :class:`~repro.sim.simulator.Simulator`
scheduler with deterministic seeding and deadlock watchdog, generic
coherence :class:`~repro.sim.message.Message` carriers, and point-to-point
:mod:`~repro.sim.network` links with ordered (FIFO) or unordered
(random-latency) delivery.
"""

from repro.sim.event import Event, EventQueue
from repro.sim.message import Message
from repro.sim.network import FixedLatency, Network, RandomLatency
from repro.sim.component import Component, MessageBuffer
from repro.sim.simulator import DeadlockError, Simulator
from repro.sim.stats import Stats

__all__ = [
    "Component",
    "DeadlockError",
    "Event",
    "EventQueue",
    "FixedLatency",
    "Message",
    "MessageBuffer",
    "Network",
    "RandomLatency",
    "Simulator",
    "Stats",
]
