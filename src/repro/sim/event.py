"""Tick-based event queue.

Events are callbacks scheduled at an absolute tick. Ties are broken by
insertion order so simulation is fully deterministic for a given seed.
"""

import heapq
import itertools


class Event:
    """A scheduled callback.

    Events are created through :meth:`EventQueue.schedule` and can be
    cancelled before they fire. A cancelled event stays in the heap but is
    skipped when popped.
    """

    __slots__ = ("tick", "seq", "callback", "args", "cancelled")

    def __init__(self, tick, seq, callback, args):
        self.tick = tick
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the event from firing when its tick is reached."""
        self.cancelled = True

    def fire(self):
        """Invoke the callback unless cancelled."""
        if not self.cancelled:
            self.callback(*self.args)

    def __lt__(self, other):
        return (self.tick, self.seq) < (other.tick, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(tick={self.tick}, seq={self.seq}, {state})"


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()

    def schedule(self, tick, callback, *args):
        """Schedule ``callback(*args)`` at absolute ``tick``.

        Returns the :class:`Event`, which may be cancelled.
        """
        if tick < 0:
            raise ValueError(f"cannot schedule at negative tick {tick}")
        event = Event(tick, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self):
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_tick(self):
        """Tick of the earliest non-cancelled event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].tick
        return None

    def __len__(self):
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self):
        return self.peek_tick() is not None
