"""Tick-based event queue.

Events are callbacks scheduled at an absolute tick. Ties are broken by
insertion order so simulation is fully deterministic for a given seed.

The heap stores ``(tick, seq, event)`` triples so ordering is resolved by
C-level tuple comparison instead of a Python ``__lt__`` call per
sift step. Cancelled events stay in the heap until popped or until they
outnumber the live ones, at which point the heap is compacted in place —
``Component.request_wakeup`` cancels/reschedules constantly, so long runs
would otherwise accumulate unbounded garbage.
"""

import heapq
import itertools


class Event:
    """A scheduled callback.

    Events are created through :meth:`EventQueue.schedule` and can be
    cancelled before they fire. A cancelled event stays in the heap but is
    skipped when popped.
    """

    __slots__ = ("tick", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(self, tick, seq, callback, args, queue=None):
        self.tick = tick
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self):
        """Prevent the event from firing when its tick is reached."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._note_cancel()

    def fire(self):
        """Invoke the callback unless cancelled."""
        if not self.cancelled:
            self.callback(*self.args)

    def __lt__(self, other):
        return (self.tick, self.seq) < (other.tick, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(tick={self.tick}, seq={self.seq}, {state})"


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    #: Don't bother compacting heaps smaller than this.
    COMPACT_MIN = 64

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self._live = 0
        self._cancelled = 0

    def schedule(self, tick, callback, *args):
        """Schedule ``callback(*args)`` at absolute ``tick``.

        Returns the :class:`Event`, which may be cancelled.
        """
        if tick < 0:
            raise ValueError(f"cannot schedule at negative tick {tick}")
        seq = next(self._counter)
        event = Event(tick, seq, callback, args, queue=self)
        heapq.heappush(self._heap, (tick, seq, event))
        self._live += 1
        return event

    def _note_cancel(self):
        """A live in-heap event was cancelled; compact if mostly garbage."""
        self._live -= 1
        self._cancelled += 1
        heap = self._heap
        if self._cancelled * 2 > len(heap) and len(heap) >= self.COMPACT_MIN:
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._cancelled = 0

    def pop(self):
        """Remove and return the earliest non-cancelled event, or None."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                self._cancelled -= 1
                continue
            # detach so a late cancel() can't corrupt the live count
            event._queue = None
            self._live -= 1
            return event
        return None

    def peek_tick(self):
        """Tick of the earliest non-cancelled event, or None if empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        if heap:
            return heap[0][0]
        return None

    def __len__(self):
        return self._live

    def __bool__(self):
        return self.peek_tick() is not None
