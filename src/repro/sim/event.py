"""Tick-based event queue, struct-of-arrays edition.

Events are callbacks scheduled at an absolute tick. Ties are broken by
insertion order so simulation is fully deterministic for a given seed.

The queue no longer stores ``(tick, seq, Event)`` tuples. Pending work
lives in parallel *slot columns* — ``_objs[slot]`` holds either a thin
:class:`Event` handle or (on the allocation-free :meth:`schedule_cb`
path) the bare callback, and ``_gens[slot]`` is a generation counter
that makes integer cancellation tokens safe against slot reuse. Slots
are grouped into **per-tick buckets**: ``_buckets[tick]`` is a list
whose element 0 is the drain head index and whose tail is the FIFO of
slot indices scheduled for that tick, so insertion order *is* the
tie-break order and no per-event sequence number exists at all. The
heap (``_heap``) orders only bare tick integers — one per distinct
pending tick — so heap traffic is a tiny fraction of event traffic and
every comparison is a C-level int compare.

Cancellation tombstones a slot (``_objs[slot] = None``); tombstones are
dropped when their bucket drains (:meth:`peek_tick` and the run loop do
the same bookkeeping) or when they outnumber live events, at which point
all buckets are compacted — ``Component.request_wakeup`` historically
cancelled/rescheduled constantly, so unbounded garbage was a real
hazard; today that path uses in-place absorption plus token cancel and
rarely leaves tombstones at all.
"""

import heapq


class Event:
    """A thin handle on a scheduled callback.

    Events are created through :meth:`EventQueue.schedule` and can be
    cancelled before they fire. Cancelling after the event fired (or
    after it was already cancelled) is a no-op.
    """

    __slots__ = ("tick", "callback", "args", "cancelled", "_queue", "_slot")

    def __init__(self, tick, callback, args, queue=None, slot=0):
        self.tick = tick
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue
        self._slot = slot

    def cancel(self):
        """Prevent the event from firing when its tick is reached."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._cancel_slot(self._slot)

    def fire(self):
        """Invoke the callback unless cancelled."""
        if not self.cancelled:
            self.callback(*self.args)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(tick={self.tick}, {state})"


class EventQueue:
    """A deterministic per-tick-bucketed queue of scheduled callbacks.

    The public contract is unchanged from the tuple-heap version:
    :meth:`schedule` returns an :class:`Event` handle, ties at one tick
    fire in insertion order, :meth:`pop` yields events in (tick, order)
    sequence, and ``len()`` counts live (uncancelled) events. New in
    this version is the allocation-free fast path — :meth:`schedule_cb`
    /:meth:`cancel_token` — which trades the handle for an opaque int
    token and allocates nothing the garbage collector tracks.
    """

    #: Don't bother compacting queues smaller than this.
    COMPACT_MIN = 64

    def __init__(self):
        # Min-heap of bare tick ints, one (usually) per distinct pending
        # tick. A tick whose bucket was drained and recreated in the
        # same run step can appear twice; consumers skip ticks with no
        # bucket.
        self._heap = []
        # tick -> [head_index, slot, slot, ...]; entries start at 1.
        self._buckets = {}
        # Slot columns. _objs[slot] is an Event handle, a bare callback
        # (schedule_cb path), or None for a tombstone/free slot.
        self._objs = []
        self._gens = []
        self._free = []
        self._live = 0
        self._cancelled = 0
        # Tick currently being drained by Simulator.run; compaction must
        # not rebuild that bucket out from under the drain loop.
        self._draining_tick = None

    # -- slot plumbing ----------------------------------------------------

    def _free_slot(self, slot):
        self._objs[slot] = None
        self._gens[slot] += 1
        self._free.append(slot)

    # -- scheduling -------------------------------------------------------

    def schedule(self, tick, callback, *args):
        """Schedule ``callback(*args)`` at absolute ``tick``.

        Returns the :class:`Event`, which may be cancelled.
        """
        if tick < 0:
            raise ValueError(f"cannot schedule at negative tick {tick}")
        event = Event(tick, callback, args, queue=self)
        # _alloc_slot / _bucket_for inlined: this path runs per event.
        free = self._free
        if free:
            slot = free.pop()
            self._objs[slot] = event
        else:
            slot = len(self._objs)
            self._objs.append(event)
            self._gens.append(0)
        event._slot = slot
        bucket = self._buckets.get(tick)
        if bucket is None:
            self._buckets[tick] = [1, slot]
            heapq.heappush(self._heap, tick)
        else:
            bucket.append(slot)
        self._live += 1
        return event

    def schedule_cb(self, tick, callback):
        """Allocation-free path: schedule a no-args ``callback`` at ``tick``.

        Returns an opaque int token for :meth:`cancel_token`. No Event
        handle (or any other GC-tracked object) is created; this is the
        path component wakeups ride.
        """
        if tick < 0:
            raise ValueError(f"cannot schedule at negative tick {tick}")
        # _alloc_slot / _bucket_for inlined: this is the hottest schedule
        # path in the simulator (one call per message delivery).
        free = self._free
        if free:
            slot = free.pop()
            self._objs[slot] = callback
            gen = self._gens[slot]
        else:
            slot = len(self._objs)
            self._objs.append(callback)
            self._gens.append(0)
            gen = 0
        bucket = self._buckets.get(tick)
        if bucket is None:
            self._buckets[tick] = [1, slot]
            heapq.heappush(self._heap, tick)
        else:
            bucket.append(slot)
        self._live += 1
        return (gen << 20) | slot

    def cancel_token(self, token):
        """Cancel a :meth:`schedule_cb` entry. Stale tokens are no-ops."""
        slot = token & 0xFFFFF
        if slot >= len(self._gens) or self._gens[slot] != (token >> 20):
            return False
        if self._objs[slot] is None:
            return False
        self._cancel_slot(slot)
        return True

    def _cancel_slot(self, slot):
        """Tombstone a live slot; compact if mostly garbage."""
        self._objs[slot] = None
        self._gens[slot] += 1
        self._live -= 1
        self._cancelled += 1
        if (
            self._cancelled * 2 > self._live + self._cancelled
            and self._live + self._cancelled >= self.COMPACT_MIN
        ):
            self._compact()

    def _compact(self):
        """Drop all tombstones, rebuild buckets and the tick heap.

        The bucket currently being drained by the run loop is left
        untouched: the loop holds a direct reference to that list and
        appends race with rebuilding it.
        """
        buckets = self._buckets
        draining = self._draining_tick
        objs = self._objs
        dead_ticks = []
        for tick, bucket in buckets.items():
            if tick == draining:
                continue
            head = bucket[0]
            live = [slot for slot in bucket[head:] if objs[slot] is not None]
            # Tombstones ahead of the head were already accounted for.
            dropped = (len(bucket) - head) - len(live)
            if dropped:
                self._cancelled -= dropped
                for slot in bucket[head:]:
                    if objs[slot] is None:
                        self._free.append(slot)
            if live:
                bucket[:] = [1]
                bucket.extend(live)
            else:
                dead_ticks.append(tick)
        for tick in dead_ticks:
            del buckets[tick]
        # In place: the run loop holds a direct reference to this list.
        heap = self._heap
        heap[:] = buckets
        heapq.heapify(heap)

    # -- draining ---------------------------------------------------------

    def pop(self):
        """Remove and return the earliest non-cancelled event, or None.

        Entries scheduled through :meth:`schedule_cb` are materialized
        into detached :class:`Event` handles here; the batched run loop
        in :class:`~repro.sim.simulator.Simulator` bypasses ``pop`` and
        fires them without that wrapper.
        """
        heap = self._heap
        buckets = self._buckets
        objs = self._objs
        while heap:
            tick = heap[0]
            bucket = buckets.get(tick)
            if bucket is None:
                heapq.heappop(heap)
                continue
            i = bucket[0]
            n = len(bucket)
            while i < n:
                slot = bucket[i]
                i += 1
                obj = objs[slot]
                if obj is None:
                    self._cancelled -= 1
                    self._gens[slot] += 1
                    self._free.append(slot)
                    continue
                bucket[0] = i
                if i >= n and tick != self._draining_tick:
                    del buckets[tick]
                    heapq.heappop(heap)
                self._free_slot(slot)
                self._live -= 1
                if type(obj) is Event:
                    # Detach so a late cancel() can't touch a reused slot.
                    obj._queue = None
                    return obj
                return Event(tick, obj, ())
            if tick != self._draining_tick:
                del buckets[tick]
            heapq.heappop(heap)
        return None

    def peek_tick(self):
        """Tick of the earliest non-cancelled event, or None if empty.

        Peeking past tombstones retires them with the same bookkeeping
        the drain paths use (generation bump, slot freed, cancelled
        count decremented) — garbage accounting is unified across
        peek/pop/compaction.
        """
        heap = self._heap
        buckets = self._buckets
        objs = self._objs
        while heap:
            tick = heap[0]
            bucket = buckets.get(tick)
            if bucket is None:
                heapq.heappop(heap)
                continue
            i = bucket[0]
            n = len(bucket)
            while i < n:
                slot = bucket[i]
                if objs[slot] is not None:
                    bucket[0] = i
                    return tick
                i += 1
                self._cancelled -= 1
                self._gens[slot] += 1
                self._free.append(slot)
            # Exhausted bucket. Never unlink the one the run loop is
            # mid-drain on — a same-tick schedule may still land in it —
            # but its heap entry can go: schedule/schedule_cb re-push the
            # tick if the bucket is ever recreated.
            if tick != self._draining_tick:
                del buckets[tick]
            else:
                bucket[0] = i
            heapq.heappop(heap)
        return None

    def __len__(self):
        return self._live

    def __bool__(self):
        return self.peek_tick() is not None
