"""Seeded fault injection for the simulated interconnect.

The safety evaluation's byzantine accelerators attack Crossing Guard at
the *endpoint*; this module attacks the *links*. A :class:`FaultPlan` is
consulted by :class:`~repro.sim.network.Network` on every send and may
drop, duplicate, delay, or corrupt the message — modeling an unreliable
host-accelerator crossing (lost flits, link-layer replay duplicates,
congestion spikes, payload corruption that escaped CRC).

Everything is driven by the plan's own seeded RNG, independent of the
simulator's, so a campaign is reproducible from ``(sim seed, fault
seed, plan)`` alone and fault decisions do not perturb the latency
stream of a fault-free run.

Scheduling: each link carries base per-kind rates plus
:class:`FaultWindow` intervals that add rate inside ``[start, end)`` —
a window with ``rate=1.0`` and kind ``"drop"`` blackholes the link for
its duration.
"""

import random

DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"
CORRUPT = "corrupt"

#: Every fault kind a link can inject, in decision order.
FAULT_KINDS = (DROP, DUPLICATE, DELAY, CORRUPT)


class FaultWindow:
    """Extra fault rate of one kind during ``[start, end)`` ticks."""

    __slots__ = ("start", "end", "kind", "rate")

    def __init__(self, start, end, kind, rate=1.0):
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        if not 0 <= start < end:
            raise ValueError(f"need 0 <= start < end, got [{start}, {end})")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.start = start
        self.end = end
        self.kind = kind
        self.rate = rate

    def active(self, tick):
        return self.start <= tick < self.end

    def __repr__(self):
        return f"FaultWindow({self.start}, {self.end}, {self.kind!r}, {self.rate})"


class LinkFaults:
    """Per-link fault configuration: base rates plus scheduled windows."""

    __slots__ = ("rates", "delay_ticks", "windows")

    def __init__(
        self,
        drop=0.0,
        duplicate=0.0,
        delay=0.0,
        corrupt=0.0,
        delay_ticks=(5, 120),
        windows=(),
    ):
        self.rates = {DROP: drop, DUPLICATE: duplicate, DELAY: delay, CORRUPT: corrupt}
        for kind, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1], got {rate}")
        lo, hi = delay_ticks
        if not 1 <= lo <= hi:
            raise ValueError(f"need 1 <= lo <= hi delay ticks, got {delay_ticks}")
        self.delay_ticks = (lo, hi)
        self.windows = list(windows)

    def rate(self, kind, tick):
        """Effective rate of ``kind`` at ``tick`` (base + active windows)."""
        rate = self.rates[kind]
        for window in self.windows:
            if window.kind == kind and window.active(tick):
                rate += window.rate
        return min(rate, 1.0)

    def __repr__(self):
        base = ", ".join(f"{k}={v}" for k, v in self.rates.items() if v)
        return f"LinkFaults({base or 'quiet'}, windows={len(self.windows)})"


class FaultDecision:
    """What the plan chose to do to one message."""

    __slots__ = ("drop", "duplicate", "extra_delay", "corrupt")

    def __init__(self, drop=False, duplicate=False, extra_delay=0, corrupt=False):
        self.drop = drop
        self.duplicate = duplicate
        self.extra_delay = extra_delay
        self.corrupt = corrupt

    def __bool__(self):
        return self.drop or self.duplicate or self.corrupt or self.extra_delay > 0

    def __repr__(self):
        parts = []
        if self.drop:
            parts.append("drop")
        if self.duplicate:
            parts.append("duplicate")
        if self.extra_delay:
            parts.append(f"delay+{self.extra_delay}")
        if self.corrupt:
            parts.append("corrupt")
        return f"FaultDecision({', '.join(parts) or 'none'})"


class FaultPlan:
    """A seeded, per-link schedule of interconnect faults.

    Links are keyed by network name (``"accel"``) or, more specifically,
    by directed lane (``"accel:xg->accel_l1"``); the directed key wins.
    Pass link configs at construction or via :meth:`set_link`.
    """

    def __init__(self, seed=0, links=None):
        self.seed = seed
        self.rng = random.Random(seed)
        self.links = dict(links or {})
        #: injected-fault counters, per kind and per link.
        self.stats = {}

    def set_link(self, key, faults):
        """Attach a :class:`LinkFaults` config to a link key."""
        self.links[key] = faults
        return self

    def link_for(self, net_name, msg):
        """The link config governing ``msg`` on network ``net_name``."""
        lane = self.links.get(f"{net_name}:{msg.sender}->{msg.dest}")
        if lane is not None:
            return lane
        return self.links.get(net_name)

    def _count(self, net_name, kind, amount=1):
        self.stats[kind] = self.stats.get(kind, 0) + amount
        per_link = f"{kind}.{net_name}"
        self.stats[per_link] = self.stats.get(per_link, 0) + amount

    def decide(self, net_name, msg, tick):
        """Sample the fault decision for one send; None = leave it alone.

        Kinds are sampled independently in :data:`FAULT_KINDS` order so
        the RNG stream is a pure function of the message sequence. A
        drop pre-empts the other kinds (the message never arrives).
        """
        link = self.link_for(net_name, msg)
        if link is None:
            return None
        rng = self.rng
        if link.rate(DROP, tick) and rng.random() < link.rate(DROP, tick):
            self._count(net_name, DROP)
            return FaultDecision(drop=True)
        decision = None
        if link.rate(DUPLICATE, tick) and rng.random() < link.rate(DUPLICATE, tick):
            decision = decision or FaultDecision()
            decision.duplicate = True
            self._count(net_name, DUPLICATE)
        if link.rate(DELAY, tick) and rng.random() < link.rate(DELAY, tick):
            decision = decision or FaultDecision()
            decision.extra_delay = rng.randint(*link.delay_ticks)
            self._count(net_name, DELAY)
        if link.rate(CORRUPT, tick) and rng.random() < link.rate(CORRUPT, tick):
            decision = decision or FaultDecision()
            decision.corrupt = True
            self._count(net_name, CORRUPT)
        return decision

    def corrupted_copy(self, data):
        """A copy of ``data`` with one random byte flipped (never a no-op)."""
        copy = data.copy()
        offset = self.rng.randrange(copy.size)
        flip = self.rng.randint(1, 255)
        copy.write_byte(offset, copy.read_byte(offset) ^ flip)
        return copy

    @property
    def total_injected(self):
        return sum(self.stats.get(kind, 0) for kind in FAULT_KINDS)

    def as_dict(self):
        return {
            "seed": self.seed,
            "links": {key: repr(link) for key, link in self.links.items()},
            "injected": dict(self.stats),
            "total_injected": self.total_injected,
        }

    def __repr__(self):
        return f"FaultPlan(seed={self.seed}, links={list(self.links)}, injected={self.total_injected})"


def single_link_plan(rates, seed=0, link="accel", delay_ticks=(5, 120), windows=()):
    """Convenience: a plan faulting one link from a ``{kind: rate}`` dict."""
    unknown = set(rates) - set(FAULT_KINDS)
    if unknown:
        raise ValueError(f"unknown fault kinds {sorted(unknown)}; choose from {FAULT_KINDS}")
    faults = LinkFaults(delay_ticks=delay_ticks, windows=windows, **rates)
    return FaultPlan(seed=seed).set_link(link, faults)
