"""Generic coherence message carrier.

Each protocol defines its own message-type enum; the :class:`Message` object
itself is protocol-agnostic and carries the handful of fields coherence
protocols need (address, data payload, requestor identity, ack counts,
dirty bits). Unused fields stay at their defaults.
"""

import itertools

_MSG_IDS = itertools.count()


class Message:
    """One coherence message in flight.

    Attributes:
        mtype: protocol-specific enum member naming the message.
        addr: block-aligned physical address the message concerns.
        sender: name of the controller that sent the message.
        dest: name of the destination controller.
        data: optional :class:`~repro.memory.datablock.DataBlock` payload.
        requestor: for forwarded requests, the original requestor's name
            (responses go there rather than back to the directory).
        ack_count: number of invalidation acks the receiver should expect,
            or for ack messages, how many acks this message is worth.
        dirty: True when the payload is modified with respect to memory.
        shared_hint: Hammer-style hint that the responder held the block
            (decides S vs E at the requestor).
        uid: unique id for tracing and ordered-network tie-breaking.
    """

    __slots__ = (
        "mtype",
        "addr",
        "sender",
        "dest",
        "data",
        "requestor",
        "ack_count",
        "dirty",
        "shared_hint",
        "value",
        "uid",
        "send_tick",
    )

    def __init__(
        self,
        mtype,
        addr,
        sender="",
        dest="",
        data=None,
        requestor=None,
        ack_count=0,
        dirty=False,
        shared_hint=False,
        value=None,
    ):
        self.mtype = mtype
        self.addr = addr
        self.sender = sender
        self.dest = dest
        self.data = data
        self.requestor = requestor
        self.ack_count = ack_count
        self.dirty = dirty
        self.shared_hint = shared_hint
        self.value = value
        self.uid = next(_MSG_IDS)
        self.send_tick = None

    def clone(self):
        """A wire-level duplicate: same fields and ``uid``, private payload.

        Fault injection uses this to model link-layer replay — the
        duplicate is the *same* logical message (receivers may dedupe it
        by uid) but carries an independent copy of the data so neither
        delivery can corrupt the other.
        """
        dup = Message(
            self.mtype,
            self.addr,
            sender=self.sender,
            dest=self.dest,
            data=self.data.copy() if self.data is not None else None,
            requestor=self.requestor,
            ack_count=self.ack_count,
            dirty=self.dirty,
            shared_hint=self.shared_hint,
            value=self.value,
        )
        dup.uid = self.uid
        dup.send_tick = self.send_tick
        return dup

    def __repr__(self):
        fields = [
            f"{getattr(self.mtype, 'name', self.mtype)}",
            f"addr={self.addr:#x}" if isinstance(self.addr, int) else f"addr={self.addr}",
            f"{self.sender}->{self.dest}",
        ]
        if self.requestor is not None:
            fields.append(f"req={self.requestor}")
        if self.ack_count:
            fields.append(f"acks={self.ack_count}")
        if self.data is not None:
            fields.append("+data")
        if self.dirty:
            fields.append("dirty")
        return f"Message({', '.join(fields)})"
