"""Generic coherence message carrier with a recycling pool.

Each protocol defines its own message-type enum; the :class:`Message` object
itself is protocol-agnostic and carries the handful of fields coherence
protocols need (address, data payload, requestor identity, ack counts,
dirty bits). Unused fields stay at their defaults.

Messages are the dominant steady-state allocation of the simulator, so
construction is pooled: ``Message(...)`` transparently reuses a recycled
instance from a module-level free list when one is available, and
consumers that *know* a message's life has ended hand it back with
:meth:`Message.release`. Release is strictly an optimization — a message
that is never released simply falls to the garbage collector, so holding
a reference without releasing is always safe. The hazards run the other
direction (releasing while someone still holds the instance), which is
why:

* every instance carries a :attr:`Message.gen` generation counter that is
  bumped on release — long-lived holders (tracer rings, forensic logs)
  snapshot ``(msg, msg.gen)`` and can detect a recycled carrier instead
  of silently reading another transaction's fields;
* :func:`set_pool_debug` enables a paranoid mode that poisons released
  messages (so stale reads crash loudly on the enum-typed fields) and
  raises on double-release.

``uid`` assignment is unchanged by pooling: every ``Message(...)`` call
draws the next id from the global counter whether the instance came from
the pool or from a fresh allocation, so uid streams — and therefore the
golden-run digests and ordered-network tie-breaks built on them — are
byte-identical with pooling on or off. :meth:`Message.clone` copies the
uid of its original without consuming a counter value.
"""

import itertools

_MSG_IDS = itertools.count()

#: Recycled instances ready for reuse, newest last (LIFO for cache warmth).
_POOL = []

#: Cap on the free list so a burst of traffic can't pin memory forever.
_POOL_MAX = 4096

_pool_debug = False


class PoolError(RuntimeError):
    """A pooled-message lifecycle violation caught by ``pool_debug``."""


class _Poison:
    """Sentinel planted in released messages under ``pool_debug``.

    Any protocol-side read of a poisoned field fails fast: ``mtype``
    comparisons, ``addr`` arithmetic and formatting all raise instead of
    quietly producing another transaction's values.
    """

    def __repr__(self):
        return "<released-message>"

    def __bool__(self):
        raise PoolError("read from a released (pooled) Message")


_POISON = _Poison()


def set_pool_debug(enabled):
    """Toggle pool debug mode (poison-on-release, raise on double-release).

    Global, like the pool itself; :func:`repro.host.system.build_system`
    sets it from ``SystemConfig.pool_debug`` so the flag tracks whichever
    system was built most recently.
    """
    global _pool_debug
    _pool_debug = bool(enabled)


def pool_stats():
    """Introspection for tests/benchmarks: current free-list occupancy."""
    return {"free": len(_POOL), "cap": _POOL_MAX, "debug": _pool_debug}


class Message:
    """One coherence message in flight.

    Attributes:
        mtype: protocol-specific enum member naming the message.
        addr: block-aligned physical address the message concerns.
        sender: name of the controller that sent the message.
        dest: name of the destination controller.
        data: optional :class:`~repro.memory.datablock.DataBlock` payload.
        requestor: for forwarded requests, the original requestor's name
            (responses go there rather than back to the directory).
        ack_count: number of invalidation acks the receiver should expect,
            or for ack messages, how many acks this message is worth.
        dirty: True when the payload is modified with respect to memory.
        shared_hint: Hammer-style hint that the responder held the block
            (decides S vs E at the requestor).
        uid: unique id for tracing and ordered-network tie-breaking.
        gen: generation counter, bumped each time the carrier instance is
            released back to the pool. Holders that outlive the message
            snapshot ``gen`` and compare before trusting the fields.
    """

    __slots__ = (
        "mtype",
        "addr",
        "sender",
        "dest",
        "data",
        "requestor",
        "ack_count",
        "dirty",
        "shared_hint",
        "value",
        "uid",
        "send_tick",
        "gen",
        "_pooled",
    )

    # All construction happens in __new__ so ``Message(...)`` costs a
    # single Python frame (object.__init__ is a C-level no-op when
    # __new__ is overridden). ``gen`` is deliberately only initialized on
    # fresh allocation — it belongs to the carrier instance, not the
    # logical message, and survives reuse.
    def __new__(
        cls,
        mtype=None,
        addr=0,
        sender="",
        dest="",
        data=None,
        requestor=None,
        ack_count=0,
        dirty=False,
        shared_hint=False,
        value=None,
    ):
        if _POOL:
            self = _POOL.pop()
        else:
            self = object.__new__(cls)
            self.gen = 0
        self.mtype = mtype
        self.addr = addr
        self.sender = sender
        self.dest = dest
        self.data = data
        self.requestor = requestor
        self.ack_count = ack_count
        self.dirty = dirty
        self.shared_hint = shared_hint
        self.value = value
        self.uid = next(_MSG_IDS)
        self.send_tick = None
        self._pooled = False
        return self

    def release(self):
        """Hand the carrier back to the pool.

        Only the component that consumed the message (popped it from a
        buffer and finished handling it) may release; see
        ``docs/performance.md`` for the lifecycle rules. Double-release
        is a lifecycle bug: it raises under ``pool_debug`` and is a
        silent no-op otherwise (never corrupts the free list).
        """
        if self._pooled:
            if _pool_debug:
                raise PoolError(
                    f"double release of Message uid={self.uid} gen={self.gen}"
                )
            return
        self._pooled = True
        self.gen += 1
        # Drop payload references eagerly so pooled carriers don't pin
        # DataBlocks or values until reuse.
        self.data = None
        self.requestor = None
        self.value = None
        if _pool_debug:
            self.mtype = _POISON
            self.addr = _POISON
            self.sender = _POISON
            self.dest = _POISON
        if len(_POOL) < _POOL_MAX:
            _POOL.append(self)

    def clone(self):
        """A wire-level duplicate: same fields and ``uid``, private payload.

        Fault injection uses this to model link-layer replay — the
        duplicate is the *same* logical message (receivers may dedupe it
        by uid) but carries an independent copy of the data so neither
        delivery can corrupt the other. Cloning does not consume a uid
        from the global counter: wire duplicates keep uid streams dense.
        """
        # Raw allocation: bypasses both the pool and the uid counter
        # (Message.__new__ would draw a fresh uid).
        dup = object.__new__(Message)
        dup.gen = 0
        dup.mtype = self.mtype
        dup.addr = self.addr
        dup.sender = self.sender
        dup.dest = self.dest
        dup.data = self.data.copy() if self.data is not None else None
        dup.requestor = self.requestor
        dup.ack_count = self.ack_count
        dup.dirty = self.dirty
        dup.shared_hint = self.shared_hint
        dup.value = self.value
        dup.uid = self.uid
        dup.send_tick = self.send_tick
        dup._pooled = False
        return dup

    def __repr__(self):
        if self._pooled:
            return f"Message(<released>, gen={self.gen})"
        fields = [
            f"{getattr(self.mtype, 'name', self.mtype)}",
            f"addr={self.addr:#x}" if isinstance(self.addr, int) else f"addr={self.addr}",
            f"{self.sender}->{self.dest}",
        ]
        if self.requestor is not None:
            fields.append(f"req={self.requestor}")
        if self.ack_count:
            fields.append(f"acks={self.ack_count}")
        if self.data is not None:
            fields.append("+data")
        if self.dirty:
            fields.append("dirty")
        return f"Message({', '.join(fields)})"
