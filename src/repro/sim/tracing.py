"""Message-level tracing for debugging coherence flows.

Attach a :class:`MessageTracer` to any set of networks and it records
every message (optionally filtered by block address or endpoint) with its
send tick — the exact tool used to diagnose protocol races during this
reproduction's development, promoted to a first-class utility.
"""

from repro.memory.datablock import block_align


class _MsgSnapshot:
    """Immutable view of a message at record time.

    Tracer rings outlive the messages they observe — the live carriers
    are recycled through the pool once consumed — so entries snapshot
    the fields queries and formatting need instead of holding the
    (mutable, reusable) instance.
    """

    __slots__ = ("mtype", "addr", "sender", "dest", "requestor", "uid", "dirty")

    def __init__(self, msg):
        self.mtype = msg.mtype
        self.addr = msg.addr
        self.sender = msg.sender
        self.dest = msg.dest
        self.requestor = msg.requestor
        self.uid = msg.uid
        self.dirty = msg.dirty

    def __repr__(self):
        mname = getattr(self.mtype, "name", self.mtype)
        addr_s = f"{self.addr:#x}" if isinstance(self.addr, int) else str(self.addr)
        return f"Message({mname}, addr={addr_s}, {self.sender}->{self.dest})"


class TraceEntry:
    __slots__ = ("tick", "network", "port", "msg")

    def __init__(self, tick, network, port, msg):
        self.tick = tick
        self.network = network
        self.port = port
        self.msg = _MsgSnapshot(msg)

    def __repr__(self):
        return f"[{self.tick:>8}] {self.network:<6} {self.port:<14} {self.msg}"


def _rebuild_send(net):
    """Recompose ``net.send`` from the base method plus live tracer layers."""
    stack = net._tracer_stack
    if not stack:
        net.send = net._tracer_base_send
        del net._tracer_stack
        del net._tracer_base_send
        return
    send = net._tracer_base_send
    for tracer in stack:
        send = tracer._make_send(net, send)
    net.send = send


class MessageTracer:
    """Records messages crossing the given networks.

    Args:
        networks: Network objects to wrap.
        addr_filter: only record messages whose block matches one of
            these block addresses (None = all).
        endpoint_filter: only record messages to/from these names.
        capacity: ring-buffer size (oldest entries dropped).
    """

    def __init__(self, networks, addr_filter=None, endpoint_filter=None,
                 capacity=10_000, block_size=64):
        self.entries = []
        self.capacity = capacity
        self.block_size = block_size
        self.addr_filter = (
            {block_align(a, block_size) for a in addr_filter}
            if addr_filter is not None
            else None
        )
        self.endpoint_filter = set(endpoint_filter) if endpoint_filter else None
        self._wrapped = []
        for net in networks:
            self._wrap(net)

    def _wrap(self, net):
        # Tracers on a shared network form a layer stack hung off the
        # network itself; ``net.send`` is rebuilt from the saved base
        # method whenever a layer joins or leaves, so tracers can attach
        # and detach in any order without clobbering each other.
        stack = getattr(net, "_tracer_stack", None)
        if stack is None:
            net._tracer_stack = stack = []
            net._tracer_base_send = net.send
        stack.append(self)
        self._wrapped.append(net)
        _rebuild_send(net)

    def _make_send(self, net, inner):
        def send(msg, port, delay=0):
            if self._matches(msg):
                self._record(net, port, msg)
            return inner(msg, port, delay=delay)

        return send

    def _matches(self, msg):
        if self.addr_filter is not None:
            if block_align(msg.addr, self.block_size) not in self.addr_filter:
                return False
        if self.endpoint_filter is not None:
            if msg.sender not in self.endpoint_filter and msg.dest not in self.endpoint_filter:
                return False
        return True

    def _record(self, net, port, msg):
        self.entries.append(TraceEntry(net.sim.tick, net.name, port, msg))
        if len(self.entries) > self.capacity:
            del self.entries[: len(self.entries) - self.capacity]

    def detach(self):
        """Remove this tracer's layer from every wrapped network.

        Other tracers sharing a network keep recording; the network's
        original ``send`` is restored only once the last layer leaves.
        Idempotent.
        """
        for net in self._wrapped:
            stack = getattr(net, "_tracer_stack", None)
            if stack and self in stack:
                stack.remove(self)
                _rebuild_send(net)
        self._wrapped = []

    # -- queries -------------------------------------------------------------

    def for_block(self, addr):
        base = block_align(addr, self.block_size)
        return [
            e for e in self.entries
            if block_align(e.msg.addr, self.block_size) == base
        ]

    def between(self, lo_tick, hi_tick):
        return [e for e in self.entries if lo_tick <= e.tick <= hi_tick]

    def tail(self, n=20):
        return self.entries[-n:]

    def format(self, entries=None):
        return "\n".join(repr(e) for e in (entries if entries is not None else self.entries))

    def __len__(self):
        return len(self.entries)
