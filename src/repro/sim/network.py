"""Point-to-point interconnect with ordered and unordered delivery.

The paper requires an *ordered* network between Crossing Guard and the
accelerator (Section 2.1) while the host interconnect may be unordered; the
stress tester additionally randomizes per-message latency to model
in-network delays (Section 4.1). Both behaviors live here.

A :class:`Network` routes by destination component name to a named input
port. Ordered networks enforce FIFO per (sender, dest, port) by clamping
each arrival tick to be >= the previous arrival on that lane.
"""

from bisect import insort


class FixedLatency:
    """Constant message latency."""

    def __init__(self, latency):
        if latency < 1:
            raise ValueError("latency must be >= 1 tick")
        self.latency = latency

    def sample(self, rng):
        return self.latency

    def __repr__(self):
        return f"FixedLatency({self.latency})"


class RandomLatency:
    """Uniform random latency in [lo, hi] — the stress tester's model."""

    def __init__(self, lo, hi):
        if not 1 <= lo <= hi:
            raise ValueError(f"need 1 <= lo <= hi, got [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self._span = hi - lo + 1

    def sample(self, rng):
        # Equivalent to rng.randint(lo, hi) — for int bounds randint
        # reduces to start + _randbelow(width) — but skips the
        # randint/randrange frames and their operator.index calls. The
        # draw sequence is bit-identical, which golden digests rely on.
        return self.lo + rng._randbelow(self._span)

    def __repr__(self):
        return f"RandomLatency({self.lo}, {self.hi})"


class Network:
    """Routes messages between registered components.

    Args:
        sim: owning simulator (provides clock and RNG).
        latency: a latency model (:class:`FixedLatency` or
            :class:`RandomLatency`).
        ordered: when True, delivery is FIFO per (sender, dest, port) lane
            even under random latency.
        name: label used in statistics.
    """

    def __init__(self, sim, latency, ordered=False, name="net", bandwidth=None,
                 fault_plan=None):
        self.sim = sim
        self.latency = latency
        self.ordered = ordered
        self.name = name
        #: messages per tick the fabric can carry (None = unlimited).
        #: Models shared-link contention — what a flooding accelerator
        #: actually steals from the host (Section 2.5).
        self.bandwidth = bandwidth
        #: optional :class:`~repro.sim.faults.FaultPlan` consulted on
        #: every send (None = perfectly reliable fabric).
        self.fault_plan = fault_plan
        self._next_slot = 0.0
        self._endpoints = {}
        self._endpoint_delay = {}
        self._last_arrival = {}
        self.stats = sim.stats_for(f"network.{name}")
        # hot-path caches: the stats counter dict (two increments per
        # message) and the per-mtype counter-key strings (so the
        # f"msg.{...}" string is built once per message type, not once
        # per message). ``None`` when the simulator runs metrics-off —
        # one identity check skips the whole counter block.
        self._counters = self.stats.counters
        self._mtype_keys = {}
        # (dest, port) -> (component, buffer): validated once, then every
        # later send is a single dict probe instead of two lookups plus a
        # port-membership check. Invalidated by detach().
        self._routes = {}
        # FixedLatency is the overwhelmingly common model; resolve it to a
        # constant so the per-send sample() call disappears.
        self._fixed_latency = latency.latency if isinstance(latency, FixedLatency) else None
        # sim.events is assigned once in Simulator.__init__; bind it here
        # to save two attribute loads per delivery.
        self._events = sim.events
        sim.register_network(self)

    def attach(self, component):
        """Register a component as routable by its name."""
        if component.name in self._endpoints:
            raise ValueError(f"duplicate endpoint {component.name!r} on {self.name}")
        self._endpoints[component.name] = component

    def detach(self, name):
        """Unregister endpoint ``name`` and forget its ordered-lane history.

        Multi-phase experiments that rebuild one side of a network (e.g.
        swapping the accelerator model between campaigns) must not inherit
        the old endpoint's lane clamps — a stale ``_last_arrival`` far in
        the future would silently delay every message of the next phase.
        """
        if name not in self._endpoints:
            raise KeyError(f"{self.name}: no endpoint {name!r} to detach")
        del self._endpoints[name]
        self._routes.clear()
        self._endpoint_delay.pop(name, None)
        for lane in [l for l in self._last_arrival if name in l]:
            del self._last_arrival[lane]

    def reset_lanes(self):
        """Clear all ordered-lane clamps (e.g. between reuse phases)."""
        self._last_arrival.clear()

    def endpoints(self):
        return list(self._endpoints)

    def set_endpoint_delay(self, name, extra):
        """Add ``extra`` ticks to every message to or from ``name``.

        Models a physically distant agent — e.g. an accelerator-side cache
        on the far side of the host/accelerator crossing (Figure 2a).
        """
        self._endpoint_delay[name] = extra

    def send(self, msg, port, delay=0):
        """Send ``msg`` to ``msg.dest``'s input ``port``.

        ``delay`` adds sender-side ticks before the network latency applies.
        Raises KeyError for unknown destinations — a real hardware message
        to a nonexistent agent is a design error, never silently dropped.
        """
        route = self._routes.get((msg.dest, port))
        if route is None:
            dest = self._endpoints.get(msg.dest)
            if dest is None:
                raise KeyError(f"{self.name}: unknown destination {msg.dest!r} for {msg}")
            buf = dest.in_ports.get(port)
            if buf is None:
                raise KeyError(f"{self.name}: {msg.dest!r} has no port {port!r}")
            route = self._routes[(msg.dest, port)] = (dest, buf)
        dest, buf = route
        sim = self.sim
        now = sim.tick
        msg.send_tick = now
        latency = self._fixed_latency
        if latency is None:
            latency = self.latency.sample(sim.rng)
        delays = self._endpoint_delay
        if delays:
            latency += delays.get(msg.sender, 0) + delays.get(msg.dest, 0)
        arrival = now + delay + latency
        if self.bandwidth is not None:
            slot = max(float(now), self._next_slot)
            self._next_slot = slot + 1.0 / self.bandwidth
            queueing = int(slot) - now
            if queueing > 0:
                self.stats.inc("queueing_ticks", queueing)
            arrival += queueing
        plan = self.fault_plan
        if plan is not None:
            decision = plan.decide(self.name, msg, now)
            if decision is not None and decision:
                obs = sim.obs
                if decision.drop:
                    # The fabric ate the message: no delivery, no lane
                    # slot — survivors keep their relative order.
                    self.stats.inc("fault.dropped")
                    if obs is not None:
                        obs.record_fault(now, self.name, "drop", msg)
                    if self.sim.trace is not None:
                        self.sim.record_trace(self.name, msg, note="dropped")
                    return arrival
                if decision.extra_delay:
                    self.stats.inc("fault.delayed")
                    self.stats.inc("fault.delay_ticks", decision.extra_delay)
                    if obs is not None:
                        obs.record_fault(now, self.name, "delay", msg)
                    arrival += decision.extra_delay
                if decision.corrupt and msg.data is not None:
                    self.stats.inc("fault.corrupted")
                    if obs is not None:
                        obs.record_fault(now, self.name, "corrupt", msg)
                    msg.data = plan.corrupted_copy(msg.data)
                if decision.duplicate:
                    self.stats.inc("fault.duplicated")
                    if obs is not None:
                        obs.record_fault(now, self.name, "duplicate", msg)
                    arrival = self._deliver_one(dest, buf, msg, arrival)
                    # Link-layer replay: same uid, own payload copy,
                    # trailing the original by at least one tick.
                    self._deliver_one(dest, buf, msg.clone(), arrival + 1, note="dup")
                    return arrival
        # ---- delivery, hand-inlined (see _deliver_one for the readable
        # version; the two must stay behaviorally identical). One message
        # costs zero extra Python frames beyond schedule_cb from here on.
        # try/except counter bumps lean on 3.11's zero-cost exceptions:
        # the KeyError path runs once per counter name, ever.
        if self.ordered:
            lane = (msg.sender, msg.dest)
            last = self._last_arrival
            try:
                previous = last[lane]
                if arrival <= previous:
                    arrival = previous + 1
            except KeyError:
                pass
            last[lane] = arrival
        counters = self._counters
        if counters is not None:
            try:
                counters["messages"] += 1
            except KeyError:
                counters["messages"] = 1
            mtype = msg.mtype
            key = self._mtype_keys.get(mtype)
            if key is None:
                key = f"msg.{getattr(mtype, 'name', mtype)}"
                self._mtype_keys[mtype] = key
            try:
                counters[key] += 1
            except KeyError:
                counters[key] = 1
            if msg.data is not None:
                try:
                    counters["data_messages"] += 1
                except KeyError:
                    counters["data_messages"] = 1
        if sim.trace is not None:
            sim.record_trace(self.name, msg, note="")
        # inlined MessageBuffer.enqueue (append fast path; arrivals on a
        # lane are non-decreasing, so out-of-order insort is the rare case)
        seq = buf._seq + 1
        buf._seq = seq
        entries = buf._entries
        if not entries or entries[-1][0] <= arrival:
            entries.append((arrival, seq, msg))
        else:
            insort(entries, (arrival, seq, msg), lo=buf._head)
        # inlined Component.request_wakeup with same-tick coalescing:
        # latency >= 1 guarantees arrival > now, so no clamp is needed,
        # and an equal-or-earlier pending wakeup absorbs this delivery.
        pending = dest._wakeup_tick
        if pending is None:
            dest._wakeup_tick = arrival
            dest._wakeup_token = self._events.schedule_cb(arrival, dest._wakeup_cb)
        elif pending > arrival:
            events = self._events
            events.cancel_token(dest._wakeup_token)
            dest._wakeup_tick = arrival
            dest._wakeup_token = events.schedule_cb(arrival, dest._wakeup_cb)
        lineage = sim.lineage
        if lineage is not None:
            # `delay + latency` is the modeled wire time; the walk books
            # the rest of arrival-send (bandwidth queueing, ordered-lane
            # clamp) as queue_wait. Records live on the tracker, never on
            # the pooled msg.
            lineage.record_send(msg, now, arrival, delay + latency)
        return arrival

    def _deliver_one(self, dest, buf, msg, arrival, note=""):
        # Readable reference copy of the delivery tail hand-inlined at the
        # bottom of send(); only fault paths (duplicate delivery) and
        # subclasses route through here. Keep the two in sync.
        if self.ordered:
            # One serial lane per (sender, dest) pair across ALL ports:
            # the paper's ordered accel link must keep a Put ordered ahead
            # of the InvAck that follows it even though they arrive on
            # different virtual channels. Strictly increasing arrivals so
            # the receiver's port priorities cannot reorder same-tick pairs.
            lane = (msg.sender, msg.dest)
            previous = self._last_arrival.get(lane, 0)
            if arrival <= previous:
                arrival = previous + 1
            self._last_arrival[lane] = arrival
        counters = self._counters
        if counters is not None:
            counters["messages"] = counters.get("messages", 0) + 1
            mtype = msg.mtype
            key = self._mtype_keys.get(mtype)
            if key is None:
                key = f"msg.{getattr(mtype, 'name', mtype)}"
                self._mtype_keys[mtype] = key
            counters[key] = counters.get(key, 0) + 1
            if msg.data is not None:
                counters["data_messages"] = counters.get("data_messages", 0) + 1
        sim = self.sim
        if sim.trace is not None:
            sim.record_trace(self.name, msg, note=note)
        # inlined Component.deliver: the buffer came from the route cache.
        # Same-tick deliveries coalesce onto one pending wakeup — only a
        # strictly earlier arrival needs the full request_wakeup path.
        buf.enqueue(arrival, msg)
        pending = dest._wakeup_tick
        if pending is None or pending > arrival:
            dest.request_wakeup(arrival)
        lineage = sim.lineage
        if lineage is not None:
            # Fault-path deliveries (duplicate replays) have no separate
            # wire figure; attribute the whole in-flight window to wire.
            lineage.record_send(msg, msg.send_tick, arrival,
                                arrival - msg.send_tick)
        return arrival

    def broadcast(self, msg_factory, dests, port, delay=0):
        """Send one message per destination; ``msg_factory(dest)`` builds it.

        The factory may set ``msg.dest`` itself (e.g. a prebuilt per-dest
        message table); a destination it set is respected, not clobbered.
        """
        arrivals = []
        for dest in dests:
            msg = msg_factory(dest)
            if not msg.dest:
                msg.dest = dest
            arrivals.append(self.send(msg, port, delay=delay))
        return arrivals

    def __repr__(self):
        kind = "ordered" if self.ordered else "unordered"
        return f"Network({self.name!r}, {kind}, {self.latency!r})"
