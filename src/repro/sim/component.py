"""Component and message-buffer primitives.

A :class:`Component` is anything attached to the simulator (cache
controllers, directories, sequencers, Crossing Guard). Components receive
messages through named :class:`MessageBuffer` input ports; the network
enqueues messages at their arrival tick and schedules a component wakeup.
"""

from collections import deque

from repro.sim.stats import Stats


class MessageBuffer:
    """An input port: messages become visible at their arrival tick.

    The buffer preserves arrival order. ``peek``/``pop`` only expose
    messages whose arrival tick is <= the current tick.
    """

    def __init__(self, name=""):
        self.name = name
        self._queue = deque()

    def enqueue(self, arrival_tick, msg):
        """Insert a message that becomes visible at ``arrival_tick``.

        Arrival ticks are non-decreasing per sender on ordered links; on
        unordered links messages may be enqueued out of tick order, so we
        insert in sorted position (stable for equal ticks).
        """
        entry = (arrival_tick, msg)
        if not self._queue or self._queue[-1][0] <= arrival_tick:
            self._queue.append(entry)
            return
        # Rare out-of-order insert (unordered network): stable insertion.
        items = list(self._queue)
        for index, (tick, _existing) in enumerate(items):
            if tick > arrival_tick:
                items.insert(index, entry)
                break
        self._queue = deque(items)

    def push_front(self, tick, msg):
        """Re-insert a message at the head (used to wake stalled messages)."""
        self._queue.appendleft((tick, msg))

    def peek(self, now):
        """Head message if it has arrived by ``now``, else None."""
        if self._queue and self._queue[0][0] <= now:
            return self._queue[0][1]
        return None

    def pop(self, now):
        """Remove and return the head message if arrived, else None."""
        if self._queue and self._queue[0][0] <= now:
            return self._queue.popleft()[1]
        return None

    def next_arrival_tick(self):
        """Arrival tick of the head message, or None when empty."""
        if self._queue:
            return self._queue[0][0]
        return None

    def next_arrival_after(self, now):
        """Earliest arrival tick strictly greater than ``now``, or None.

        Skips already-visible messages (which a RETRYing controller may
        legitimately leave queued) so wakeup re-arming keys off genuinely
        future deliveries.
        """
        for tick, _msg in self._queue:
            if tick > now:
                return tick
        return None

    def oldest_visible_tick(self, now):
        """Arrival tick of the head message if visible at ``now``."""
        if self._queue and self._queue[0][0] <= now:
            return self._queue[0][0]
        return None

    def __len__(self):
        return len(self._queue)

    def __iter__(self):
        return (msg for _tick, msg in self._queue)


class Component:
    """Base class for everything attached to the simulator.

    Subclasses declare input port names in ``PORTS`` (highest priority
    first; responses must outrank requests to avoid protocol deadlock) and
    implement :meth:`wakeup` to drain them.
    """

    PORTS = ()

    #: When True the deadlock watchdog ignores this component. Used for
    #: deliberately-misbehaving accelerator models in the fuzz harness —
    #: only the *host* must stay deadlock-free (paper Section 4).
    watchdog_exempt = False

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.stats = Stats(owner=name)
        self.in_ports = {port: MessageBuffer(f"{name}.{port}") for port in self.PORTS}
        self._wakeup_event = None
        sim.register(self)

    # -- message delivery (called by the network) ---------------------------

    def deliver(self, port, arrival_tick, msg):
        """Enqueue ``msg`` on ``port`` and ensure a wakeup at arrival."""
        self.in_ports[port].enqueue(arrival_tick, msg)
        self.request_wakeup(arrival_tick)

    def request_wakeup(self, tick=None):
        """Schedule :meth:`wakeup` at ``tick`` (default: now).

        At most ONE wakeup event is outstanding per component: an
        equal-or-earlier pending wakeup absorbs the request, a later one
        is cancelled and rescheduled earlier. Without this invariant,
        wakeups that reschedule themselves (e.g. rate-limiter retries)
        compound into an event storm.
        """
        if tick is None:
            tick = self.sim.tick
        tick = max(tick, self.sim.tick)
        pending = self._wakeup_event
        if pending is not None and not pending.cancelled:
            if pending.tick <= tick:
                return
            pending.cancel()
        self._wakeup_event = self.sim.schedule_at(tick, self._wakeup_wrapper)

    def _wakeup_wrapper(self):
        self._wakeup_event = None
        self.wakeup()
        # If messages remain that arrive in the future, wake again then.
        # Visible-but-unconsumed (RETRYing) messages must not mask them.
        future_ticks = [
            buf.next_arrival_after(self.sim.tick)
            for buf in self.in_ports.values()
        ]
        future_ticks = [tick for tick in future_ticks if tick is not None]
        if future_ticks:
            self.request_wakeup(min(future_ticks))

    def next_pending_tick(self):
        """Earliest arrival tick over all input ports, or None."""
        ticks = [
            buf.next_arrival_tick()
            for buf in self.in_ports.values()
            if buf.next_arrival_tick() is not None
        ]
        return min(ticks) if ticks else None

    # -- hooks ---------------------------------------------------------------

    def wakeup(self):
        """Process arrived messages. Subclasses override."""

    def oldest_pending_tick(self, now):
        """Oldest visible-but-unprocessed message tick (deadlock watchdog).

        Returns None when the component has no visible pending work.
        """
        ticks = [
            buf.oldest_visible_tick(now)
            for buf in self.in_ports.values()
            if buf.oldest_visible_tick(now) is not None
        ]
        return min(ticks) if ticks else None

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"
