"""Component and message-buffer primitives.

A :class:`Component` is anything attached to the simulator (cache
controllers, directories, sequencers, Crossing Guard). Components receive
messages through named :class:`MessageBuffer` input ports; the network
enqueues messages at their arrival tick and schedules a component wakeup.
"""

from bisect import bisect_right, insort

from repro.sim.stats import NULL_STATS, Stats


class MessageBuffer:
    """An input port: messages become visible at their arrival tick.

    The buffer preserves arrival order. ``peek``/``pop`` only expose
    messages whose arrival tick is <= the current tick.

    Storage is a list of ``(tick, seq, msg)`` entries with a head index
    (popping advances the head; the dead prefix is trimmed in batches).
    ``seq`` increases per enqueue so equal-tick messages keep FIFO order,
    and decreases per :meth:`push_front` so re-inserted messages sort
    ahead of everything already queued. The not-yet-visible suffix is
    always sorted by ``(tick, seq)``, which makes out-of-order inserts
    (unordered networks) a ``bisect.insort`` instead of a full rebuild.
    """

    #: Trim the consumed prefix once it is this long and at least half
    #: the list (amortized O(1) per pop, bounded memory on busy ports).
    TRIM_MIN = 64

    __slots__ = ("name", "_entries", "_head", "_seq", "_front_seq")

    def __init__(self, name=""):
        self.name = name
        self._entries = []
        self._head = 0
        self._seq = 0
        self._front_seq = 0

    def enqueue(self, arrival_tick, msg):
        """Insert a message that becomes visible at ``arrival_tick``.

        Arrival ticks are non-decreasing per sender on ordered links; on
        unordered links messages may be enqueued out of tick order, so we
        insert in sorted position (stable for equal ticks).
        """
        self._seq += 1
        entry = (arrival_tick, self._seq, msg)
        entries = self._entries
        if not entries or entries[-1][0] <= arrival_tick:
            entries.append(entry)
        else:
            # Out-of-order insert (unordered network). Everything already
            # visible compares below ``entry`` (older tick, or equal tick
            # with smaller seq), so bisecting the whole live region lands
            # exactly where the old linear scan did — stably.
            insort(entries, entry, lo=self._head)

    def push_front(self, tick, msg):
        """Re-insert a message at the head (used to wake stalled messages)."""
        self._front_seq -= 1
        entry = (tick, self._front_seq, msg)
        head = self._head
        if head:
            # reuse a slot from the consumed prefix instead of shifting
            self._head = head - 1
            self._entries[head - 1] = entry
        else:
            self._entries.insert(0, entry)

    def peek(self, now):
        """Head message if it has arrived by ``now``, else None."""
        entries = self._entries
        head = self._head
        if head < len(entries):
            entry = entries[head]
            if entry[0] <= now:
                return entry[2]
        return None

    def pop(self, now):
        """Remove and return the head message if arrived, else None."""
        entries = self._entries
        head = self._head
        n = len(entries)
        if head < n:
            entry = entries[head]
            if entry[0] <= now:
                head += 1
                if head == n:
                    entries.clear()
                    head = 0
                elif head >= self.TRIM_MIN and head * 2 >= n:
                    del entries[:head]
                    head = 0
                self._head = head
                return entry[2]
        return None

    def next_arrival_tick(self):
        """Arrival tick of the head message, or None when empty."""
        entries = self._entries
        if self._head < len(entries):
            return entries[self._head][0]
        return None

    def next_arrival_after(self, now):
        """Earliest arrival tick strictly greater than ``now``, or None.

        Skips already-visible messages (which a RETRYing controller may
        legitimately leave queued) so wakeup re-arming keys off genuinely
        future deliveries. Visible entries all compare below the probe
        key and the future suffix is sorted, so this is a binary search.
        """
        entries = self._entries
        index = bisect_right(entries, (now, self._seq + 1), self._head)
        if index < len(entries):
            return entries[index][0]
        return None

    def oldest_visible_tick(self, now):
        """Arrival tick of the head message if visible at ``now``."""
        entries = self._entries
        head = self._head
        if head < len(entries) and entries[head][0] <= now:
            return entries[head][0]
        return None

    def __len__(self):
        return len(self._entries) - self._head

    def __iter__(self):
        entries = self._entries
        return (entries[i][2] for i in range(self._head, len(entries)))


class Component:
    """Base class for everything attached to the simulator.

    Subclasses declare input port names in ``PORTS`` (highest priority
    first; responses must outrank requests to avoid protocol deadlock) and
    implement :meth:`wakeup` to drain them.
    """

    PORTS = ()

    #: When True the deadlock watchdog ignores this component. Used for
    #: deliberately-misbehaving accelerator models in the fuzz harness —
    #: only the *host* must stay deadlock-free (paper Section 4).
    watchdog_exempt = False

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        stats_on = getattr(sim, "metrics_enabled", True)
        self.stats = Stats(owner=name) if stats_on else NULL_STATS
        self.in_ports = {port: MessageBuffer(f"{name}.{port}") for port in self.PORTS}
        # ports are fixed at construction; cache the buffers for the
        # per-wakeup scans below
        self._port_buffers = tuple(self.in_ports.values())
        # One outstanding wakeup max, tracked as (tick, cancel token) ints
        # on the queue's allocation-free schedule_cb path. ``None`` tick
        # means no wakeup is pending.
        self._wakeup_tick = None
        self._wakeup_token = 0
        self._wakeup_cb = self._wakeup_wrapper
        sim.register(self)

    # -- message delivery (called by the network) ---------------------------

    def deliver(self, port, arrival_tick, msg):
        """Enqueue ``msg`` on ``port`` and ensure a wakeup at arrival."""
        self.in_ports[port].enqueue(arrival_tick, msg)
        self.request_wakeup(arrival_tick)

    def request_wakeup(self, tick=None):
        """Schedule :meth:`wakeup` at ``tick`` (default: now).

        At most ONE wakeup event is outstanding per component: an
        equal-or-earlier pending wakeup absorbs the request, a later one
        is cancelled and rescheduled earlier. Without this invariant,
        wakeups that reschedule themselves (e.g. rate-limiter retries)
        compound into an event storm.
        """
        pending = self._wakeup_tick
        if pending is not None and tick is not None and pending <= tick:
            # Fast absorb: a pending wakeup is never in the past, so it
            # also absorbs any request that clamping would only raise.
            return
        sim = self.sim
        now = sim.tick
        if tick is None or tick < now:
            tick = now
        if pending is not None:
            if pending <= tick:
                return
            sim.events.cancel_token(self._wakeup_token)
        # tick is clamped >= now, so schedule_at's validation is redundant;
        # go straight to the event queue (this path fires per delivery)
        self._wakeup_tick = tick
        self._wakeup_token = sim.events.schedule_cb(tick, self._wakeup_cb)

    def _wakeup_wrapper(self):
        self._wakeup_tick = None
        self.wakeup()
        # If messages remain that arrive in the future, wake again then.
        # Visible-but-unconsumed (RETRYing) messages must not mask them.
        # Fully-drained ports (the common case after a wakeup) are skipped
        # without paying the bisect in next_arrival_after.
        now = self.sim.tick
        earliest = None
        for buf in self._port_buffers:
            if not buf._entries:
                continue
            tick = buf.next_arrival_after(now)
            if tick is not None and (earliest is None or tick < earliest):
                earliest = tick
        if earliest is not None:
            self.request_wakeup(earliest)

    def note_busy(self, ticks):
        """Account ``ticks`` of occupied processing time ending a wakeup.

        Feeds both the ``busy_ticks`` counter and, when a telemetry hub is
        attached, the real occupancy tracks in the Perfetto export — the
        exported per-component totals are asserted equal to this counter by
        ``tests/test_occupancy.py``.
        """
        self.stats.inc("busy_ticks", ticks)
        obs = self.sim.obs
        if obs is not None:
            obs.record_busy(self.sim.tick, self.name, ticks)

    def next_pending_tick(self):
        """Earliest arrival tick over all input ports, or None."""
        earliest = None
        for buf in self._port_buffers:
            tick = buf.next_arrival_tick()
            if tick is not None and (earliest is None or tick < earliest):
                earliest = tick
        return earliest

    # -- hooks ---------------------------------------------------------------

    def wakeup(self):
        """Process arrived messages. Subclasses override."""

    def oldest_pending_tick(self, now):
        """Oldest visible-but-unprocessed message tick (deadlock watchdog).

        Returns None when the component has no visible pending work.
        """
        oldest = None
        for buf in self._port_buffers:
            tick = buf.oldest_visible_tick(now)
            if tick is not None and (oldest is None or tick < oldest):
                oldest = tick
        return oldest

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"
