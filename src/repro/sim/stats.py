"""Lightweight statistics: counters, streaming histograms, and stat sinks.

Every component owns a :class:`Stats` instance; the simulator can aggregate
them into one report. Values are plain Python numbers so reports serialize
trivially.

Hot paths do not call :meth:`Stats.inc` with a formatted name per event —
they pre-bind a :class:`StatSink` once (one dict access per hit, no string
formatting) and, when a simulator runs with metrics disabled entirely,
every sink and every :class:`NullStats` method is a no-op, so telemetry
costs nothing when it is off.
"""


class Histogram:
    """Streaming histogram tracking count/sum/min/max and coarse buckets."""

    __slots__ = ("count", "total", "min", "max", "buckets", "_bucket_width")

    def __init__(self, bucket_width=16):
        if bucket_width < 1:
            raise ValueError(f"bucket_width must be >= 1, got {bucket_width}")
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets = {}
        self._bucket_width = bucket_width

    @property
    def bucket_width(self):
        return self._bucket_width

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value) // self._bucket_width
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self):
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, q):
        """Approximate ``q``-quantile (q in [0, 1]) from the buckets.

        Linear interpolation inside the bucket that crosses the target
        rank, clamped to the observed min/max so p0/p100 are exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        width = self._bucket_width
        for bucket in sorted(self.buckets):
            in_bucket = self.buckets[bucket]
            if cumulative + in_bucket >= target:
                fraction = (target - cumulative) / in_bucket
                estimate = bucket * width + fraction * width
                return min(max(estimate, self.min), self.max)
            cumulative += in_bucket
        return self.max

    def merge_into(self, dest):
        """Accumulate this histogram into ``dest``.

        Bucket widths are carried through the merge: matching widths sum
        bucket-for-bucket; on a mismatch this histogram's buckets are
        re-binned by bucket start value into ``dest``'s width (coarser or
        finer — deterministic either way) instead of being silently summed
        into wrong bins.
        """
        dest.count += self.count
        dest.total += self.total
        if self.min is not None:
            dest.min = self.min if dest.min is None else min(dest.min, self.min)
        if self.max is not None:
            dest.max = self.max if dest.max is None else max(dest.max, self.max)
        if dest._bucket_width == self._bucket_width:
            for bucket, count in self.buckets.items():
                dest.buckets[bucket] = dest.buckets.get(bucket, 0) + count
        else:
            width = self._bucket_width
            dest_width = dest._bucket_width
            for bucket, count in self.buckets.items():
                rebinned = (bucket * width) // dest_width
                dest.buckets[rebinned] = dest.buckets.get(rebinned, 0) + count

    def as_dict(self):
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            # bucket map included so two runs can be compared exactly
            # (the determinism property tests diff full stats reports)
            "buckets": dict(self.buckets),
        }

    def __repr__(self):
        return (
            f"Histogram(count={self.count}, mean={self.mean:.2f}, "
            f"min={self.min}, max={self.max})"
        )


class _ReadOnlyHistogram(Histogram):
    """The empty histogram :meth:`Stats.histogram` returns for unknown names.

    Observing into it would silently lose data (nothing registers it), so
    it refuses writes instead.
    """

    __slots__ = ()

    def observe(self, value):
        raise TypeError(
            "read-only empty histogram: Stats.histogram() of a never-observed "
            "name is not registered; use Stats.observe() or ensure_histogram()"
        )


#: Shared immutable empty histogram (see :meth:`Stats.histogram`).
EMPTY_HISTOGRAM = _ReadOnlyHistogram()


class _DiscardHistogram(Histogram):
    """Histogram that drops observations — backs :data:`NULL_STATS`."""

    __slots__ = ()

    def observe(self, value):
        return None


_DISCARD_HISTOGRAM = _DiscardHistogram()


class StatSink:
    """A pre-bound counter: one dict access per hit, no name formatting.

    Hot paths (protocol controllers, XG send helpers) create one sink per
    counter at construction time and call :meth:`inc` per event, instead
    of paying ``Stats.inc``'s attribute lookups and (often) an f-string
    per call — the call overhead ROADMAP measured on protocol code.
    """

    __slots__ = ("_counters", "name")

    def __init__(self, counters, name):
        self._counters = counters
        self.name = name

    def inc(self, amount=1):
        counters = self._counters
        counters[self.name] = counters.get(self.name, 0) + amount

    def __repr__(self):
        return f"StatSink({self.name!r})"


class _NullStatSink:
    """Sink that compiles to a no-op — what metrics-off simulations use."""

    __slots__ = ()

    def inc(self, amount=1):
        return None

    def __repr__(self):
        return "NULL_SINK"


#: Shared no-op sink (see :meth:`Stats.sink` / :class:`NullStats`).
NULL_SINK = _NullStatSink()


class Stats:
    """A named bag of counters and histograms."""

    # one instance per component/network; slots keep the per-instance
    # cost flat across large campaign sweeps
    __slots__ = ("owner", "counters", "histograms")

    def __init__(self, owner=""):
        self.owner = owner
        self.counters = {}
        self.histograms = {}

    def inc(self, name, amount=1):
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name, default=0):
        """Read counter ``name``."""
        return self.counters.get(name, default)

    def sink(self, name):
        """A pre-bound :class:`StatSink` incrementing counter ``name``."""
        return StatSink(self.counters, name)

    def observe(self, name, value):
        """Record ``value`` in histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram()
            self.histograms[name] = hist
        hist.observe(value)

    def ensure_histogram(self, name, bucket_width=16):
        """Return histogram ``name``, registering it if new (pre-binding)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(bucket_width)
            self.histograms[name] = hist
        return hist

    def histogram(self, name):
        """Return histogram ``name``.

        An unknown name returns the shared read-only
        :data:`EMPTY_HISTOGRAM` — reading count/mean/etc. works (all
        zero/None), but observing into it raises instead of silently
        losing data in an unattached throwaway object.
        """
        return self.histograms.get(name, EMPTY_HISTOGRAM)

    def as_dict(self):
        report = dict(self.counters)
        for name, hist in self.histograms.items():
            report[name] = hist.as_dict()
        return report

    def merge_into(self, other):
        """Accumulate this object's counters/histograms into ``other``."""
        for name, value in self.counters.items():
            other.inc(name, value)
        for name, hist in self.histograms.items():
            dest = other.histograms.get(name)
            if dest is None:
                # carry the source's bucket width so later merges of the
                # same name land in identical bins
                dest = Histogram(hist._bucket_width)
                other.histograms[name] = dest
            hist.merge_into(dest)

    def __repr__(self):
        return f"Stats(owner={self.owner!r}, counters={len(self.counters)})"


class NullStats:
    """Shared no-op stand-in for :class:`Stats` when metrics are disabled.

    A simulator built with ``metrics=False`` hands every component this
    singleton: increments, observations, and merges vanish, ``sink()``
    returns the no-op :data:`NULL_SINK`, and ``counters`` is ``None`` so
    hand-inlined hot paths (the network's delivery counters) can skip
    their counter block with one identity check.
    """

    __slots__ = ()

    owner = "null"
    counters = None
    histograms = {}

    def inc(self, name, amount=1):
        return None

    def get(self, name, default=0):
        return default

    def sink(self, name):
        return NULL_SINK

    def observe(self, name, value):
        return None

    def ensure_histogram(self, name, bucket_width=16):
        return _DISCARD_HISTOGRAM

    def histogram(self, name):
        return EMPTY_HISTOGRAM

    def as_dict(self):
        return {}

    def merge_into(self, other):
        return None

    def __repr__(self):
        return "NULL_STATS"


#: The shared metrics-off stats instance.
NULL_STATS = NullStats()
