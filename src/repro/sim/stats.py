"""Lightweight statistics: counters and streaming histograms.

Every component owns a :class:`Stats` instance; the simulator can aggregate
them into one report. Values are plain Python numbers so reports serialize
trivially.
"""


class Histogram:
    """Streaming histogram tracking count/sum/min/max and coarse buckets."""

    __slots__ = ("count", "total", "min", "max", "buckets", "_bucket_width")

    def __init__(self, bucket_width=16):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets = {}
        self._bucket_width = bucket_width

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value) // self._bucket_width
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self):
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def as_dict(self):
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            # bucket map included so two runs can be compared exactly
            # (the determinism property tests diff full stats reports)
            "buckets": dict(self.buckets),
        }

    def __repr__(self):
        return (
            f"Histogram(count={self.count}, mean={self.mean:.2f}, "
            f"min={self.min}, max={self.max})"
        )


class Stats:
    """A named bag of counters and histograms."""

    # one instance per component/network; slots keep the per-instance
    # cost flat across large campaign sweeps
    __slots__ = ("owner", "counters", "histograms")

    def __init__(self, owner=""):
        self.owner = owner
        self.counters = {}
        self.histograms = {}

    def inc(self, name, amount=1):
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name, default=0):
        """Read counter ``name``."""
        return self.counters.get(name, default)

    def observe(self, name, value):
        """Record ``value`` in histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram()
            self.histograms[name] = hist
        hist.observe(value)

    def histogram(self, name):
        """Return histogram ``name`` (empty histogram if never observed)."""
        return self.histograms.get(name, Histogram())

    def as_dict(self):
        report = dict(self.counters)
        for name, hist in self.histograms.items():
            report[name] = hist.as_dict()
        return report

    def merge_into(self, other):
        """Accumulate this object's counters/histograms into ``other``."""
        for name, value in self.counters.items():
            other.inc(name, value)
        for name, hist in self.histograms.items():
            dest = other.histograms.setdefault(name, Histogram())
            dest.count += hist.count
            dest.total += hist.total
            if hist.min is not None:
                dest.min = hist.min if dest.min is None else min(dest.min, hist.min)
            if hist.max is not None:
                dest.max = hist.max if dest.max is None else max(dest.max, hist.max)
            for bucket, count in hist.buckets.items():
                dest.buckets[bucket] = dest.buckets.get(bucket, 0) + count

    def __repr__(self):
        return f"Stats(owner={self.owner!r}, counters={len(self.counters)})"
