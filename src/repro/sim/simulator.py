"""The simulator: clock, event loop, deterministic RNG, deadlock watchdog.

The watchdog implements the property the paper's safety evaluation relies
on: a *deadlock* is a visible message that no controller consumes for
``deadlock_threshold`` ticks. The fuzz harness asserts this never fires on
host-side components when Crossing Guard is in place.
"""

import heapq
import random
from collections import deque

from repro.sim.event import Event, EventQueue
from repro.sim.stats import NULL_STATS, Stats


class DeadlockError(RuntimeError):
    """A component left a visible message unprocessed past the threshold.

    When raised by the watchdog the error carries the owning simulator;
    :meth:`diagnose` then turns a bare "X is stuck" into a forensic
    report — chaos campaigns attach it to their failure output so an
    injected-fault wedge is debuggable from the log alone.
    """

    def __init__(self, component, stalled_since, now, sim=None):
        self.component = component
        self.stalled_since = stalled_since
        self.now = now
        self.sim = sim
        super().__init__(
            f"deadlock: {component.name} has work pending since tick "
            f"{stalled_since} (now {now})"
        )

    def diagnose(self):
        """Multi-line forensic report: per-component pending work, queue
        depths, open TBEs, stalled messages, and the last-N message trace."""
        lines = [str(self)]
        if self.sim is None:
            lines.append("(no simulator attached; diagnosis unavailable)")
            return "\n".join(lines)
        lines.append("-- components with pending work --")
        for comp in self.sim.components:
            oldest = comp.oldest_pending_tick(self.now)
            depths = {
                port: len(buf) for port, buf in comp.in_ports.items() if len(buf)
            }
            open_tbes = len(comp.tbes) if hasattr(comp, "tbes") else 0
            stalled = comp.stalled_count() if hasattr(comp, "stalled_count") else 0
            if oldest is None and not depths and not open_tbes and not stalled:
                continue
            mark = "  <-- watchdog tripped here" if comp is self.component else ""
            lines.append(
                f"  {comp.name}: oldest_pending={oldest} queues={depths or '{}'} "
                f"open_tbes={open_tbes} stalled_msgs={stalled}{mark}"
            )
        extra = []
        for comp in self.sim.components:
            hook = getattr(comp, "diagnose_extra", None)
            if hook is None:
                continue
            for line in hook():
                extra.append(f"  {comp.name}: {line}")
        if extra:
            # Components that know more than their queues — quarantine
            # state on a Crossing Guard, the recent move log on a rogue
            # accelerator — self-describe here so a hung adversarial run
            # explains itself from the report alone.
            lines.append("-- component forensics --")
            lines.extend(extra)
        trace = list(self.sim.trace) if self.sim.trace is not None else []
        if self.sim.trace is None:
            lines.append("-- network trace disabled (trace_depth=0); "
                         "replay the seed with tracing enabled for messages --")
        lines.append(f"-- last {len(trace)} network messages (oldest first) --")
        for tick, net, mtype, addr, sender, dest, note in trace:
            mname = getattr(mtype, "name", mtype)
            addr_s = f"{addr:#x}" if isinstance(addr, int) else str(addr)
            suffix = f" [{note}]" if note else ""
            lines.append(f"  t={tick} {net}: {mname} {addr_s} {sender}->{dest}{suffix}")
        return "\n".join(lines)


#: Per-process progress hook installed by the campaign telemetry fabric:
#: ``(callback, interval_ticks)`` or None. When set, every new Simulator
#: attaches a :class:`ProgressMonitor` calling ``callback(sim, final)``.
_PROGRESS_HOOK = None


def set_progress_hook(callback, interval=5000):
    """Install (or clear, with ``callback=None``) the process progress hook.

    The fabric worker initializer sets this once per process; from then on
    every simulation built in the process reports periodic progress via a
    run-loop *monitor* — the same out-of-band mechanism as the invariant
    watchdog, so it never schedules events, never touches component stats,
    and never consumes ``sim.rng``: golden digests and campaign results
    are byte-identical with the hook installed.
    """
    global _PROGRESS_HOOK
    if callback is None:
        _PROGRESS_HOOK = None
    else:
        _PROGRESS_HOOK = (callback, max(1, int(interval)))


def progress_hook():
    """The installed ``(callback, interval)`` pair, or None."""
    return _PROGRESS_HOOK


class ProgressMonitor:
    """Out-of-band periodic progress sampling for the telemetry fabric.

    Attached via :meth:`Simulator.attach_monitor`. The callback is fenced:
    a telemetry bug must never kill a simulation, so the first exception
    disables the monitor for the rest of the run and is remembered on
    ``last_error``.
    """

    def __init__(self, callback, interval=5000):
        self.callback = callback
        self.interval = max(1, int(interval))
        self.samples = 0
        self.last_error = None
        self._next = None

    def next_due(self, tick):
        if self._next is None:
            self._next = tick + self.interval
        return self._next

    def sample(self, sim, final=False):
        self._next = sim.tick + self.interval
        if self.callback is None:
            return self._next
        self.samples += 1
        try:
            self.callback(sim, final)
        except Exception as exc:  # noqa: BLE001 - observers must not kill runs
            self.last_error = exc
            self.callback = None
        return self._next


class Simulator:
    """Owns the clock, the event queue, components, and global stats."""

    def __init__(self, seed=0, deadlock_threshold=None, trace_depth=64, metrics=True):
        self.tick = 0
        self.rng = random.Random(seed)
        self.seed = seed
        self.events = EventQueue()
        self.components = []
        self.networks = []
        self._stats = {}
        self.deadlock_threshold = deadlock_threshold
        self._events_fired = 0
        self._component_index = {}
        #: ``metrics=False`` hands every component/network the shared
        #: :data:`~repro.sim.stats.NULL_STATS` — all counter and histogram
        #: work becomes a no-op (pure-speed campaign mode).
        self.metrics_enabled = metrics
        #: optional :class:`~repro.obs.Telemetry` hub. ``None`` (the
        #: default) means every instrumentation hook in the engine and the
        #: protocol layer reduces to one attribute load + identity check.
        self.obs = None
        #: optional :class:`~repro.obs.lineage.LineageTracker`, mirrored
        #: here by :class:`~repro.obs.Telemetry` when lineage is on so the
        #: network/controller hooks pay one load + None check when off.
        self.lineage = None
        #: default for ``Telemetry(lineage=...)``; set by ``build_system``
        #: from ``SystemConfig.lineage`` so attaching telemetry later
        #: (campaigns, golden runs) picks the config's choice up.
        self.lineage_default = False
        #: out-of-band sampling monitors (e.g. the online invariant
        #: watchdog). A monitor never schedules simulator events, never
        #: touches component stats, and never consumes ``sim.rng`` — the
        #: run loop polls it between events like the deadlock check, so
        #: golden digests are byte-identical with monitors attached.
        self.monitors = []
        hook = _PROGRESS_HOOK
        if hook is not None:
            self.attach_monitor(ProgressMonitor(hook[0], hook[1]))
        #: ring of the last ``trace_depth`` network sends, for forensics.
        #: ``trace_depth=0`` disables recording entirely (``trace`` is
        #: None and the networks skip the recording call) — campaigns run
        #: that way and deterministically replay a failing seed with
        #: tracing enabled when they need the forensics.
        self.trace = deque(maxlen=trace_depth) if trace_depth > 0 else None

    def record_trace(self, net_name, msg, note=""):
        """Append one network send to the forensic trace ring (if enabled)."""
        if self.trace is not None:
            self.trace.append(
                (self.tick, net_name, msg.mtype, msg.addr, msg.sender, msg.dest, note)
            )

    # -- registration --------------------------------------------------------

    def register(self, component):
        self.components.append(component)
        # first registration wins, matching the old linear scan
        self._component_index.setdefault(component.name, component)

    def register_network(self, network):
        self.networks.append(network)

    def attach_monitor(self, monitor):
        """Register an out-of-band run-loop monitor.

        A monitor exposes ``next_due(tick) -> tick`` and
        ``sample(sim, final=False) -> next_due_tick``; the run loop calls
        ``sample`` between events once the clock passes the due tick, and
        once more (``final=True``) when the queue drains. Monitors must
        not schedule events or mutate component state — they observe.
        """
        self.monitors.append(monitor)
        return monitor

    def component(self, name):
        """Look up a registered component by name."""
        try:
            return self._component_index[name]
        except KeyError:
            raise KeyError(f"no component named {name!r}") from None

    def stats_for(self, owner):
        """A named Stats bag owned by the simulator (for networks etc.)."""
        if not self.metrics_enabled:
            return NULL_STATS
        if owner not in self._stats:
            self._stats[owner] = Stats(owner=owner)
        return self._stats[owner]

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay, callback, *args):
        """Schedule ``callback`` ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        return self.events.schedule(self.tick + delay, callback, *args)

    def schedule_at(self, tick, callback, *args):
        """Schedule ``callback`` at absolute ``tick`` (>= now)."""
        if tick < self.tick:
            raise ValueError(f"cannot schedule in the past ({tick} < {self.tick})")
        return self.events.schedule(tick, callback, *args)

    # -- the event loop --------------------------------------------------------

    def run(self, max_ticks=None, max_events=None, final_check=True):
        """Drain the event queue.

        Stops when the queue empties, when the clock passes ``max_ticks``,
        or after ``max_events`` callbacks. Returns the reason:
        ``"idle"``, ``"max_ticks"``, or ``"max_events"``.

        Raises :class:`DeadlockError` if the watchdog is armed and a
        component sits on visible work too long, or — unless
        ``final_check=False`` — if the queue empties while any component
        still has pending work (nothing can ever consume it).
        """
        fired = 0
        check_interval = None
        next_check = None
        if self.deadlock_threshold is not None:
            check_interval = max(1, self.deadlock_threshold // 4)
            next_check = self.tick + check_interval
        next_monitor = None
        if self.monitors:
            next_monitor = min(m.next_due(self.tick) for m in self.monitors)
        # Both loops drain the queue bucket-at-a-time over its internals:
        # one heap consultation per distinct tick, then a straight-line
        # sweep over that tick's FIFO of slots. Same-tick work scheduled
        # mid-sweep appends to the live bucket (len() is re-read each
        # iteration), so insertion order within a tick is preserved.
        events = self.events
        heap = events._heap
        buckets = events._buckets
        objs = events._objs
        gens = events._gens
        free = events._free
        heappop = heapq.heappop
        if (max_ticks is None and max_events is None and next_check is None
                and next_monitor is None):
            # Unlimited drain with no watchdog/monitors: the per-event
            # limit checks can never trigger, so run the stripped loop.
            try:
                while True:
                    # peek_tick retires stale tick entries and leading
                    # tombstones, so a returned tick's bucket is guaranteed
                    # to open on a live event — the clock never advances
                    # for cancelled-only work.
                    t = events.peek_tick()
                    if t is None:
                        break
                    bucket = buckets[t]
                    self.tick = t
                    events._draining_tick = t
                    try:
                        # bucket[0] is the authoritative head — a callback
                        # may advance it (peek_tick retiring tombstones
                        # mid-drain), so re-read it every iteration.
                        while True:
                            i = bucket[0]
                            if i >= len(bucket):
                                break
                            slot = bucket[i]
                            bucket[0] = i + 1
                            obj = objs[slot]
                            if obj is None:
                                events._cancelled -= 1
                                gens[slot] += 1
                                free.append(slot)
                                continue
                            objs[slot] = None
                            gens[slot] += 1
                            free.append(slot)
                            events._live -= 1
                            if type(obj) is Event:
                                obj._queue = None
                                if not obj.cancelled:
                                    obj.callback(*obj.args)
                            else:
                                obj()
                            fired += 1
                    finally:
                        events._draining_tick = None
                    del buckets[t]
                    # a callback may have compacted the heap or scheduled a
                    # past tick; only pop our entry if it is still on top
                    if heap and heap[0] == t:
                        heappop(heap)
                if final_check:
                    self._check_deadlock(final=True)
                return "idle"
            finally:
                self._events_fired += fired
        try:
            while True:
                t = events.peek_tick()
                if t is None:
                    if final_check:
                        self._check_deadlock(final=True)
                        # flush the loop-local fired count so monitors see
                        # live totals; end-of-run state is unchanged
                        self._events_fired += fired
                        fired = 0
                        self._run_monitors(final=True)
                    return "idle"
                if max_ticks is not None and t > max_ticks:
                    # stop *before* the bucket: tick freezes at the limit and
                    # the pending work stays queued for a later run()
                    self.tick = max_ticks
                    return "max_ticks"
                if t < self.tick:
                    raise AssertionError("event queue went backwards in time")
                bucket = buckets[t]
                self.tick = t
                events._draining_tick = t
                try:
                    while True:
                        i = bucket[0]
                        if i >= len(bucket):
                            break
                        slot = bucket[i]
                        bucket[0] = i + 1
                        obj = objs[slot]
                        if obj is None:
                            events._cancelled -= 1
                            gens[slot] += 1
                            free.append(slot)
                            continue
                        objs[slot] = None
                        gens[slot] += 1
                        free.append(slot)
                        events._live -= 1
                        if type(obj) is Event:
                            obj._queue = None
                            if not obj.cancelled:
                                obj.callback(*obj.args)
                        else:
                            obj()
                        fired += 1
                        if max_events is not None and fired >= max_events:
                            # head index persists in bucket[0]; a later run()
                            # resumes mid-bucket exactly where we stopped
                            return "max_events"
                        if next_check is not None and t >= next_check:
                            self._check_deadlock(final=False)
                            next_check = t + check_interval
                        if next_monitor is not None and t >= next_monitor:
                            # flush the loop-local fired count so monitors
                            # sample live totals, not start-of-run state
                            self._events_fired += fired
                            fired = 0
                            next_monitor = self._run_monitors(final=False)
                finally:
                    events._draining_tick = None
                del buckets[t]
                if heap and heap[0] == t:
                    heappop(heap)
        finally:
            self._events_fired += fired

    def _run_monitors(self, final):
        """Sample every attached monitor; returns the earliest next-due tick."""
        earliest = None
        for monitor in self.monitors:
            due = monitor.sample(self, final=final)
            if due is not None and (earliest is None or due < earliest):
                earliest = due
        return earliest

    def _check_deadlock(self, final):
        """Raise when a component has visible pending work that is too old.

        On ``final`` (queue empty), *any* visible pending work is a deadlock:
        nothing can ever consume it.
        """
        if self.deadlock_threshold is None and not final:
            return
        for comp in self.components:
            if comp.watchdog_exempt:
                continue
            oldest = comp.oldest_pending_tick(self.tick)
            if oldest is None:
                continue
            if final:
                raise DeadlockError(comp, oldest, self.tick, sim=self)
            if self.tick - oldest > self.deadlock_threshold:
                raise DeadlockError(comp, oldest, self.tick, sim=self)

    # -- reporting --------------------------------------------------------------

    def aggregate_stats(self):
        """Merge every component's and network's stats into one bag."""
        total = Stats(owner="aggregate")
        for comp in self.components:
            comp.stats.merge_into(total)
        for stats in self._stats.values():
            stats.merge_into(total)
        return total

    def stats_report(self):
        """Per-owner dict of stats dicts."""
        report = {comp.name: comp.stats.as_dict() for comp in self.components}
        for owner, stats in self._stats.items():
            report[owner] = stats.as_dict()
        return report

    def __repr__(self):
        return (
            f"Simulator(tick={self.tick}, components={len(self.components)}, "
            f"events_fired={self._events_fired})"
        )
