"""Synthetic workloads standing in for the paper's gem5-gpu benchmarks."""

from repro.workloads.synthetic import (
    WorkloadDriver,
    blocked_decode,
    graph_walk,
    run_drivers,
    shared_pingpong,
    streaming,
    write_coalesce,
    PERF_WORKLOADS,
)

__all__ = [
    "PERF_WORKLOADS",
    "WorkloadDriver",
    "blocked_decode",
    "graph_walk",
    "run_drivers",
    "shared_pingpong",
    "streaming",
    "write_coalesce",
]
