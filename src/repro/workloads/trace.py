"""Trace-driven workloads: record real op streams, replay them anywhere.

Lets a workload captured on one configuration (say, the unsafe
accelerator-side baseline) be replayed bit-identically on another (say,
Transactional XG) for apples-to-apples comparison, or saved to JSONL for
later runs.

Timing is not replayed — the replay preserves per-agent program order and
lets the target system's latencies determine pacing, which is what a
cache-organization comparison wants.
"""

import json

from repro.workloads.synthetic import LOAD, STORE, WorkloadDriver


class TraceOp:
    __slots__ = ("agent", "kind", "addr", "value")

    def __init__(self, agent, kind, addr, value=None):
        self.agent = agent
        self.kind = kind
        self.addr = addr
        self.value = value

    def as_dict(self):
        return {"agent": self.agent, "kind": self.kind, "addr": self.addr, "value": self.value}

    @classmethod
    def from_dict(cls, raw):
        return cls(raw["agent"], raw["kind"], raw["addr"], raw.get("value"))

    def __eq__(self, other):
        return (
            isinstance(other, TraceOp)
            and (self.agent, self.kind, self.addr, self.value)
            == (other.agent, other.kind, other.addr, other.value)
        )

    def __repr__(self):
        val = f", {self.value}" if self.kind == STORE else ""
        return f"TraceOp({self.agent}, {self.kind}, {self.addr:#x}{val})"


class TraceRecorder:
    """Hooks a set of sequencers and records every issued op in order."""

    def __init__(self, sequencers):
        self.ops = []
        self._hooked = []
        for sequencer in sequencers:
            self._hook(sequencer)

    def _hook(self, sequencer):
        original = sequencer._issue
        self._hooked.append((sequencer, original))

        def issue(op, addr, value, callback, _name=sequencer.name, _original=original):
            from repro.protocols.common import CpuOp

            kind = STORE if op is CpuOp.Store else LOAD
            self.ops.append(TraceOp(_name, kind, addr, value))
            return _original(op, addr, value, callback)

        sequencer._issue = issue

    def detach(self):
        for sequencer, original in self._hooked:
            sequencer._issue = original
        self._hooked = []

    def save(self, path):
        save_trace(self.ops, path)

    def __len__(self):
        return len(self.ops)


def save_trace(ops, path):
    """Write a trace as JSON lines."""
    with open(path, "w") as fh:
        for op in ops:
            fh.write(json.dumps(op.as_dict()) + "\n")


def load_trace(path):
    """Read a JSONL trace."""
    ops = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                ops.append(TraceOp.from_dict(json.loads(line)))
    return ops


def split_by_agent(ops):
    """Group a trace into per-agent op streams, preserving program order."""
    streams = {}
    for op in ops:
        streams.setdefault(op.agent, []).append((op.kind, op.addr, op.value))
    return streams


def replay_drivers(system, ops, agent_map=None, max_outstanding=4):
    """Build WorkloadDrivers replaying ``ops`` on ``system``.

    ``agent_map`` renames trace agents onto the target system's sequencer
    names (identity by default). Agents without a mapping are assigned
    round-robin over the same class (cpu.* to CPU sequencers, everything
    else to accelerator sequencers).
    """
    streams = split_by_agent(ops)
    by_name = {seq.name: seq for seq in system.sequencers}
    cpu_seqs = list(system.cpu_seqs)
    accel_seqs = list(system.accel_seqs)
    cpu_index = 0
    accel_index = 0
    drivers = []
    for agent, stream in streams.items():
        target = None
        if agent_map and agent in agent_map:
            target = by_name[agent_map[agent]]
        elif agent in by_name:
            target = by_name[agent]
        elif agent.startswith("cpu") and cpu_seqs:
            target = cpu_seqs[cpu_index % len(cpu_seqs)]
            cpu_index += 1
        elif accel_seqs:
            target = accel_seqs[accel_index % len(accel_seqs)]
            accel_index += 1
        else:
            raise ValueError(f"no sequencer for trace agent {agent!r}")
        drivers.append(
            WorkloadDriver(system.sim, target, iter(stream), max_outstanding=max_outstanding)
        )
    return drivers
