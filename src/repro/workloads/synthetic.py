"""Synthetic accelerator kernels.

The paper's introduction motivates accelerator-specific access patterns:
block-based video decoders, data-dependent graph processing, streaming
with aggressive prefetch, GPU-style write coalescing, and fine-grained
CPU/accelerator sharing. Each generator below yields an op stream
``(kind, addr, value)`` with that shape; :class:`WorkloadDriver` replays a
stream into a sequencer with bounded outstanding requests.

These stand in for the paper's gem5-gpu Rodinia runs: absolute numbers
differ, but cache-organization effects (hit locality, crossing traffic,
sharing invalidations) are what the experiments compare, and these
patterns exercise exactly those.
"""

import random

LOAD = "load"
STORE = "store"


def streaming(base, num_blocks, block_size=64, write_fraction=0.3, seed=0):
    """Sequential sweep with little reuse (DMA-like / prefetch-friendly)."""
    rng = random.Random(seed)
    value = 1
    for index in range(num_blocks):
        addr = base + index * block_size
        yield (LOAD, addr, None)
        if rng.random() < write_fraction:
            yield (STORE, addr + 1, value)
            value = value % 250 + 1


def blocked_decode(base, num_tiles, tile_blocks=4, touches_per_block=6, block_size=64, seed=0):
    """Tile-at-a-time processing with heavy intra-tile reuse (video decode)."""
    rng = random.Random(seed)
    value = 1
    for tile in range(num_tiles):
        tile_base = base + tile * tile_blocks * block_size
        for _ in range(touches_per_block * tile_blocks):
            block = rng.randrange(tile_blocks)
            offset = rng.randrange(4)
            addr = tile_base + block * block_size + offset
            if rng.random() < 0.4:
                yield (STORE, addr, value)
                value = value % 250 + 1
            else:
                yield (LOAD, addr, None)


def graph_walk(base, footprint_blocks, steps, block_size=64, locality=0.3, seed=0):
    """Data-dependent pointer chasing over a footprint (graph analytics)."""
    rng = random.Random(seed)
    current = 0
    for _ in range(steps):
        if rng.random() < locality:
            current = (current + 1) % footprint_blocks
        else:
            current = rng.randrange(footprint_blocks)
        yield (LOAD, base + current * block_size, None)


def write_coalesce(base, num_blocks, writes_per_block=8, block_size=64, seed=0):
    """GPU-style coalesced stores: bursts of writes to one block."""
    rng = random.Random(seed)
    value = 1
    for index in range(num_blocks):
        addr = base + index * block_size
        for write in range(writes_per_block):
            yield (STORE, addr + (write % 4), value)
            value = value % 250 + 1
        if rng.random() < 0.25:
            yield (LOAD, addr, None)


def shared_pingpong(base, shared_blocks, rounds, block_size=64, role="producer", seed=0):
    """Fine-grained CPU/accelerator sharing over a small block set.

    Producers store, consumers load, over the same blocks — maximal
    coherence traffic across the crossing (the paper's motivating case
    for full hardware coherence).
    """
    rng = random.Random(seed + (1 if role == "producer" else 2))
    value = 1
    for _ in range(rounds):
        block = rng.randrange(shared_blocks)
        addr = base + block * block_size
        if role == "producer":
            yield (STORE, addr, value)
            value = value % 250 + 1
            yield (LOAD, addr + 1, None)
        else:
            yield (LOAD, addr, None)
            if rng.random() < 0.2:
                yield (STORE, addr + 1, value)
                value = value % 250 + 1


class WorkloadDriver:
    """Replays an op stream into one sequencer with bounded outstanding."""

    def __init__(self, sim, sequencer, stream, max_outstanding=4, think=0):
        self.sim = sim
        self.sequencer = sequencer
        self.stream = iter(stream)
        self.max_outstanding = max_outstanding
        self.think = think
        self.issued = 0
        self.completed = 0
        self.done = False
        self._in_flight = 0

    def start(self):
        for _ in range(self.max_outstanding):
            self._issue_next()

    def _issue_next(self):
        if self.done:
            return
        try:
            kind, addr, value = next(self.stream)
        except StopIteration:
            if self._in_flight == 0:
                self.done = True
            return
        self._in_flight += 1
        self.issued += 1
        if kind == STORE:
            self.sequencer.store(addr, value, self._on_done)
        else:
            self.sequencer.load(addr, self._on_done)

    def _on_done(self, msg, data):
        self.completed += 1
        self._in_flight -= 1
        if self.think:
            self.sim.schedule(self.think, self._issue_next)
        else:
            self._issue_next()

    @property
    def finished(self):
        return self._in_flight == 0 and self.done


def run_drivers(sim, drivers, max_ticks=200_000_000):
    """Start every driver and run the simulation until traffic drains."""
    for driver in drivers:
        driver.start()
    reason = sim.run(max_ticks=max_ticks)
    if reason != "idle":
        raise RuntimeError(f"workload did not drain: {reason}")
    return sim.tick


def PERF_WORKLOADS(accel_base=0x400000, cpu_base=0x800000, scale=1):
    """The five perf-figure workloads: name -> builder(system) -> drivers.

    Each builder returns the drivers for a built system: accelerator cores
    run the named kernel; CPUs run a light background mix.
    """

    def cpu_background(system, seed_offset=0):
        drivers = []
        for index, seq in enumerate(system.cpu_seqs):
            stream = blocked_decode(
                cpu_base + index * 0x10000, num_tiles=6 * scale, seed=index + seed_offset
            )
            drivers.append(WorkloadDriver(system.sim, seq, stream, max_outstanding=2))
        return drivers

    def make(name, accel_stream_fn):
        def build(system):
            drivers = cpu_background(system)
            for index, seq in enumerate(system.accel_seqs):
                drivers.append(
                    WorkloadDriver(
                        system.sim, seq, accel_stream_fn(index), max_outstanding=4
                    )
                )
            return drivers

        build.__name__ = name
        return build

    workloads = {
        "streaming": make(
            "streaming",
            lambda i: streaming(accel_base + i * 0x40000, 160 * scale, seed=i),
        ),
        "blocked_decode": make(
            "blocked_decode",
            lambda i: blocked_decode(accel_base + i * 0x40000, 24 * scale, seed=i),
        ),
        "graph_walk": make(
            "graph_walk",
            lambda i: graph_walk(accel_base, 64, 280 * scale, seed=i),
        ),
        "write_coalesce": make(
            "write_coalesce",
            lambda i: write_coalesce(accel_base + i * 0x40000, 48 * scale, seed=i),
        ),
    }

    def pingpong_build(system):
        drivers = []
        for index, seq in enumerate(system.cpu_seqs):
            stream = shared_pingpong(accel_base, 8, 120 * scale, role="producer", seed=index)
            drivers.append(WorkloadDriver(system.sim, seq, stream, max_outstanding=2))
        for index, seq in enumerate(system.accel_seqs):
            stream = shared_pingpong(accel_base, 8, 120 * scale, role="consumer", seed=index)
            drivers.append(WorkloadDriver(system.sim, seq, stream, max_outstanding=2))
        return drivers

    pingpong_build.__name__ = "shared_pingpong"
    workloads["shared_pingpong"] = pingpong_build
    return workloads
