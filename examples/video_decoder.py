#!/usr/bin/env python3
"""A wide-block accelerator: 256-byte cache blocks over a 64-byte host.

Models the paper's block-based video decoder motivation: the accelerator
prefers wide blocks (whole macroblock rows), so Crossing Guard's
block-size translation (Section 2.5) merges four host blocks per
accelerator fetch and splits writebacks back out. The CPU then reads the
decoded output — through normal coherence, at host granularity.
"""

from repro.eval.overheads import build_translation_system
from repro.workloads.synthetic import WorkloadDriver, blocked_decode, run_drivers

FRAME_BASE = 0x40000


def main():
    system, shim = build_translation_system(accel_block=256, seed=9)
    sim = system.sim

    # The "decoder" writes tiles through its wide-block cache.
    decoder = WorkloadDriver(
        sim,
        system.accel_seqs[0],
        blocked_decode(FRAME_BASE, num_tiles=12, tile_blocks=4, seed=9),
        max_outstanding=4,
    )
    # A CPU core consumes the frame at 64B granularity.
    consumer_stream = ((("load"), FRAME_BASE + 64 * i, None) for i in range(48))
    consumer = WorkloadDriver(sim, system.cpu_seqs[0], consumer_stream, max_outstanding=2)

    ticks = run_drivers(sim, [decoder, consumer])

    print(f"decoded + consumed in {ticks} ticks")
    print(f"wide fetches (256B)   : {shim.stats.get('wide_fetches')}")
    print(f"wide writebacks       : {shim.stats.get('wide_writebacks')}")
    print(f"host messages via XG  : {system.xg.stats.get('xg_to_host_msgs')}")
    print(f"XG guarantee errors   : {len(system.error_log)} (expect 0)")
    print(f"accelerator ops       : {decoder.completed}, CPU ops: {consumer.completed}")


if __name__ == "__main__":
    main()
