#!/usr/bin/env python3
"""Build a CUSTOM accelerator cache on the standard interface.

This is the paper's pitch to accelerator designers: the Crossing Guard
interface is simple enough to get right, yet expressive enough to build
*optimized* caches on — here a streaming cache that prefetches ahead,
with zero changes to the host or to Crossing Guard. The host cannot even
tell: prefetches are ordinary GetS requests.
"""

from repro import AccelOrg, HostProtocol, SystemConfig, build_system
from repro.workloads.synthetic import WorkloadDriver, run_drivers, streaming

FRAME = 0x40000
BLOCKS = 160


def run(depth):
    config = SystemConfig(
        host=HostProtocol.MESI,
        org=AccelOrg.XG,
        n_cpus=1,
        n_accel_cores=1,
        accel_prefetch_depth=depth,
        seed=3,
    )
    system = build_system(config)
    driver = WorkloadDriver(
        system.sim,
        system.accel_seqs[0],
        streaming(FRAME, BLOCKS, write_fraction=0.0, seed=3),
        max_outstanding=2,
    )
    ticks = run_drivers(system.sim, [driver])
    l1 = system.accel_caches[0]
    return ticks, l1, system


def main():
    baseline_ticks, _l1, _sys = run(depth=0)
    print(f"plain Table 1 cache     : {baseline_ticks:6d} ticks  (baseline)")
    for depth in (1, 2, 4):
        ticks, l1, system = run(depth)
        speedup = baseline_ticks / ticks
        print(
            f"prefetch depth {depth}        : {ticks:6d} ticks  "
            f"({speedup:.2f}x; {l1.stats.get('prefetches_issued')} prefetches, "
            f"{l1.stats.get('prefetch_hits')} hits, "
            f"{len(system.error_log)} guarantee violations)"
        )
    print("\nSame host, same Crossing Guard, same guarantees — the speedup")
    print("comes entirely from the accelerator designer's own cache policy.")


if __name__ == "__main__":
    main()
