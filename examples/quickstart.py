#!/usr/bin/env python3
"""Quickstart: a CPU and an accelerator sharing memory through Crossing Guard.

Builds the paper's Figure 2c organization — MESI host, Full State
Crossing Guard, single-level accelerator cache — and runs a tiny
producer/consumer exchange: the CPU writes values, the accelerator reads
and doubles them, the CPU reads the results back. Full hardware coherence
means nobody flushes anything explicitly.
"""

from repro import AccelOrg, HostProtocol, SystemConfig, XGVariant, build_system

DATA_BASE = 0x10000
NUM_ITEMS = 8


def main():
    config = SystemConfig(
        host=HostProtocol.MESI,
        org=AccelOrg.XG,
        xg_variant=XGVariant.FULL_STATE,
        n_cpus=1,
        n_accel_cores=1,
    )
    system = build_system(config)
    sim = system.sim
    cpu = system.cpu_seqs[0]
    accel = system.accel_seqs[0]

    # Phase 1: the CPU produces NUM_ITEMS values, one per cache block.
    produced = []

    def produce(index):
        if index == NUM_ITEMS:
            consume(0)
            return
        value = 10 + index
        produced.append(value)
        cpu.store(DATA_BASE + 64 * index, value, lambda m, d: produce(index + 1))

    # Phase 2: the accelerator loads each value and writes back 2x.
    def consume(index):
        if index == NUM_ITEMS:
            check(0)
            return
        addr = DATA_BASE + 64 * index

        def on_load(msg, data):
            doubled = (data.read_byte(0) * 2) % 256
            accel.store(addr, doubled, lambda m, d: consume(index + 1))

        accel.load(addr, on_load)

    # Phase 3: the CPU verifies the accelerator's results.
    results = []

    def check(index):
        if index == NUM_ITEMS:
            return
        cpu.load(
            DATA_BASE + 64 * index,
            lambda m, d, i=index: (results.append(d.read_byte(0)), check(i + 1)),
        )

    produce(0)
    sim.run()

    expected = [(v * 2) % 256 for v in produced]
    print(f"produced by CPU     : {produced}")
    print(f"read back after accel: {results}")
    assert results == expected, "coherence failed?!"
    print(f"\ncoherent in {sim.tick} ticks; "
          f"XG forwarded {system.xg.stats.get('xg_to_host_msgs')} host messages, "
          f"{len(system.error_log)} guarantee violations (expect 0)")
    print("accelerator miss latency:",
          sim.stats_for("latency").histogram("accel_miss_latency").as_dict())


if __name__ == "__main__":
    main()
