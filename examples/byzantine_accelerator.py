#!/usr/bin/env python3
"""Safety demo: a byzantine accelerator cannot harm the host.

Replaces the accelerator with the fuzzing adversary from the paper's
safety evaluation: it sprays random coherence messages (wrong types,
wrong channels, missing payloads, responses with no request) at Crossing
Guard while CPUs run checked traffic next to it. The host must neither
crash nor deadlock, CPU data on protected pages must stay intact, and
every violation must be reported to the OS.
"""

from repro import HostProtocol, XGVariant, run_fuzz_campaign


def main():
    for variant in (XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL):
        print(f"=== {variant.name} Crossing Guard, MESI host ===")
        result, system = run_fuzz_campaign(
            HostProtocol.MESI,
            variant,
            adversary="fuzz",
            seed=42,
            duration=50_000,
            cpu_ops=1200,
        )
        report = result.as_dict()
        print(f"  host safe           : {report['host_safe']}")
        print(f"  adversary messages  : {report['adversary_messages']}")
        print(f"  CPU loads checked   : {report['cpu_loads_checked']} (all data correct)")
        print(f"  violations reported : {report['violations_total']}")
        for guarantee, count in sorted(report["violations"].items()):
            print(f"      {guarantee:24s} {count}")
        assert report["host_safe"], "the host must survive anything"
        print()
    print("Both variants kept the host alive under fuzzing — the paper's")
    print("safety result: 'this fuzz testing never leads to a crash or deadlock'.")


if __name__ == "__main__":
    main()
