#!/usr/bin/env python3
"""Compare the paper's cache organizations on one workload (mini Figure).

Runs the graph-analytics kernel on every organization of Figure 2 for
both host protocols and prints runtime normalized to the unsafe
accelerator-side cache — the shape the paper's performance evaluation
reports: XG close to accel-side, host-side far behind for cache-friendly
workloads.
"""

from repro.eval.perf import perf_configs, run_one
from repro.eval.report import format_table
from repro.host.config import HostProtocol
from repro.workloads.synthetic import PERF_WORKLOADS


def main():
    builder = PERF_WORKLOADS(scale=1)["graph_walk"]
    rows = []
    for host in (HostProtocol.MESI, HostProtocol.HAMMER):
        baseline = None
        for config in perf_configs(host):
            row, _system = run_one(config, builder)
            if baseline is None:
                baseline = row["ticks"]
            rows.append(
                (
                    row["config"],
                    row["ticks"],
                    f"{row['ticks'] / baseline:.2f}x",
                    f"{row['accel_mean_latency']:.1f}",
                )
            )
    print(
        format_table(
            ["organization", "ticks", "vs accel-side", "accel op latency"],
            rows,
            title="graph_walk runtime by cache organization",
        )
    )
    print("\nExpected shape: host-side slowest (every access crosses);")
    print("XG within a few percent of the unsafe accelerator-side cache.")


if __name__ == "__main__":
    main()
