#!/usr/bin/env python3
"""Two accelerators, two Crossing Guards, one coherent address space.

The paper: "There is one instance of Crossing Guard per accelerator in
the system." Here a producer accelerator streams results into memory and
a consumer accelerator (a different third-party device, behind its own
XG) reads them — while a CPU audits. Coherence between the accelerators
flows exclusively through the host protocol, mediated by both guards.
"""

from repro import AccelOrg, HostProtocol, SystemConfig, XGVariant, build_system

DATA = 0x50000
ITEMS = 12


def main():
    config = SystemConfig(
        host=HostProtocol.HAMMER,
        org=AccelOrg.XG,
        xg_variant=XGVariant.TRANSACTIONAL,
        n_accelerators=2,
        n_accel_cores=1,
        n_cpus=1,
    )
    system = build_system(config)
    sim = system.sim
    producer = system.accel_seqs[0]  # behind xg
    consumer = system.accel_seqs[1]  # behind xg.1
    cpu = system.cpu_seqs[0]

    sums = {"consumer": 0, "cpu": 0}

    def produce(index):
        if index == ITEMS:
            consume(0)
            return
        producer.store(DATA + 64 * index, index + 1, lambda m, d: produce(index + 1))

    def consume(index):
        if index == ITEMS:
            audit(0)
            return

        def on_load(msg, data):
            sums["consumer"] += data.read_byte(0)
            consume(index + 1)

        consumer.load(DATA + 64 * index, on_load)

    def audit(index):
        if index == ITEMS:
            return
        cpu.load(
            DATA + 64 * index,
            lambda m, d, i=index: (sums.__setitem__("cpu", sums["cpu"] + d.read_byte(0)),
                                   audit(i + 1)),
        )

    produce(0)
    sim.run()

    expected = sum(range(1, ITEMS + 1))
    print(f"producer wrote 1..{ITEMS} through {system.xgs[0].name}")
    print(f"consumer (via {system.xgs[1].name}) summed: {sums['consumer']} "
          f"(expected {expected})")
    print(f"CPU audit summed: {sums['cpu']}")
    assert sums["consumer"] == sums["cpu"] == expected
    for xg, log in zip(system.xgs, system.error_logs):
        print(f"{xg.name}: {xg.stats.get('xg_to_host_msgs')} host messages, "
              f"{len(log)} violations")
    print(f"\ncoherent across two accelerators in {sim.tick} ticks")


if __name__ == "__main__":
    main()
