"""Tests for the system builder and the 12-configuration matrix."""

import pytest

from repro.host.config import (
    AccelOrg,
    HostProtocol,
    SystemConfig,
    all_evaluated_configs,
)
from repro.host.system import build_system
from repro.xg.interface import XGVariant


def test_matrix_has_twelve_configs():
    configs = all_evaluated_configs()
    assert len(configs) == 12
    labels = [c.label for c in configs]
    assert len(set(labels)) == 12
    assert "hammer/accel-side" in labels
    assert "mesi/xg-txn-L2" in labels


@pytest.mark.parametrize("config", all_evaluated_configs(), ids=lambda c: c.label)
def test_every_config_builds_and_runs(config):
    system = build_system(config)
    done = []
    system.accel_seqs[0].store(0x5000, 7, lambda m, d: done.append(d.read_byte(0)))
    system.sim.run()
    assert done == [7]
    out = []
    system.cpu_seqs[0].load(0x5000, lambda m, d: out.append(d.read_byte(0)))
    system.sim.run()
    assert out == [7], "accelerator store must be coherent with CPU loads"


def test_xg_config_has_guard_and_permissions():
    system = build_system(SystemConfig(org=AccelOrg.XG))
    assert system.xg is not None
    assert system.error_log is not None
    assert system.permissions is not None
    assert "xg" in system.host_net.endpoints()
    assert "xg" in system.accel_net.endpoints()


def test_baselines_have_no_guard():
    for org in (AccelOrg.ACCEL_SIDE, AccelOrg.HOST_SIDE):
        system = build_system(SystemConfig(org=org))
        assert system.xg is None
        assert system.error_log is None


def test_two_level_config_builds_accel_l2():
    system = build_system(SystemConfig(org=AccelOrg.XG, accel_levels=2, n_accel_cores=3))
    assert system.accel_l2 is not None
    assert len(system.accel_caches) == 3
    assert len(system.accel_seqs) == 3


def test_hammer_counts_xg_as_peer():
    system = build_system(SystemConfig(host=HostProtocol.HAMMER, org=AccelOrg.XG, n_cpus=2))
    # 2 CPU caches + XG on the broadcast fabric
    assert sorted(system.directory.cache_names) == ["cpu_l1.0", "cpu_l1.1", "xg"]
    assert system.xg.n_peers == 2
    for cache in system.cpu_caches:
        assert cache.n_peers == 2


def test_hosts_tolerant_only_with_xg():
    with_xg = build_system(SystemConfig(host=HostProtocol.MESI, org=AccelOrg.XG))
    without = build_system(SystemConfig(host=HostProtocol.MESI, org=AccelOrg.ACCEL_SIDE))
    assert with_xg.directory.xg_tolerant
    assert not without.directory.xg_tolerant


def test_accel_net_is_ordered_host_net_is_not():
    system = build_system(SystemConfig(org=AccelOrg.XG))
    assert system.accel_net.ordered
    assert not system.host_net.ordered


def test_host_side_sequencers_pay_the_crossing():
    config = SystemConfig(org=AccelOrg.HOST_SIDE, crossing_latency=40)
    system = build_system(config)
    assert all(s.issue_latency == 40 for s in system.accel_seqs)
    assert all(s.response_latency == 40 for s in system.accel_seqs)
    assert all(s.issue_latency == 1 for s in system.cpu_seqs)


def test_adversary_tag_builds_adversary():
    config = SystemConfig(
        org=AccelOrg.XG,
        tags={"adversary": ("deaf", {"addr_pool": [0x1000]})},
    )
    system = build_system(config)
    from repro.accel.buggy import DeafAccel

    assert isinstance(system.accel_caches[0], DeafAccel)
    assert system.accel_caches[0].watchdog_exempt


def test_stats_summary():
    system = build_system(SystemConfig(org=AccelOrg.XG, n_cpus=1, n_accel_cores=1))
    system.cpu_seqs[0].store(0x1000, 1)
    system.sim.run()
    system.accel_seqs[0].load(0x1000)
    system.sim.run()
    summary = system.stats_summary()
    assert summary["config"] == "mesi/xg-full-L1"
    assert summary["cpu_ops"] == 1 and summary["accel_ops"] == 1
    assert summary["guarantee_violations"] == 0
    assert summary["xg_to_host_msgs"] > 0
    assert summary["accel_mean_latency"] > 0


def test_stats_summary_baseline_has_no_xg_fields():
    system = build_system(SystemConfig(org=AccelOrg.ACCEL_SIDE))
    summary = system.stats_summary()
    assert "xg_to_host_msgs" not in summary
