"""Unit tests for the Table 1 accelerator L1 — cell by cell."""

import pytest

from repro.accel.l1_single import AL1State, AccelL1, AccelL1Mode
from repro.host.cpu import Sequencer
from repro.sim.message import Message
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator
from repro.xg.interface import AccelMsg

from tests.helpers import RawAgent


def _build(mode=AccelL1Mode.MESI, sets=4, assoc=2):
    sim = Simulator(seed=0, deadlock_threshold=100_000)
    net = Network(sim, FixedLatency(1), ordered=True, name="accel")
    xg = RawAgent(sim, "xg", net)
    l1 = AccelL1(sim, "l1", net, "xg", num_sets=sets, assoc=assoc, mode=mode)
    net.attach(l1)
    seq = Sequencer(sim, "core")
    seq.attach(l1)
    return sim, net, xg, l1, seq


def _reply(xg, mtype, addr, **kw):
    xg.send(mtype, addr, "l1", "fromxg", **kw)


def _data(value=0):
    from repro.memory.datablock import DataBlock

    block = DataBlock()
    block.write_byte(0, value)
    return block


def test_i_load_issues_gets_and_enters_b(sim_ok=None):
    sim, net, xg, l1, seq = _build()
    seq.load(0x1000)
    sim.run(final_check=False)
    assert xg.of_type(AccelMsg.GetS), "Load in I must issue GetS"
    assert l1.block_state(0x1000) is AL1State.B


def test_i_store_issues_getm():
    sim, net, xg, l1, seq = _build()
    seq.store(0x1000, 5)
    sim.run(final_check=False)
    assert xg.of_type(AccelMsg.GetM)
    assert l1.block_state(0x1000) is AL1State.B


def test_data_responses_set_final_state():
    for mtype, state in (
        (AccelMsg.DataS, AL1State.S),
        (AccelMsg.DataE, AL1State.E),
        (AccelMsg.DataM, AL1State.M),
    ):
        sim, net, xg, l1, seq = _build()
        done = []
        seq.load(0x1000, lambda m, d: done.append(d.read_byte(0)))
        sim.run(final_check=False)
        _reply(xg, mtype, 0x1000, data=_data(42))
        sim.run()
        assert l1.block_state(0x1000) is state
        assert done == [42]


def test_s_store_upgrades_via_getm():
    sim, net, xg, l1, seq = _build()
    seq.load(0x1000)
    sim.run(final_check=False)
    _reply(xg, AccelMsg.DataS, 0x1000, data=_data())
    sim.run()
    assert l1.block_state(0x1000) is AL1State.S
    seq.store(0x1000, 9)
    sim.run(final_check=False)
    assert xg.of_type(AccelMsg.GetM)
    _reply(xg, AccelMsg.DataM, 0x1000, data=_data())
    sim.run()
    assert l1.block_state(0x1000) is AL1State.M
    assert l1.cache.lookup(0x1000).data.read_byte(0) == 9


def test_e_store_silent_upgrade_no_message():
    sim, net, xg, l1, seq = _build()
    seq.load(0x1000)
    sim.run(final_check=False)
    _reply(xg, AccelMsg.DataE, 0x1000, data=_data())
    sim.run()
    sent_before = len(xg.received)
    seq.store(0x1000, 7)
    sim.run()
    assert l1.block_state(0x1000) is AL1State.M
    assert len(xg.received) == sent_before, "E->M upgrade must be silent"


def _fill_block(sim, net, xg, l1, seq, addr, grant, value=1):
    seq.load(addr)
    sim.run(final_check=False)
    _reply(xg, grant, addr, data=_data(value))
    sim.run()


def test_replacements_send_correct_put_types():
    # 1-set/1-way cache: the second fill evicts the first.
    cases = [
        (AccelMsg.DataS, AccelMsg.PutS, False),
        (AccelMsg.DataE, AccelMsg.PutE, True),
        (AccelMsg.DataM, AccelMsg.PutM, True),
    ]
    for grant, put, carries_data in cases:
        sim, net, xg, l1, seq = _build(sets=1, assoc=1)
        _fill_block(sim, net, xg, l1, seq, 0x1000, grant, value=3)
        seq.load(0x2000)  # forces the eviction
        sim.run(final_check=False)
        puts = xg.of_type(put)
        assert puts, f"expected {put}"
        assert (puts[0].data is not None) == carries_data
        assert l1.block_state(0x1000) is AL1State.B
        _reply(xg, AccelMsg.WBAck, 0x1000)
        sim.run(final_check=False)
        assert l1.block_state(0x1000) is AL1State.I


def test_invalidate_responses_per_state():
    # M -> DirtyWB; E -> CleanWB; S -> InvAck; I -> InvAck.
    for grant, response in (
        (AccelMsg.DataM, AccelMsg.DirtyWB),
        (AccelMsg.DataE, AccelMsg.CleanWB),
        (AccelMsg.DataS, AccelMsg.InvAck),
    ):
        sim, net, xg, l1, seq = _build()
        _fill_block(sim, net, xg, l1, seq, 0x1000, grant, value=8)
        _reply(xg, AccelMsg.Invalidate, 0x1000)
        sim.run()
        answers = xg.of_type(response)
        assert answers, f"{grant} -> Invalidate must answer {response}"
        if response is not AccelMsg.InvAck:
            assert answers[0].data.read_byte(0) == 8
        assert l1.block_state(0x1000) is AL1State.I


def test_invalidate_in_i_still_acks():
    sim, net, xg, l1, seq = _build()
    _reply(xg, AccelMsg.Invalidate, 0x1000)
    sim.run()
    assert xg.of_type(AccelMsg.InvAck)


def test_invalidate_in_b_acks_and_stays_b():
    """Table 1's key rule: B + Invalidate -> InvAck, remain in B."""
    sim, net, xg, l1, seq = _build()
    seq.load(0x1000)
    sim.run(final_check=False)
    _reply(xg, AccelMsg.Invalidate, 0x1000)
    sim.run(final_check=False)
    assert xg.of_type(AccelMsg.InvAck)
    assert l1.block_state(0x1000) is AL1State.B
    _reply(xg, AccelMsg.DataS, 0x1000, data=_data())
    sim.run()
    assert l1.block_state(0x1000) is AL1State.S


def test_loads_stall_while_b():
    sim, net, xg, l1, seq = _build()
    first = []
    second = []
    seq.load(0x1000, lambda m, d: first.append(1))
    seq.load(0x1000, lambda m, d: second.append(1))
    sim.run(final_check=False)
    assert not first and not second
    assert len(xg.of_type(AccelMsg.GetS)) == 1, "second load must not re-request"
    _reply(xg, AccelMsg.DataS, 0x1000, data=_data())
    sim.run()
    assert first and second


def test_vi_mode_only_sends_getm_and_putm():
    sim, net, xg, l1, seq = _build(mode=AccelL1Mode.VI, sets=1, assoc=1)
    seq.load(0x1000)
    sim.run(final_check=False)
    assert xg.of_type(AccelMsg.GetM) and not xg.of_type(AccelMsg.GetS)
    _reply(xg, AccelMsg.DataM, 0x1000, data=_data())
    sim.run()
    seq.load(0x2000)  # evicts
    sim.run(final_check=False)
    assert xg.of_type(AccelMsg.PutM) and not xg.of_type(AccelMsg.PutE)


def test_msi_mode_treats_datae_as_datam():
    """Paper: 'An MSI design is possible by treating DataE as DataM (and
    sending only Dirty Writebacks).'"""
    sim, net, xg, l1, seq = _build(mode=AccelL1Mode.MSI)
    _fill_block(sim, net, xg, l1, seq, 0x1000, AccelMsg.DataE)
    assert l1.block_state(0x1000) is AL1State.M
    _reply(xg, AccelMsg.Invalidate, 0x1000)
    sim.run()
    assert xg.of_type(AccelMsg.DirtyWB) and not xg.of_type(AccelMsg.CleanWB)


def test_single_transient_state_only():
    """The whole point of Table 1: exactly one transient state."""
    sim, net, xg, l1, seq = _build()
    states = {state for (state, _event) in l1.transitions}
    transient = states - {AL1State.I, AL1State.S, AL1State.E, AL1State.M}
    assert transient == {AL1State.B}
