"""Unit tests for networks and message buffers."""

import pytest

from repro.sim.component import Component, MessageBuffer
from repro.sim.message import Message
from repro.sim.network import FixedLatency, Network, RandomLatency
from repro.sim.simulator import Simulator


class _Recorder(Component):
    PORTS = ("req", "resp")

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.arrivals = []

    def wakeup(self):
        for port in self.PORTS:
            while True:
                msg = self.in_ports[port].pop(self.sim.tick)
                if msg is None:
                    break
                self.arrivals.append((self.sim.tick, port, msg))


def _mk(sim, ordered=False, latency=None):
    net = Network(sim, latency or FixedLatency(3), ordered=ordered, name="t")
    dst = _Recorder(sim, "dst")
    net.attach(dst)
    return net, dst


def test_fixed_latency_delivery():
    sim = Simulator()
    net, dst = _mk(sim)
    net.send(Message("a", 0, sender="src", dest="dst"), "req")
    sim.run()
    assert dst.arrivals[0][0] == 3


def test_unknown_destination_raises():
    sim = Simulator()
    net, _dst = _mk(sim)
    with pytest.raises(KeyError):
        net.send(Message("a", 0, sender="src", dest="ghost"), "req")


def test_unknown_port_raises():
    sim = Simulator()
    net, _dst = _mk(sim)
    with pytest.raises(KeyError):
        net.send(Message("a", 0, sender="src", dest="dst"), "bogus")


def test_duplicate_endpoint_rejected():
    sim = Simulator()
    net, dst = _mk(sim)
    with pytest.raises(ValueError):
        net.attach(dst)


def test_random_latency_within_bounds():
    sim = Simulator(seed=7)
    net, dst = _mk(sim, latency=RandomLatency(2, 9))
    for i in range(50):
        net.send(Message("a", 64 * i, sender="s", dest="dst"), "req")
    sent_at = sim.tick
    sim.run()
    assert all(sent_at + 2 <= t <= sent_at + 9 for t, _p, _m in dst.arrivals)


def test_ordered_lane_is_fifo_across_ports():
    """The ordered accel link must serialize ALL messages per sender/dest
    pair, even across virtual channels — the paper's Put-before-InvAck
    ordering depends on it."""
    sim = Simulator(seed=1)
    net, dst = _mk(sim, ordered=True, latency=RandomLatency(1, 20))
    sent = []
    for i in range(30):
        port = "req" if i % 2 else "resp"
        msg = Message("m", 64 * i, sender="src", dest="dst")
        sent.append(msg.uid)
        net.send(msg, port)
    sim.run()
    received = [m.uid for _t, _p, m in dst.arrivals]
    assert received == sent


def test_ordered_lane_strictly_increasing_arrivals():
    sim = Simulator()
    net, dst = _mk(sim, ordered=True, latency=FixedLatency(1))
    for i in range(5):
        net.send(Message("m", 64 * i, sender="src", dest="dst"), "req")
    sim.run()
    ticks = [t for t, _p, _m in dst.arrivals]
    assert ticks == sorted(set(ticks)), "arrivals must be strictly increasing"


def test_unordered_lanes_independent():
    sim = Simulator()
    net, dst = _mk(sim, ordered=False, latency=FixedLatency(2))
    net.send(Message("m", 0, sender="a", dest="dst"), "req")
    net.send(Message("m", 64, sender="b", dest="dst"), "req")
    sim.run()
    assert [t for t, _p, _m in dst.arrivals] == [2, 2]


def test_endpoint_delay_applies_both_directions():
    sim = Simulator()
    net, dst = _mk(sim, latency=FixedLatency(2))
    net.set_endpoint_delay("dst", 10)
    net.send(Message("m", 0, sender="src", dest="dst"), "req")
    sim.run()
    assert dst.arrivals[0][0] == 12


def test_network_counts_messages_by_type():
    sim = Simulator()
    net, _dst = _mk(sim)
    net.send(Message("ping", 0, sender="s", dest="dst"), "req")
    net.send(Message("ping", 0, sender="s", dest="dst"), "req")
    assert net.stats.get("messages") == 2
    assert net.stats.get("msg.ping") == 2


def test_message_buffer_visibility_and_order():
    buf = MessageBuffer()
    m1 = Message("a", 0)
    m2 = Message("b", 0)
    buf.enqueue(10, m1)
    buf.enqueue(5, m2)  # out-of-order insert (unordered network)
    assert buf.peek(4) is None
    assert buf.peek(5) is m2
    assert buf.pop(20) is m2
    assert buf.pop(20) is m1


def test_message_buffer_push_front():
    buf = MessageBuffer()
    m1 = Message("a", 0)
    m2 = Message("b", 0)
    buf.enqueue(1, m1)
    buf.push_front(1, m2)
    assert buf.pop(1) is m2


def test_next_arrival_after_skips_visible():
    buf = MessageBuffer()
    buf.enqueue(5, Message("a", 0))
    buf.enqueue(15, Message("b", 0))
    assert buf.next_arrival_after(10) == 15
    assert buf.next_arrival_after(15) is None
    assert buf.next_arrival_tick() == 5
