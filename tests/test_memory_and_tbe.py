"""Unit tests for main memory, TBE tables, and stats."""

import pytest

from repro.coherence.tbe import TBETable
from repro.memory.datablock import DataBlock
from repro.memory.main_memory import MainMemory
from repro.sim.stats import Stats


def test_memory_reads_zero_when_unwritten():
    mem = MainMemory()
    assert mem.read(0x1234).is_zero()


def test_memory_write_read_roundtrip():
    mem = MainMemory()
    data = DataBlock()
    data.write_byte(7, 0x7E)
    mem.write(0x1000, data)
    assert mem.read(0x1007 & ~63).read_byte(7) == 0x7E


def test_memory_copies_on_write_and_read():
    mem = MainMemory()
    data = DataBlock()
    mem.write(0x0, data)
    data.write_byte(0, 99)  # must not leak into memory
    assert mem.read(0x0).read_byte(0) == 0
    out = mem.read(0x0)
    out.write_byte(0, 42)
    assert mem.peek(0x0).read_byte(0) == 0


def test_memory_counts_accesses_but_peek_does_not():
    mem = MainMemory()
    mem.read(0x0)
    mem.write(0x0, DataBlock())
    mem.peek(0x0)
    assert mem.reads == 1 and mem.writes == 1


def test_memory_block_size_mismatch():
    mem = MainMemory(block_size=64)
    with pytest.raises(ValueError):
        mem.write(0x0, DataBlock(size=128))


def test_tbe_lifecycle():
    table = TBETable(name="t")
    tbe = table.allocate(0x40, "BUSY", now=10)
    assert table.lookup(0x40) is tbe
    assert 0x40 in table and len(table) == 1
    assert tbe.opened_at == 10
    table.deallocate(0x40)
    assert table.lookup(0x40) is None


def test_tbe_double_allocate_rejected():
    table = TBETable()
    table.allocate(0x40, "A")
    with pytest.raises(ValueError):
        table.allocate(0x40, "B")


def test_tbe_capacity_and_high_water():
    table = TBETable(capacity=2)
    table.allocate(0x0, "A")
    table.allocate(0x40, "A")
    assert table.is_full()
    with pytest.raises(ValueError):
        table.allocate(0x80, "A")
    table.deallocate(0x0)
    table.allocate(0x80, "A")
    assert table.high_water == 2


def test_tbe_ack_helper():
    table = TBETable()
    tbe = table.allocate(0x0, "A")
    tbe.acks_needed = 2
    assert not tbe.all_acks_in
    tbe.acks_received = 2
    assert tbe.all_acks_in


def test_stats_counters_and_histograms():
    stats = Stats("x")
    stats.inc("a")
    stats.inc("a", 4)
    stats.observe("lat", 10)
    stats.observe("lat", 30)
    assert stats.get("a") == 5
    hist = stats.histogram("lat")
    assert hist.count == 2 and hist.mean == 20 and hist.min == 10 and hist.max == 30


def test_stats_merge():
    a = Stats("a")
    b = Stats("b")
    a.inc("n", 2)
    b.inc("n", 3)
    a.observe("lat", 5)
    b.observe("lat", 15)
    a.merge_into(b)
    assert b.get("n") == 5
    assert b.histogram("lat").count == 2
    assert b.histogram("lat").total == 20


def test_stats_as_dict():
    stats = Stats()
    stats.inc("k")
    stats.observe("h", 1)
    report = stats.as_dict()
    assert report["k"] == 1
    assert report["h"]["count"] == 1
