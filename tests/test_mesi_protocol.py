"""Directed tests for the MESI two-level host protocol."""

import pytest

from repro.protocols.mesi.l1 import L1State
from repro.protocols.mesi.l2 import L2State

from tests.helpers import MesiHost


def test_first_load_granted_exclusive():
    """The E optimization: an unshared GetS returns DataE."""
    host = MesiHost()
    host.load(0, 0x1000)
    assert host.l1s[0].block_state(0x1000) is L1State.E
    l2_entry = host.l2.cache.lookup(0x1000, touch=False)
    assert l2_entry.state is L2State.X
    assert l2_entry.meta["owner"] == "l1.0"


def test_second_load_downgrades_owner_to_shared():
    host = MesiHost()
    host.load(0, 0x1000)
    host.load(1, 0x1000)
    assert host.l1s[0].block_state(0x1000) is L1State.S
    assert host.l1s[1].block_state(0x1000) is L1State.S
    l2_entry = host.l2.cache.lookup(0x1000, touch=False)
    assert l2_entry.state is L2State.V
    assert l2_entry.meta["sharers"] == {"l1.0", "l1.1"}


def test_store_invalidates_sharers():
    host = MesiHost()
    host.load(0, 0x1000)
    host.load(1, 0x1000)
    host.store(0, 0x1000, 55)
    assert host.l1s[0].block_state(0x1000) is L1State.M
    assert host.l1s[1].block_state(0x1000) is L1State.I
    assert host.load(1, 0x1000).read_byte(0) == 55


def test_silent_e_to_m_upgrade():
    host = MesiHost()
    host.load(0, 0x1000)
    messages_before = host.net.stats.get("messages")
    host.store(0, 0x1000, 9)
    assert host.l1s[0].block_state(0x1000) is L1State.M
    assert host.net.stats.get("messages") == messages_before


def test_store_to_store_migration():
    host = MesiHost()
    host.store(0, 0x1000, 1)
    host.store(1, 0x1000, 2)
    assert host.l1s[0].block_state(0x1000) is L1State.I
    assert host.l1s[1].block_state(0x1000) is L1State.M
    assert host.load(0, 0x1000).read_byte(0) == 2


def test_dirty_grant_migrates_modified_data():
    """A GetS for a block the L2 holds dirty with no sharers hands over M
    (the DataM-on-GetS optimization the XG interface allows)."""
    host = MesiHost(l1_sets=1, l1_assoc=1)
    host.store(0, 0x1000, 77)
    host.store(0, 0x2000, 1)  # evicts 0x1000 -> dirty at L2
    assert host.l2.cache.lookup(0x1000, touch=False).dirty
    host.load(1, 0x1000)
    assert host.l1s[1].block_state(0x1000) is L1State.M
    assert host.l2.stats.get("l2_dirty_grants") == 1


def test_replacement_writes_back_and_refetches():
    host = MesiHost(l1_sets=1, l1_assoc=1)
    host.store(0, 0x1000, 42)
    host.load(0, 0x2000)  # evicts 0x1000 (PutM)
    assert host.l1s[0].block_state(0x1000) is L1State.I
    assert host.load(0, 0x1000).read_byte(0) == 42


def test_l2_eviction_recalls_owner_and_preserves_data():
    # L2 with a single set of 2 ways; three blocks force an L2 eviction
    # while an L1 owns the victim.
    host = MesiHost(l2_sets=1, l2_assoc=2, l1_sets=4, l1_assoc=4)
    host.store(0, 0x1000, 11)
    host.store(0, 0x1040, 22)
    host.store(0, 0x1080, 33)  # L2 eviction -> Recall of an owned block
    assert host.l2.stats.get("l2_recalls") >= 1
    assert host.load(1, 0x1000).read_byte(0) == 11
    assert host.load(1, 0x1040).read_byte(0) == 22
    assert host.load(1, 0x1080).read_byte(0) == 33


def test_l2_eviction_invalidates_sharers():
    host = MesiHost(l2_sets=1, l2_assoc=2, l1_sets=4, l1_assoc=4)
    host.load(0, 0x1000)
    host.load(1, 0x1000)  # shared
    host.load(0, 0x1040)
    host.load(0, 0x1080)  # L2 evicts a block; sharers must be recalled
    assert host.l2.stats.get("l2_evictions") >= 1
    for l1 in host.l1s:
        for entry in l1.cache.entries():
            l2_entry = host.l2.cache.lookup(entry.addr, touch=False)
            assert l2_entry is not None, "inclusion violated"


def test_memory_updated_only_on_eviction_of_dirty():
    host = MesiHost(l1_sets=1, l1_assoc=1, l2_sets=1, l2_assoc=1)
    host.store(0, 0x1000, 5)
    host.store(0, 0x1040, 6)  # L1 evict 0x1000 -> L2; L2 evict -> memory
    assert host.memory.peek(0x1000).read_byte(0) == 5


def test_concurrent_upgrades_serialize():
    """Both L1s share a block, both store: the classic SM_AD+Inv race."""
    host = MesiHost()
    host.load(0, 0x1000)
    host.load(1, 0x1000)
    out = []
    host.seqs[0].store(0x1000, 10, lambda m, d: out.append(("a", d.read_byte(0))))
    host.seqs[1].store(0x1000, 20, lambda m, d: out.append(("b", d.read_byte(0))))
    host.sim.run()
    final = host.load(0, 0x1000).read_byte(0)
    assert final in (10, 20)
    # the last writer's value must be what everyone reads
    assert host.load(1, 0x1000).read_byte(0) == final


def test_full_state_drains_clean():
    host = MesiHost()
    for i in range(8):
        host.store(i % 2, 0x1000 + 64 * i, i + 1)
    for i in range(8):
        assert host.load((i + 1) % 2, 0x1000 + 64 * i).read_byte(0) == i + 1
    assert len(host.l2.tbes) == 0
    assert all(len(l1.tbes) == 0 for l1 in host.l1s)
