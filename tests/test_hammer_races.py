"""Directed race tests for the Hammer cache: a RawAgent plays the
directory (broadcast forwards, WBAck/Nack) and a peer cache."""

import pytest

from repro.host.cpu import Sequencer
from repro.memory.datablock import DataBlock
from repro.protocols.hammer.cache import HCState, HammerCache
from repro.protocols.hammer.messages import HammerMsg
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator

from tests.helpers import RawAgent

ADDR = 0x3000


def _build(n_peers=1, xg_tolerant=False):
    sim = Simulator(seed=0)
    net = Network(sim, FixedLatency(1), name="host")
    directory = RawAgent(sim, "dir", net)
    peer = RawAgent(sim, "peer", net)
    cache = HammerCache(
        sim, "cache", net, "dir", n_peers=n_peers, num_sets=2, assoc=1,
        xg_tolerant=xg_tolerant,
    )
    net.attach(cache)
    seq = Sequencer(sim, "cpu")
    seq.attach(cache)
    return sim, net, directory, peer, cache, seq


def _data(value=0):
    block = DataBlock()
    block.write_byte(0, value)
    return block


def _go(sim):
    sim.run(final_check=False)


def test_gets_counts_peer_and_memory_responses():
    sim, net, directory, peer, cache, seq = _build(n_peers=1)
    out = []
    seq.load(ADDR, lambda m, d: out.append(d.read_byte(0)))
    _go(sim)
    assert directory.of_type(HammerMsg.GetS)
    # peer acks (not holding) — still waiting for memory
    peer.send(HammerMsg.PeerAck, ADDR, "cache", "response")
    _go(sim)
    assert not out
    directory.send(HammerMsg.MemData, ADDR, "cache", "response", data=_data(6))
    _go(sim)
    assert out == [6]
    assert cache.block_state(ADDR) is HCState.E, "no sharers -> exclusive"
    assert directory.of_type(HammerMsg.UnblockE)


def test_shared_hint_forces_s():
    sim, net, directory, peer, cache, seq = _build(n_peers=1)
    seq.load(ADDR)
    _go(sim)
    peer.send(HammerMsg.PeerAck, ADDR, "cache", "response", shared_hint=True)
    directory.send(HammerMsg.MemData, ADDR, "cache", "response", data=_data())
    _go(sim)
    assert cache.block_state(ADDR) is HCState.S
    assert directory.of_type(HammerMsg.UnblockS)


def test_peer_dirty_data_preferred_over_memory():
    sim, net, directory, peer, cache, seq = _build(n_peers=1)
    out = []
    seq.load(ADDR, lambda m, d: out.append(d.read_byte(0)))
    _go(sim)
    # memory responds FIRST with stale data, then the owner's dirty data
    directory.send(HammerMsg.MemData, ADDR, "cache", "response", data=_data(1))
    _go(sim)
    peer.send(
        HammerMsg.PeerData, ADDR, "cache", "response",
        data=_data(9), dirty=True, shared_hint=True,
    )
    _go(sim)
    assert out == [9], "dirty peer data must win over stale memory"
    assert cache.block_state(ADDR) is HCState.S


def test_exclusive_transfer_gives_e():
    sim, net, directory, peer, cache, seq = _build(n_peers=1)
    seq.load(ADDR)
    _go(sim)
    peer.send(HammerMsg.PeerDataExcl, ADDR, "cache", "response", data=_data(2))
    directory.send(HammerMsg.MemData, ADDR, "cache", "response", data=_data(1))
    _go(sim)
    assert cache.block_state(ADDR) is HCState.E
    assert cache.cache.lookup(ADDR).data.read_byte(0) == 2


def _to_modified(sim, directory, cache, seq, value=7):
    seq.store(ADDR, value)
    _go(sim)
    directory.send(HammerMsg.MemData, ADDR, "cache", "response", data=_data())
    sim.component("peer").send(HammerMsg.PeerAck, ADDR, "cache", "response")
    _go(sim)
    assert cache.block_state(ADDR) is HCState.M


def test_probe_responses_from_every_stable_state():
    sim, net, directory, peer, cache, seq = _build()
    _to_modified(sim, directory, cache, seq, value=5)
    # M + Fwd_GetS -> O with dirty shared data
    directory.send(HammerMsg.Fwd_GetS, ADDR, "cache", "forward", requestor="peer")
    _go(sim)
    response = peer.of_type(HammerMsg.PeerData)[0]
    assert response.dirty and response.shared_hint
    assert cache.block_state(ADDR) is HCState.O
    # O + Fwd_GetM -> hand over and invalidate
    directory.send(HammerMsg.Fwd_GetM, ADDR, "cache", "forward", requestor="peer")
    _go(sim)
    assert cache.block_state(ADDR) is HCState.I
    # I + probes -> plain acks
    directory.send(HammerMsg.Fwd_GetS, ADDR, "cache", "forward", requestor="peer")
    _go(sim)
    assert [m for m in peer.of_type(HammerMsg.PeerAck) if not m.shared_hint]


def test_gets_only_suppresses_exclusive_transfer():
    """The Transactional-XG host modification: an E owner answers
    Fwd_GetS_Only with shared clean data instead of transferring E."""
    sim, net, directory, peer, cache, seq = _build()
    seq.load(ADDR)
    _go(sim)
    peer.send(HammerMsg.PeerAck, ADDR, "cache", "response")
    directory.send(HammerMsg.MemData, ADDR, "cache", "response", data=_data(3))
    _go(sim)
    assert cache.block_state(ADDR) is HCState.E
    directory.send(HammerMsg.Fwd_GetS_Only, ADDR, "cache", "forward", requestor="peer")
    _go(sim)
    assert not peer.of_type(HammerMsg.PeerDataExcl)
    response = peer.of_type(HammerMsg.PeerData)[0]
    assert response.shared_hint and not response.dirty
    assert cache.block_state(ADDR) is HCState.S


def test_two_phase_writeback_and_fwd_race():
    sim, net, directory, peer, cache, seq = _build()
    _to_modified(sim, directory, cache, seq, value=8)
    seq.load(ADDR + 64 * 2)  # evict -> PutM (no data yet)
    _go(sim)
    puts = directory.of_type(HammerMsg.PutM)
    assert puts and puts[0].data is None, "phase 1 carries no data"
    # a Fwd_GetS races in before the WBAck: we are still owner
    directory.send(HammerMsg.Fwd_GetS, ADDR, "cache", "forward", requestor="peer")
    _go(sim)
    assert peer.of_type(HammerMsg.PeerData)[0].dirty
    assert cache.block_state(ADDR) is HCState.MI_A, "still writing back"
    directory.send(HammerMsg.WBAck, ADDR, "cache", "forward")
    _go(sim)
    wbdata = directory.of_type(HammerMsg.WBData)
    assert wbdata and wbdata[0].dirty and wbdata[0].data.read_byte(0) == 8
    assert cache.block_state(ADDR) is HCState.I


def test_writeback_loses_to_getm_and_absorbs_nack():
    sim, net, directory, peer, cache, seq = _build()
    _to_modified(sim, directory, cache, seq)
    seq.load(ADDR + 64 * 2)  # PutM in flight
    _go(sim)
    directory.send(HammerMsg.Fwd_GetM, ADDR, "cache", "forward", requestor="peer")
    _go(sim)
    assert peer.of_type(HammerMsg.PeerData)
    assert cache.block_state(ADDR) is HCState.II_A
    directory.send(HammerMsg.WBNack, ADDR, "cache", "forward")
    _go(sim)
    assert cache.block_state(ADDR) is HCState.I
    assert not directory.of_type(HammerMsg.WBData), "no data after a Nack"


def test_smad_fwd_getm_falls_back_to_imad():
    sim, net, directory, peer, cache, seq = _build()
    # reach S
    seq.load(ADDR)
    _go(sim)
    peer.send(HammerMsg.PeerAck, ADDR, "cache", "response", shared_hint=True)
    directory.send(HammerMsg.MemData, ADDR, "cache", "response", data=_data(1))
    _go(sim)
    assert cache.block_state(ADDR) is HCState.S
    # upgrade, but a remote GetM wins first
    done = []
    seq.store(ADDR, 2, lambda m, d: done.append(d.read_byte(0)))
    _go(sim)
    assert cache.block_state(ADDR) is HCState.SM_AD
    directory.send(HammerMsg.Fwd_GetM, ADDR, "cache", "forward", requestor="peer")
    _go(sim)
    assert cache.block_state(ADDR) is HCState.IM_AD
    assert peer.of_type(HammerMsg.PeerAck)
    # now our own broadcast completes with the new owner's data
    peer.send(HammerMsg.PeerData, ADDR, "cache", "response", data=_data(60), dirty=True)
    directory.send(HammerMsg.MemData, ADDR, "cache", "response", data=_data(1))
    _go(sim)
    assert done and done[0] == 2
    entry = cache.cache.lookup(ADDR)
    assert entry.data.read_byte(0) == 2  # store applied over value 60


def test_unexpected_nack_sunk_only_when_tolerant():
    from repro.coherence.controller import ProtocolError

    sim, net, directory, peer, cache, seq = _build(xg_tolerant=True)
    directory.send(HammerMsg.WBNack, ADDR, "cache", "forward")
    _go(sim)  # sunk + anomaly noted
    assert cache.stats.get("protocol_anomalies") == 1

    sim2, net2, dir2, peer2, cache2, seq2 = _build(xg_tolerant=False)
    dir2.send(HammerMsg.WBNack, ADDR, "cache", "forward")
    with pytest.raises(ProtocolError):
        _go(sim2)
