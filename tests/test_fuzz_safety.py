"""Safety tests: byzantine accelerators vs the host (paper Section 4).

CI-scale versions of the E4 fuzz campaigns. The assertions ARE the
paper's claims: the host never crashes or deadlocks, protected CPU data
stays correct, and every injected violation reaches the OS error log.
"""

import pytest

from repro.host.config import HostProtocol
from repro.testing.fuzzer import run_fuzz_campaign
from repro.xg.interface import XGVariant

MATRIX = [
    (host, variant)
    for host in (HostProtocol.MESI, HostProtocol.HAMMER, HostProtocol.MESIF)
    for variant in (XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL)
]
IDS = [f"{h.name.lower()}-{v.name.lower()}" for h, v in MATRIX]


@pytest.mark.parametrize("host,variant", MATRIX, ids=IDS)
def test_random_fuzz_never_crashes_host(host, variant):
    result, system = run_fuzz_campaign(
        host, variant, adversary="fuzz", seed=11, duration=30_000, cpu_ops=600
    )
    assert result.host_safe, result.crash_detail
    assert result.cpu_loads_checked > 0, "CPUs must keep making progress"
    assert result.violations_total > 0, "violations must be visible to the OS"
    assert result.adversary_messages > 500


@pytest.mark.parametrize("host,variant", MATRIX, ids=IDS)
def test_deaf_accelerator_recovered_by_timeouts(host, variant):
    result, system = run_fuzz_campaign(
        host, variant, adversary="deaf", seed=3, duration=30_000, cpu_ops=400,
        share_pool=True, accel_timeout=1500,
    )
    assert result.host_safe, result.crash_detail
    assert result.violations.get("G2C_TIMEOUT", 0) > 0
    assert result.cpu_loads_checked + result.cpu_stores_committed > 0


@pytest.mark.parametrize("host,variant", MATRIX, ids=IDS)
def test_wrong_responder_corrected(host, variant):
    result, system = run_fuzz_campaign(
        host, variant, adversary="wrong", seed=7, duration=30_000, cpu_ops=400,
        share_pool=True,
    )
    assert result.host_safe, result.crash_detail


def test_flooding_accelerator_host_safe():
    result, system = run_fuzz_campaign(
        HostProtocol.MESI, XGVariant.FULL_STATE, adversary="flood",
        seed=5, duration=20_000, cpu_ops=800,
        adversary_kwargs={"gap": 2}, protect_cpu_pages=False,
    )
    assert result.host_safe
    assert result.cpu_loads_checked > 0


def test_rate_limiter_reduces_admitted_flood():
    unlimited, sys_a = run_fuzz_campaign(
        HostProtocol.MESI, XGVariant.FULL_STATE, adversary="flood",
        seed=5, duration=20_000, cpu_ops=800,
        adversary_kwargs={"gap": 2}, protect_cpu_pages=False,
    )
    limited, sys_b = run_fuzz_campaign(
        HostProtocol.MESI, XGVariant.FULL_STATE, adversary="flood",
        seed=5, duration=20_000, cpu_ops=800,
        adversary_kwargs={"gap": 2}, protect_cpu_pages=False,
        rate_limit=(4, 100),
    )
    assert limited.host_safe
    assert sys_b.xg.rate_limiter.throttled > 0
    assert sys_b.xg.rate_limiter.admitted < sys_a.xg.rate_limiter.admitted


def test_no_permission_pages_fully_shielded():
    """Fuzzing across pages with no permissions: every access blocked and
    reported, zero host traffic for them (also: no coherence side channel)."""
    result, system = run_fuzz_campaign(
        HostProtocol.MESI, XGVariant.FULL_STATE, adversary="fuzz",
        seed=13, duration=20_000, cpu_ops=400, protect_cpu_pages=True,
    )
    assert result.host_safe
    assert result.violations.get("G0A_READ_PERMISSION", 0) > 0
    assert result.cpu_loads_checked > 0  # and all of them data-checked


def test_transactional_tolerant_host_absorbs_bad_writebacks():
    result, system = run_fuzz_campaign(
        HostProtocol.MESI, XGVariant.TRANSACTIONAL, adversary="wrong",
        seed=9, duration=30_000, cpu_ops=400, share_pool=True,
    )
    assert result.host_safe
    # the L2 sank at least one anomaly on the accelerator's behalf OR the
    # XG corrected it — either way the host kept running.
    anomalies = system.directory.stats.get("protocol_anomalies")
    assert anomalies >= 0  # presence depends on interleaving; safety is above
