"""Chaos-campaign safety tests: link faults vs the hardened Crossing Guard.

The acceptance claims, asserted per campaign:

* the host never crashes and never deadlocks under drops, duplicates,
  delay spikes, corruption, or all of them at once;
* CPU traffic keeps completing and stays data-checked;
* faults were actually injected (the campaigns are not vacuous);
* whatever XG could not silently recover is visible in the OS error log
  or in its recovery counters — never silently lost.
"""

import pytest

from repro.host.config import HostProtocol
from repro.sim.faults import DROP, FaultWindow, single_link_plan
from repro.testing.chaos import run_chaos_campaign, run_chaos_matrix
from repro.xg.interface import XGVariant

RECOVERY_KEYS = (
    "probe_retries",
    "duplicates_sunk",
    "retry_echoes_absorbed",
    "quarantine_surrogates",
    "requests_dropped_disabled",
)


def _assert_row_safe(row):
    label = f"{row['host']}/{row['variant']}/{row['fault']}/seed{row['seed']}"
    detail = row.get("crash_detail", "")
    diagnosis = row.get("diagnosis", "")
    assert row["host_safe"], f"{label}: {detail}\n{diagnosis}"
    assert row["cpu_loads_checked"] > 0, f"{label}: CPUs made no progress"
    assert row["cpu_loads_value_checked"] > 0, f"{label}: no load was data-checked"
    assert row["faults_total"] > 0, f"{label}: campaign injected nothing"
    recovered = sum(row[key] for key in RECOVERY_KEYS)
    assert recovered + row["violations_total"] > 0, (
        f"{label}: faults neither recovered nor surfaced to the OS"
    )


def test_chaos_matrix_host_survives_every_fault_kind():
    """Acceptance sweep: 3 fault kinds (+ the mixed campaign) x 2 hosts x
    2 XG variants, nonzero rates on the XG<->accel link."""
    rows = run_chaos_matrix(
        fault_kinds=("drop", "duplicate", "corrupt"),
        rate=0.2,
        duration=20_000,
        cpu_ops=300,
    )
    assert len(rows) == 16  # (3 kinds + mixed) x 2 hosts x 2 variants
    for row in rows:
        _assert_row_safe(row)
    # Kind-specific recovery evidence, aggregated across hosts/variants so
    # a single quiet interleaving cannot flake the suite.
    dup_rows = [r for r in rows if r["fault"] == "duplicate"]
    assert sum(r["duplicates_sunk"] for r in dup_rows) > 0
    drop_rows = [r for r in rows if r["fault"] in ("drop", "mixed")]
    assert sum(r["probe_retries"] + r["violations_total"] for r in drop_rows) > 0


def test_chaos_blackhole_window_recovered():
    """A scheduled total outage of the accel link must not wedge the host."""
    result, system = run_chaos_campaign(
        HostProtocol.MESI,
        XGVariant.FULL_STATE,
        faults={"drop": 0.05},
        windows=(FaultWindow(4_000, 9_000, DROP, rate=1.0),),
        seed=2,
        duration=25_000,
        cpu_ops=400,
        accel_timeout=1_500,
        probe_retries=2,
    )
    assert result.host_safe, result.crash_detail + "\n" + result.diagnosis
    assert result.faults_injected.get("drop", 0) > 0
    assert result.cpu_loads_value_checked > 0


def test_chaos_quarantine_disables_and_drains():
    """OS disable policy under faults: once tripped, further accelerator
    requests are dropped at the crossing and the host still quiesces."""
    result, system = run_chaos_campaign(
        HostProtocol.MESI,
        XGVariant.FULL_STATE,
        faults={"drop": 0.15, "duplicate": 0.15},
        adversary="fuzz",
        seed=4,
        duration=30_000,
        cpu_ops=400,
        accel_timeout=1_500,
        probe_retries=1,
        disable_after=5,
    )
    assert result.host_safe, result.crash_detail + "\n" + result.diagnosis
    assert result.accel_disabled
    assert result.requests_dropped_disabled > 0
    assert result.violations_total >= 5
    assert result.cpu_loads_value_checked > 0


def test_chaos_campaign_deterministic_for_fixed_seeds():
    """Same (sim seed, fault plan) => bit-identical campaign: final tick,
    every stats counter and histogram, and the full OS error log."""

    def run():
        result, system = run_chaos_campaign(
            HostProtocol.MESI,
            XGVariant.TRANSACTIONAL,
            faults={"drop": 0.15, "duplicate": 0.15, "delay": 0.15, "corrupt": 0.15},
            seed=6,
            fault_seed=13,
            duration=15_000,
            cpu_ops=300,
            accel_timeout=1_500,
            probe_retries=2,
        )
        return result, system

    first, sys_a = run()
    second, sys_b = run()
    assert first.as_dict() == second.as_dict()
    assert sys_a.error_log.as_dict() == sys_b.error_log.as_dict()
    assert sys_a.sim.stats_report() == sys_b.sim.stats_report()


def test_chaos_campaign_fault_seed_changes_outcome():
    def run(fault_seed):
        result, system = run_chaos_campaign(
            HostProtocol.MESI,
            XGVariant.FULL_STATE,
            faults={"drop": 0.2, "duplicate": 0.2},
            seed=6,
            fault_seed=fault_seed,
            duration=15_000,
            cpu_ops=300,
            accel_timeout=1_500,
        )
        return result, system

    base, sys_a = run(13)
    other, sys_b = run(14)
    assert (
        base.faults_injected != other.faults_injected
        or sys_a.sim.stats_report() != sys_b.sim.stats_report()
    ), "different fault seeds must perturb the campaign"


def test_chaos_accepts_prebuilt_plan():
    plan = single_link_plan({"duplicate": 0.3}, seed=21, link="accel")
    result, _system = run_chaos_campaign(
        HostProtocol.HAMMER,
        XGVariant.FULL_STATE,
        faults=plan,
        seed=3,
        duration=15_000,
        cpu_ops=300,
        accel_timeout=1_500,
    )
    assert result.host_safe, result.crash_detail
    assert result.faults_total == plan.total_injected > 0


@pytest.mark.slow
def test_chaos_deep_sweep_all_kinds_two_seeds():
    """The full acceptance sweep at depth: every fault kind, both hosts,
    both variants, two seeds. Run explicitly with ``-m slow``."""
    rows = run_chaos_matrix(
        fault_kinds=("drop", "duplicate", "delay", "corrupt"),
        rate=0.25,
        seeds=range(2),
        duration=40_000,
        cpu_ops=600,
    )
    assert len(rows) == 40
    for row in rows:
        _assert_row_safe(row)
