"""Tests for the synthetic workload generators and the driver."""

import pytest

from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.workloads.synthetic import (
    LOAD,
    STORE,
    PERF_WORKLOADS,
    WorkloadDriver,
    blocked_decode,
    graph_walk,
    run_drivers,
    shared_pingpong,
    streaming,
    write_coalesce,
)


def test_streaming_is_sequential():
    ops = list(streaming(0x1000, 10, write_fraction=0.0))
    assert all(kind == LOAD for kind, _a, _v in ops)
    addrs = [a for _k, a, _v in ops]
    assert addrs == [0x1000 + 64 * i for i in range(10)]


def test_streaming_write_fraction():
    ops = list(streaming(0x1000, 200, write_fraction=0.5, seed=1))
    stores = [op for op in ops if op[0] == STORE]
    assert 60 <= len(stores) <= 140


def test_blocked_decode_stays_in_tile():
    tile_blocks = 4
    ops = list(blocked_decode(0x0, num_tiles=3, tile_blocks=tile_blocks, seed=2))
    per_tile = len(ops) // 3
    first_tile_ops = ops[:per_tile]
    assert all(a < tile_blocks * 64 for _k, a, _v in first_tile_ops)


def test_graph_walk_within_footprint():
    ops = list(graph_walk(0x8000, footprint_blocks=16, steps=100, seed=3))
    assert len(ops) == 100
    assert all(0x8000 <= a < 0x8000 + 16 * 64 for _k, a, _v in ops)


def test_write_coalesce_bursts():
    ops = list(write_coalesce(0x0, num_blocks=2, writes_per_block=8, seed=0))
    stores = [op for op in ops if op[0] == STORE]
    assert len(stores) == 16


def test_pingpong_roles_differ():
    producer = list(shared_pingpong(0x0, 4, 50, role="producer", seed=0))
    consumer = list(shared_pingpong(0x0, 4, 50, role="consumer", seed=0))
    assert sum(1 for k, _a, _v in producer if k == STORE) > sum(
        1 for k, _a, _v in consumer if k == STORE
    )


def test_generators_deterministic_by_seed():
    a = list(blocked_decode(0x0, 5, seed=9))
    b = list(blocked_decode(0x0, 5, seed=9))
    c = list(blocked_decode(0x0, 5, seed=10))
    assert a == b != c


def test_driver_completes_stream():
    system = build_system(SystemConfig(org=AccelOrg.ACCEL_SIDE, n_accel_cores=1))
    stream = streaming(0x4000, 20, seed=0)
    driver = WorkloadDriver(system.sim, system.accel_seqs[0], stream, max_outstanding=3)
    run_drivers(system.sim, [driver])
    assert driver.finished
    assert driver.completed == driver.issued > 0


def test_driver_respects_outstanding_limit():
    system = build_system(SystemConfig(org=AccelOrg.ACCEL_SIDE))
    driver = WorkloadDriver(
        system.sim, system.accel_seqs[0], streaming(0x4000, 50), max_outstanding=2
    )
    driver.start()
    assert driver.issued == 2
    system.sim.run()
    assert driver.completed == driver.issued


def test_perf_workloads_complete_on_xg_config():
    system = build_system(
        SystemConfig(org=AccelOrg.XG, host=HostProtocol.MESI, n_cpus=2, n_accel_cores=2)
    )
    builder = PERF_WORKLOADS(scale=1)["graph_walk"]
    drivers = builder(system)
    ticks = run_drivers(system.sim, drivers)
    assert ticks > 0
    assert all(d.finished for d in drivers)
    assert len(system.error_log) == 0
