"""Directed tests for the Hammer-like exclusive MOESI host protocol."""

import pytest

from repro.protocols.hammer.cache import HCState

from tests.helpers import HammerHost


def test_first_load_takes_exclusive():
    host = HammerHost()
    host.load(0, 0x1000)
    assert host.caches[0].block_state(0x1000) is HCState.E
    assert host.directory.owner_of(0x1000) == "cache.0"


def test_exclusive_clean_transfer_on_gets():
    """An E owner hands the block over exclusively on a GetS — how DataE
    reaches a GetS through Crossing Guard on this host."""
    host = HammerHost()
    host.load(0, 0x1000)
    host.load(1, 0x1000)
    assert host.caches[0].block_state(0x1000) is HCState.I
    assert host.caches[1].block_state(0x1000) is HCState.E


def test_m_owner_downgrades_to_o_on_gets():
    host = HammerHost()
    host.store(0, 0x1000, 9)
    host.load(1, 0x1000)
    assert host.caches[0].block_state(0x1000) is HCState.O
    assert host.caches[1].block_state(0x1000) is HCState.S
    assert host.load(1, 0x1000).read_byte(0) == 9


def test_owner_upgrade_from_o():
    host = HammerHost()
    host.store(0, 0x1000, 1)
    host.load(1, 0x1000)  # cache.0 -> O, cache.1 -> S
    host.store(0, 0x1000, 2)  # O upgrade: invalidate the sharer
    assert host.caches[0].block_state(0x1000) is HCState.M
    assert host.caches[1].block_state(0x1000) is HCState.I
    assert host.load(1, 0x1000).read_byte(0) == 2


def test_getm_pulls_dirty_data_from_owner():
    host = HammerHost()
    host.store(0, 0x1000, 30)
    host.store(1, 0x1000, 31)
    assert host.caches[0].block_state(0x1000) is HCState.I
    assert host.caches[1].block_state(0x1000) is HCState.M
    assert host.load(0, 0x1000).read_byte(0) == 31


def test_two_phase_writeback_updates_memory():
    host = HammerHost(sets=1, assoc=1)
    host.store(0, 0x1000, 66)
    host.load(0, 0x2000)  # evicts via PutM -> WBAck -> WBData
    assert host.memory.peek(0x1000).read_byte(0) == 66
    assert host.directory.owner_of(0x1000) is None


def test_silent_shared_eviction():
    """Hammer drops S blocks silently — the reason XG's PutS is pure
    overhead on this host (Section 2.1)."""
    host = HammerHost(sets=1, assoc=1)
    host.store(0, 0x1000, 1)
    host.load(1, 0x1000)  # cache.1 -> S
    requests_before = host.directory.stats.get("broadcasts")
    before = host.caches[1].stats.get("silent_s_evictions")
    host.load(1, 0x2000)  # evicts the S block silently
    assert host.caches[1].stats.get("silent_s_evictions") == before + 1
    assert host.directory.stats.get("broadcasts") == requests_before + 1


def test_every_cache_answers_broadcast_probes():
    host = HammerHost(n_cpus=4)
    host.load(0, 0x1000)
    probes_before = host.directory.stats.get("probes_sent")
    host.store(1, 0x1000, 5)
    assert host.directory.stats.get("probes_sent") == probes_before + 3


def test_response_counting_completes_exactly():
    host = HammerHost(n_cpus=3)
    host.store(0, 0x1000, 1)
    host.load(1, 0x1000)
    host.load(2, 0x1000)
    # after everything drains no TBEs remain — counts were exact
    for cache in host.caches:
        assert len(cache.tbes) == 0
    assert len(host.directory.tbes) == 0


def test_stale_put_gets_nacked():
    """PutM racing a GetM: directory Nacks the loser; no state wedges.

    Forced deterministically: cache.0 evicts (PutM in flight) while
    cache.1's GetM is processed first thanks to queueing order.
    """
    host = HammerHost(sets=1, assoc=1)
    host.store(0, 0x1000, 3)
    # Issue both without draining in between.
    host.seqs[1].store(0x1000, 4)
    host.seqs[0].load(0x2000)  # triggers cache.0's eviction of 0x1000
    host.sim.run()
    assert host.load(0, 0x1000).read_byte(0) == 4
    # nothing wedged: all transactions closed
    assert len(host.directory.tbes) == 0
    assert all(len(c.tbes) == 0 for c in host.caches)


def test_memory_answers_when_no_owner():
    host = HammerHost()
    host.store(0, 0x1000, 8)
    host.sim.run()
    # evict to memory
    host2 = HammerHost()
    assert host2.load(0, 0x9000).is_zero()
