"""Unit tests for the escalating quarantine ladder and the
``accel_disabled`` containment path (surrogate takeover, in-flight
drain, re-entry rejection), driven directly with scripted RawAgents.
"""

from repro.memory.datablock import DataBlock
from repro.protocols.mesi.messages import MesiMsg
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator
from repro.xg.errors import Guarantee, XGErrorLog
from repro.xg.interface import AccelMsg, XGVariant
from repro.xg.mesi_xg import MesiCrossingGuard
from repro.xg.permissions import PagePermission, PermissionTable
from repro.xg.rate_limiter import RateLimiter

from tests.helpers import RawAgent

ADDR = 0x4000
OTHER = 0x8000


def _build(warn_after=None, throttle_after=None, disable_after=None,
           throttle_rate=None, rate_limiter=None,
           variant=XGVariant.FULL_STATE):
    sim = Simulator(seed=0)
    host_net = Network(sim, FixedLatency(1), name="host")
    accel_net = Network(sim, FixedLatency(1), ordered=True, name="accel")
    xg = MesiCrossingGuard(
        sim, "xg", host_net, accel_net, "l2",
        variant=variant,
        permissions=PermissionTable(default=PagePermission.READ_WRITE),
        error_log=XGErrorLog(disable_after=disable_after,
                             warn_after=warn_after,
                             throttle_after=throttle_after),
        rate_limiter=rate_limiter,
        throttle_rate=throttle_rate,
        accel_timeout=100,
    )
    host_net.attach(xg)
    accel_net.attach(xg)
    l2 = RawAgent(sim, "l2", host_net)
    RawAgent(sim, "l1.peer", host_net)
    accel = RawAgent(sim, "accel", accel_net)
    xg.attach_accelerator("accel")
    return sim, xg, l2, accel


def _block(value=0):
    data = DataBlock()
    data.write_byte(0, value)
    return data


def _step(sim, ticks=50):
    sim.run(max_ticks=sim.tick + ticks, final_check=False)


def _violate(sim, accel, addr=OTHER):
    """One spurious response: a clean single-violation trigger (G2b)."""
    accel.send(AccelMsg.InvAck, addr, "xg", "accel_response")
    _step(sim, 10)


def _grant_owned(sim, l2, accel, addr=ADDR):
    accel.send(AccelMsg.GetM, addr, "xg", "accel_request")
    _step(sim)
    l2.send(MesiMsg.DataM, addr, "xg", "response", data=_block(3))
    _step(sim)
    assert accel.of_type(AccelMsg.DataM)


# -- ladder escalation -------------------------------------------------------------


def test_ladder_climbs_warn_throttle_disable_in_order():
    sim, xg, l2, accel = _build(warn_after=1, throttle_after=2, disable_after=3)
    log = xg.error_log
    assert log.quarantine_state == "healthy"

    _violate(sim, accel)
    assert log.quarantine_state == "warned"
    assert xg.stats.get("quarantine.warned") == 1
    assert not log.accel_disabled

    _violate(sim, accel)
    assert log.quarantine_state == "throttled"
    assert xg.stats.get("quarantine.throttled") == 1
    assert not log.accel_disabled

    _violate(sim, accel)
    assert log.quarantine_state == "disabled"
    assert xg.stats.get("quarantine.disabled") == 1
    assert log.accel_disabled
    assert log.count(Guarantee.G2B_TRANSIENT_RESPONSE) == 3
    assert log.as_dict()["quarantine_state"] == "disabled"


def test_each_rung_fires_exactly_once():
    sim, xg, l2, accel = _build(warn_after=1, throttle_after=2, disable_after=3)
    for _ in range(6):
        _violate(sim, accel)
    # Later violations while disabled are dropped at the door, and a rung
    # already climbed never re-fires its escalation side effects.
    assert xg.stats.get("quarantine.warned") == 1
    assert xg.stats.get("quarantine.throttled") == 1
    assert xg.stats.get("quarantine.disabled") == 1


def test_throttled_rung_clamps_rate_limiter():
    limiter = RateLimiter(rate=16, period=100)
    sim, xg, l2, accel = _build(
        warn_after=None, throttle_after=2, disable_after=None,
        throttle_rate=(1, 500), rate_limiter=limiter,
    )
    _violate(sim, accel)
    assert (limiter.rate, limiter.period) == (16, 100)
    _violate(sim, accel)
    assert xg.error_log.quarantine_state == "throttled"
    assert (limiter.rate, limiter.period) == (1, 500)
    assert xg.stats.get("throttle_applied") == 1
    # The clamp bites: a request burst is now actually delayed.
    for i in range(4):
        accel.send(AccelMsg.GetS, 0x10000 + 64 * i, "xg", "accel_request")
    _step(sim, 5)
    assert limiter.throttled > 0


def test_ladder_rungs_are_individually_optional():
    sim, xg, l2, accel = _build(disable_after=1)  # no warn/throttle rungs
    _violate(sim, accel)
    assert xg.error_log.quarantine_state == "disabled"
    assert not xg.stats.get("quarantine.warned")
    assert not xg.stats.get("quarantine.throttled")


# -- accel_disabled: re-entry rejection --------------------------------------------


def test_disabled_requests_are_nacked_not_forwarded():
    sim, xg, l2, accel = _build(disable_after=1)
    _violate(sim, accel)
    for i in range(3):
        accel.send(AccelMsg.GetM, ADDR + 64 * i, "xg", "accel_request")
    sim.run()
    assert xg.stats.get("dropped_disabled") == 3
    assert len(accel.of_type(AccelMsg.Nack)) == 3
    assert not l2.received, "no quarantined request may reach the host"
    assert xg.tbes.lookup(ADDR) is None


def test_disabled_swallows_further_responses_silently():
    sim, xg, l2, accel = _build(disable_after=1)
    _violate(sim, accel)
    before = len(xg.error_log)
    _violate(sim, accel)
    _violate(sim, accel)
    assert len(xg.error_log) == before, (
        "post-quarantine garbage must not grow the error log unboundedly"
    )
    assert xg.stats.get("dropped_disabled") >= 2


# -- accel_disabled: surrogate takeover of host probes -----------------------------


def test_probe_after_disable_is_answered_by_surrogate():
    sim, xg, l2, accel = _build(disable_after=1)
    _grant_owned(sim, l2, accel)
    inv_before = len(accel.of_type(AccelMsg.Invalidate))
    _violate(sim, accel)
    assert xg.error_log.accel_disabled
    l2.send(MesiMsg.Fwd_GetM, ADDR, "xg", "forward", requestor="l1.peer")
    sim.run()
    peer = sim.component("l1.peer")
    assert peer.of_type(MesiMsg.DataM), "surrogate must answer for the accel"
    assert xg.stats.get("quarantine_surrogates") == 1
    assert len(accel.of_type(AccelMsg.Invalidate)) == inv_before, (
        "a disabled accelerator is never probed"
    )
    (timeout,) = [e for e in xg.error_log
                  if e.guarantee is Guarantee.G2C_TIMEOUT]
    assert "quarantined" in timeout.description, (
        "the surrogate's G2c entry must say quarantine, not link timeout"
    )
    assert xg.tbes.lookup(ADDR) is None


# -- accel_disabled: in-flight transaction drain -----------------------------------


def test_inflight_grant_is_suppressed_and_drained():
    sim, xg, l2, accel = _build(disable_after=1)
    accel.send(AccelMsg.GetM, ADDR, "xg", "accel_request")
    _step(sim, 10)
    assert xg.tbes.lookup(ADDR) is not None, "request must be in flight"
    _violate(sim, accel)
    assert xg.error_log.accel_disabled
    # The host-side grant for the in-flight Get lands after quarantine.
    l2.send(MesiMsg.DataM, ADDR, "xg", "response", data=_block(7))
    sim.run()
    assert not accel.of_type(AccelMsg.DataM), (
        "the grant must never cross to a disabled accelerator"
    )
    assert xg.stats.get("grants_suppressed_disabled") == 1
    assert xg.tbes.lookup(ADDR) is None, "the transaction must still drain"
    # Full State retains the granted bytes so a later host probe gets the
    # real data from the surrogate rather than zeros.
    entry = xg.mirror_entry(ADDR)
    assert entry is not None and entry.retained_data is not None
