"""Unit tests for Crossing Guard's unreliable-link hardening.

Scripted RawAgents drive the retry-with-backoff probe path, wire-duplicate
suppression, retry-echo absorption, the bounded trailing-ack wait after a
Put/Invalidate race, and the quarantine that enforces
``XGErrorLog.accel_disabled`` end to end.
"""

from repro.memory.datablock import DataBlock
from repro.protocols.mesi.messages import MesiMsg
from repro.sim.message import Message
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator
from repro.xg.errors import Guarantee, XGErrorLog
from repro.xg.interface import AccelMsg, XGVariant
from repro.xg.mesi_xg import MesiCrossingGuard
from repro.xg.permissions import PagePermission, PermissionTable

from tests.helpers import RawAgent

ADDR = 0x4000
OTHER = 0x8000


def _build(probe_retries=0, accel_timeout=100, disable_after=None,
           variant=XGVariant.FULL_STATE):
    sim = Simulator(seed=0)
    host_net = Network(sim, FixedLatency(1), name="host")
    accel_net = Network(sim, FixedLatency(1), ordered=True, name="accel")
    xg = MesiCrossingGuard(
        sim, "xg", host_net, accel_net, "l2",
        variant=variant,
        permissions=PermissionTable(default=PagePermission.READ_WRITE),
        error_log=XGErrorLog(disable_after=disable_after),
        accel_timeout=accel_timeout,
        probe_retries=probe_retries,
    )
    host_net.attach(xg)
    accel_net.attach(xg)
    l2 = RawAgent(sim, "l2", host_net)
    RawAgent(sim, "l1.peer", host_net)
    accel = RawAgent(sim, "accel", accel_net)
    xg.attach_accelerator("accel")
    return sim, xg, l2, accel


def _block(value=0):
    data = DataBlock()
    data.write_byte(0, value)
    return data


def _step(sim, ticks=50):
    sim.run(max_ticks=sim.tick + ticks, final_check=False)


def _grant_owned(sim, l2, accel, addr=ADDR):
    """Drive a GetM to completion so the accelerator owns ``addr``."""
    accel.send(AccelMsg.GetM, addr, "xg", "accel_request")
    _step(sim)
    l2.send(MesiMsg.DataM, addr, "xg", "response", data=_block(3))
    _step(sim)
    assert accel.of_type(AccelMsg.DataM)


def _probe(sim, l2, addr=ADDR):
    l2.send(MesiMsg.Fwd_GetM, addr, "xg", "forward", requestor="l1.peer")
    _step(sim, 10)


# -- retry with bounded backoff ----------------------------------------------------


def test_probe_retry_reissues_invalidate_then_answer_lands():
    sim, xg, l2, accel = _build(probe_retries=2, accel_timeout=100)
    _grant_owned(sim, l2, accel)
    _probe(sim, l2)
    assert len(accel.of_type(AccelMsg.Invalidate)) == 1
    # First timeout expires: the Invalidate is re-issued, no surrogate yet.
    _step(sim, 150)
    assert len(accel.of_type(AccelMsg.Invalidate)) == 2
    assert xg.stats.get("probe_retries") == 1
    assert xg.error_log.count(Guarantee.G2C_TIMEOUT) == 0
    # The (late) answer to the retry closes the probe normally.
    accel.send(AccelMsg.DirtyWB, ADDR, "xg", "accel_response",
               data=_block(9), dirty=True)
    sim.run()
    peer = sim.component("l1.peer")
    assert peer.of_type(MesiMsg.DataM)
    assert xg.error_log.count(Guarantee.G2C_TIMEOUT) == 0
    assert xg.tbes.lookup(ADDR) is None


def test_probe_retry_exhaustion_reports_single_g2c_surrogate():
    sim, xg, l2, accel = _build(probe_retries=2, accel_timeout=100)
    _grant_owned(sim, l2, accel)
    _probe(sim, l2)
    sim.run()  # the accelerator never answers
    assert len(accel.of_type(AccelMsg.Invalidate)) == 3  # original + 2 retries
    assert xg.stats.get("probe_retries") == 2
    assert xg.error_log.count(Guarantee.G2C_TIMEOUT) == 1
    (error,) = [e for e in xg.error_log if e.guarantee is Guarantee.G2C_TIMEOUT]
    assert "3 attempts" in error.description
    peer = sim.component("l1.peer")
    assert peer.of_type(MesiMsg.DataM), "surrogate must still answer the host"
    assert xg.tbes.lookup(ADDR) is None


def test_zero_retries_keeps_paper_single_shot_timeout():
    sim, xg, l2, accel = _build(probe_retries=0, accel_timeout=100)
    _grant_owned(sim, l2, accel)
    _probe(sim, l2)
    sim.run()
    assert len(accel.of_type(AccelMsg.Invalidate)) == 1
    assert xg.error_log.count(Guarantee.G2C_TIMEOUT) == 1


# -- wire-duplicate suppression ----------------------------------------------------


def test_duplicated_request_sunk_not_g1b():
    sim, xg, l2, accel = _build()
    msg = Message(AccelMsg.GetS, ADDR, sender="accel", dest="xg")
    accel.net.send(msg, "accel_request")
    accel.net.send(msg.clone(), "accel_request")  # link-layer replay
    _step(sim)
    assert len(l2.of_type(MesiMsg.GetS)) == 1, "host sees the request once"
    assert xg.stats.get("duplicates_sunk.accel_request") == 1
    assert xg.error_log.count(Guarantee.G1B_TRANSIENT_REQUEST) == 0


def test_duplicated_response_sunk_not_g2b():
    sim, xg, l2, accel = _build()
    _grant_owned(sim, l2, accel)
    _probe(sim, l2)
    msg = Message(AccelMsg.DirtyWB, ADDR, sender="accel", dest="xg",
                  data=_block(9), dirty=True)
    accel.net.send(msg, "accel_response")
    accel.net.send(msg.clone(), "accel_response")
    sim.run()
    assert xg.stats.get("duplicates_sunk.accel_response") == 1
    assert xg.error_log.count(Guarantee.G2B_TRANSIENT_RESPONSE) == 0


def test_distinct_spurious_response_still_reported():
    """Dedupe must not swallow genuinely new spurious responses."""
    sim, xg, l2, accel = _build()
    accel.send(AccelMsg.InvAck, ADDR, "xg", "accel_response")
    _step(sim)
    assert xg.error_log.count(Guarantee.G2B_TRANSIENT_RESPONSE) == 1


# -- retry-echo absorption ---------------------------------------------------------


def test_echo_of_retried_invalidate_absorbed():
    sim, xg, l2, accel = _build(probe_retries=2, accel_timeout=100)
    _grant_owned(sim, l2, accel)
    _probe(sim, l2)
    _step(sim, 150)  # one retry fired: two Invalidates in flight
    assert xg.stats.get("probe_retries") == 1
    # The accelerator answers both copies (distinct messages, not replays).
    accel.send(AccelMsg.DirtyWB, ADDR, "xg", "accel_response",
               data=_block(5), dirty=True)
    accel.send(AccelMsg.DirtyWB, ADDR, "xg", "accel_response",
               data=_block(5), dirty=True)
    sim.run()
    assert xg.stats.get("retry_echoes_absorbed") == 1
    assert xg.error_log.count(Guarantee.G2B_TRANSIENT_RESPONSE) == 0


# -- bounded trailing-ack wait after a Put/Invalidate race -------------------------


def test_lost_trailing_invack_cannot_wedge_race_resolved_probe():
    sim, xg, l2, accel = _build(accel_timeout=100)
    _grant_owned(sim, l2, accel)
    _probe(sim, l2)
    # The accelerator's PutM crosses our Invalidate: the race resolves the
    # probe; only the trailing InvAck remains outstanding — and the link
    # eats it. The bounded wait must close the probe anyway.
    accel.send(AccelMsg.PutM, ADDR, "xg", "accel_request",
               data=_block(7), dirty=True)
    sim.run()
    assert xg.stats.get("put_inv_races") == 1
    assert xg.stats.get("trailing_ack_timeouts") == 1
    assert xg.tbes.lookup(ADDR) is None, "probe TBE must not wedge"
    # A merely-delayed trailing InvAck is absorbed, not reported as G2b.
    accel.send(AccelMsg.InvAck, ADDR, "xg", "accel_response")
    sim.run()
    assert xg.error_log.count(Guarantee.G2B_TRANSIENT_RESPONSE) == 0
    assert xg.stats.get("retry_echoes_absorbed") == 1


# -- quarantine: accel_disabled enforced end to end --------------------------------


def test_quarantine_drops_requests_and_serves_surrogate_probes():
    sim, xg, l2, accel = _build(disable_after=1, accel_timeout=100)
    _grant_owned(sim, l2, accel)
    # One spurious response trips the OS disable policy.
    accel.send(AccelMsg.InvAck, OTHER, "xg", "accel_response")
    _step(sim)
    assert xg.error_log.accel_disabled
    # Further requests are dropped at the crossing: no host traffic.
    host_msgs_before = len(l2.received)
    errors_before = len(xg.error_log)
    accel.send(AccelMsg.GetM, OTHER, "xg", "accel_request")
    accel.send(AccelMsg.GetS, OTHER + 0x40, "xg", "accel_request")
    _step(sim)
    assert xg.stats.get("dropped_disabled") >= 2
    assert len(l2.received) == host_msgs_before
    assert len(xg.error_log) == errors_before, "drops are silent, not new errors"
    # Host probes of blocks the accelerator still holds never wait for the
    # dead accelerator: a fast surrogate answers on its behalf.
    invalidates_before = len(accel.of_type(AccelMsg.Invalidate))
    _probe(sim, l2)
    sim.run()
    assert xg.stats.get("quarantine_surrogates") == 1
    assert len(accel.of_type(AccelMsg.Invalidate)) == invalidates_before
    peer = sim.component("l1.peer")
    assert peer.of_type(MesiMsg.DataM), "host must still get its answer"
    assert any(
        "quarantined" in e.description for e in xg.error_log
        if e.guarantee is Guarantee.G2C_TIMEOUT
    )
    # And the system quiesces: no open TBEs, nothing stalled.
    assert xg.tbes.lookup(ADDR) is None
    assert xg.stalled_count() == 0
