"""Tests for the exhaustive interface model checker."""

import pytest

from repro.verify.model import (
    B,
    DATAM,
    DIRTYWB,
    E,
    GETS,
    I,
    INV,
    INVACK,
    M,
    PUTM,
    S,
    InterfaceModel,
    State,
    VerificationError,
    explore,
)


def test_full_exploration_passes():
    stats = explore()
    assert stats["states"] > 30
    assert stats["transitions"] > stats["states"]


def test_held_only_probes_subset():
    all_probes = explore(allow_probe_when_absent=True)
    held_only = explore(allow_probe_when_absent=False)
    assert held_only["states"] <= all_probes["states"]


def test_initial_state_is_quiescent():
    assert State().quiescent
    assert not State(accel=B, b_reason="get").quiescent


def test_accel_table1_invalidate_rows():
    model = InterfaceModel()
    for accel, reply in ((M, DIRTYWB), (S, INVACK), (I, INVACK)):
        nxt = model._accel_receive(State(accel=accel, mirror="O"), INV)
        assert nxt.a2x[-1] == reply
        assert nxt.accel == (accel if accel == I else I)
    busy = model._accel_receive(State(accel=B, b_reason="get"), INV)
    assert busy.accel == B and busy.a2x[-1] == INVACK


def test_unspecified_reception_detected():
    model = InterfaceModel()
    with pytest.raises(VerificationError):
        model._accel_receive(State(accel=S), DATAM)  # data with no request


def test_g1b_double_get_detected():
    model = InterfaceModel()
    with pytest.raises(VerificationError):
        model._xg_receive_request(State(accel=B, b_reason="get", xg_get=GETS), GETS)


def test_g2a_wrong_response_detected():
    model = InterfaceModel()
    state = State(accel=I, mirror="O", xg_probe=("out", True))
    with pytest.raises(VerificationError):
        model._xg_receive_response(state, INVACK)


def test_race_resolution_path():
    """PutM crossing an Invalidate: consumed as the answer, then the
    trailing InvAck closes the probe."""
    model = InterfaceModel()
    state = State(accel=B, b_reason="put", mirror="O",
                  xg_probe=("out", True), a2x=(PUTM,))
    after_put = model._xg_receive_request(state.replace(a2x=()), PUTM)
    assert after_put.xg_probe == "race"
    assert after_put.x2a[-1] == "WBAck"
    closed = model._xg_receive_response(after_put, INVACK)
    assert closed.xg_probe is None


def test_quiescent_mirror_mismatch_detected():
    model = InterfaceModel()
    with pytest.raises(VerificationError):
        model.check(State(accel=E, mirror="S"))


def test_channel_overflow_detected():
    """check() must bound both directions of the link independently."""
    model = InterfaceModel()
    flood = (INVACK,) * 5  # _CHANNEL_BOUND is 4
    with pytest.raises(VerificationError, match="channel bound"):
        model.check(State(accel=I, a2x=flood))
    with pytest.raises(VerificationError, match="channel bound"):
        model.check(State(accel=I, x2a=flood))
    # exactly at the bound is legal
    model.check(State(accel=B, b_reason="get", a2x=(INVACK,) * 4))


def test_probe_when_absent_mode_gates_successors():
    """allow_probe_when_absent=False (Full State style) must not probe a
    block the accelerator does not hold; True (Transactional) must."""
    quiet = State()  # accel=I, mirror=I
    held = State(accel=S, mirror="S")
    free_probes = [label for label, _ in
                   InterfaceModel(allow_probe_when_absent=True).successors(quiet)]
    strict_probes = [label for label, _ in
                     InterfaceModel(allow_probe_when_absent=False).successors(quiet)]
    assert "host:probe" in free_probes
    assert "host:probe" not in strict_probes
    # a held block is probeable in both modes
    for allow in (True, False):
        labels = [label for label, _ in
                  InterfaceModel(allow_probe_when_absent=allow).successors(held)]
        assert "host:probe" in labels


def test_verification_error_trace_tail_formatting():
    """The message shows the state and only the last 12 trace steps."""
    trace = [f"step-{index:02d}" for index in range(20)]
    err = VerificationError("boom", State(accel=M, mirror="O"), trace)
    text = str(err)
    assert "boom" in text
    assert "state:" in text and "accel=M" in text
    assert "trace tail:" in text
    for step in trace[-12:]:
        assert step in text
    for step in trace[:8]:
        assert step not in text
    assert err.trace == trace


def test_verification_error_without_trace():
    err = VerificationError("bare", State())
    assert err.trace == []
    assert "bare" in str(err)


def test_explore_reports_projections():
    stats = explore()
    pairs = {tuple(pair) for pair in stats["projections"]}
    assert ("I", "I") in pairs  # the initial state
    assert all(accel in "ISEMB" and mirror in "ISO"
               for accel, mirror in pairs)


def test_broken_accelerator_model_caught_by_exploration():
    """Sanity: if the Table 1 automaton 'forgot' the B+Invalidate row,
    exploration must fail — the checker has teeth."""

    class BrokenModel(InterfaceModel):
        def _accel_receive(self, state, msg):
            if msg == INV and state.accel == B:
                # wrong: silently drop instead of acking
                return state
            return super()._accel_receive(state, msg)

    from collections import deque
    model = BrokenModel()
    seen = {State().key()}
    frontier = deque([State()])
    with pytest.raises(VerificationError):
        steps = 0
        while frontier:
            state = frontier.popleft()
            model.check(state)
            succs = model.successors(state)
            if not succs and not state.quiescent:
                raise VerificationError("deadlock", state)
            for _label, nxt in succs:
                if nxt.key() not in seen:
                    seen.add(nxt.key())
                    frontier.append(nxt)
            steps += 1
            if steps > 100_000:
                break
