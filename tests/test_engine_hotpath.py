"""Hot-path rewrites: the semantics the engine optimizations must keep.

Every structure here was rewritten for throughput (sorted-list message
buffers, live-counter event queue with compaction, trace-free fast mode,
dict-indexed component lookup, dest-respecting broadcast); these tests
pin the observable behavior the rest of the repo depends on.
"""

import random

import pytest

from repro.sim.component import Component, MessageBuffer
from repro.sim.event import EventQueue
from repro.sim.message import Message
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import DeadlockError, Simulator


# -- MessageBuffer -----------------------------------------------------------


def test_buffer_equal_tick_inserts_stay_fifo():
    buf = MessageBuffer()
    # interleave two ticks out of order; equal-tick messages must drain
    # in enqueue order (stable sort on (tick, seq))
    for i, tick in enumerate([5, 3, 5, 3, 5, 3]):
        buf.enqueue(tick, Message("m", 64 * i))
    drained = []
    while True:
        msg = buf.pop(10)
        if msg is None:
            break
        drained.append(msg.addr)
    assert drained == [64 * i for i in (1, 3, 5, 0, 2, 4)]


def test_buffer_random_insert_order_matches_stable_sort():
    rng = random.Random(1234)
    buf = MessageBuffer()
    arrivals = []
    for i in range(500):
        tick = rng.randint(0, 40)
        arrivals.append((tick, i))
        buf.enqueue(tick, Message("m", i))
    drained = []
    while True:
        msg = buf.pop(100)
        if msg is None:
            break
        drained.append(msg.addr)
    assert drained == [i for _t, i in sorted(arrivals, key=lambda p: p[0])]


def test_buffer_push_front_outranks_equal_tick_entries():
    buf = MessageBuffer()
    buf.enqueue(4, Message("m", 0))
    buf.enqueue(4, Message("m", 64))
    first = buf.pop(4)
    assert first.addr == 0
    # a stalled message pushed back must come out before the tick-4 peer,
    # and before anything pushed front *earlier* (LIFO among re-inserts)
    buf.push_front(4, first)
    assert buf.peek(4) is first
    assert buf.pop(4) is first
    assert buf.pop(4).addr == 64
    assert len(buf) == 0


def test_buffer_push_front_reuses_consumed_prefix():
    buf = MessageBuffer()
    for i in range(8):
        buf.enqueue(1, Message("m", 64 * i))
    assert buf.pop(1).addr == 0
    assert buf.pop(1).addr == 64
    retry = Message("m", 0x999)
    buf.push_front(1, retry)  # lands in the consumed slot, no list shift
    assert buf.pop(1) is retry
    drained = [buf.pop(1).addr for _ in range(6)]
    assert drained == [64 * i for i in range(2, 8)]


def test_buffer_trims_consumed_prefix_in_batches():
    buf = MessageBuffer()
    n = 6 * MessageBuffer.TRIM_MIN
    for i in range(n):
        buf.enqueue(1, Message("m", i))
    for i in range(n):
        assert len(buf) == n - i
        assert buf.pop(1).addr == i
        # the backing list never holds more than ~2x the live entries
        # once the trim threshold is reachable
        assert len(buf._entries) <= max(2 * len(buf), 2 * MessageBuffer.TRIM_MIN)
    assert len(buf) == 0
    assert buf._entries == []


def test_buffer_next_arrival_after_with_out_of_order_suffix():
    buf = MessageBuffer()
    for tick in (9, 2, 7, 4):
        buf.enqueue(tick, Message("m", tick))
    assert buf.next_arrival_after(0) == 2
    assert buf.next_arrival_after(2) == 4
    assert buf.next_arrival_after(4) == 7
    assert buf.next_arrival_after(8) == 9
    assert buf.next_arrival_after(9) is None
    buf.pop(3)  # consume tick-2; visible prefix must still be skipped
    assert buf.next_arrival_after(3) == 4


# -- EventQueue --------------------------------------------------------------


def test_event_queue_len_tracks_live_counter():
    q = EventQueue()
    events = [q.schedule(t, lambda: None) for t in range(10)]
    assert len(q) == 10
    for e in events[::2]:
        e.cancel()
    assert len(q) == 5
    events[1].cancel()
    events[1].cancel()  # double-cancel must not decrement twice
    assert len(q) == 4
    fired = 0
    while q.pop() is not None:
        fired += 1
    assert fired == 4
    assert len(q) == 0


def test_event_queue_compaction_preserves_pop_order():
    q = EventQueue()
    keep = []
    cancelled = []
    for t in range(4 * EventQueue.COMPACT_MIN):
        e = q.schedule(t, lambda: None)
        (keep if t % 4 == 0 else cancelled).append(e)
    for e in cancelled:
        e.cancel()  # >half cancelled: compaction kicks in mid-loop
    assert q._cancelled * 2 <= max(len(q._heap), 1), "heap was compacted"
    ticks = []
    while True:
        e = q.pop()
        if e is None:
            break
        ticks.append(e.tick)
    assert ticks == [e.tick for e in keep]


def test_cancel_after_pop_does_not_corrupt_counts():
    q = EventQueue()
    e = q.schedule(3, lambda: None)
    q.schedule(5, lambda: None)
    assert q.pop() is e
    e.cancel()  # already popped: must not touch the live count
    assert len(q) == 1
    assert q.pop() is not None
    assert len(q) == 0


# -- trace-free fast mode ----------------------------------------------------


class _Echo(Component):
    PORTS = ("inbox",)

    def wakeup(self):
        while self.in_ports["inbox"].pop(self.sim.tick) is not None:
            pass


def test_trace_depth_zero_runs_and_records_nothing():
    sim = Simulator(trace_depth=0)
    assert sim.trace is None
    net = Network(sim, FixedLatency(1), ordered=True, name="t")
    net.attach(_Echo(sim, "echo"))
    for i in range(5):
        net.send(Message("m", 64 * i, sender="src", dest="echo"), "inbox")
    sim.record_trace("t", Message("m", 0, sender="x", dest="echo"))  # no-op
    assert sim.run() == "idle"
    assert sim.trace is None
    assert net.stats.get("messages") == 5


def test_diagnose_degrades_without_trace_ring():
    class Lazy(Component):
        PORTS = ("inbox",)

        def wakeup(self):
            pass

    for depth, expect_disabled in ((0, True), (16, False)):
        sim = Simulator(trace_depth=depth)
        lazy = Lazy(sim, "lazy")
        lazy.deliver("inbox", 1, Message("m", 0, dest="lazy"))
        with pytest.raises(DeadlockError) as info:
            sim.run()
        text = info.value.diagnose()
        assert "components with pending work" in text
        assert ("trace disabled" in text) == expect_disabled


def test_trace_depth_zero_same_result_as_traced():
    def run(depth):
        sim = Simulator(seed=42, trace_depth=depth)
        net = Network(sim, FixedLatency(2), ordered=True, name="t")
        echo = _Echo(sim, "echo")
        net.attach(echo)
        for i in range(20):
            net.send(Message("m", 64 * (i % 4), sender="s", dest="echo"), "inbox")
        sim.run()
        return sim.tick, sim._events_fired, net.stats.get("messages")

    assert run(0) == run(64)


# -- component index & broadcast ---------------------------------------------


def test_component_index_lookup_and_missing():
    sim = Simulator()
    a = _Echo(sim, "alpha")
    _Echo(sim, "beta")
    assert sim.component("alpha") is a
    with pytest.raises(KeyError, match="alpha-missing"):
        sim.component("alpha-missing")


def test_component_index_first_registration_wins():
    sim = Simulator()
    first = _Echo(sim, "dup")
    second = _Echo(sim, "dup")
    assert sim.component("dup") is first
    assert second in sim.components


def test_broadcast_respects_factory_set_destination():
    sim = Simulator()
    net = Network(sim, FixedLatency(1), name="t")
    got = {}

    class Sink(Component):
        PORTS = ("inbox",)

        def wakeup(self):
            while True:
                msg = self.in_ports["inbox"].pop(self.sim.tick)
                if msg is None:
                    return
                got.setdefault(self.name, []).append(msg.dest)

    for name in ("x", "y"):
        net.attach(Sink(sim, name))
    # a factory that pre-routes everything to "y": broadcast must not
    # clobber the destination it set
    net.broadcast(lambda dest: Message("m", 0, sender="s", dest="y"), ["x", "y"], "inbox")
    # and one that leaves dest empty: broadcast fills it per destination
    net.broadcast(lambda dest: Message("m", 64, sender="s"), ["x", "y"], "inbox")
    sim.run()
    assert got.get("x") == ["x"]
    assert got["y"] == ["y", "y", "y"]


# -- network detach / lane reset ---------------------------------------------


def test_detach_forgets_endpoint_and_lanes():
    sim = Simulator()
    net = Network(sim, FixedLatency(1), ordered=True, name="t")
    a, b = _Echo(sim, "a"), _Echo(sim, "b")
    net.attach(a)
    net.attach(b)
    net.send(Message("m", 0, sender="a", dest="b"), "inbox")
    assert ("a", "b") in net._last_arrival
    net.detach("b")
    assert net.endpoints() == ["a"]
    assert not net._last_arrival
    with pytest.raises(KeyError):
        net.send(Message("m", 0, sender="a", dest="b"), "inbox")
    with pytest.raises(KeyError):
        net.detach("b")
    # reattach: a fresh endpoint must not inherit the old lane clamp
    net.attach(_Echo(sim, "b"))
    arrival = net.send(Message("m", 0, sender="a", dest="b"), "inbox")
    assert arrival == sim.tick + 1
    sim.run()


def test_reset_lanes_clears_clamps():
    sim = Simulator()
    net = Network(sim, FixedLatency(1), ordered=True, name="t")
    net.attach(_Echo(sim, "a"))
    net.attach(_Echo(sim, "b"))
    first = net.send(Message("m", 0, sender="a", dest="b"), "inbox")
    clamped = net.send(Message("m", 0, sender="a", dest="b"), "inbox")
    assert clamped == first + 1
    sim.run()
    net.reset_lanes()
    assert not net._last_arrival
