"""Integration stress: random checked traffic over every configuration.

The paper's Section 4.1 methodology at CI scale: tiny caches, few
addresses, random message latencies. After draining, the whole-system
coherence invariants must hold (quiescence, single writer, value
agreement, XG mirror consistency).
"""

import pytest

from repro.eval.experiments import stress_configs
from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.testing.invariants import check_all
from repro.testing.random_tester import RandomTester
from repro.xg.interface import XGVariant

BLOCKS = [0x1000 + 64 * i for i in range(5)]


def _run(config, ops=1200):
    system = build_system(config)
    tester = RandomTester(
        system.sim, system.sequencers, BLOCKS, ops_target=ops, store_fraction=0.45
    )
    tester.run()
    return system, tester


@pytest.mark.parametrize("seed", range(2))
@pytest.mark.parametrize(
    "host", [HostProtocol.MESI, HostProtocol.HAMMER], ids=["mesi", "hammer"]
)
@pytest.mark.parametrize(
    "variant",
    [XGVariant.FULL_STATE, XGVariant.TRANSACTIONAL],
    ids=["full", "txn"],
)
@pytest.mark.parametrize("levels", [1, 2], ids=["L1", "L2"])
def test_xg_configs_stress(seed, host, variant, levels):
    config = [
        c
        for c in stress_configs(seed)
        if c.host is host
        and c.org is AccelOrg.XG
        and c.xg_variant is variant
        and c.accel_levels == levels
    ][0]
    system, tester = _run(config)
    assert tester.loads_checked > 0
    assert len(system.error_log) == 0, list(system.error_log)
    check_all(system)


@pytest.mark.parametrize("seed", range(2))
@pytest.mark.parametrize(
    "host", [HostProtocol.MESI, HostProtocol.HAMMER], ids=["mesi", "hammer"]
)
@pytest.mark.parametrize(
    "org", [AccelOrg.ACCEL_SIDE, AccelOrg.HOST_SIDE], ids=["accelside", "hostside"]
)
def test_baseline_configs_stress(seed, host, org):
    config = [c for c in stress_configs(seed) if c.host is host and c.org is org][0]
    system, tester = _run(config)
    assert tester.loads_checked > 0
    check_all(system)


def test_stress_is_deterministic():
    """Same seed, same config => identical final tick and check counts."""

    def one():
        config = stress_configs(3)[4]  # an XG config
        system, tester = _run(config, ops=800)
        return system.sim.tick, tester.loads_checked, tester.stores_committed

    assert one() == one()


def test_larger_campaign_mesi_xg_full():
    """A longer single-config run for deeper transition interleavings."""
    config = SystemConfig(
        host=HostProtocol.MESI,
        org=AccelOrg.XG,
        xg_variant=XGVariant.FULL_STATE,
        n_cpus=2,
        n_accel_cores=2,
        cpu_l1_sets=2,
        cpu_l1_assoc=1,
        shared_l2_sets=4,
        shared_l2_assoc=2,
        accel_l1_sets=2,
        accel_l1_assoc=1,
        randomize_latencies=True,
        seed=99,
        deadlock_threshold=400_000,
        accel_timeout=150_000,
        mem_latency=30,
    )
    system, tester = _run(config, ops=6000)
    assert tester.loads_checked > 3000
    assert len(system.error_log) == 0
    check_all(system)
