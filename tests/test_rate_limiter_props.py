"""Property-style regression tests for the token-bucket rate limiter.

The original implementation accumulated a float token balance, which
drifted over million-tick campaigns, and a ``burst=0`` configuration
could livelock (no whole token ever accumulated). The limiter now keeps
an exact integer credit in 1/period units; these tests pin the exactness
and the zero-burst floor.
"""

import random

import pytest

from repro.xg.rate_limiter import RateLimiter


def test_long_run_admission_is_exact():
    """rate=1/period=3 polled every tick for 100k ticks admits exactly
    the burst token plus one token per full period — no drift."""
    limiter = RateLimiter(rate=1, period=3, burst=1)
    admitted = 0
    for now in range(100_000):
        if limiter.acquire(now) == 0:
            admitted += 1
    assert admitted == 1 + (100_000 - 1) // 3


def test_zero_burst_config_admits_eventually():
    limiter = RateLimiter(rate=1, period=100, burst=0)
    wait = limiter.acquire(0)
    assert wait > 0
    # The capacity floor guarantees a whole token can accumulate.
    assert limiter.acquire(wait) == 0
    assert limiter.admitted == 1


def test_returned_wait_is_honest():
    """acquire(now + wait) always succeeds, and never one tick earlier."""
    rng = random.Random(7)
    limiter = RateLimiter(rate=3, period=17, burst=2)
    now = 0
    for _ in range(2_000):
        now += rng.randrange(0, 9)
        wait = limiter.acquire(now)
        if wait == 0:
            continue
        if wait > 1:
            assert limiter.acquire(now + wait - 1) > 0, (
                f"tick {now}: wait {wait} was pessimistic"
            )
        assert limiter.acquire(now + wait) == 0, (
            f"tick {now}: wait {wait} was optimistic"
        )
        now += wait


def test_tokens_never_exceed_capacity():
    limiter = RateLimiter(rate=5, period=10, burst=2)
    limiter.acquire(1_000_000)  # huge idle gap refills at most to capacity
    assert limiter.tokens <= 2


def test_set_rate_rescaling_mints_no_tokens():
    limiter = RateLimiter(rate=10, period=100, burst=4)
    limiter.acquire(0)  # spend one: 3 whole tokens remain
    before = limiter.tokens
    limiter.set_rate(10, period=300, burst=4)
    assert limiter.tokens == before, "rescale must preserve earned credit"
    limiter.set_rate(1, period=7, burst=1)
    assert limiter.tokens <= 1, "clamped to the new (smaller) capacity"


def test_throttle_clamp_scenario_is_stable():
    """The quarantine ladder's clamp: generous -> punitive mid-stream."""
    limiter = RateLimiter(rate=16, period=100)
    for now in range(0, 200, 10):
        limiter.acquire(now)
    limiter.set_rate(1, period=500)
    admitted = sum(
        1 for now in range(200, 10_200) if limiter.acquire(now) == 0
    )
    # At 1 token per 500 ticks over 10k ticks: at most the clamped steady
    # state plus the single token of carried-over credit.
    assert admitted <= 10_000 // 500 + 1
    assert limiter.throttled > 0


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        RateLimiter(rate=0)
    with pytest.raises(ValueError):
        RateLimiter(rate=1, period=0)
    limiter = RateLimiter(rate=1)
    with pytest.raises(ValueError):
        limiter.set_rate(-3)


def test_unlimited_admits_everything():
    limiter = RateLimiter()
    assert all(limiter.acquire(now) == 0 for now in range(100))
    assert limiter.admitted == 100
    assert limiter.throttled == 0
