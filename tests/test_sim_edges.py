"""Edge-case tests for the simulation substrate."""

import pytest

from repro.sim.component import Component, MessageBuffer
from repro.sim.message import Message
from repro.sim.network import FixedLatency, Network, RandomLatency
from repro.sim.simulator import Simulator


def test_latency_models_validate():
    with pytest.raises(ValueError):
        FixedLatency(0)
    with pytest.raises(ValueError):
        RandomLatency(0, 5)
    with pytest.raises(ValueError):
        RandomLatency(6, 5)


def test_broadcast_builds_one_message_per_destination():
    sim = Simulator()
    net = Network(sim, FixedLatency(1), name="t")

    received = []

    class Sink(Component):
        PORTS = ("inbox",)

        def wakeup(self):
            while True:
                msg = self.in_ports["inbox"].pop(self.sim.tick)
                if msg is None:
                    return
                received.append((self.name, msg.uid))

    for name in ("x", "y", "z"):
        net.attach(Sink(sim, name))
    net.broadcast(lambda dest: Message("probe", 0x40, sender="src"), ["x", "y", "z"], "inbox")
    sim.run()
    assert sorted(n for n, _u in received) == ["x", "y", "z"]
    assert len({u for _n, u in received}) == 3, "distinct message objects"


def test_bandwidth_cap_queues_messages():
    sim = Simulator()
    net = Network(sim, FixedLatency(1), name="t", bandwidth=0.5)  # 1 msg / 2 ticks

    arrivals = []

    class Sink(Component):
        PORTS = ("inbox",)

        def wakeup(self):
            while True:
                msg = self.in_ports["inbox"].pop(self.sim.tick)
                if msg is None:
                    return
                arrivals.append(self.sim.tick)

    net.attach(Sink(sim, "sink"))
    for i in range(4):
        net.send(Message("m", 64 * i, sender="s", dest="sink"), "inbox")
    sim.run()
    assert arrivals == sorted(arrivals)
    assert arrivals[-1] - arrivals[0] >= 6, "queueing spread the burst"
    assert net.stats.get("queueing_ticks") > 0


def test_unordered_buffer_many_out_of_order_inserts():
    buf = MessageBuffer()
    order = [9, 3, 7, 1, 5, 2, 8]
    for tick in order:
        buf.enqueue(tick, Message("m", tick))
    drained = []
    while True:
        msg = buf.pop(100)
        if msg is None:
            break
        drained.append(msg.addr)
    assert drained == sorted(order)


def test_simulator_run_final_check_flag():
    from repro.sim.simulator import DeadlockError

    sim = Simulator()

    class Lazy(Component):
        PORTS = ("inbox",)

        def wakeup(self):
            pass  # never consumes

    lazy = Lazy(sim, "lazy")
    lazy.deliver("inbox", 1, Message("m", 0, dest="lazy"))
    assert sim.run(final_check=False) == "idle"
    with pytest.raises(DeadlockError):
        sim.run()


def test_component_next_pending_tick():
    sim = Simulator()

    class Sink(Component):
        PORTS = ("a", "b")

    sink = Sink(sim, "s")
    assert sink.next_pending_tick() is None
    sink.in_ports["a"].enqueue(9, Message("m", 0))
    sink.in_ports["b"].enqueue(4, Message("m", 64))
    assert sink.next_pending_tick() == 4


def test_event_cancel_via_component_wakeup_dedup():
    """request_wakeup keeps exactly one outstanding event, cancelling a
    later one when an earlier request arrives."""
    sim = Simulator()

    class Sink(Component):
        PORTS = ("inbox",)
        wakeups = 0

        def wakeup(self):
            type(self).wakeups += 1

    sink = Sink(sim, "s")
    sink.request_wakeup(100)
    first_token = sink._wakeup_token
    assert len(sim.events) == 1
    sink.request_wakeup(50)
    # the tick-100 entry was cancelled: its token is stale and the queue
    # holds exactly one live event again
    assert not sim.events.cancel_token(first_token)
    assert len(sim.events) == 1
    sink.request_wakeup(70)  # later than pending: absorbed
    assert sink._wakeup_tick == 50
    assert len(sim.events) == 1
    sim.run()
    assert Sink.wakeups == 1
    assert sim.tick == 50
