"""Unit tests for the interconnect fault-injection layer.

Covers the FaultPlan model itself (rates, windows, determinism) and its
integration with Network.send (drops never delivered, duplicates share a
uid, delays push arrivals out, corruption flips payload bytes, and every
injection is counted).
"""

import pytest

from repro.memory.datablock import DataBlock
from repro.sim.faults import (
    CORRUPT,
    DELAY,
    DROP,
    DUPLICATE,
    FAULT_KINDS,
    FaultPlan,
    FaultWindow,
    LinkFaults,
    single_link_plan,
)
from repro.sim.message import Message
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator
from repro.xg.interface import AccelMsg

from tests.helpers import RawAgent

ADDR = 0x9000


def _msg(sender="a", dest="b", data=None):
    return Message(AccelMsg.GetS, ADDR, sender=sender, dest=dest, data=data)


# -- model -------------------------------------------------------------------------


def test_fault_window_active_bounds():
    window = FaultWindow(100, 200, DROP)
    assert not window.active(99)
    assert window.active(100)
    assert window.active(199)
    assert not window.active(200)


def test_link_rate_combines_base_and_windows_clamped():
    link = LinkFaults(drop=0.3, windows=(FaultWindow(10, 20, DROP, rate=0.9),))
    assert link.rate(DROP, 5) == pytest.approx(0.3)
    assert link.rate(DROP, 15) == 1.0  # 0.3 + 0.9 clamps
    assert link.rate(DUPLICATE, 15) == 0.0


def test_zero_rate_plan_injects_nothing_and_draws_nothing():
    plan = FaultPlan(seed=1)
    plan.set_link("accel", LinkFaults())
    state = plan.rng.getstate()
    for _ in range(50):
        assert not plan.decide("accel", _msg(), tick=10)
    # Rate-guarded draws: a silent link must not consume randomness, so
    # adding a quiet link to a plan cannot shift every later decision.
    assert plan.rng.getstate() == state
    assert plan.total_injected == 0


def test_drop_preempts_other_faults():
    plan = single_link_plan({DROP: 1.0, DUPLICATE: 1.0, DELAY: 1.0, CORRUPT: 1.0})
    decision = plan.decide("accel", _msg(), tick=0)
    assert decision.drop
    assert not decision.duplicate and not decision.extra_delay and not decision.corrupt
    assert plan.stats[DROP] == 1


def test_unknown_net_untouched():
    plan = single_link_plan({DROP: 1.0}, link="accel")
    assert not plan.decide("host", _msg(), tick=0)


def test_directed_link_key_wins_over_net_name():
    plan = FaultPlan(seed=0)
    plan.set_link("accel", LinkFaults(drop=1.0))
    plan.set_link("accel:xg->adversary", LinkFaults())  # quiet override
    assert not plan.decide("accel", _msg(sender="xg", dest="adversary"), tick=0)
    assert plan.decide("accel", _msg(sender="adversary", dest="xg"), tick=0).drop


def test_corrupted_copy_never_a_noop():
    plan = single_link_plan({CORRUPT: 1.0})
    for _ in range(20):
        original = DataBlock(64)
        mutated = plan.corrupted_copy(original)
        assert mutated is not original
        assert any(
            mutated.read_byte(i) != original.read_byte(i) for i in range(64)
        )


def test_plan_as_dict_reports_rates_and_stats():
    plan = single_link_plan({DROP: 1.0}, seed=7)
    plan.decide("accel", _msg(), tick=0)
    report = plan.as_dict()
    assert report["seed"] == 7
    assert "drop=1.0" in report["links"]["accel"]
    assert report["injected"][DROP] == 1
    assert report["injected"][f"{DROP}.accel"] == 1
    assert report["total_injected"] == 1


def test_same_seed_same_decisions():
    msgs = [_msg() for _ in range(40)]
    outcomes = []
    for _ in range(2):
        plan = single_link_plan(
            {DROP: 0.3, DUPLICATE: 0.3, DELAY: 0.3, CORRUPT: 0.3}, seed=42
        )
        outcomes.append(
            [
                (d.drop, d.duplicate, d.extra_delay, d.corrupt) if d else None
                for d in (plan.decide("accel", m, tick=i) for i, m in enumerate(msgs))
            ]
        )
    assert outcomes[0] == outcomes[1]


# -- network integration ------------------------------------------------------------


def _net_pair(plan, ordered=True):
    sim = Simulator(seed=0)
    net = Network(sim, FixedLatency(3), ordered=ordered, name="accel", fault_plan=plan)
    src = RawAgent(sim, "src", net)
    dst = RawAgent(sim, "dst", net)
    return sim, net, src, dst


def test_network_drop_never_delivered():
    sim, net, src, dst = _net_pair(single_link_plan({DROP: 1.0}))
    src.send(AccelMsg.GetS, ADDR, "dst", "accel_request")
    sim.run()
    assert dst.received == []
    assert net.stats.get("fault.dropped") == 1


def test_network_duplicate_delivers_twice_same_uid():
    sim, net, src, dst = _net_pair(single_link_plan({DUPLICATE: 1.0}))
    sent = src.send(AccelMsg.GetS, ADDR, "dst", "accel_request")
    sim.run()
    assert len(dst.received) == 2
    uids = [msg.uid for _t, _p, msg in dst.received]
    assert uids == [sent.uid, sent.uid]
    assert net.stats.get("fault.duplicated") == 1


def test_network_delay_pushes_arrival_out():
    plan = single_link_plan({DELAY: 1.0}, delay_ticks=(50, 50))
    sim, net, src, dst = _net_pair(plan)
    src.send(AccelMsg.GetS, ADDR, "dst", "accel_request")
    sim.run()
    (tick, _port, _msg), = dst.received
    assert tick >= 50
    assert net.stats.get("fault.delayed") == 1


def test_network_corrupt_flips_payload():
    sim, net, src, dst = _net_pair(single_link_plan({CORRUPT: 1.0}))
    data = DataBlock(64)
    data.write_byte(0, 7)
    src.send(AccelMsg.DirtyWB, ADDR, "dst", "accel_response", data=data, dirty=True)
    sim.run()
    (_tick, _port, msg), = dst.received
    assert any(msg.data.read_byte(i) != (7 if i == 0 else 0) for i in range(64))
    assert net.stats.get("fault.corrupted") == 1


def test_network_blackhole_window_only_inside():
    plan = single_link_plan({}, windows=(FaultWindow(0, 10, DROP, rate=1.0),))
    sim, net, src, dst = _net_pair(plan)
    src.send(AccelMsg.GetS, ADDR, "dst", "accel_request")  # tick 0: eaten
    # past the window the same link is quiet again
    sim.schedule(15, lambda: src.send(AccelMsg.GetM, ADDR, "dst", "accel_request"))
    sim.run()
    assert [m.mtype for _t, _p, m in dst.received] == [AccelMsg.GetM]


def test_ordered_lane_order_survives_drops():
    """Dropped messages must not occupy FIFO lane slots: the survivors
    still arrive in send order with strictly increasing ticks."""
    plan = single_link_plan({DROP: 0.5}, seed=3)
    sim, net, src, dst = _net_pair(plan, ordered=True)
    for i in range(30):
        src.send(AccelMsg.GetS, ADDR + 64 * i, "dst", "accel_request")
    sim.run()
    arrivals = [t for t, _p, _m in dst.received]
    addrs = [m.addr for _t, _p, m in dst.received]
    assert arrivals == sorted(arrivals)
    assert addrs == sorted(addrs)  # relative order preserved
    assert 0 < len(dst.received) < 30
