"""Tests for the two-level accelerator hierarchy (L1s + shared accel L2)."""

import pytest

from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.testing.invariants import check_all
from repro.xg.interface import XGVariant


def _build(seed=0, **overrides):
    config = SystemConfig(
        host=HostProtocol.MESI,
        org=AccelOrg.XG,
        xg_variant=XGVariant.FULL_STATE,
        accel_levels=2,
        n_cpus=1,
        n_accel_cores=2,
        seed=seed,
        **overrides,
    )
    return build_system(config)


def _op(system, seq, kind, addr, value=None):
    out = {}
    if kind == "load":
        seq.load(addr, lambda m, d: out.update(data=d))
    else:
        seq.store(addr, value, lambda m, d: out.update(data=d))
    system.sim.run()
    return out.get("data")


def test_intra_accelerator_sharing_avoids_host():
    """Blocks migrate between accelerator L1s through the accel L2 without
    touching Crossing Guard (the paper's stated benefit of Figure 2d)."""
    system = _build()
    a, b = system.accel_seqs
    _op(system, a, "store", 0x7000, 42)
    xg_msgs_before = system.xg.stats.get("xg_to_host_msgs")
    data = _op(system, b, "load", 0x7000)
    assert data.read_byte(0) == 42
    assert system.xg.stats.get("xg_to_host_msgs") == xg_msgs_before, (
        "L1-to-L1 transfer must stay inside the accelerator"
    )


def test_accel_l2_inclusive_tracking():
    system = _build()
    a, b = system.accel_seqs
    _op(system, a, "load", 0x7000)
    _op(system, b, "load", 0x7000)
    l2_entry = system.accel_l2.cache.lookup(0x7000, touch=False)
    assert l2_entry is not None


def test_cpu_store_invalidates_accel_hierarchy():
    system = _build()
    cpu = system.cpu_seqs[0]
    accel = system.accel_seqs[0]
    _op(system, accel, "load", 0x7000)
    _op(system, cpu, "store", 0x7000, 88)
    data = _op(system, accel, "load", 0x7000)
    assert data.read_byte(0) == 88
    check_all(system)


def test_accel_store_visible_to_cpu():
    system = _build()
    cpu = system.cpu_seqs[0]
    accel = system.accel_seqs[1]
    _op(system, accel, "store", 0x7040, 17)
    data = _op(system, cpu, "load", 0x7040)
    assert data.read_byte(0) == 17
    check_all(system)


def test_l1_to_l1_write_migration():
    system = _build()
    a, b = system.accel_seqs
    _op(system, a, "store", 0x7000, 1)
    _op(system, b, "store", 0x7000, 2)
    assert _op(system, a, "load", 0x7000).read_byte(0) == 2
    check_all(system)


def test_accel_l2_eviction_writes_back_through_xg():
    system = _build(accel_l2_sets=1, accel_l2_assoc=2, accel_l1_sets=1, accel_l1_assoc=1)
    accel = system.accel_seqs[0]
    _op(system, accel, "store", 0x7000, 5)
    _op(system, accel, "store", 0x7040, 6)
    _op(system, accel, "store", 0x7080, 7)  # forces accel L2 eviction
    # The evicted dirty block must be recoverable through the host.
    cpu = system.cpu_seqs[0]
    assert _op(system, cpu, "load", 0x7000).read_byte(0) == 5
    check_all(system)
