"""Unit + property tests for the set-associative cache array."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.cache_array import CacheArray


def test_allocate_and_lookup():
    cache = CacheArray(4, 2)
    entry = cache.allocate(0x1000, "S")
    assert cache.lookup(0x1000) is entry
    assert cache.lookup(0x1001) is entry  # same block
    assert 0x1000 in cache
    assert cache.lookup(0x2000) is None


def test_double_allocate_rejected():
    cache = CacheArray(4, 2)
    cache.allocate(0x1000, "S")
    with pytest.raises(ValueError):
        cache.allocate(0x1020, "S")  # same block


def test_set_full_rejected():
    cache = CacheArray(1, 2)
    cache.allocate(0x0, "S")
    cache.allocate(0x40, "S")
    assert cache.is_set_full(0x80)
    with pytest.raises(ValueError):
        cache.allocate(0x80, "S")


def test_lru_victim_selection():
    cache = CacheArray(1, 3)
    cache.allocate(0x0, "S")
    cache.allocate(0x40, "S")
    cache.allocate(0x80, "S")
    cache.lookup(0x0)  # touch 0x0 so 0x40 is LRU
    assert cache.victim(0xC0).addr == 0x40


def test_lookup_without_touch_preserves_lru():
    cache = CacheArray(1, 2)
    cache.allocate(0x0, "S")
    cache.allocate(0x40, "S")
    cache.lookup(0x0, touch=False)
    assert cache.victim(0x80).addr == 0x0


def test_deallocate():
    cache = CacheArray(4, 2)
    cache.allocate(0x1000, "S")
    cache.deallocate(0x1000)
    assert cache.lookup(0x1000) is None
    with pytest.raises(KeyError):
        cache.deallocate(0x1000)


def test_set_indexing_disjoint():
    cache = CacheArray(2, 1)
    cache.allocate(0x0, "S")  # set 0
    cache.allocate(0x40, "S")  # set 1
    assert cache.occupancy() == 2  # different sets, no conflict


def test_capacity_properties():
    cache = CacheArray(8, 4, block_size=64)
    assert cache.capacity_blocks == 32
    assert cache.capacity_bytes == 2048


def test_non_power_of_two_sets_rejected():
    with pytest.raises(ValueError):
        CacheArray(3, 2)


@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=200))
def test_occupancy_never_exceeds_capacity(block_indices):
    """Random fill/evict traffic: per-set occupancy stays within assoc and
    the LRU victim is always the least-recently-used untouched entry."""
    cache = CacheArray(2, 2)
    for index in block_indices:
        addr = index * 64
        if cache.lookup(addr) is not None:
            continue
        if cache.is_set_full(addr):
            cache.deallocate(cache.victim(addr).addr)
        cache.allocate(addr, "V")
        assert cache.occupancy() <= cache.capacity_blocks
    per_set = {}
    for entry in cache.entries():
        per_set[cache.set_index(entry.addr)] = per_set.get(cache.set_index(entry.addr), 0) + 1
    assert all(count <= 2 for count in per_set.values())


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=3, max_size=50))
def test_victim_is_least_recently_used(touches):
    cache = CacheArray(1, 4)
    last_use = {}
    clock = 0
    for index in touches:
        addr = index * 64
        clock += 1
        if cache.lookup(addr) is not None:
            last_use[addr] = clock
            continue
        if cache.is_set_full(addr):
            victim = cache.victim(addr)
            expected = min(last_use, key=last_use.get)
            assert victim.addr == expected
            cache.deallocate(victim.addr)
            del last_use[victim.addr]
        cache.allocate(addr, "V")
        last_use[addr] = clock
