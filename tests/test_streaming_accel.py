"""Tests for the customized streaming (prefetching) accelerator cache."""

import pytest

from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.testing.invariants import check_all
from repro.testing.random_tester import RandomTester
from repro.xg.interface import XGVariant


def _build(depth=2, **kw):
    defaults = dict(
        host=HostProtocol.MESI, org=AccelOrg.XG, n_cpus=1, n_accel_cores=1,
        accel_prefetch_depth=depth, seed=0,
    )
    defaults.update(kw)
    return build_system(SystemConfig(**defaults))


def _op(system, seq, kind, addr, value=None):
    out = {}
    if kind == "load":
        seq.load(addr, lambda m, d: out.update(data=d))
    else:
        seq.store(addr, value)
    system.sim.run()
    return out.get("data")


def test_prefetch_issued_on_demand_miss():
    system = _build(depth=2)
    _op(system, system.accel_seqs[0], "load", 0x40000)
    l1 = system.accel_caches[0]
    assert l1.stats.get("prefetches_issued") == 2
    # the prefetched neighbors are now resident
    from repro.accel.l1_single import AL1State

    assert l1.block_state(0x40040) is not AL1State.I
    assert l1.block_state(0x40080) is not AL1State.I


def test_prefetched_block_hit_counted():
    system = _build(depth=1)
    accel = system.accel_seqs[0]
    _op(system, accel, "load", 0x40000)
    xg_msgs = system.xg.stats.get("xg_to_host_msgs")
    data = _op(system, accel, "load", 0x40040)  # should hit the prefetch
    l1 = system.accel_caches[0]
    assert l1.stats.get("prefetch_hits") >= 1
    # ...without any new host traffic for the demand access itself beyond
    # the prefetch for the NEXT block
    assert data is not None


def test_prefetched_blocks_stay_coherent():
    """A CPU store to a prefetched block must invalidate it like any
    other copy — prefetching gives no license to read stale data."""
    system = _build(depth=2)
    accel = system.accel_seqs[0]
    cpu = system.cpu_seqs[0]
    _op(system, cpu, "store", 0x40040, 7)
    _op(system, accel, "load", 0x40000)  # prefetches 0x40040 (value 7)
    _op(system, cpu, "store", 0x40040, 9)  # invalidates the prefetched copy
    data = _op(system, accel, "load", 0x40040)
    assert data.read_byte(0) == 9
    assert len(system.error_log) == 0
    check_all(system)


def test_prefetch_never_evicts_demand_data():
    system = _build(depth=4, accel_l1_sets=1, accel_l1_assoc=2)
    accel = system.accel_seqs[0]
    _op(system, accel, "load", 0x40000)
    from repro.accel.l1_single import AL1State

    l1 = system.accel_caches[0]
    assert l1.block_state(0x40000) is not AL1State.I, "demand block retained"


def test_streaming_cache_under_random_stress():
    config = SystemConfig(
        host=HostProtocol.MESI, org=AccelOrg.XG, xg_variant=XGVariant.TRANSACTIONAL,
        n_cpus=2, n_accel_cores=2, accel_prefetch_depth=2,
        cpu_l1_sets=2, cpu_l1_assoc=1, shared_l2_sets=4, shared_l2_assoc=2,
        accel_l1_sets=2, accel_l1_assoc=2,
        randomize_latencies=True, seed=4, deadlock_threshold=300_000,
        accel_timeout=100_000, mem_latency=30,
    )
    system = build_system(config)
    tester = RandomTester(
        system.sim, system.sequencers, [0x1000 + 64 * i for i in range(5)],
        ops_target=2500, store_fraction=0.45,
    )
    tester.run()
    assert tester.loads_checked > 1000
    assert len(system.error_log) == 0
    check_all(system)


def test_prefetch_speedup_on_streaming():
    from repro.workloads.synthetic import WorkloadDriver, run_drivers, streaming

    ticks = {}
    for depth in (0, 3):
        system = _build(depth=depth, seed=9)
        driver = WorkloadDriver(
            system.sim, system.accel_seqs[0],
            streaming(0x40000, 80, write_fraction=0.0, seed=1),
            max_outstanding=2,
        )
        ticks[depth] = run_drivers(system.sim, [driver])
    assert ticks[3] < ticks[0] * 0.7
