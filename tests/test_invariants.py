"""Tests for the whole-system invariant checker itself."""

import pytest

from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.protocols.mesi.l1 import L1State
from repro.testing.invariants import (
    InvariantError,
    InvariantWatchdog,
    check_all,
    check_quiescent,
    check_single_writer,
    check_value_consistency,
    check_xg_mirror,
)


def _drained_system(org=AccelOrg.XG):
    system = build_system(SystemConfig(org=org, n_cpus=2, n_accel_cores=1))
    system.cpu_seqs[0].store(0x1000, 5)
    system.sim.run()
    system.accel_seqs[0].load(0x1000)
    system.sim.run()
    system.cpu_seqs[1].load(0x1000)
    system.sim.run()
    return system


def test_clean_system_passes_all():
    assert check_all(_drained_system())


def test_quiescence_detects_open_tbe():
    system = _drained_system()
    system.cpu_caches[0].tbes.allocate(0x9000, L1State.IS_D)
    with pytest.raises(InvariantError):
        check_quiescent(system)


def test_single_writer_detects_two_owners():
    system = _drained_system()
    # forge a second M copy of a block another cache owns
    owner_entry = None
    for entry in system.cpu_caches[0].cache.entries():
        if entry.state in (L1State.E, L1State.M):
            owner_entry = entry
    if owner_entry is None:
        system.cpu_seqs[0].store(0x4000, 1)
        system.sim.run()
        owner_entry = system.cpu_caches[0].cache.lookup(0x4000, touch=False)
    system.cpu_caches[1].cache.allocate(owner_entry.addr, L1State.M)
    with pytest.raises(InvariantError):
        check_single_writer(system)


def test_value_consistency_detects_divergent_sharers():
    system = _drained_system()
    # find a block shared by CPU caches and corrupt one copy
    shared = None
    for entry in system.cpu_caches[0].cache.entries():
        if entry.state is L1State.S:
            other = system.cpu_caches[1].cache.lookup(entry.addr, touch=False)
            if other is not None and other.state is L1State.S:
                shared = (entry, other)
    assert shared is not None, "test setup should have produced sharing"
    shared[0].data.write_byte(0, 0xEE)
    with pytest.raises(InvariantError):
        check_value_consistency(system)


def test_mirror_detects_untracked_accel_block():
    system = _drained_system()
    from repro.accel.l1_single import AL1State

    system.accel_caches[0].cache.allocate(0x8000, AL1State.M)
    with pytest.raises(InvariantError):
        check_xg_mirror(system)


def test_mirror_detects_phantom_entry():
    system = _drained_system()
    system.xg.mirror_set(0x8040, "O", None)
    with pytest.raises(InvariantError):
        check_xg_mirror(system)


def test_baselines_skip_mirror_check():
    system = _drained_system(org=AccelOrg.ACCEL_SIDE)
    assert check_xg_mirror(system)  # no XG: vacuously true
    assert check_all(system)


# -- online invariant watchdog -----------------------------------------------------


def _watched_system(interval=500):
    system = build_system(
        SystemConfig(org=AccelOrg.XG, n_cpus=2, n_accel_cores=1,
                     invariant_interval=interval)
    )
    assert system.watchdog is not None
    return system


def test_watchdog_samples_during_clean_run():
    system = _watched_system()
    for i in range(30):
        system.cpu_seqs[i % 2].store(0x1000 + 64 * (i % 4), i)
        system.accel_seqs[0].load(0x1000 + 64 * (i % 4))
        system.sim.run()
    dog = system.watchdog
    assert dog.samples > 0
    assert dog.checks > 0, "the final drain sample alone guarantees one check"
    assert dog.violations == []
    report = dog.as_dict()
    assert report["samples"] == dog.samples
    assert report["checks"] + 0 >= 1


def test_watchdog_skips_midflight_samples():
    system = _watched_system(interval=1)
    system.cpu_seqs[0].store(0x1000, 5)
    system.accel_seqs[0].load(0x1000)
    system.sim.run()
    dog = system.watchdog
    # With a 1-tick interval most samples land mid-transaction and must be
    # skipped, not raise false single-writer/mirror alarms.
    assert dog.skipped > 0
    assert dog.samples == dog.checks + dog.skipped
    assert dog.violations == []


def test_watchdog_catches_seeded_corruption_with_forensics():
    system = _watched_system()
    system.cpu_seqs[0].store(0x1000, 5)
    system.sim.run()
    # Corrupt XG's mirror: it now claims the accelerator holds a block the
    # accelerator has never seen.
    system.xg.mirror_set(0x8040, "O", None)
    with pytest.raises(InvariantError) as exc_info:
        system.watchdog.sample(system.sim, final=True)
    record = exc_info.value.forensics
    assert record["tick"] == system.sim.tick
    assert "mirror" in record["error"]
    assert record["quarantine"][0]["state"] == "healthy"
    assert system.watchdog.violations == [record]


def test_watchdog_collect_mode_does_not_raise():
    system = _watched_system()
    system.watchdog.raise_on_violation = False
    system.cpu_seqs[0].store(0x1000, 5)
    system.sim.run()
    system.xg.mirror_set(0x8040, "O", None)
    system.watchdog.sample(system.sim, final=True)
    assert len(system.watchdog.violations) == 1


def test_watchdog_never_schedules_events_or_touches_stats():
    system = _watched_system()
    system.cpu_seqs[0].store(0x1000, 5)
    system.sim.run()
    fired_before = system.sim._events_fired
    queue_before = len(system.sim.events)
    stats_before = {c.name: c.stats.as_dict() for c in system.sim.components}
    system.watchdog.sample(system.sim, final=True)
    assert system.sim._events_fired == fired_before
    assert len(system.sim.events) == queue_before
    assert {c.name: c.stats.as_dict() for c in system.sim.components} == stats_before
