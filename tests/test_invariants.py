"""Tests for the whole-system invariant checker itself."""

import pytest

from repro.host.config import AccelOrg, HostProtocol, SystemConfig
from repro.host.system import build_system
from repro.protocols.mesi.l1 import L1State
from repro.testing.invariants import (
    InvariantError,
    check_all,
    check_quiescent,
    check_single_writer,
    check_value_consistency,
    check_xg_mirror,
)


def _drained_system(org=AccelOrg.XG):
    system = build_system(SystemConfig(org=org, n_cpus=2, n_accel_cores=1))
    system.cpu_seqs[0].store(0x1000, 5)
    system.sim.run()
    system.accel_seqs[0].load(0x1000)
    system.sim.run()
    system.cpu_seqs[1].load(0x1000)
    system.sim.run()
    return system


def test_clean_system_passes_all():
    assert check_all(_drained_system())


def test_quiescence_detects_open_tbe():
    system = _drained_system()
    system.cpu_caches[0].tbes.allocate(0x9000, L1State.IS_D)
    with pytest.raises(InvariantError):
        check_quiescent(system)


def test_single_writer_detects_two_owners():
    system = _drained_system()
    # forge a second M copy of a block another cache owns
    owner_entry = None
    for entry in system.cpu_caches[0].cache.entries():
        if entry.state in (L1State.E, L1State.M):
            owner_entry = entry
    if owner_entry is None:
        system.cpu_seqs[0].store(0x4000, 1)
        system.sim.run()
        owner_entry = system.cpu_caches[0].cache.lookup(0x4000, touch=False)
    system.cpu_caches[1].cache.allocate(owner_entry.addr, L1State.M)
    with pytest.raises(InvariantError):
        check_single_writer(system)


def test_value_consistency_detects_divergent_sharers():
    system = _drained_system()
    # find a block shared by CPU caches and corrupt one copy
    shared = None
    for entry in system.cpu_caches[0].cache.entries():
        if entry.state is L1State.S:
            other = system.cpu_caches[1].cache.lookup(entry.addr, touch=False)
            if other is not None and other.state is L1State.S:
                shared = (entry, other)
    assert shared is not None, "test setup should have produced sharing"
    shared[0].data.write_byte(0, 0xEE)
    with pytest.raises(InvariantError):
        check_value_consistency(system)


def test_mirror_detects_untracked_accel_block():
    system = _drained_system()
    from repro.accel.l1_single import AL1State

    system.accel_caches[0].cache.allocate(0x8000, AL1State.M)
    with pytest.raises(InvariantError):
        check_xg_mirror(system)


def test_mirror_detects_phantom_entry():
    system = _drained_system()
    system.xg.mirror_set(0x8040, "O", None)
    with pytest.raises(InvariantError):
        check_xg_mirror(system)


def test_baselines_skip_mirror_check():
    system = _drained_system(org=AccelOrg.ACCEL_SIDE)
    assert check_xg_mirror(system)  # no XG: vacuously true
    assert check_all(system)
