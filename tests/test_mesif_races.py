"""Directed message-level race tests for the MESIF L1."""

import pytest

from repro.host.cpu import Sequencer
from repro.memory.datablock import DataBlock
from repro.protocols.mesif.l1 import FL1State, MesifL1
from repro.protocols.mesif.messages import MesifMsg
from repro.sim.network import FixedLatency, Network
from repro.sim.simulator import Simulator

from tests.helpers import RawAgent

ADDR = 0x3000


def _build():
    sim = Simulator(seed=0)
    net = Network(sim, FixedLatency(1), name="host")
    l2 = RawAgent(sim, "l2", net)
    peer = RawAgent(sim, "peer", net)
    l1 = MesifL1(sim, "l1", net, "l2", num_sets=2, assoc=1)
    net.attach(l1)
    seq = Sequencer(sim, "cpu")
    seq.attach(l1)
    return sim, l2, peer, l1, seq


def _data(value=0):
    block = DataBlock()
    block.write_byte(0, value)
    return block


def _go(sim):
    sim.run(final_check=False)


def test_dataf_fill_takes_f_and_unblocks_f():
    sim, l2, peer, l1, seq = _build()
    seq.load(ADDR)
    _go(sim)
    l2.send(MesifMsg.DataF, ADDR, "l1", "response", data=_data(3))
    _go(sim)
    assert l1.block_state(ADDR) is FL1State.F
    assert l2.of_type(MesifMsg.UnblockF)


def test_f_holder_serves_forward_and_downgrades():
    sim, l2, peer, l1, seq = _build()
    seq.load(ADDR)
    _go(sim)
    l2.send(MesifMsg.DataF, ADDR, "l1", "response", data=_data(5))
    _go(sim)
    l2.send(MesifMsg.Fwd_GetS_F, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    served = peer.of_type(MesifMsg.DataF)
    assert served and served[0].data.read_byte(0) == 5
    assert l1.block_state(ADDR) is FL1State.S, "F moves to the requestor"


def test_stale_forward_after_silent_eviction_fnacks():
    sim, l2, peer, l1, seq = _build()
    seq.load(ADDR)
    _go(sim)
    l2.send(MesifMsg.DataF, ADDR, "l1", "response", data=_data())
    _go(sim)
    seq.load(ADDR + 64 * 2)  # same set, 1-way: silent eviction
    _go(sim)
    assert l1.block_state(ADDR) is FL1State.I
    l2.send(MesifMsg.Fwd_GetS_F, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    assert l2.of_type(MesifMsg.FNack)
    assert not peer.of_type(MesifMsg.DataF)


def test_stale_inv_in_fill_transient_acks_and_waits():
    """The ISI race: an Inv from an older transaction hits our IS_D; we
    ack, stay, and the later data still fills normally."""
    sim, l2, peer, l1, seq = _build()
    out = []
    seq.load(ADDR, lambda m, d: out.append(d.read_byte(0)))
    _go(sim)
    assert l1.block_state(ADDR) is FL1State.IS_D
    l2.send(MesifMsg.Inv, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    assert peer.of_type(MesifMsg.InvAck)
    assert l1.block_state(ADDR) is FL1State.IS_D, "still waiting for data"
    l2.send(MesifMsg.DataF, ADDR, "l1", "response", data=_data(8))
    _go(sim)
    assert out == [8]
    assert l1.block_state(ADDR) is FL1State.F


def test_stale_inv_during_getm_collection():
    sim, l2, peer, l1, seq = _build()
    done = []
    seq.store(ADDR, 4, lambda m, d: done.append(1))
    _go(sim)
    l2.send(MesifMsg.Inv, ADDR, "l1", "forward", requestor="peer")  # stale
    _go(sim)
    assert peer.of_type(MesifMsg.InvAck)
    l2.send(MesifMsg.DataM, ADDR, "l1", "response", data=_data(), ack_count=0)
    _go(sim)
    assert done
    assert l1.block_state(ADDR) is FL1State.M


def test_f_upgrade_races_inv():
    """F holder upgrades; a remote GetM wins: ack, fall back to IM_AD."""
    sim, l2, peer, l1, seq = _build()
    seq.load(ADDR)
    _go(sim)
    l2.send(MesifMsg.DataF, ADDR, "l1", "response", data=_data(1))
    _go(sim)
    done = []
    seq.store(ADDR, 2, lambda m, d: done.append(d.read_byte(0)))
    _go(sim)
    assert l1.block_state(ADDR) is FL1State.SM_AD
    l2.send(MesifMsg.Inv, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    assert l1.block_state(ADDR) is FL1State.IM_AD
    peer.send(MesifMsg.DataM, ADDR, "l1", "response", data=_data(50), ack_count=0)
    _go(sim)
    assert done == [2]


def test_upgrader_still_serves_f_forward():
    """SM_AD still holds valid data and must serve a Fwd_GetS_F from an
    older transaction."""
    sim, l2, peer, l1, seq = _build()
    seq.load(ADDR)
    _go(sim)
    l2.send(MesifMsg.DataF, ADDR, "l1", "response", data=_data(6))
    _go(sim)
    seq.store(ADDR, 7)
    _go(sim)
    assert l1.block_state(ADDR) is FL1State.SM_AD
    l2.send(MesifMsg.Fwd_GetS_F, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    served = peer.of_type(MesifMsg.DataF)
    assert served and served[0].data.read_byte(0) == 6


def test_stale_messages_during_ack_collection():
    """IM_A (data in hand, short of acks) can still see a stale Inv or a
    stale F-forward thanks to silent eviction; both are answered without
    disturbing the count."""
    sim, l2, peer, l1, seq = _build()
    done = []
    seq.store(ADDR, 4, lambda m, d: done.append(1))
    _go(sim)
    l2.send(MesifMsg.DataM, ADDR, "l1", "response", data=_data(), ack_count=2)
    _go(sim)
    assert l1.block_state(ADDR) is FL1State.IM_A
    l2.send(MesifMsg.Inv, ADDR, "l1", "forward", requestor="peer")  # stale
    l2.send(MesifMsg.Fwd_GetS_F, ADDR, "l1", "forward", requestor="peer")  # stale
    _go(sim)
    assert peer.of_type(MesifMsg.InvAck)
    assert l2.of_type(MesifMsg.FNack)
    assert not done, "ack count must be undisturbed"
    peer.send(MesifMsg.InvAck, ADDR, "l1", "response")
    peer.send(MesifMsg.InvAck, ADDR, "l1", "response")
    _go(sim)
    assert done
    assert l1.block_state(ADDR) is FL1State.M


def test_owner_writeback_race_serves_dataf():
    sim, l2, peer, l1, seq = _build()
    seq.store(ADDR, 9)
    _go(sim)
    l2.send(MesifMsg.DataM, ADDR, "l1", "response", data=_data(), ack_count=0)
    _go(sim)
    seq.load(ADDR + 64 * 2)  # evict -> PutM
    _go(sim)
    assert l1.block_state(ADDR) is FL1State.MI_A
    l2.send(MesifMsg.Fwd_GetS, ADDR, "l1", "forward", requestor="peer")
    _go(sim)
    served = peer.of_type(MesifMsg.DataF)
    assert served and served[0].data.read_byte(0) == 9
    assert l2.of_type(MesifMsg.CopyBack)[0].dirty
    assert l1.block_state(ADDR) is FL1State.II_A
    l2.send(MesifMsg.WBNack, ADDR, "l1", "forward")
    _go(sim)
    assert l1.block_state(ADDR) is FL1State.I
