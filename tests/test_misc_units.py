"""Small-unit coverage: message carriers, reports, perf plumbing."""

import pytest

from repro.coherence.coverage import collect_coverage
from repro.eval.perf import perf_configs, run_one
from repro.host.config import AccelOrg, HostProtocol
from repro.sim.message import Message
from repro.sim.stats import Histogram
from repro.workloads.synthetic import PERF_WORKLOADS


def test_message_defaults_and_repr():
    msg = Message("Ping", 0x1040, sender="a", dest="b")
    assert msg.data is None and msg.ack_count == 0 and not msg.dirty
    assert msg.value is None
    text = repr(msg)
    assert "Ping" in text and "a->b" in text and "0x1040" in text


def test_message_uids_unique():
    uids = {Message("m", 0).uid for _ in range(100)}
    assert len(uids) == 100


def test_message_repr_shows_payload_flags():
    from repro.memory.datablock import DataBlock

    msg = Message("D", 0x40, sender="x", dest="y", data=DataBlock(), dirty=True,
                  ack_count=3, requestor="r")
    text = repr(msg)
    assert "+data" in text and "dirty" in text and "acks=3" in text and "req=r" in text


def test_histogram_buckets_track_distribution():
    hist = Histogram(bucket_width=10)
    for value in (1, 5, 11, 25, 25):
        hist.observe(value)
    assert hist.buckets[0] == 2
    assert hist.buckets[1] == 1
    assert hist.buckets[2] == 2
    report = hist.as_dict()
    assert report["count"] == 5 and report["min"] == 1 and report["max"] == 25


def test_perf_configs_cover_six_orgs():
    configs = perf_configs(HostProtocol.MESI)
    labels = [c.label for c in configs]
    assert len(labels) == 6
    assert labels[0] == "mesi/accel-side"
    assert "mesi/xg-txn-L2" in labels


def test_run_one_returns_metrics_and_clean_errors():
    builder = PERF_WORKLOADS(scale=1)["graph_walk"]
    config = perf_configs(HostProtocol.MESI)[2]  # xg-full-L1
    row, system = run_one(config, builder)
    assert row["ticks"] > 0
    assert row["accel_mean_latency"] > 0
    assert row["xg_errors"] == 0
    assert system.stats_summary()["guarantee_violations"] == 0


def test_collect_coverage_groups_by_type():
    from repro.host.config import SystemConfig
    from repro.host.system import build_system

    system = build_system(SystemConfig(org=AccelOrg.XG, n_cpus=2))
    system.cpu_seqs[0].load(0x1000)
    system.sim.run()
    reports = collect_coverage(
        [c for c in system.sim.components if hasattr(c, "coverage")]
    )
    assert "mesi_l1" in reports and "mesi_l2" in reports
    assert reports["mesi_l1"].visited, "the load visited transitions"


def test_perf_workloads_scale_parameter():
    small = PERF_WORKLOADS(scale=1)
    large = PERF_WORKLOADS(scale=3)
    assert set(small) == set(large) == {
        "streaming", "blocked_decode", "graph_walk", "write_coalesce", "shared_pingpong",
    }


def test_full_run_determinism_end_to_end():
    builder = PERF_WORKLOADS(scale=1)["blocked_decode"]
    config = perf_configs(HostProtocol.HAMMER, seed=13)[3]

    def one():
        row, system = run_one(config, builder)
        return row["ticks"], row["host_net_messages"]

    assert one() == one()
